"""Performance harness for the serve layer (E21).

Drives the same seeded 32-request burst of same-model ``plan``
requests against two server configurations:

* **stateless**: every request plans on a cold private pipeline with
  caching and coalescing forced off -- exactly the per-invocation cost
  of today's batch CLI, reproduced inside the server;
* **batched**: the full service -- shared warm pipeline, micro-batch
  coalescing and the LRU plan cache.

and then the *sharded* tier: a mixed multi-model, multi-key burst
(32 distinct (model, QoS) keys across four model architectures,
chosen so the consistent-hash ring spreads their planning cost evenly
over 4 shards) against a 1-worker and a 4-worker
:class:`~repro.serve.router.ShardRouter`.  Every routed payload is
digest-checked against a cold single-process solve, and a 2-shard
oversubscribed burst is run twice to pin per-shard shed determinism.

The *crash-recovery* section drives a 2-shard journaled burst with
the seeded WORKER_KILL fault SIGKILLing an owner mid-request: the
failover ladder (immediate health pass, one retry, degraded serve)
must answer every request, every completed payload must digest-match
a cold solve, and a fresh router restarted over the same journal must
rebuild its shared plan-cache tier warm -- replayed entries, zero
cold misses.

Writes ``BENCH_serve.json`` at the repo root with the schema::

    {mode[model]: {"wall_s": float, "ok": int, "throughput_rps": float,
                   "p50_ms": float, "p95_ms": float, "cached": int}}

plus a ``_meta`` block with the headline ``serve_speedup`` (batched
vs. stateless throughput on the same request stream), the
``shard_speedup`` (4 workers vs. 1 on the mixed burst -- gated at
``MIN_SHARD_SPEEDUP`` only on hosts with >= 4 CPU cores, since worker
processes cannot scale past the core count; the measurement is always
recorded), the digest-consistency verdicts and the overload- and
per-shard-determinism verdicts.  Every gate lands in ``_meta["gates"]``
as a uniform record (measured / threshold / enforced / machine-readable
``gate_reason`` -- see ``_gating.py``); skipped gates keep their
measured value and say why in the slug.

Run standalone (CI smoke does exactly this)::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from _gating import enforce_gates, gate_record, print_gates
from repro.faults import FaultPlan
from repro.serve import LoadGenConfig, run_loadgen
from repro.serve.server import ServeConfig

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The acceptance gate's scenario: 32 concurrent same-model requests.
MODEL = "vww"
REQUESTS = 32
QOS_PERCENTS = (10.0, 30.0, 50.0)
SEED = 0

#: The speedup the serve layer must clear over per-request planning.
MIN_SPEEDUP = 3.0

#: The sharded mixed-traffic scenario: 32 distinct (model, QoS) keys,
#: two per model per shard on the default 4-node ring, so the cold
#: planning cost lands near-uniformly on every worker (the hash ring
#: is deterministic, so this balance is a property of the key set,
#: not of the run).
SHARD_PAIRS = (
    ("mbv2", 2.5), ("mbv2", 3.125), ("mbv2", 3.75), ("mbv2", 4.375),
    ("mbv2", 5.625), ("mbv2", 6.25), ("mbv2", 6.875), ("mbv2", 8.125),
    ("pd", 2.5), ("pd", 3.125), ("pd", 3.75), ("pd", 4.375),
    ("pd", 6.875), ("pd", 8.125), ("pd", 8.75), ("pd", 10.625),
    ("tiny", 2.5), ("tiny", 3.125), ("tiny", 3.75), ("tiny", 4.375),
    ("tiny", 6.25), ("tiny", 6.875), ("tiny", 7.5), ("tiny", 9.375),
    ("vww", 2.5), ("vww", 3.125), ("vww", 3.75), ("vww", 4.375),
    ("vww", 5.0), ("vww", 5.625), ("vww", 6.25), ("vww", 8.75),
)
SHARD_REQUESTS = 64  # every key issued exactly twice
SHARD_SEED = 11

#: 4-worker vs 1-worker throughput on the mixed burst.  Only enforced
#: with >= 4 CPU cores; always measured and recorded.
MIN_SHARD_SPEEDUP = 3.0

#: The crash-recovery scenario: a 2-shard burst with the WORKER_KILL
#: fault SIGKILLing an owner mid-request, journaled shared cache, and
#: a journal-warm restart.  The kill schedule is a seeded Bernoulli
#: stream, so the burst's kill count reproduces run over run.
RECOVERY_PAIRS = (
    ("tiny", 10.0), ("tiny", 30.0), ("vww", 20.0), ("mbv2", 25.0),
)
RECOVERY_REQUESTS = 32
RECOVERY_SEED = 5
RECOVERY_KILL_SEED = 3
RECOVERY_KILL_RATE = 0.08


def run_recovery(journal_path: str) -> dict:
    """SIGKILL-mid-burst: every request must still answer, digests
    must match cold solves, and every publish must hit the journal."""
    return run_loadgen(
        LoadGenConfig(
            pairs=RECOVERY_PAIRS,
            requests=RECOVERY_REQUESTS,
            seed=RECOVERY_SEED,
            burst=True,
            verify_digests=True,
            serve=ServeConfig(
                workers=2,
                batch_window_s=0.001,
                max_queue_depth=RECOVERY_REQUESTS,
            ),
            shards=2,
            journal_path=journal_path,
            fault_plan=FaultPlan(
                seed=RECOVERY_KILL_SEED,
                worker_kill_rate=RECOVERY_KILL_RATE,
            ),
        )
    )


def run_restart(journal_path: str) -> dict:
    """A fresh router over the same journal: the shared tier must come
    up warm (replayed entries, zero cold solves)."""
    return run_loadgen(
        LoadGenConfig(
            pairs=RECOVERY_PAIRS,
            requests=len(RECOVERY_PAIRS) * 2,
            seed=RECOVERY_SEED + 1,
            burst=True,
            verify_digests=False,
            serve=ServeConfig(
                workers=2,
                batch_window_s=0.001,
                max_queue_depth=RECOVERY_REQUESTS,
            ),
            shards=2,
            journal_path=journal_path,
        )
    )


def run_scenario(stateless: bool) -> dict:
    config = LoadGenConfig(
        model=MODEL,
        qos_percents=QOS_PERCENTS,
        requests=REQUESTS,
        seed=SEED,
        burst=True,  # all 32 in flight at once
        verify_digests=not stateless,
        serve=ServeConfig(
            workers=4,
            stateless=stateless,
            max_queue_depth=REQUESTS,  # nothing sheds; this is a race
        ),
    )
    return run_loadgen(config)


def run_overload(seed: int) -> dict:
    """One deliberately oversubscribed burst with deterministic time."""
    return run_loadgen(
        LoadGenConfig(
            model="tiny",
            qos_percents=(30.0,),
            requests=48,
            seed=seed,
            burst=True,
            verify_digests=False,
            serve=ServeConfig(
                workers=2,
                max_queue_depth=8,
                rate_per_s=4.0,
                burst=2.0,
                admission_tick_s=0.02,
            ),
        )
    )


def run_sharded(shards: int, verify: bool) -> dict:
    """The mixed multi-model burst against an N-shard router."""
    return run_loadgen(
        LoadGenConfig(
            pairs=SHARD_PAIRS,
            requests=SHARD_REQUESTS,
            seed=SHARD_SEED,
            burst=True,
            verify_digests=verify,
            serve=ServeConfig(
                workers=4,
                batch_window_s=0.001,
                max_queue_depth=SHARD_REQUESTS,
            ),
            shards=shards,
        )
    )


def run_sharded_overload(seed: int) -> dict:
    """An oversubscribed 2-shard burst with deterministic admission."""
    return run_loadgen(
        LoadGenConfig(
            model="tiny",
            qos_percents=(10.0, 30.0, 50.0),
            requests=48,
            seed=seed,
            burst=True,
            verify_digests=False,
            serve=ServeConfig(
                workers=2,
                batch_window_s=0.001,
                max_queue_depth=8,
                rate_per_s=4.0,
                burst=2.0,
                admission_tick_s=0.02,
            ),
            shards=2,
        )
    )


def per_shard_view(summary: dict) -> dict:
    """Per-worker shed and traffic counters from a sharded summary."""
    return {
        worker_id: {
            "requests_total": worker["metrics"]["requests_total"],
            "shed_count": worker["metrics"]["shed_count"],
            "sheds_by_reason": worker["metrics"]["sheds_by_reason"],
        }
        for worker_id, worker in sorted(
            summary["server"]["workers"].items()
        )
    }


def summarize(summary: dict) -> dict:
    latency = summary["latency"]
    return {
        "wall_s": summary["wall_s"],
        "ok": summary["ok"],
        "throughput_rps": summary["throughput_rps"],
        "p50_ms": latency["p50_s"] * 1e3,
        "p95_ms": latency["p95_s"] * 1e3,
        "cached": summary["cached_responses"],
    }


def main():
    stages = {}

    stateless = run_scenario(stateless=True)
    batched = run_scenario(stateless=False)
    assert stateless["ok"] == batched["ok"] == REQUESTS
    assert batched["digest_checks"] == len(QOS_PERCENTS)
    speedup = (
        batched["throughput_rps"] / stateless["throughput_rps"]
    )

    first = run_overload(seed=1)
    second = run_overload(seed=1)
    sheds_reproduce = (
        first["sheds"] == second["sheds"]
        and first["server"]["metrics"]["sheds_by_reason"]
        == second["server"]["metrics"]["sheds_by_reason"]
    )
    assert first["sheds"] > 0, "overload scenario never shed"

    # -- sharded tier: mixed multi-model multi-key burst ---------------
    sharded1 = run_sharded(shards=1, verify=False)
    sharded4 = run_sharded(shards=4, verify=True)
    assert sharded1["ok"] == sharded4["ok"] == SHARD_REQUESTS
    assert sharded4["digest_checks"] == len(SHARD_PAIRS)
    shard_speedup = (
        sharded4["throughput_rps"] / sharded1["throughput_rps"]
    )
    cpu_count = os.cpu_count() or 1
    shard_gate_enforced = cpu_count >= 4

    shard_first = run_sharded_overload(seed=7)
    shard_second = run_sharded_overload(seed=7)
    shard_sheds_reproduce = per_shard_view(shard_first) == per_shard_view(
        shard_second
    )
    assert shard_first["sheds"] > 0, "sharded overload never shed"

    # -- crash recovery: SIGKILL mid-burst, then a journal-warm restart
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = os.path.join(tmp, "plan-journal.jsonl")
        recovery = run_recovery(journal_path)
        restart = run_restart(journal_path)
    recovery_router = recovery["server"]["router"]
    restart_router = restart["server"]["router"]
    kills = recovery_router["failovers"]["chaos_kills"]
    restart_cache = restart_router["shared_cache"]
    restart_replay = restart_router["journal"]["replay"]

    # -- uniform gate records (see _gating.py for the contract) --------
    gates = {
        "serve_speedup": gate_record(speedup, MIN_SPEEDUP),
        "shard_speedup": gate_record(
            shard_speedup,
            MIN_SHARD_SPEEDUP,
            enforced=shard_gate_enforced,
            gate_reason=(
                None if shard_gate_enforced else "insufficient-cpu-cores"
            ),
            detail=(
                None
                if shard_gate_enforced
                else (
                    f"host has {cpu_count} CPU core(s); worker "
                    "processes cannot scale past the core count, so "
                    "the >=4-core throughput gate is recorded but "
                    "not enforced"
                )
            ),
            cpu_count=cpu_count,
        ),
        "cache_consistent": gate_record(
            batched["cache_consistent"], True, comparator="=="
        ),
        "sheds_reproduce": gate_record(
            sheds_reproduce, True, comparator="=="
        ),
        "shard_cache_consistent": gate_record(
            sharded4["cache_consistent"], True, comparator="=="
        ),
        "shard_sheds_reproduce": gate_record(
            shard_sheds_reproduce, True, comparator="=="
        ),
        # Crash recovery: the kill fired, every request still answered,
        # every completed payload digests identically to a cold solve,
        # and a restart rebuilds the shared tier from the journal with
        # zero cold solves.
        "recovery_kills_injected": gate_record(kills, 1, comparator=">="),
        "recovery_all_answered": gate_record(
            recovery["ok"], RECOVERY_REQUESTS, comparator="=="
        ),
        "recovery_digest_parity": gate_record(
            recovery["cache_consistent"]
            and recovery["digest_checks"] == len(RECOVERY_PAIRS),
            True,
            comparator="==",
        ),
        "recovery_warm_restart": gate_record(
            restart_replay["replayed"] > 0
            and restart_cache["misses"] == 0,
            True,
            comparator="==",
            replayed=restart_replay["replayed"],
            cold_misses=restart_cache["misses"],
        ),
    }
    enforce_gates(gates)

    stages[f"stateless[{MODEL}]"] = summarize(stateless)
    stages[f"batched[{MODEL}]"] = summarize(batched)
    stages["sharded1[mixed]"] = summarize(sharded1)
    stages["sharded4[mixed]"] = summarize(sharded4)
    stages["overload-sharded[tiny]"] = {
        "requests": 48,
        "shards": 2,
        "ok": shard_first["ok"],
        "sheds": shard_first["sheds"],
        "per_shard": per_shard_view(shard_first),
    }
    stages["overload[tiny]"] = {
        "requests": 48,
        "ok": first["ok"],
        "sheds": first["sheds"],
        "sheds_by_reason": first["server"]["metrics"][
            "sheds_by_reason"
        ],
    }
    stages["recovery[mixed]"] = {
        "requests": RECOVERY_REQUESTS,
        "shards": 2,
        "ok": recovery["ok"],
        "sheds": recovery["sheds"],
        "degraded": recovery["degraded_responses"],
        "worker_kills": kills,
        "failovers": recovery_router["failovers"],
        "digest_checks": recovery["digest_checks"],
        "digest_mismatches": recovery["digest_mismatches"],
    }
    stages["restart[journal]"] = {
        "requests": len(RECOVERY_PAIRS) * 2,
        "shards": 2,
        "ok": restart["ok"],
        "cached": restart["cached_responses"],
        "replay": restart_replay,
        "shared_cache": restart_cache,
    }
    stages["_meta"] = {
        "model": MODEL,
        "requests": REQUESTS,
        "qos_percents": list(QOS_PERCENTS),
        "seed": SEED,
        "serve_speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "digest_checks": batched["digest_checks"],
        "cache_consistent": batched["cache_consistent"],
        "sheds_reproduce": sheds_reproduce,
        "coalesce_ratio": batched["server"]["metrics"][
            "coalesce_ratio"
        ],
        "cache_hit_rate": batched["server"]["cache"]["hit_rate"],
        "shard_speedup": shard_speedup,
        "min_shard_speedup": MIN_SHARD_SPEEDUP,
        # Legacy alias of gates["shard_speedup"]; CI still reads it.
        "shard_gate": {
            "enforced": shard_gate_enforced,
            "cpu_count": cpu_count,
            "gate_reason": gates["shard_speedup"]["gate_reason"],
            "reason": gates["shard_speedup"].get("detail"),
        },
        "gates": gates,
        "shard_keys": len(SHARD_PAIRS),
        "shard_digest_checks": sharded4["digest_checks"],
        "shard_cache_consistent": sharded4["cache_consistent"],
        "shard_sheds_reproduce": shard_sheds_reproduce,
        "shared_cache": sharded4["server"]["router"]["shared_cache"],
        "recovery": {
            "kill_seed": RECOVERY_KILL_SEED,
            "kill_rate": RECOVERY_KILL_RATE,
            "worker_kills": kills,
            "digest_parity": recovery["cache_consistent"],
            "restart_replayed": restart_replay["replayed"],
            "restart_cold_misses": restart_cache["misses"],
        },
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    for stage in sorted(s for s in stages if s != "_meta"):
        entry = stages[stage]
        if "throughput_rps" in entry:
            print(
                f"{stage:18s} {entry['wall_s'] * 1e3:9.2f} ms  "
                f"{entry['throughput_rps']:8.1f} req/s  "
                f"p95 {entry['p95_ms']:7.2f} ms"
            )
        elif "worker_kills" in entry:
            print(
                f"{stage:18s} {entry['ok']:3d} ok, "
                f"{entry['worker_kills']} killed, "
                f"{entry['failovers']['triggered']} failovers, "
                f"{entry['degraded']} degraded"
            )
        elif "replay" in entry:
            print(
                f"{stage:18s} {entry['ok']:3d} ok, "
                f"{entry['replay']['replayed']} replayed, "
                f"{entry['shared_cache']['misses']} cold misses"
            )
        else:
            detail = entry.get("sheds_by_reason") or entry.get(
                "per_shard"
            )
            print(
                f"{stage:18s} {entry['ok']:3d} ok, "
                f"{entry['sheds']} shed {detail}"
            )
    print(f"serve speedup (batched vs stateless): {speedup:.2f}x")
    print(
        f"shard speedup (4 workers vs 1): {shard_speedup:.2f}x "
        f"on {cpu_count} core(s)"
    )
    print_gates(gates)
    return stages


if __name__ == "__main__":
    main()
