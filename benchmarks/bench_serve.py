"""Performance harness for the serve layer (E21).

Drives the same seeded 32-request burst of same-model ``plan``
requests against two server configurations:

* **stateless**: every request plans on a cold private pipeline with
  caching and coalescing forced off -- exactly the per-invocation cost
  of today's batch CLI, reproduced inside the server;
* **batched**: the full service -- shared warm pipeline, micro-batch
  coalescing and the LRU plan cache.

and writes ``BENCH_serve.json`` at the repo root with the schema::

    {mode[model]: {"wall_s": float, "ok": int, "throughput_rps": float,
                   "p50_ms": float, "p95_ms": float, "cached": int}}

plus a ``_meta`` block with the headline ``serve_speedup`` (batched
vs. stateless throughput on the same request stream), the
digest-consistency verdict (every cached payload must hash identically
to a cold recompute) and the overload-determinism verdict (two
identical oversubscribed bursts must shed identical counts).

Run standalone (CI smoke does exactly this)::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import pathlib

from repro.serve import LoadGenConfig, run_loadgen
from repro.serve.server import ServeConfig

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The acceptance gate's scenario: 32 concurrent same-model requests.
MODEL = "vww"
REQUESTS = 32
QOS_PERCENTS = (10.0, 30.0, 50.0)
SEED = 0

#: The speedup the serve layer must clear over per-request planning.
MIN_SPEEDUP = 3.0


def run_scenario(stateless: bool) -> dict:
    config = LoadGenConfig(
        model=MODEL,
        qos_percents=QOS_PERCENTS,
        requests=REQUESTS,
        seed=SEED,
        burst=True,  # all 32 in flight at once
        verify_digests=not stateless,
        serve=ServeConfig(
            workers=4,
            stateless=stateless,
            max_queue_depth=REQUESTS,  # nothing sheds; this is a race
        ),
    )
    return run_loadgen(config)


def run_overload(seed: int) -> dict:
    """One deliberately oversubscribed burst with deterministic time."""
    return run_loadgen(
        LoadGenConfig(
            model="tiny",
            qos_percents=(30.0,),
            requests=48,
            seed=seed,
            burst=True,
            verify_digests=False,
            serve=ServeConfig(
                workers=2,
                max_queue_depth=8,
                rate_per_s=4.0,
                burst=2.0,
                admission_tick_s=0.02,
            ),
        )
    )


def summarize(summary: dict) -> dict:
    latency = summary["latency"]
    return {
        "wall_s": summary["wall_s"],
        "ok": summary["ok"],
        "throughput_rps": summary["throughput_rps"],
        "p50_ms": latency["p50_s"] * 1e3,
        "p95_ms": latency["p95_s"] * 1e3,
        "cached": summary["cached_responses"],
    }


def main():
    stages = {}

    stateless = run_scenario(stateless=True)
    batched = run_scenario(stateless=False)
    assert stateless["ok"] == batched["ok"] == REQUESTS
    assert batched["digest_checks"] == len(QOS_PERCENTS)
    assert batched["cache_consistent"], (
        "cached plan payloads diverged from cold recomputation"
    )
    speedup = (
        batched["throughput_rps"] / stateless["throughput_rps"]
    )
    assert speedup >= MIN_SPEEDUP, (
        f"serve speedup {speedup:.2f}x under the {MIN_SPEEDUP}x gate"
    )

    first = run_overload(seed=1)
    second = run_overload(seed=1)
    sheds_reproduce = (
        first["sheds"] == second["sheds"]
        and first["server"]["metrics"]["sheds_by_reason"]
        == second["server"]["metrics"]["sheds_by_reason"]
    )
    assert first["sheds"] > 0, "overload scenario never shed"
    assert sheds_reproduce, (
        f"shed counts diverged: {first['sheds']} vs {second['sheds']}"
    )

    stages[f"stateless[{MODEL}]"] = summarize(stateless)
    stages[f"batched[{MODEL}]"] = summarize(batched)
    stages["overload[tiny]"] = {
        "requests": 48,
        "ok": first["ok"],
        "sheds": first["sheds"],
        "sheds_by_reason": first["server"]["metrics"][
            "sheds_by_reason"
        ],
    }
    stages["_meta"] = {
        "model": MODEL,
        "requests": REQUESTS,
        "qos_percents": list(QOS_PERCENTS),
        "seed": SEED,
        "serve_speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "digest_checks": batched["digest_checks"],
        "cache_consistent": batched["cache_consistent"],
        "sheds_reproduce": sheds_reproduce,
        "coalesce_ratio": batched["server"]["metrics"][
            "coalesce_ratio"
        ],
        "cache_hit_rate": batched["server"]["cache"]["hit_rate"],
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    for stage in sorted(s for s in stages if s != "_meta"):
        entry = stages[stage]
        if "throughput_rps" in entry:
            print(
                f"{stage:18s} {entry['wall_s'] * 1e3:9.2f} ms  "
                f"{entry['throughput_rps']:8.1f} req/s  "
                f"p95 {entry['p95_ms']:7.2f} ms"
            )
        else:
            print(
                f"{stage:18s} {entry['ok']:3d} ok, "
                f"{entry['sheds']} shed {entry['sheds_by_reason']}"
            )
    print(f"serve speedup (batched vs stateless): {speedup:.2f}x")
    return stages


if __name__ == "__main__":
    main()
