"""E2 -- Sec. II-A: clock-switch overhead measurements.

The paper measures ~200 us per PLL reconfiguration and near-instant
PLL -> HSE mux switches; this asymmetry is the foundation of the
LFO/HFO scheme.  The benchmark drives the RCC state machine through
the three switch classes and reports their costs.
"""

import pytest

from repro.clock import RCC, lfo_config, pll_config
from repro.units import MHZ, to_us

from conftest import report

PAPER_RELOCK_US = 200.0


def run_experiment():
    hfo_216 = pll_config(50 * MHZ, 25, 216)
    hfo_108 = pll_config(50 * MHZ, 50, 216)
    rows = {}

    rcc = RCC()
    rows["HSE -> PLL (cold: program + lock)"] = rcc.apply(hfo_216).latency_s
    rows["PLL -> HSE (mux only)"] = rcc.switch_to_hse().latency_s
    rows["HSE -> PLL (kept programmed)"] = rcc.switch_to_pll(
        hfo_216
    ).latency_s
    rows["PLL -> PLL (new dividers: re-lock)"] = rcc.apply(hfo_108).latency_s
    rcc.switch_to_hse()
    rows["background PLL prep while on HSE"] = rcc.prepare_pll(hfo_216)
    rows["HSE -> prepared PLL (mux only)"] = rcc.switch_to_pll(
        hfo_216
    ).latency_s
    return rows, rcc


@pytest.mark.benchmark(group="switching")
def test_switching_overhead(benchmark):
    rows, rcc = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [f"  {name:40s} {to_us(latency):8.2f} us"
             for name, latency in rows.items()]
    lines.append(
        f"paper: PLL reconfiguration ~{PAPER_RELOCK_US:.0f} us, "
        "PLL->HSE almost instant"
    )
    report("E2 / Sec. II-A -- clock switching overhead", lines)

    relock = rows["HSE -> PLL (cold: program + lock)"]
    mux = rows["PLL -> HSE (mux only)"]
    assert relock == pytest.approx(PAPER_RELOCK_US * 1e-6, rel=0.05)
    assert mux < relock / 50
    assert rows["HSE -> prepared PLL (mux only)"] < relock / 50
    assert rows["PLL -> PLL (new dividers: re-lock)"] >= relock
