"""E12 (extension) -- adaptive per-layer granularity grids.

The paper fixes g in {0, 2, 4, 8, 12, 16} for every layer but notes
the best value depends on the cache size and the layer's shape
(Sec. III-B).  The adaptive policy derives each layer's grid from its
buffering unit size and the usable cache capacity, allowing larger
granularities where they fit and skipping ones that cannot.  This
benchmark quantifies what the smarter grid buys at each QoS level.
"""

import functools

import pytest

from repro import DAEDVFSPipeline
from repro.dse import adaptive_granularities
from repro.optimize import PAPER_QOS_LEVELS

from conftest import report


def run_experiment(pipeline, models):
    adaptive = DAEDVFSPipeline(
        board=pipeline.board,
        space=pipeline.space,
        granularity_fn=functools.partial(
            adaptive_granularities, pipeline.board
        ),
    )
    rows = []
    for name, model in models.items():
        for level in PAPER_QOS_LEVELS:
            base_plan = pipeline.optimize(model, qos_level=level).plan
            adaptive_plan = adaptive.optimize(model, qos_level=level).plan
            e_base = pipeline.deploy(model, base_plan).energy_j
            e_adaptive = adaptive.deploy(model, adaptive_plan).energy_j
            max_g = max(
                lp.granularity for lp in adaptive_plan.layer_plans.values()
            )
            rows.append((name, level.name, e_base, e_adaptive, max_g))
    return rows


@pytest.mark.benchmark(group="adaptive-g")
def test_adaptive_granularity(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'QoS':>9s} {'paper grid':>11s} {'adaptive':>9s}"
        f" {'gain':>7s} {'max g':>6s}",
    ]
    gains = []
    for name, qos, e_base, e_adaptive, max_g in rows:
        gain = 1.0 - e_adaptive / e_base
        gains.append(gain)
        lines.append(
            f"{name:>6s} {qos:>9s} {e_base * 1e3:9.3f}mJ"
            f" {e_adaptive * 1e3:7.3f}mJ {gain:7.2%} {max_g:6d}"
        )
    lines.append(
        f"adaptive grid gain: mean {sum(gains) / len(gains):.2%}, "
        f"best {max(gains):.2%}"
    )
    report("E12 / extension -- adaptive granularity grids", lines)

    for name, qos, e_base, e_adaptive, _ in rows:
        # A superset of useful candidates never loses (beyond solver
        # grid noise).
        assert e_adaptive <= e_base * 1.01
