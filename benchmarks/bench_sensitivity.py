"""E10 (extension) -- sensitivity of the headline result to the model
constants.

The substitution from hardware to simulation rests on calibrated
constants.  This benchmark perturbs the most influential ones -- the
VCO power coefficient, the clock-gated idle floor, the cache capacity
and the PLL re-lock time -- and checks that the paper's qualitative
result (ours < gated TinyEngine < TinyEngine, savings growing with
slack) survives every perturbation, i.e. the reproduction does not
hinge on a knife-edge calibration.
"""

import pytest

from repro import DAEDVFSPipeline
from repro.clock import SwitchCostModel
from repro.mcu import CacheModel, make_nucleo_f767zi
from repro.optimize import RELAXED, TIGHT
from repro.power import PowerModelParams
from repro.units import kib, us

from conftest import report


def build_variants():
    base = PowerModelParams()
    return {
        "default": make_nucleo_f767zi(),
        "VCO power x0.5": make_nucleo_f767zi(
            power_params=base.scaled(k_vco_w_per_hz=base.k_vco_w_per_hz * 0.5)
        ),
        "VCO power x2": make_nucleo_f767zi(
            power_params=base.scaled(k_vco_w_per_hz=base.k_vco_w_per_hz * 2.0)
        ),
        "gated idle x4": make_nucleo_f767zi(
            power_params=base.scaled(p_gated_w=base.p_gated_w * 4.0)
        ),
        "cache 8 KiB": make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=kib(8))
        ),
        "cache 32 KiB": make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=kib(32))
        ),
        "relock 500 us": make_nucleo_f767zi(
            switch_cost_model=SwitchCostModel(pll_relock_s=us(500))
        ),
    }


def run_experiment(models):
    model = models["vww"]
    rows = []
    for variant_name, board in build_variants().items():
        pipeline = DAEDVFSPipeline(board=board)
        tight = pipeline.compare(model, TIGHT)
        relaxed = pipeline.compare(model, RELAXED)
        rows.append((variant_name, tight, relaxed))
    return rows


@pytest.mark.benchmark(group="sensitivity")
def test_sensitivity_of_headline_result(benchmark, models):
    rows = benchmark.pedantic(
        run_experiment, args=(models,), rounds=1, iterations=1
    )
    lines = [
        f"{'variant':>16s} {'vsTE@10%':>9s} {'vsCG@10%':>9s}"
        f" {'vsTE@50%':>9s} {'vsCG@50%':>9s}",
    ]
    for name, tight, relaxed in rows:
        lines.append(
            f"{name:>16s} {tight.savings_vs_tinyengine:9.1%}"
            f" {tight.savings_vs_clock_gated:9.1%}"
            f" {relaxed.savings_vs_tinyengine:9.1%}"
            f" {relaxed.savings_vs_clock_gated:9.1%}"
        )
    report(
        "E10 / extension -- sensitivity of the headline result", lines
    )

    for name, tight, relaxed in rows:
        # The qualitative result must survive every perturbation.
        assert tight.ours.energy_j < tight.clock_gated.energy_j, name
        assert tight.clock_gated.energy_j < tight.tinyengine.energy_j, name
        assert relaxed.savings_vs_tinyengine > tight.savings_vs_tinyengine, name
        assert tight.ours.met_qos and relaxed.ours.met_qos, name
