"""Benchmark harness for the chaos fault-injection campaigns.

Runs seeded campaigns on the tiny test model across a sweep of fault
intensities (off / low / high) and writes ``BENCH_chaos.json`` at the
repo root with the schema::

    {rate[level]: {"wall_s": float, "devices": int,
                   "quarantine_free_fraction": float,
                   "qos_met_fraction": float,
                   "energy_overhead": float,
                   "injected": {kind: count}, "digest": str}}

plus a ``_meta`` block whose ``gates`` entry records every acceptance
gate as a uniform measured / threshold / enforced / ``gate_reason``
record (see ``_gating.py``).  Two invariants are asserted before the
numbers are trusted:

* **determinism** -- the ``low`` campaign runs twice and must produce
  byte-identical survival reports (same sha256 digest);
* **no-fault transparency** -- the ``off`` campaign (all rates zero)
  must quarantine nobody and inject nothing, i.e. the hardened paths
  are free when faults are disabled.

Run standalone (CI smoke does exactly this)::

    PYTHONPATH=src python benchmarks/bench_chaos.py
"""

from __future__ import annotations

import json
import pathlib
import time

from _gating import enforce_gates, gate_record, print_gates
from repro.faults import ChaosConfig, FaultPlan, run_campaign
from repro.nn import build_tiny_test_model

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_chaos.json"

DEVICES = 32
EPOCHS = 3
FLEET_SEED = 0
FAULT_SEED = 7

#: Fault-rate sweep: per-opportunity probabilities for (hse dropout,
#: pll timeout, sensor dropout, sensor stuck, sensor nack, brownout,
#: watchdog reset).
LEVELS = {
    "off": (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0),
    "low": (0.01, 0.02, 0.02, 0.01, 0.01, 0.02, 0.001),
    "high": (0.05, 0.10, 0.10, 0.05, 0.05, 0.10, 0.005),
}


def plan_for(rates, worker_kill_rate: float = 0.0) -> FaultPlan:
    hse, pll, s_drop, s_stuck, s_nack, brown, wdg = rates
    return FaultPlan(
        seed=FAULT_SEED,
        hse_dropout_rate=hse,
        pll_lock_timeout_rate=pll,
        sensor_dropout_rate=s_drop,
        sensor_stuck_rate=s_stuck,
        sensor_nack_rate=s_nack,
        brownout_rate=brown,
        watchdog_rate=wdg,
        worker_kill_rate=worker_kill_rate,
    )


def main():
    model = build_tiny_test_model()
    config = ChaosConfig(devices=DEVICES, seed=FLEET_SEED, epochs=EPOCHS)
    stages = {}
    digests = {}
    for level, rates in LEVELS.items():
        fault_plan = plan_for(rates)
        start = time.perf_counter()
        report = run_campaign(model, fault_plan, config)
        wall = time.perf_counter() - start
        digests[level] = report.digest()
        stages[f"rate[{level}]"] = {
            "wall_s": wall,
            "devices": DEVICES,
            "quarantine_free_fraction": report.quarantine_free_fraction,
            "qos_met_fraction": report.qos_met_fraction,
            "energy_overhead": report.energy_overhead,
            "total_retries": report.total_retries,
            "injected": report.total_injected,
            "digest": report.digest(),
        }

    # Determinism gate: same seed, byte-identical report.
    rerun = run_campaign(model, plan_for(LEVELS["low"]), config)

    # WORKER_KILL transparency gate: the serve-tier kill stream is a
    # separate spawned child (prefix-stable SeedSequence), so turning
    # it on must leave every device-level fault draw -- and therefore
    # every survival row -- byte-identical.  (The full report digest
    # differs by design: it echoes the plan, including the kill rate.)
    killed = run_campaign(
        model, plan_for(LEVELS["low"], worker_kill_rate=0.05), config
    )

    # No-fault transparency gates: zero rates inject and cost nothing.
    off = stages["rate[off]"]
    gates = {
        "deterministic_rerun": gate_record(
            rerun.digest() == digests["low"], True, comparator="=="
        ),
        "worker_kill_transparency": gate_record(
            killed.rows_digest() == rerun.rows_digest(),
            True,
            comparator="==",
        ),
        "nofault_quarantine_free": gate_record(
            off["quarantine_free_fraction"], 1.0, comparator=">="
        ),
        "nofault_injected": gate_record(
            sum(off["injected"].values()), 0, comparator="=="
        ),
        "nofault_energy_overhead": gate_record(
            off["energy_overhead"], 0.0, comparator="=="
        ),
    }
    enforce_gates(gates)

    stages["_meta"] = {
        "model": "tiny",
        "devices": DEVICES,
        "epochs": EPOCHS,
        "fleet_seed": FLEET_SEED,
        "fault_seed": FAULT_SEED,
        "levels": {k: list(v) for k, v in LEVELS.items()},
        "deterministic": gates["deterministic_rerun"]["passed"],
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    for stage in sorted(s for s in stages if s != "_meta"):
        entry = stages[stage]
        print(
            f"{stage:12s} {entry['wall_s'] * 1e3:9.2f} ms  "
            f"quarantine-free {entry['quarantine_free_fraction']:6.1%}  "
            f"QoS {entry['qos_met_fraction']:6.1%}  "
            f"overhead {entry['energy_overhead']:+7.2%}"
        )
    print_gates(gates)
    return stages


if __name__ == "__main__":
    main()
