"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see the
experiment index in DESIGN.md), prints a paper-vs-measured table and
persists it under ``benchmarks/results/``.  Run with::

    pytest benchmarks/ --benchmark-only -s

(without ``-s`` the tables land only in the results files).
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro import DAEDVFSPipeline, build_mbv2, build_person_detection, build_vww

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


#: Tables produced during this run, echoed in the terminal summary.
_RUN_REPORTS = []


def report(title: str, lines) -> None:
    """Print a benchmark table and persist it to benchmarks/results/."""
    text = "\n".join([f"=== {title} ===", *lines, ""])
    print()
    print(text)
    _RUN_REPORTS.append(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text)


def pytest_terminal_summary(terminalreporter):
    """Echo every experiment table past pytest's output capture."""
    if not _RUN_REPORTS:
        return
    terminalreporter.section("paper-vs-measured experiment tables")
    for text in _RUN_REPORTS:
        terminalreporter.write_line(text)


@pytest.fixture(scope="session")
def pipeline():
    """One shared pipeline (board + design space) for all benchmarks."""
    return DAEDVFSPipeline()


@pytest.fixture(scope="session")
def models():
    """The paper's three evaluation models."""
    return {
        "vww": build_vww(),
        "pd": build_person_detection(),
        "mbv2": build_mbv2(),
    }
