"""E5 -- Fig. 5: energy vs. TinyEngine and TinyEngine + clock gating.

The paper's headline result: across VWW / PD / MBV2 and QoS budgets of
10/30/50%, the proposed DAE+DVFS schedule consumes up to 25.2% less
energy than TinyEngine and up to 7.2% less than TinyEngine with clock
gating; relaxing MBV2's budget from 10% to 50% lowers our energy by
20.4%.
"""

import pytest

from repro.optimize import PAPER_QOS_LEVELS

from conftest import report

PAPER_BEST_VS_TINYENGINE = 0.252
PAPER_BEST_VS_CLOCK_GATED = 0.072
PAPER_MBV2_TIGHT_TO_RELAXED = 0.204


def run_experiment(pipeline, models):
    rows = []
    for name, model in models.items():
        for level in PAPER_QOS_LEVELS:
            rows.append(pipeline.compare(model, level))
    return rows


@pytest.mark.benchmark(group="fig5")
def test_fig5_energy_comparison(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'QoS':>9s} {'TinyEngine':>11s} {'TE+gating':>10s}"
        f" {'ours':>9s} {'vs TE':>7s} {'vs CG':>7s} {'norm.':>6s}",
    ]
    for row in rows:
        lines.append(
            f"{row.model_name:>6s} {row.qos_name:>9s}"
            f" {row.tinyengine.energy_j * 1e3:9.2f}mJ"
            f" {row.clock_gated.energy_j * 1e3:8.2f}mJ"
            f" {row.ours.energy_j * 1e3:7.2f}mJ"
            f" {row.savings_vs_tinyengine:7.1%}"
            f" {row.savings_vs_clock_gated:7.1%}"
            f" {row.ours.energy_j / row.tinyengine.energy_j:6.3f}"
        )
    best_te = max(r.savings_vs_tinyengine for r in rows)
    best_cg = max(r.savings_vs_clock_gated for r in rows)
    by_key = {(r.model_name, r.qos_name): r for r in rows}
    mbv2_delta = 1.0 - (
        by_key[("mbv2", "relaxed")].ours.energy_j
        / by_key[("mbv2", "tight")].ours.energy_j
    )
    lines.append("")
    lines.append(
        f"best savings vs TinyEngine: {best_te:.1%} "
        f"(paper: up to {PAPER_BEST_VS_TINYENGINE:.1%})"
    )
    lines.append(
        f"best savings vs TE + clock gating: {best_cg:.1%} "
        f"(paper: up to {PAPER_BEST_VS_CLOCK_GATED:.1%})"
    )
    lines.append(
        f"MBV2 energy reduction, 10% -> 50% QoS: {mbv2_delta:.1%} "
        f"(paper: {PAPER_MBV2_TIGHT_TO_RELAXED:.1%})"
    )
    report("E5 / Fig. 5 -- energy vs the TinyEngine baselines", lines)

    # Shape assertions (who wins, trends, rough factors).
    for row in rows:
        assert row.ours.met_qos
        assert row.ours.energy_j < row.clock_gated.energy_j
        assert row.clock_gated.energy_j < row.tinyengine.energy_j
    for name in models:
        tight = by_key[(name, "tight")].savings_vs_tinyengine
        relaxed = by_key[(name, "relaxed")].savings_vs_tinyengine
        assert relaxed > tight
    assert 0.15 < best_te < 0.45
    assert 0.03 < best_cg < 0.30
    assert mbv2_delta > 0.03
