"""Uniform acceptance-gate records for the benchmark harnesses.

Every bench that asserts a performance or correctness gate writes one
record per gate into its ``_meta["gates"]`` block, all with the same
shape::

    {"measured": <value>, "threshold": <value>, "comparator": ">=",
     "passed": bool, "enforced": bool, "gate_reason": <slug or None>}

The contract the harnesses (and CI) rely on:

* the **measured value is always recorded**, whether or not the gate
  is enforced on this host;
* a gate that is *recorded but not enforced* (e.g. a multi-core
  throughput gate on a 1-core runner) carries a **machine-readable
  ``gate_reason`` slug** saying why enforcement was waived, plus an
  optional human ``detail`` string -- downstream tooling branches on
  the slug, humans read the detail;
* an enforced gate always has ``gate_reason: None`` and is asserted
  by :func:`enforce_gates` before the bench JSON is trusted.

Extra keyword context (``cpu_count=...``) is merged into the record.
"""

from __future__ import annotations

from typing import Dict, Optional

_COMPARATORS = {
    ">=": lambda measured, threshold: measured >= threshold,
    "<=": lambda measured, threshold: measured <= threshold,
    "==": lambda measured, threshold: measured == threshold,
}


def gate_record(
    measured,
    threshold,
    *,
    comparator: str = ">=",
    enforced: bool = True,
    gate_reason: Optional[str] = None,
    detail: Optional[str] = None,
    **context,
) -> Dict:
    """One uniform gate record; see the module docstring for the shape."""
    if comparator not in _COMPARATORS:
        raise ValueError(
            f"unknown comparator {comparator!r}; "
            f"choose from {sorted(_COMPARATORS)}"
        )
    if enforced and gate_reason is not None:
        raise ValueError("gate_reason is reserved for skipped gates")
    if not enforced and not gate_reason:
        raise ValueError(
            "a recorded-but-not-enforced gate needs a machine-readable "
            "gate_reason slug"
        )
    record: Dict = {
        "measured": measured,
        "threshold": threshold,
        "comparator": comparator,
        "passed": bool(_COMPARATORS[comparator](measured, threshold)),
        "enforced": bool(enforced),
        "gate_reason": gate_reason,
    }
    if detail is not None:
        record["detail"] = detail
    record.update(context)
    return record


def enforce_gates(gates: Dict[str, Dict]) -> Dict[str, Dict]:
    """Assert every enforced gate passed; returns the gates unchanged."""
    for name, record in sorted(gates.items()):
        if record["enforced"]:
            assert record["passed"], (
                f"gate {name!r} failed: measured {record['measured']!r} "
                f"not {record['comparator']} {record['threshold']!r}"
            )
    return gates


def print_gates(gates: Dict[str, Dict]) -> None:
    """One status line per gate, flagging recorded-only gates."""
    for name, record in sorted(gates.items()):
        status = "pass" if record["passed"] else "FAIL"
        mode = (
            "enforced"
            if record["enforced"]
            else f"recorded-only: {record['gate_reason']}"
        )
        print(
            f"gate {name:28s} {record['measured']!r:>24} "
            f"{record['comparator']} {record['threshold']!r}"
            f"  [{status}, {mode}]"
        )
