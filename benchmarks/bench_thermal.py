"""E13 (extension) -- leakage/temperature feedback on sustained runs.

The paper cites leakage-aware DVFS [25] as a reason DVFS is subtle:
slower schedules run longer, leakage grows with the die temperature,
and temperature grows with dissipated power.  This benchmark replays
sustained back-to-back inference (hundreds of QoS windows, enough to
approach the thermal steady state) through the RC thermal model and
checks that the paper's ordering survives the feedback -- and that the
feedback in fact *widens* our margin, since the cooler DVFS schedule
leaks less.
"""

import pytest

from repro.power import (
    sustained_energy_correction,
    steady_state_temperature,
    thermal_replay,
)
from repro.power.thermal import ThermalModelParams
from repro.optimize import MODERATE

from conftest import report


def run_experiment(pipeline, models):
    model = models["vww"]
    result = pipeline.optimize(model, qos_level=MODERATE)
    ours = pipeline.deploy(model, result.plan)
    te = pipeline._tinyengine.run(model, qos_s=result.qos_s)
    cg = pipeline._clock_gated.run(model, qos_s=result.qos_s)
    params = ThermalModelParams(
        leakage_ref_w=pipeline.board.power_model.params.p_mcu_leakage_w
    )
    rows = {}
    # ~300 windows approaches the RC steady state (tau ~ 6 s).
    repeats = 300
    for name, run in (("ours", ours), ("TE+gating", cg), ("TinyEngine", te)):
        trace = run.account.as_power_trace() * repeats
        replay = thermal_replay(trace, params, max_step_s=5e-3)
        t_ss = steady_state_temperature(run.average_power_w, params)
        correction = sustained_energy_correction(
            run.average_power_w, params
        )
        rows[name] = (run, replay, t_ss, correction)
    return rows


@pytest.mark.benchmark(group="thermal")
def test_thermal_feedback(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'engine':>11s} {'avg P':>7s} {'T_peak':>7s} {'T_ss':>6s}"
        f" {'leakage corr.':>13s}",
    ]
    for name, (run, replay, t_ss, correction) in rows.items():
        lines.append(
            f"{name:>11s} {run.average_power_w * 1e3:5.0f}mW"
            f" {replay.peak_temperature_c:6.1f}C {t_ss:5.1f}C"
            f" {correction:13.2%}"
        )
    ours_run, ours_replay, *_ = rows["ours"]
    te_run, te_replay, *_ = rows["TinyEngine"]
    margin_cold = 1.0 - ours_run.energy_j / te_run.energy_j
    margin_hot = 1.0 - ours_replay.energy_j / te_replay.energy_j
    lines.append(
        f"energy margin vs TinyEngine: {margin_cold:.2%} without "
        f"feedback -> {margin_hot:.2%} with feedback"
    )
    report("E13 / extension -- thermal/leakage feedback", lines)

    # The hotter engine leaks more: corrections ordered by avg power,
    # and the ordering of engines is preserved under feedback.
    assert rows["TinyEngine"][3] >= rows["ours"][3]
    assert ours_replay.energy_j < rows["TE+gating"][1].energy_j
    assert rows["TE+gating"][1].energy_j < te_replay.energy_j
    # Our cooler schedule gains margin under sustained operation.
    assert margin_hot >= margin_cold - 1e-6
    # Temperatures are physically sensible.
    for name, (_, replay, t_ss, _) in rows.items():
        assert 25.0 <= replay.peak_temperature_c < 60.0
        assert replay.peak_temperature_c <= t_ss + 1.0