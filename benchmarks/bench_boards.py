"""Performance and determinism harness for the board registry.

Three stages, all on the paper's VWW model:

* ``optimize[<board>]`` -- cold single-device planning cost on every
  registered target, proving each descriptor drives the full pipeline;
* ``het_fleet[run_a|run_b]`` -- the same seeded heterogeneous fleet
  (an F767 / MCXN947 / N6 mix) planned twice; the acceptance gate
  asserts the two aggregated reports are **byte-identical** (same
  board assignment, same plans, same digest) before any timing is
  trusted;
* ``crossboard`` -- the cross-board DSE report ("which board meets
  this QoS at least energy?") run twice, digest-matched.

Writes ``BENCH_boards.json`` at the repo root with one uniform
measured / threshold / enforced / ``gate_reason`` record per gate
(see ``_gating.py``).  Run standalone (CI smoke does exactly this)::

    PYTHONPATH=src python benchmarks/bench_boards.py
"""

from __future__ import annotations

import json
import pathlib
import time

from _gating import enforce_gates, gate_record, print_gates
from repro.boards import board_names, build_board, cross_board_report
from repro.fleet import FleetScheduler, aggregate_fleet, sample_fleet
from repro.nn import build_vww
from repro.optimize import QoSLevel
from repro.pipeline import DAEDVFSPipeline

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_boards.json"

#: The heterogeneous mix exercised by the determinism gate: the paper
#: board plus both new calibrated targets.
MIX = ("nucleo-f767zi", "frdm-mcxn947", "nucleo-n657x0")

FLEET_SIZE = 12
SEED = 0
QOS = QoSLevel(name="30%", slack=0.30)


def run_het_fleet(model):
    """One pooled pass over the seeded heterogeneous fleet."""
    fleet = sample_fleet(FLEET_SIZE, seed=SEED, boards=list(MIX))
    scheduler = FleetScheduler(model, qos_level=QOS, max_workers=4)
    start = time.perf_counter()
    results = scheduler.run(fleet, pooled=True)
    wall = time.perf_counter() - start
    qos_s = next(r.optimized.qos_s for r in results if r.error is None)
    report = aggregate_fleet(model, qos_s, results)
    # Byte-level identity is the gate, not just the digest: serialize
    # the whole report the same way the CLI --json path does.
    blob = json.dumps(report.to_dict(), sort_keys=True)
    return wall, report, blob


def main():
    model = build_vww()
    stages = {}

    # Stage 1: every registered board plans the model end to end.
    planned = 0
    for name in board_names():
        pipeline = DAEDVFSPipeline(board=build_board(name))
        start = time.perf_counter()
        result = pipeline.optimize(model, qos_level=QOS)
        wall = time.perf_counter() - start
        planned += 1
        stages[f"optimize[{name}]"] = {
            "wall_s": wall,
            "energy_j": result.plan.predicted_energy_j,
            "qos_s": result.qos_s,
        }

    # Stage 2: heterogeneous-fleet determinism (the headline gate).
    wall_a, report_a, blob_a = run_het_fleet(model)
    wall_b, report_b, blob_b = run_het_fleet(model)
    hist = report_a.board_hist()
    stages["het_fleet[run_a]"] = {
        "wall_s": wall_a,
        "devices": FLEET_SIZE,
        "devices_per_s": FLEET_SIZE / wall_a,
    }
    stages["het_fleet[run_b]"] = {
        "wall_s": wall_b,
        "devices": FLEET_SIZE,
        "devices_per_s": FLEET_SIZE / wall_b,
    }

    # Stage 3: the cross-board DSE report, digest-matched across runs.
    start = time.perf_counter()
    cross_a = cross_board_report(model, qos_percent=30.0)
    cross_wall = time.perf_counter() - start
    cross_b = cross_board_report(model, qos_percent=30.0)
    stages["crossboard"] = {
        "wall_s": cross_wall,
        "winner": cross_a["winner"],
        "boards": len(cross_a["boards"]),
    }

    gates = {
        "boards_planned": gate_record(
            planned, len(MIX), comparator=">=", mix=list(MIX)
        ),
        "het_fleet_bytes_identical": gate_record(
            blob_a == blob_b,
            True,
            comparator="==",
            seed=SEED,
            devices=FLEET_SIZE,
            digest=report_a.digest(),
        ),
        "het_fleet_all_boards_present": gate_record(
            len(hist), len(MIX), comparator="==", board_hist=hist
        ),
        "crossboard_digest_match": gate_record(
            cross_a["digest"] == cross_b["digest"],
            True,
            comparator="==",
            winner=cross_a["winner"],
        ),
    }
    enforce_gates(gates)

    stages["_meta"] = {
        "model": "vww",
        "mix": list(MIX),
        "fleet_size": FLEET_SIZE,
        "seed": SEED,
        "boards": board_names(),
        "board_hist": hist,
        "het_fleet_digest": report_a.digest(),
        "crossboard_winner": cross_a["winner"],
        "crossboard_digest": cross_a["digest"],
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    for stage in sorted(s for s in stages if s != "_meta"):
        entry = stages[stage]
        print(f"{stage:28s} {entry['wall_s'] * 1e3:9.2f} ms")
    print(f"heterogeneous fleet digest: {report_a.digest()}")
    print(f"cross-board winner: {cross_a['winner']}")
    print_gates(gates)
    return stages


if __name__ == "__main__":
    main()
