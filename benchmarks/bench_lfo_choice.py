"""E16 (extension) -- how much the LFO frequency choice matters.

The paper fixes the Low Frequency Operation clock at the HSE's
maximum, 50 MHz, without ablating it.  This benchmark sweeps the LFO
across the HSE range and finds the whole-model energy essentially
flat (within ~0.2%): memory-bound segments are wait-state dominated,
so a slower LFO saves a little power at a little extra time and the
optimizer rebalances around either.  The paper's implicit choice is
therefore effectively free -- and the flatness itself validates the
premise that the memory phases are frequency-insensitive.
"""

import pytest

from repro import DAEDVFSPipeline
from repro.dse import DesignSpace, paper_design_space
from repro.clock import lfo_config
from repro.optimize import MODERATE
from repro.units import MHZ

from conftest import report


def run_experiment(pipeline, models):
    model = models["vww"]
    base_space = paper_design_space(pipeline.board.power_model)
    rows = []
    for lfo_mhz in (16, 25, 32, 40, 50):
        space = DesignSpace(
            granularities=base_space.granularities,
            hfo_configs=base_space.hfo_configs,
            lfo=lfo_config(lfo_mhz * MHZ),
        )
        variant = DAEDVFSPipeline(board=pipeline.board, space=space)
        row = variant.compare(model, MODERATE)
        rows.append((lfo_mhz, row))
    return rows


@pytest.mark.benchmark(group="lfo-choice")
def test_lfo_frequency_choice(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [f"{'LFO':>7s} {'ours':>9s} {'vs TE':>7s} {'vs CG':>7s}"]
    for lfo_mhz, row in rows:
        lines.append(
            f"{lfo_mhz:4d}MHz {row.ours.energy_j * 1e3:7.3f}mJ"
            f" {row.savings_vs_tinyengine:7.1%}"
            f" {row.savings_vs_clock_gated:7.1%}"
        )
    best_lfo = min(rows, key=lambda r: r[1].ours.energy_j)[0]
    spread = max(r.ours.energy_j for _, r in rows) / min(
        r.ours.energy_j for _, r in rows
    ) - 1.0
    lines.append(
        f"best LFO: {best_lfo} MHz; total spread across the sweep "
        f"{spread:.2%} (paper fixes 50 MHz -- effectively free)"
    )
    report("E16 / extension -- LFO frequency choice", lines)

    for lfo_mhz, row in rows:
        assert row.ours.met_qos
        assert row.ours.energy_j < row.tinyengine.energy_j
    # The paper's 50 MHz choice is within a hair of the sweep's best.
    e_50 = next(r.ours.energy_j for mhz, r in rows if mhz == 50)
    e_best = min(r.ours.energy_j for _, r in rows)
    assert e_50 <= e_best * 1.02
