"""E14 (extension) -- how the savings scale with model size.

Sweeps the MBV2 width multiplier and input resolution and measures the
energy savings at the moderate QoS.  Establishes that the headline
result is not an artifact of one operating point: bigger models give
the optimizer more compute to reshape (and amortize switching better),
smaller models shift the balance toward switch overhead.
"""

import pytest

from repro import DAEDVFSPipeline
from repro.nn import build_mbv2
from repro.optimize import MODERATE

from conftest import report


def run_experiment(pipeline):
    rows = []
    variants = [
        ("w0.20 r64", dict(width_mult=0.20, input_hw=64)),
        ("w0.35 r64", dict(width_mult=0.35, input_hw=64)),
        ("w0.35 r96", dict(width_mult=0.35, input_hw=96)),
        ("w0.50 r96", dict(width_mult=0.50, input_hw=96)),
        ("w0.50 r128", dict(width_mult=0.50, input_hw=128)),
    ]
    for name, kwargs in variants:
        model = build_mbv2(**kwargs)
        row = pipeline.compare(model, MODERATE)
        rows.append(
            (
                name,
                model.total_macs() / 1e6,
                row.tinyengine.latency_s,
                row.savings_vs_tinyengine,
                row.savings_vs_clock_gated,
                row.ours.met_qos,
            )
        )
    return rows


@pytest.mark.benchmark(group="scaling")
def test_scaling_with_model_size(benchmark, pipeline):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline,), rounds=1, iterations=1
    )
    lines = [
        f"{'variant':>11s} {'MMACs':>7s} {'T0':>8s} {'vs TE':>7s}"
        f" {'vs CG':>7s}",
    ]
    for name, mmacs, t0, vs_te, vs_cg, met in rows:
        lines.append(
            f"{name:>11s} {mmacs:7.1f} {t0 * 1e3:6.1f}ms {vs_te:7.1%}"
            f" {vs_cg:7.1%}"
        )
    report("E14 / extension -- savings vs model size", lines)

    for name, mmacs, t0, vs_te, vs_cg, met in rows:
        assert met, name
        # The qualitative result holds at every scale.
        assert vs_te > 0.10, name
        assert vs_cg > 0.0, name
    # Latency grows with model size (sanity of the sweep itself).
    latencies = [t0 for _, _, t0, *_ in rows]
    assert latencies == sorted(latencies)
