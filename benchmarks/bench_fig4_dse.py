"""E3/E4 -- Fig. 4: DAE x clocking impact on layer latency and power.

Left plot: latency/power of one depthwise and one pointwise MBV2 layer
across the HFO frequency grid (at a fixed granularity).  Right plot:
latency/power across the granularity grid (at the maximum frequency).
The paper reports a power drop of up to 54.2% versus the initial
(fused, max-frequency) execution.
"""

import pytest

from repro.dse.explorer import LayerCostModel
from repro.engine.cost import PAPER_GRANULARITIES, TraceBuilder
from repro.nn import LayerKind
from repro.units import to_mhz, to_us

from conftest import report

PAPER_MAX_POWER_DROP = 0.542


def pick_layer(model, kind):
    candidates = [n for n in model.dae_nodes() if n.layer.kind is kind]
    # A mid-network layer, as in the paper's per-layer example.
    return candidates[len(candidates) // 2]


def run_experiment(pipeline, model):
    board = pipeline.board
    tracer = TraceBuilder(board)
    pricer = LayerCostModel(board)
    lfo = pipeline.space.lfo
    hfo_max = max(pipeline.space.hfo_configs, key=lambda c: c.sysclk_hz)

    data = {}
    for kind in (LayerKind.DEPTHWISE_CONV, LayerKind.POINTWISE_CONV):
        node = pick_layer(model, kind)
        freq_rows = []
        for hfo in pipeline.space.hfo_configs:
            latency, energy = pricer.price(
                tracer.build(model, node, 8), hfo, lfo, assume_relock=False
            )
            freq_rows.append((hfo.sysclk_hz, latency, energy / latency))
        gran_rows = []
        for g in PAPER_GRANULARITIES:
            latency, energy = pricer.price(
                tracer.build(model, node, g), hfo_max, lfo,
                assume_relock=False,
            )
            gran_rows.append((g, latency, energy / latency))
        data[kind.value] = (node.layer.name, freq_rows, gran_rows)
    return data


@pytest.mark.benchmark(group="fig4")
def test_fig4_dae_and_clocking_impact(benchmark, pipeline, models):
    data = benchmark.pedantic(
        run_experiment, args=(pipeline, models["mbv2"]), rounds=1,
        iterations=1,
    )
    lines = []
    for kind, (name, freq_rows, gran_rows) in data.items():
        lines.append(f"layer {name} ({kind}):")
        lines.append("  frequency sweep at g=8:")
        for f_hz, latency, power in freq_rows:
            lines.append(
                f"    {to_mhz(f_hz):6.0f} MHz  latency {to_us(latency):9.1f} us"
                f"  power {power * 1e3:7.1f} mW"
            )
        lines.append("  granularity sweep at 216 MHz:")
        base_power = gran_rows[0][2]
        for g, latency, power in gran_rows:
            drop = 1.0 - power / base_power
            lines.append(
                f"    g={g:2d}  latency {to_us(latency):9.1f} us  "
                f"power {power * 1e3:7.1f} mW  (drop vs g=0: {drop:6.1%})"
            )
    drops = []
    for kind, (_, _, gran_rows) in data.items():
        base_power = gran_rows[0][2]
        drops.extend(1.0 - p / base_power for _, _, p in gran_rows[1:])
    lines.append(
        f"max power drop vs initial execution: {max(drops):.1%} "
        f"(paper: up to {PAPER_MAX_POWER_DROP:.1%})"
    )
    report("E3-E4 / Fig. 4 -- DAE and clocking impact per layer", lines)

    # Shapes: latency falls monotonically with frequency...
    for kind, (_, freq_rows, gran_rows) in data.items():
        latencies = [lat for _, lat, _ in sorted(freq_rows)]
        assert latencies == sorted(latencies, reverse=True)
        # ...power rises with frequency...
        powers = [p for _, _, p in sorted(freq_rows)]
        assert powers[-1] > powers[0]
        # ...and DAE granularity reduces average power vs fused.
        assert min(p for _, _, p in gran_rows[1:]) < gran_rows[0][2]
    assert max(drops) > 0.10
