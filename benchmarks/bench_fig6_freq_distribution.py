"""E6 -- Fig. 6: frequency/granularity distribution across layers.

The paper inspects the per-layer HFO frequencies the optimizer selects
for the 10% and 50% QoS budgets: tight budgets pull layers to the
216 MHz maximum (+18.6% of layers), relaxed budgets push granularities
to 16 (+22.3% of layers) and park many layers at the lowest
frequencies.
"""

import pytest

from repro.analysis import (
    frequency_histogram,
    granularity_histogram,
    share_at_frequency,
    share_at_granularity,
    share_at_or_below_frequency,
)
from repro.nn import LayerKind
from repro.optimize import RELAXED, TIGHT
from repro.units import MHZ

from conftest import report

PAPER_MORE_AT_216_UNDER_TIGHT = 0.186
PAPER_MORE_G16_UNDER_RELAXED = 0.223
PAPER_PW_AT_216 = 0.588
PAPER_DW_AT_216 = 0.214
PAPER_LOWEST_FREQ_SHARE = 0.45  # ~46.1% PW / 43.4% DW


def run_experiment(pipeline, models):
    plans = {}
    for name, model in models.items():
        for level in (TIGHT, RELAXED):
            plans[(name, level.name)] = pipeline.optimize(
                model, qos_level=level
            ).plan
    return plans


@pytest.mark.benchmark(group="fig6")
def test_fig6_frequency_distribution(benchmark, pipeline, models):
    plans = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = []
    for (name, qos), plan in plans.items():
        freqs = frequency_histogram(plan, models[name])
        grans = granularity_histogram(plan)
        lines.append(
            f"{name:>5s} @ {qos:7s}: "
            f"f[MHz]={dict(sorted(freqs.items()))}  "
            f"g={dict(sorted(grans.items()))}"
        )

    # Aggregate Fig. 6 statistics over the three models.
    def mean_over_models(fn):
        return sum(fn(name) for name in models) / len(models)

    tight_216 = mean_over_models(
        lambda n: share_at_frequency(
            plans[(n, "tight")], models[n], 216 * MHZ
        )
    )
    relaxed_216 = mean_over_models(
        lambda n: share_at_frequency(
            plans[(n, "relaxed")], models[n], 216 * MHZ
        )
    )
    tight_g16 = mean_over_models(
        lambda n: share_at_granularity(plans[(n, "tight")], 16)
    )
    relaxed_g16 = mean_over_models(
        lambda n: share_at_granularity(plans[(n, "relaxed")], 16)
    )
    relaxed_low = mean_over_models(
        lambda n: share_at_or_below_frequency(
            plans[(n, "relaxed")], models[n], 108 * MHZ
        )
    )
    pw_216 = share_at_frequency(
        plans[("mbv2", "tight")], models["mbv2"], 216 * MHZ,
        kinds=[LayerKind.POINTWISE_CONV],
    )
    dw_216 = share_at_frequency(
        plans[("mbv2", "tight")], models["mbv2"], 216 * MHZ,
        kinds=[LayerKind.DEPTHWISE_CONV],
    )
    lines.append("")
    lines.append(
        f"layers at 216 MHz, tight vs relaxed: {tight_216:.1%} vs "
        f"{relaxed_216:.1%} (+{tight_216 - relaxed_216:.1%}; paper: "
        f"+{PAPER_MORE_AT_216_UNDER_TIGHT:.1%})"
    )
    lines.append(
        f"layers at g=16, relaxed vs tight: {relaxed_g16:.1%} vs "
        f"{tight_g16:.1%} (+{relaxed_g16 - tight_g16:.1%}; paper: "
        f"+{PAPER_MORE_G16_UNDER_RELAXED:.1%})"
    )
    lines.append(
        f"layers at/below 108 MHz under relaxed: {relaxed_low:.1%} "
        f"(paper: ~{PAPER_LOWEST_FREQ_SHARE:.0%} at its two lowest "
        "frequencies)"
    )
    lines.append(
        f"MBV2 tight, share at 216 MHz: PW {pw_216:.1%} / DW {dw_216:.1%} "
        f"(paper: PW {PAPER_PW_AT_216:.1%} / DW {PAPER_DW_AT_216:.1%}; "
        "see EXPERIMENTS.md on the kind split)"
    )
    report("E6 / Fig. 6 -- frequency distribution across layers", lines)

    # Shape assertions.  Tight budgets pull layers to 216 MHz (Fig. 6's
    # first trend) and large granularities dominate every schedule.
    # The paper's "+22.3% g=16 under relaxed" holds for PD in our
    # substrate but not in aggregate: at the low frequencies relaxed
    # budgets unlock, DAE's mux overhead outweighs its benefit for the
    # smallest layers, which re-fuse instead (see EXPERIMENTS.md).
    assert tight_216 >= relaxed_216
    for (name, qos), plan in plans.items():
        decoupled = [
            lp.granularity
            for lp in plan.layer_plans.values()
            if lp.granularity > 0
        ]
        large = sum(1 for g in decoupled if g >= 12)
        assert large >= 0.5 * len(decoupled)
    assert relaxed_g16 > 0.2
