"""Performance harness for the fleet deployment service.

Plans the same sampled fleet twice per model -- serially on private
per-device pipelines (the PR-1 single-device cost, N times) and pooled
on the fleet-shared pricing caches -- and writes ``BENCH_fleet.json``
at the repo root with the schema::

    {mode[model]: {"wall_s": float, "devices": int,
                   "devices_per_s": float}}

plus a ``_meta`` block recording the per-model speedups, the headline
``fleet_speedup`` (pooled-shared vs. serial-unshared on the largest
model) and a ``gates`` entry with one uniform measured / threshold /
enforced / ``gate_reason`` record per acceptance gate (see
``_gating.py``).  Both modes produce bit-identical fleet reports --
the digest-match gates assert so before timing is trusted -- so the
speedup measures pure cache sharing, never a change of answer.

Run standalone (CI smoke does exactly this)::

    PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import json
import pathlib
import time

from _gating import enforce_gates, gate_record, print_gates
from repro.fleet import FleetScheduler, aggregate_fleet, sample_fleet
from repro.nn import build_mbv2, build_person_detection, build_vww
from repro.optimize import MODERATE

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: Devices per fleet: enough to amortize the first device's cold
#: exploration without making the serial baseline take minutes.
FLEET_SIZE = 24
SEED = 0

#: The largest bundled model; the headline speedup is measured on it.
LARGEST = "mbv2"

#: Pooled pricing-cache sharing must at least halve the serial wall
#: time on the largest model (cache reuse, not parallelism, so the
#: gate holds on any core count).
MIN_FLEET_SPEEDUP = 2.0


def build_models():
    return {
        "vww": build_vww(),
        "pd": build_person_detection(),
        "mbv2": build_mbv2(),
    }


def run_mode(model, fleet, share, pooled):
    scheduler = FleetScheduler(
        model, qos_level=MODERATE, share=share, max_workers=4
    )
    start = time.perf_counter()
    results = scheduler.run(fleet, pooled=pooled)
    wall = time.perf_counter() - start
    qos_s = next(
        (r.optimized.qos_s for r in results if r.error is None), 0.0
    )
    report = aggregate_fleet(model, qos_s, results)
    return wall, report


def main():
    stages = {}
    speedups = {}
    digests_match = {}
    for name, model in build_models().items():
        fleet = sample_fleet(FLEET_SIZE, seed=SEED)
        serial_wall, serial_report = run_mode(
            model, fleet, share=False, pooled=False
        )
        pooled_wall, pooled_report = run_mode(
            model, fleet, share=True, pooled=True
        )
        # Sharing must never move a bit of any device's plan or price.
        digests_match[name] = (
            serial_report.digest() == pooled_report.digest()
        )
        stages[f"serial[{name}]"] = {
            "wall_s": serial_wall,
            "devices": FLEET_SIZE,
            "devices_per_s": FLEET_SIZE / serial_wall,
        }
        stages[f"pooled[{name}]"] = {
            "wall_s": pooled_wall,
            "devices": FLEET_SIZE,
            "devices_per_s": FLEET_SIZE / pooled_wall,
        }
        speedups[name] = serial_wall / pooled_wall

    gates = {
        "fleet_speedup": gate_record(
            speedups[LARGEST], MIN_FLEET_SPEEDUP, largest_model=LARGEST
        ),
    }
    for name, matched in sorted(digests_match.items()):
        gates[f"digest_match[{name}]"] = gate_record(
            matched, True, comparator="=="
        )
    enforce_gates(gates)

    stages["_meta"] = {
        "models": sorted(speedups),
        "largest_model": LARGEST,
        "fleet_size": FLEET_SIZE,
        "seed": SEED,
        "speedups": speedups,
        "fleet_speedup": speedups[LARGEST],
        "min_fleet_speedup": MIN_FLEET_SPEEDUP,
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    for stage in sorted(s for s in stages if s != "_meta"):
        entry = stages[stage]
        print(
            f"{stage:16s} {entry['wall_s'] * 1e3:9.2f} ms  "
            f"{entry['devices_per_s']:7.1f} devices/s"
        )
    for name in sorted(speedups):
        print(f"fleet speedup on {name}: {speedups[name]:.2f}x")
    print_gates(gates)
    return stages


if __name__ == "__main__":
    main()
