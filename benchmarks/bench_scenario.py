"""Benchmark harness for the scenario lifecycle simulator (E24).

Runs the headline lifecycle: 24 simulated hours of diurnal traffic
with a midday Poisson burst at ``DEVICES`` devices (tick 900 s), the
clairvoyant oracle twinned on a stride of the fleet, and writes
``BENCH_scenario.json`` at the repo root with the schema::

    {"run[first]": {"wall_s": float, "devices": int, "epochs_run": int,
                    "epochs_per_s": float, "qos_met_fraction": float,
                    "replans": {...}, "oracle_gap": float,
                    "digest": str},
     "run[second]": {...}}

plus a ``_meta`` block whose ``gates`` entry records every acceptance
gate as a uniform measured / threshold / enforced / ``gate_reason``
record (see ``_gating.py``):

* **determinism** -- the scenario runs twice with the same seed and
  must produce byte-identical digested reports;
* **oracle gap** -- the governed fleet's true energy on the twinned
  devices must stay within ``MAX_ORACLE_GAP`` of the clairvoyant
  re-planner (which sees every drift before the window it lands in);
* **checkpoint/resume** -- a small scenario checkpointed at an event
  boundary and resumed must report a digest byte-identical to the
  uninterrupted run (the :mod:`repro.recovery` invariant);
* **monitor overhead** -- the health monitor (per-tick registry
  sampling + SLO evaluation) must cost under ``MONITOR_MAX_OVERHEAD``
  of wall time versus the same scenario with ``monitor=False``, and
  must not move a bit of the simulated fleet (equal fleet digests).

Run standalone (CI's scenario-smoke job runs a smaller preset)::

    PYTHONPATH=src python benchmarks/bench_scenario.py
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from _gating import enforce_gates, gate_record, print_gates
from repro.recovery import save_checkpoint
from repro.scenario import (
    AmbientCycle,
    CompositeArrivals,
    DAY_S,
    DiurnalArrivals,
    PoissonBurstArrivals,
    ScenarioConfig,
    ScenarioEngine,
    resume_scenario,
    run_scenario,
)

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scenario.json"

DEVICES = 2000
SEED = 0
TICK_S = 900.0

#: One clairvoyant twin per ORACLE_STRIDE governed devices.
ORACLE_STRIDE = 100

#: The governed fleet may spend at most 10% more true energy than the
#: clairvoyant oracle on the twinned devices.  The governor re-plans
#: *after* it observes drift; the oracle re-plans *before* the window
#: the drift lands in -- the gap prices that one-window lag.
MAX_ORACLE_GAP = 0.10

#: The health monitor must stay under 2% of scenario wall time.  The
#: measurement compares the best of the two monitored headline runs
#: against one monitor-off run, so a single noisy sample cannot fail
#: the gate by itself.
MONITOR_MAX_OVERHEAD = 0.02


def build_config() -> ScenarioConfig:
    """24 simulated hours of diurnal + midday-burst traffic."""
    burst_start = DAY_S * 0.5
    return ScenarioConfig(
        name="bench-diurnal-burst",
        devices=DEVICES,
        horizon_s=DAY_S,
        tick_s=TICK_S,
        seed=SEED,
        arrivals=CompositeArrivals(
            [
                DiurnalArrivals(
                    mean_per_hour=1.0, amplitude=0.8, seed=SEED + 1
                ),
                PoissonBurstArrivals(
                    base_per_hour=0.1,
                    bursts=(
                        (burst_start, burst_start + 1800.0, 8.0),
                    ),
                    seed=SEED + 2,
                ),
            ]
        ),
        ambient=AmbientCycle(amplitude_c=4.0),
        oracle_stride=ORACLE_STRIDE,
    )


#: Checkpoint/resume parity runs on a small fleet (the invariant is
#: boundary-exact, not scale-dependent) at this event boundary.
CHECKPOINT_DEVICES = 12
CHECKPOINT_EVENTS = 6


def checkpoint_config() -> ScenarioConfig:
    """A fresh config per run: stochastic arrival models carry their
    consumed RNG streams as instance state, so sharing one config
    object between runs being compared would diverge them."""
    return ScenarioConfig(
        name="bench-checkpoint",
        devices=CHECKPOINT_DEVICES,
        horizon_s=DAY_S / 6,
        tick_s=TICK_S,
        seed=SEED + 9,
        arrivals=DiurnalArrivals(
            mean_per_hour=1.2, amplitude=0.6, seed=SEED + 10
        ),
        ambient=AmbientCycle(amplitude_c=4.0),
    )


def run_checkpoint_parity() -> dict:
    """Checkpoint at an event boundary, resume, compare digests."""
    baseline = run_scenario(checkpoint_config())
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "scenario.ckpt")
        engine = ScenarioEngine(checkpoint_config())
        try:
            engine.start()
            while (
                engine.events_processed < CHECKPOINT_EVENTS
                and engine.step()
            ):
                pass
            save_checkpoint(engine.checkpoint(), path)
        finally:
            engine.close()
        resumed = resume_scenario(path)
    return {
        "devices": CHECKPOINT_DEVICES,
        "boundary_events": CHECKPOINT_EVENTS,
        "baseline_digest": baseline.digest(),
        "resumed_digest": resumed.digest(),
        "identical": resumed.digest() == baseline.digest(),
    }


def run_once(label: str, monitor: bool = True) -> dict:
    config = build_config()
    config.monitor = monitor
    start = time.perf_counter()
    report = run_scenario(config)
    wall = time.perf_counter() - start
    epochs = report.demand.get("epochs_run", 0)
    return {
        "label": label,
        "monitor": monitor,
        "wall_s": wall,
        "devices": DEVICES,
        "epochs_run": epochs,
        "epochs_per_s": epochs / wall if wall > 0 else 0.0,
        "qos_met_fraction": report.qos_met_fraction,
        "replans": dict(sorted(report.replans.items())),
        "oracle_gap": report.oracle_gap_fraction,
        "digest": report.digest(),
        "fleet_digest": report.fleet.digest(),
    }


def main():
    first = run_once("first")
    second = run_once("second")
    unmonitored = run_once("monitor-off", monitor=False)
    parity = run_checkpoint_parity()

    monitored_wall = min(first["wall_s"], second["wall_s"])
    monitor_overhead = (
        monitored_wall / unmonitored["wall_s"] - 1.0
        if unmonitored["wall_s"] > 0
        else 0.0
    )

    gates = {
        "deterministic_rerun": gate_record(
            first["digest"] == second["digest"], True, comparator="=="
        ),
        "oracle_gap": gate_record(
            first["oracle_gap"],
            MAX_ORACLE_GAP,
            comparator="<=",
            twinned_devices=DEVICES // ORACLE_STRIDE,
        ),
        "checkpoint_resume_identical": gate_record(
            parity["identical"],
            True,
            comparator="==",
            boundary_events=parity["boundary_events"],
        ),
        "monitor_overhead": gate_record(
            round(monitor_overhead, 4),
            MONITOR_MAX_OVERHEAD,
            comparator="<=",
            monitored_wall_s=monitored_wall,
            unmonitored_wall_s=unmonitored["wall_s"],
        ),
        "monitor_transparent": gate_record(
            first["fleet_digest"] == unmonitored["fleet_digest"],
            True,
            comparator="==",
        ),
    }
    enforce_gates(gates)

    stages = {
        "run[first]": first,
        "run[second]": second,
        "run[monitor-off]": unmonitored,
        "checkpoint[resume]": parity,
        "_meta": {
            "devices": DEVICES,
            "horizon_s": DAY_S,
            "tick_s": TICK_S,
            "seed": SEED,
            "oracle_stride": ORACLE_STRIDE,
            "max_oracle_gap": MAX_ORACLE_GAP,
            "monitor_max_overhead": MONITOR_MAX_OVERHEAD,
            "digest": first["digest"],
            "gates": gates,
        },
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    print(
        f"checkpoint[resume] boundary {parity['boundary_events']}: "
        f"{'identical' if parity['identical'] else 'DIVERGED'}"
    )
    print(
        f"monitor overhead: {monitor_overhead:+.2%} "
        f"(gate <= {MONITOR_MAX_OVERHEAD:.0%})"
    )
    for stage in ("run[first]", "run[second]", "run[monitor-off]"):
        entry = stages[stage]
        print(
            f"{stage:12s} {entry['wall_s']:7.2f} s  "
            f"{entry['epochs_run']} epochs "
            f"({entry['epochs_per_s']:7.1f}/s)  "
            f"QoS {entry['qos_met_fraction']:6.1%}  "
            f"oracle gap {entry['oracle_gap']:+.2%}"
        )
    print_gates(gates)
    return stages


if __name__ == "__main__":
    main()
