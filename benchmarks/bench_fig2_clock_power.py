"""E1 -- Fig. 2: clock frequency and power per (HSE, PLLM, PLLN) tuple.

The paper sweeps HSE/PLLM/PLLN (PLLP tuples included here to exhibit
the iso-frequency gap) with the addition-loop microbenchmark and shows
(i) the same SYSCLK arises from different tuples and (ii) the tuple
choice moves board power by up to ~50%.
"""

import pytest

from repro.analysis import run_addition_loop
from repro.clock import (
    enumerate_configs,
    iso_frequency_groups,
    pll_config,
)
from repro.errors import ClockConfigError
from repro.units import MHZ, to_mhz

from conftest import report

PAPER_GAP_AT_100MHZ = 0.50  # "leads to 50% power gap"


def sweep_configs():
    """The Fig. 2 exploration: HSE x PLLM x PLLN at PLLP in {2, 4}."""
    configs = enumerate_configs(
        hse_choices=[16 * MHZ, 25 * MHZ, 50 * MHZ],
        pllm_choices=[8, 12, 16, 25, 50],
        plln_choices=[75, 100, 150, 168, 200, 216, 336, 432],
        pllp=2,
        include_hse_direct=False,
    )
    for hse in (16 * MHZ, 25 * MHZ, 50 * MHZ):
        for pllm in (8, 12, 16, 25, 50):
            for plln in (200, 300, 400, 432):
                try:
                    configs.append(pll_config(hse, pllm, plln, pllp=4))
                except ClockConfigError:
                    continue
    return configs


def run_experiment(pipeline):
    board = pipeline.board
    results = [
        run_addition_loop(board, config) for config in sweep_configs()
    ]
    groups = iso_frequency_groups([r.config for r in results])
    by_config = {id(r.config): r for r in results}
    gap_rows = []
    for freq, members in sorted(groups.items()):
        if len(members) < 2:
            continue
        powers = [by_config[id(c)].power_w for c in members]
        gap = max(powers) / min(powers) - 1.0
        gap_rows.append((freq, len(members), min(powers), max(powers), gap))
    return results, gap_rows


@pytest.mark.benchmark(group="fig2")
def test_fig2_clock_power(benchmark, pipeline):
    results, gap_rows = benchmark.pedantic(
        run_experiment, args=(pipeline,), rounds=1, iterations=1
    )
    lines = [
        f"{'config':>52s} {'SYSCLK':>8s} {'power':>9s}",
    ]
    for r in sorted(results, key=lambda r: (r.config.sysclk_hz, r.power_w)):
        lines.append(
            f"{r.config.describe():>52s} "
            f"{to_mhz(r.config.sysclk_hz):6.0f}MHz "
            f"{r.power_w * 1e3:7.1f}mW"
        )
    lines.append("")
    lines.append("iso-frequency power gaps (paper: up to ~50% at 100 MHz):")
    for freq, n, p_min, p_max, gap in gap_rows:
        lines.append(
            f"  {to_mhz(freq):6.0f} MHz: {n:2d} tuples, "
            f"{p_min * 1e3:6.1f}..{p_max * 1e3:6.1f} mW  gap {gap:5.1%}"
        )
    best_gap = max(gap for *_, gap in gap_rows)
    lines.append(
        f"measured max iso-frequency gap: {best_gap:.1%} "
        f"(paper: {PAPER_GAP_AT_100MHZ:.0%})"
    )
    report("E1 / Fig. 2 -- clock frequency and power per tuple", lines)

    # Shape assertions: iso-frequency tuples exist and the gap is large.
    assert any(n >= 2 for _, n, *_ in gap_rows)
    assert best_gap > 0.20
    # Power grows monotonically with frequency among min-power tuples.
    min_power_by_freq = sorted(
        (freq, p_min) for freq, _, p_min, _, _ in gap_rows
    )
    powers = [p for _, p in min_power_by_freq]
    assert powers == sorted(powers)
