"""E9 (extension) -- schedule harmonization: fewer PLL re-locks.

The paper's MCKP treats layers independently and the runtime pays a
~200 us re-lock whenever consecutive layers change HFO frequency.  The
harmonization pass (repro.optimize.harmonize) locally aligns adjacent
layers' frequencies when that reduces *deployed* window energy.  This
benchmark quantifies the re-locks removed and the energy effect across
the model/QoS grid.
"""

import pytest

from repro.optimize import PAPER_QOS_LEVELS

from conftest import report


def run_experiment(pipeline, models):
    rows = []
    for name, model in models.items():
        for level in PAPER_QOS_LEVELS:
            result = pipeline.optimize(model, qos_level=level)
            outcome = pipeline.harmonize(model, result)
            rows.append((name, level.name, outcome))
    return rows


@pytest.mark.benchmark(group="ablation-harmonize")
def test_ablation_harmonization(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'QoS':>9s} {'relocks':>8s} {'moves':>6s}"
        f" {'E before':>9s} {'E after':>9s} {'gain':>7s}",
    ]
    for name, qos, outcome in rows:
        lines.append(
            f"{name:>6s} {qos:>9s} "
            f"{outcome.initial_report.relock_count:3d}->"
            f"{outcome.report.relock_count:<3d} "
            f"{outcome.moves_applied:6d}"
            f" {outcome.initial_report.energy_j * 1e3:7.3f}mJ"
            f" {outcome.report.energy_j * 1e3:7.3f}mJ"
            f" {outcome.energy_improvement:7.2%}"
        )
    total_removed = sum(o.relocks_removed for *_, o in rows)
    lines.append(
        f"total re-locks removed across the grid: {total_removed}"
    )
    report("E9 / extension -- harmonization pass (re-lock reduction)", lines)

    for name, qos, outcome in rows:
        # Harmonization never hurts: energy monotone, QoS kept.
        assert outcome.report.energy_j <= outcome.initial_report.energy_j
        assert outcome.report.met_qos
        assert outcome.relocks_removed >= 0
