"""E15 (extension) -- optimization from measured profiles.

The paper's Step 2 runs on *hardware measurements* (on-board timers +
INA219 samples), not analytic numbers.  This benchmark feeds the
pipeline with profiles collected through the simulated measurement
chain -- quantized, noisy, drift-afflicted -- and quantifies how much
schedule quality the measurement pipeline costs versus a noise-free
oracle.  The answer (fractions of a percent) is why the paper's
methodology works on real boards.
"""

import pytest

from repro import DAEDVFSPipeline
from repro.dse import paper_design_space
from repro.optimize import MODERATE
from repro.power import INA219Config
from repro.profiling import LayerMonitor, LayerProfiler

from conftest import report


def run_experiment(pipeline, models):
    rows = []
    for name, model in models.items():
        monitor = LayerMonitor(
            pipeline.board,
            sensor_config=INA219Config(
                sample_period_s=2e-6,
                noise_std_w=5e-4,
                drift_amplitude_w=2e-3,
                drift_period_s=30.0,
            ),
        )
        profiler = LayerProfiler(
            pipeline.board,
            paper_design_space(pipeline.board.power_model),
            monitor=monitor,
        )
        measured = DAEDVFSPipeline(board=pipeline.board, profiler=profiler)
        e_analytic = pipeline.deploy(
            model, pipeline.optimize(model, qos_level=MODERATE).plan
        )
        e_measured = measured.deploy(
            model, measured.optimize(model, qos_level=MODERATE).plan
        )
        rows.append((name, e_analytic, e_measured))
    return rows


@pytest.mark.benchmark(group="measured-dse")
def test_measured_profile_optimization(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'analytic':>9s} {'measured':>9s} {'gap':>7s}"
        f" {'QoS met':>8s}",
    ]
    for name, analytic, measured in rows:
        gap = measured.energy_j / analytic.energy_j - 1.0
        lines.append(
            f"{name:>6s} {analytic.energy_j * 1e3:7.3f}mJ"
            f" {measured.energy_j * 1e3:7.3f}mJ {gap:7.2%}"
            f" {str(measured.met_qos):>8s}"
        )
    lines.append(
        "profiles measured through the timer + INA219 chain with noise "
        "and thermal drift; the knapsack is robust to the error"
    )
    report("E15 / extension -- optimization from measured profiles", lines)

    for name, analytic, measured in rows:
        assert measured.met_qos
        # Measurement error must not derail the optimization.
        assert measured.energy_j <= analytic.energy_j * 1.05
