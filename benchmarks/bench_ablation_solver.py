"""E7 (ablation) -- exact MCKP DP vs. the greedy baseline solver.

The paper solves its Step-3 optimization with a pseudo-polynomial DP;
this ablation quantifies what exactness buys over the classical
incremental-efficiency greedy.  Both solvers run on the *identical*
knapsack instance (same Pareto classes, same budget) so the gap is
purely solver quality; deployed energies are reported alongside for
context (those additionally contain sequence-dependent switch costs
neither solver models).
"""

import time

import pytest

from repro.dse.pareto import pareto_front
from repro.optimize import (
    MCKPItem,
    PAPER_QOS_LEVELS,
    solve_mckp_dp,
    solve_mckp_greedy,
)

from conftest import report


def build_instance(pipeline, model, level):
    clouds = pipeline.explorer.explore_model(model)
    classes = []
    for node_id in sorted(clouds):
        front = pareto_front(
            clouds[node_id], key=lambda p: (p.latency_s, p.energy_j)
        )
        classes.append(
            [MCKPItem(weight=p.latency_s, value=p.energy_j, payload=p)
             for p in front]
        )
    baseline = pipeline.baseline_latency_s(model)
    budget = level.budget_s(baseline) - pipeline.fixed_overhead_s(model)
    return classes, budget


def run_experiment(pipeline, models):
    rows = []
    for name, model in models.items():
        for level in PAPER_QOS_LEVELS:
            classes, budget = build_instance(pipeline, model, level)
            t0 = time.perf_counter()
            dp = solve_mckp_dp(classes, budget)
            t_dp = time.perf_counter() - t0
            t0 = time.perf_counter()
            greedy = solve_mckp_greedy(classes, budget)
            t_greedy = time.perf_counter() - t0
            rows.append(
                (
                    name,
                    level.name,
                    dp.total_value,
                    greedy.total_value,
                    dp.total_weight,
                    greedy.total_weight,
                    budget,
                    t_dp,
                    t_greedy,
                )
            )
    return rows


@pytest.mark.benchmark(group="ablation-solver")
def test_ablation_dp_vs_greedy(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'QoS':>9s} {'E(dp)':>9s} {'E(greedy)':>10s}"
        f" {'gap':>7s} {'t(dp)':>8s} {'t(greedy)':>9s}",
    ]
    gaps = []
    for name, qos, e_dp, e_greedy, w_dp, w_greedy, budget, t_dp, t_g in rows:
        gap = e_greedy / e_dp - 1.0
        gaps.append(gap)
        lines.append(
            f"{name:>6s} {qos:>9s} {e_dp * 1e3:7.3f}mJ"
            f" {e_greedy * 1e3:8.3f}mJ {gap:7.2%}"
            f" {t_dp * 1e3:6.1f}ms {t_g * 1e3:7.1f}ms"
        )
    lines.append(
        f"greedy suboptimality on the MCKP objective: "
        f"mean {sum(gaps) / len(gaps):.2%}, worst {max(gaps):.2%}"
    )
    report("E7 / ablation -- MCKP DP vs greedy solver", lines)

    for name, qos, e_dp, e_greedy, w_dp, w_greedy, budget, *_ in rows:
        # Both respect the budget; the exact DP never loses on the
        # shared objective (up to its conservative grid rounding).
        assert w_dp <= budget + 1e-9
        assert w_greedy <= budget + 1e-9
        assert e_dp <= e_greedy * 1.001
