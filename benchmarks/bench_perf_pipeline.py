"""Performance harness for the DSE -> MCKP -> deploy hot path.

Times the three pipeline stages (explore / solve / deploy) for the
paper's evaluation models and writes ``BENCH_perf_pipeline.json`` at
the repo root with the schema::

    {stage: {"wall_s": float, "calls": int}}

plus a ``_meta`` block.  To quantify the win of batched pricing + the
trace cache, the harness also runs an in-file *baseline* explorer that
replicates the pre-optimization behavior -- scalar ``price()`` per
(g, HFO) candidate on an uncached ``TraceBuilder`` -- so the speedup
is recorded against the same board/space/model in the same file
(``_meta.explore_speedup``).

Run standalone (CI smoke does exactly this)::

    PYTHONPATH=src python benchmarks/bench_perf_pipeline.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import DAEDVFSPipeline, build_mbv2, build_person_detection, build_vww
from repro.dse.explorer import LayerCostModel, SolutionPoint
from repro.engine.cost import TraceBuilder
from repro.optimize import MODERATE

OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_perf_pipeline.json"

#: The largest bundled model; the headline speedup is measured on it.
LARGEST = "mbv2"


def build_models():
    return {
        "vww": build_vww(),
        "pd": build_person_detection(),
        "mbv2": build_mbv2(),
    }


def baseline_explore(board, space, model):
    """The pre-optimization Step-2 sweep: scalar pricing, no caches.

    Mirrors the original ``DSEExplorer.explore_model`` loop: one trace
    build per (layer, g) on a cache-disabled builder, then one scalar
    ``price()`` call per HFO candidate.
    """
    tracer = TraceBuilder(board, cache=False)
    pricer = LayerCostModel(board)
    clouds = {}
    for node in model.conv_nodes():
        granularities = (
            space.granularities if node.layer.supports_dae else (0,)
        )
        points = []
        for g in granularities:
            trace = tracer.build(model, node, g)
            for hfo in space.hfo_configs:
                latency, energy = pricer.price(
                    trace, hfo, space.lfo, assume_relock=False
                )
                points.append(
                    SolutionPoint(
                        node_id=node.node_id,
                        layer_name=node.layer.name,
                        layer_kind=node.layer.kind,
                        granularity=trace.granularity,
                        hfo=hfo,
                        latency_s=latency,
                        energy_j=energy,
                    )
                )
        clouds[node.node_id] = points
    return clouds


def disabled_span_cost_s(iterations: int = 200_000) -> float:
    """Per-call cost of :func:`repro.obs.tracing.span` while disabled.

    The disabled path is one global read + returning a shared no-op
    context manager; microbenching it directly gives a far less noisy
    overhead estimate than A/B-timing two full pipeline runs.
    """
    from repro.obs.tracing import get_tracer, span

    assert get_tracer() is None, "tracer must be off for this bench"
    start = time.perf_counter()
    for _ in range(iterations):
        with span("bench.overhead"):
            pass
    return (time.perf_counter() - start) / iterations


def count_pipeline_spans(model) -> int:
    """Spans one cold optimize + deploy emits (the instrumented set)."""
    from repro.obs.tracing import Tracer, install, uninstall

    tracer = install(Tracer(deterministic=True))
    try:
        fresh = DAEDVFSPipeline()
        result = fresh.optimize(model, qos_level=MODERATE)
        fresh.deploy(model, result.plan)
    finally:
        uninstall()
    return len(tracer.spans()) + tracer.dropped


def timed(stages, stage, fn):
    start = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - start
    entry = stages.setdefault(stage, {"wall_s": 0.0, "calls": 0})
    entry["wall_s"] += wall
    entry["calls"] += 1
    return result


def main():
    stages = {}
    models = build_models()
    pipeline = DAEDVFSPipeline()
    for name, model in models.items():
        # Pre-change Step 2: scalar pricing, throwaway traces.
        baseline = timed(
            stages,
            f"explore_baseline[{name}]",
            lambda: baseline_explore(pipeline.board, pipeline.space, model),
        )
        # New Step 2, cold: batched pricing filling the trace cache.
        clouds = timed(
            stages,
            f"explore[{name}]",
            lambda: pipeline._explore_clouds(model),
        )
        assert set(clouds) == set(baseline)
        # Warm repeat: served from the per-model cloud cache.
        timed(
            stages,
            f"explore_cached[{name}]",
            lambda: pipeline._explore_clouds(model),
        )
        # Step 3 (solve + refinement) on the warmed caches, then deploy.
        result = timed(
            stages,
            f"solve[{name}]",
            lambda: pipeline.optimize(model, qos_level=MODERATE),
        )
        timed(
            stages,
            f"deploy[{name}]",
            lambda: pipeline.deploy(model, result.plan),
        )

    cold = stages[f"explore[{LARGEST}]"]["wall_s"]
    base = stages[f"explore_baseline[{LARGEST}]"]["wall_s"]
    # Disabled-tracer overhead on the instrumented hot path: spans one
    # cold optimize+deploy would emit, times the microbenched cost of a
    # disabled span() call, over the same stages' measured wall time.
    span_cost = disabled_span_cost_s()
    span_calls = count_pipeline_spans(models[LARGEST])
    instrumented_wall = sum(
        stages[f"{stage}[{LARGEST}]"]["wall_s"]
        for stage in ("explore", "solve", "deploy")
    )
    overhead = (
        span_calls * span_cost / instrumented_wall
        if instrumented_wall > 0
        else 0.0
    )
    stages["_meta"] = {
        "models": sorted(models),
        "largest_model": LARGEST,
        "explore_speedup": base / cold if cold > 0 else float("inf"),
        "trace_cache_hits": pipeline.tracer.cache_hits,
        "trace_cache_misses": pipeline.tracer.cache_misses,
        "disabled_span_cost_s": span_cost,
        "span_calls": span_calls,
        "disabled_tracer_overhead": overhead,
    }
    OUTPUT.write_text(json.dumps(stages, indent=2, sort_keys=True) + "\n")

    print(f"wrote {OUTPUT}")
    for stage in sorted(s for s in stages if s != "_meta"):
        entry = stages[stage]
        print(f"{stage:28s} {entry['wall_s'] * 1e3:9.2f} ms  x{entry['calls']}")
    print(
        f"explore speedup on {LARGEST}: "
        f"{stages['_meta']['explore_speedup']:.1f}x"
    )
    print(
        f"disabled tracer overhead on {LARGEST}: "
        f"{overhead:.4%} ({span_calls} spans x "
        f"{span_cost * 1e9:.0f} ns / {instrumented_wall:.3f} s)"
    )
    return stages


if __name__ == "__main__":
    main()
