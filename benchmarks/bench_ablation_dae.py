"""E8 (ablation) -- what DAE adds on top of plain per-layer DVFS.

Three configurations of our own system, all at the same QoS:

* **DVFS-only**: the design space restricted to g = 0 (per-layer
  frequency selection without decoupling);
* **DAE-only**: g free but the HFO pinned to 216 MHz;
* **DAE + DVFS**: the full proposed methodology.

This isolates the contribution of the decoupled access-execute
transformation, which the paper motivates as the key enabler.
"""

import pytest

from repro import DAEDVFSPipeline
from repro.dse.space import DesignSpace
from repro.optimize import MODERATE

from conftest import report


def run_experiment(base_pipeline, models):
    board = base_pipeline.board
    space = base_pipeline.space
    max_hfo = max(space.hfo_configs, key=lambda c: c.sysclk_hz)
    variants = {
        "DVFS-only (g=0)": DAEDVFSPipeline(
            board=board,
            space=DesignSpace(
                granularities=(0,),
                hfo_configs=space.hfo_configs,
                lfo=space.lfo,
            ),
        ),
        "DAE-only (216 MHz)": DAEDVFSPipeline(
            board=board,
            space=DesignSpace(
                granularities=space.granularities,
                hfo_configs=(max_hfo,),
                lfo=space.lfo,
            ),
        ),
        "DAE + DVFS (full)": DAEDVFSPipeline(board=board, space=space),
    }
    rows = {}
    for model_name, model in models.items():
        qos = MODERATE.budget_s(base_pipeline.baseline_latency_s(model))
        cg = base_pipeline._clock_gated.run(model, qos_s=qos)
        for variant_name, variant in variants.items():
            result = variant.optimize(model, qos_s=qos)
            run = variant.deploy(model, result.plan)
            rows[(model_name, variant_name)] = (
                run.energy_j,
                cg.energy_j,
                run.met_qos,
            )
    return rows


@pytest.mark.benchmark(group="ablation-dae")
def test_ablation_dae_contribution(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'variant':>20s} {'energy':>9s} {'vs gated TE':>12s}",
    ]
    for (model_name, variant), (energy, cg_energy, met) in rows.items():
        lines.append(
            f"{model_name:>6s} {variant:>20s} {energy * 1e3:7.2f}mJ "
            f"{1 - energy / cg_energy:11.1%}  met={met}"
        )
    report("E8 / ablation -- DAE contribution over plain DVFS", lines)

    for model_name in models:
        full = rows[(model_name, "DAE + DVFS (full)")][0]
        dvfs_only = rows[(model_name, "DVFS-only (g=0)")][0]
        dae_only = rows[(model_name, "DAE-only (216 MHz)")][0]
        # The full methodology dominates both ablations.
        assert full <= dvfs_only * 1.005
        assert full <= dae_only * 1.005
        for _, _, met in rows.values():
            assert met
