"""E11 (extension) -- a stronger baseline: TinyEngine + STOP-mode sleep.

The paper's best baseline (clock gating) still burns a small idle
floor.  A deployment engineer would instead drop into STOP-mode deep
sleep between inferences.  Against that near-zero idle cost, beating
the baseline requires the *inference itself* to be cheaper -- which
isolates the genuine DAE+DVFS contribution from race-to-idle
accounting.  We run both our schedule and the baseline under the STOP
policy so the comparison stays apples-to-apples.
"""

import pytest

from repro.engine import IdlePolicy, TinyEngineDeepSleep
from repro.optimize import PAPER_QOS_LEVELS

from conftest import report


def run_experiment(pipeline, models):
    rows = []
    deep_sleep = TinyEngineDeepSleep(pipeline.board)
    for name, model in models.items():
        for level in PAPER_QOS_LEVELS:
            result = pipeline.optimize(model, qos_level=level)
            ours = pipeline.runtime.run(
                model,
                result.plan,
                qos_s=result.qos_s,
                idle_policy=IdlePolicy.STOP,
                initial_config=result.plan.initial_config(),
            )
            baseline = deep_sleep.run(model, qos_s=result.qos_s)
            rows.append((name, level.name, ours, baseline))
    return rows


@pytest.mark.benchmark(group="deep-sleep")
def test_deep_sleep_baseline(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'QoS':>9s} {'TE+stop':>9s} {'ours+stop':>10s}"
        f" {'savings':>8s}",
    ]
    savings = []
    for name, qos, ours, baseline in rows:
        saving = 1.0 - ours.energy_j / baseline.energy_j
        savings.append(saving)
        lines.append(
            f"{name:>6s} {qos:>9s} {baseline.energy_j * 1e3:7.3f}mJ"
            f" {ours.energy_j * 1e3:8.3f}mJ {saving:8.1%}"
        )
    lines.append(
        "note: with a near-free idle window the remaining savings are "
        "pure inference-energy reduction from DAE + DVFS"
    )
    lines.append(
        f"savings range: {min(savings):.1%} .. {max(savings):.1%}"
    )
    report("E11 / extension -- STOP-mode deep-sleep baseline", lines)

    for name, qos, ours, baseline in rows:
        # Even against the strongest idle policy, DAE+DVFS inference
        # is cheaper at every grid point.
        assert ours.energy_j < baseline.energy_j
        assert ours.met_qos
