"""E17 (extension) -- portability across the STM32 family.

The paper frames its contribution as "CNN deployment on the STM32
family".  This benchmark re-runs the headline comparison on a sibling
part -- the STM32F746ZG, same Cortex-M7 and 216 MHz ceiling but only a
4 KB L1 data cache -- and checks (a) the methodology still wins and
(b) the optimizer adapts to the hardware: the smaller cache pushes
selected DAE granularities down (big buffers would thrash).
"""

import pytest

from repro import DAEDVFSPipeline
from repro.analysis import granularity_histogram
from repro.mcu import make_nucleo_f746zg
from repro.optimize import MODERATE, TIGHT

from conftest import report


def mean_decoupled_g(plan):
    histogram = granularity_histogram(plan)
    decoupled = {g: n for g, n in histogram.items() if g > 0}
    total = sum(decoupled.values())
    if not total:
        return 0.0
    return sum(g * n for g, n in decoupled.items()) / total


def run_experiment(pipeline, models):
    f746 = DAEDVFSPipeline(board=make_nucleo_f746zg())
    rows = []
    for name, model in models.items():
        for level in (TIGHT, MODERATE):
            f767_result = pipeline.optimize(model, qos_level=level)
            f746_result = f746.optimize(model, qos_level=level)
            f767_row = pipeline.compare(model, level)
            f746_row = f746.compare(model, level)
            rows.append(
                (
                    name,
                    level.name,
                    f767_row,
                    f746_row,
                    mean_decoupled_g(f767_result.plan),
                    mean_decoupled_g(f746_result.plan),
                )
            )
    return rows


@pytest.mark.benchmark(group="portability")
def test_portability_to_f746(benchmark, pipeline, models):
    rows = benchmark.pedantic(
        run_experiment, args=(pipeline, models), rounds=1, iterations=1
    )
    lines = [
        f"{'model':>6s} {'QoS':>9s} {'F767 vsTE':>10s} {'F746 vsTE':>10s}"
        f" {'g(F767)':>8s} {'g(F746)':>8s}",
    ]
    for name, qos, f767, f746, g767, g746 in rows:
        lines.append(
            f"{name:>6s} {qos:>9s} {f767.savings_vs_tinyengine:10.1%}"
            f" {f746.savings_vs_tinyengine:10.1%}"
            f" {g767:8.1f} {g746:8.1f}"
        )
    lines.append(
        "the 4 KB cache of the F746 pulls mean decoupling granularity "
        "down while the savings persist"
    )
    report("E17 / extension -- portability across the STM32 family", lines)

    for name, qos, f767, f746, g767, g746 in rows:
        assert f746.ours.met_qos
        assert f746.ours.energy_j < f746.tinyengine.energy_j
        assert f746.ours.energy_j < f746.clock_gated.energy_j
    # The smaller cache lowers granularities on average across the grid.
    mean_767 = sum(g for *_, g, _ in rows) / len(rows)
    mean_746 = sum(g for *_, g in rows) / len(rows)
    assert mean_746 <= mean_767 + 0.5
