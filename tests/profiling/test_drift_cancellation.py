"""Property-style check: baseline-differential cancels thermal drift.

The paper (Sec. IV) compensates INA219 thermal drift by measuring the
baseline model under the same drift process and subtracting the bias.
These tests inject a *linear* drift (``slope * t``, a worst case the
sinusoidal default never reaches within one trace) and assert, across
seeds and slopes, that :func:`repro.power.sensor.differential_energy`
cancels it while the absolute estimate stays biased.
"""

import pytest

from repro.power import EnergyCategory, EnergyInterval, INA219Config
from repro.power.sensor import INA219Sensor, differential_energy


class LinearDriftSensor(INA219Sensor):
    """INA219 whose drift is a linear thermal ramp ``slope * t``."""

    def __init__(self, slope_w_per_s: float, **kwargs):
        super().__init__(**kwargs)
        self.slope_w_per_s = slope_w_per_s

    def _drift(self, time_s: float) -> float:
        return self.slope_w_per_s * time_s


def trace(durations_powers):
    return [
        EnergyInterval(d, p, EnergyCategory.COMPUTE)
        for d, p in durations_powers
    ]


#: The workload under test and its baseline (same duration, so the
#: drift processes align sample-for-sample, as on the real harness).
TEST_TRACE = trace([(0.020, 0.250), (0.020, 0.450), (0.010, 0.150)])
BASE_TRACE = trace([(0.050, 0.300)])
TRUE_TEST_J = sum(i.duration_s * i.power_w for i in TEST_TRACE)
TRUE_BASE_J = sum(i.duration_s * i.power_w for i in BASE_TRACE)


def make_sensor(slope, seed):
    return LinearDriftSensor(
        slope,
        config=INA219Config(sample_period_s=1e-3, noise_std_w=0.0),
        seed=seed,
    )


# Negative slopes must keep readings above the sensor's zero clamp
# (power registers saturate at 0), hence the small magnitude.
@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1219])
@pytest.mark.parametrize("slope", [0.5, 2.0, -0.004])
def test_differential_cancels_linear_drift(seed, slope):
    sensor = make_sensor(slope, seed)
    start = 30.0  # deep into the ramp: a large absolute offset
    absolute = sensor.estimate_energy(
        sensor.measure(TEST_TRACE, start_time_s=start)
    )
    sensor.reset()
    corrected = differential_energy(
        sensor, TEST_TRACE, BASE_TRACE, TRUE_BASE_J, start_time_s=start
    )
    drift_j = abs(slope) * start * 0.050  # injected bias magnitude
    # The absolute estimate eats essentially the whole injected bias...
    assert abs(absolute - TRUE_TEST_J) > 0.5 * drift_j
    # ...the differential estimate cancels all but quantization dust.
    assert abs(corrected - TRUE_TEST_J) < 0.02 * drift_j
    assert corrected == pytest.approx(TRUE_TEST_J, rel=0.02)


@pytest.mark.parametrize("seed", [3, 11, 2026])
def test_differential_matches_absolute_without_drift(seed):
    sensor = make_sensor(0.0, seed)
    samples = sensor.measure(TEST_TRACE)
    absolute = sensor.estimate_energy(samples)
    sensor.reset()
    corrected = differential_energy(
        sensor, TEST_TRACE, BASE_TRACE, TRUE_BASE_J
    )
    # With no drift the correction term is only quantization residue.
    assert corrected == pytest.approx(absolute, rel=0.02)


def test_noise_does_not_break_cancellation():
    sensor = LinearDriftSensor(
        1.0,
        config=INA219Config(sample_period_s=1e-3, noise_std_w=2e-3),
        seed=9,
    )
    corrected = differential_energy(
        sensor, TEST_TRACE, BASE_TRACE, TRUE_BASE_J, start_time_s=60.0
    )
    assert corrected == pytest.approx(TRUE_TEST_J, rel=0.05)
