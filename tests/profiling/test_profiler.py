"""Layer profiler: measured records track the analytic DSE prices."""

import pytest

from repro.dse import DSEExplorer, paper_design_space, pareto_front
from repro.power import INA219Config
from repro.profiling import LayerMonitor, LayerProfiler


@pytest.fixture
def space(board):
    return paper_design_space(board.power_model)


@pytest.fixture
def profiler(board, space):
    monitor = LayerMonitor(
        board,
        sensor_config=INA219Config(sample_period_s=2e-6, noise_std_w=5e-4),
    )
    return LayerProfiler(board, space, monitor=monitor)


class TestProfileCandidate:
    def test_measurement_tracks_analytic_price(
        self, board, space, profiler, tiny_model
    ):
        explorer = DSEExplorer(board, space)
        node = tiny_model.dae_nodes()[0]
        analytic = {
            (p.granularity, p.hfo.sysclk_hz): p
            for p in explorer.explore_layer(
                tiny_model, node, assume_relock=True
            )
        }
        for g in (0, 8):
            hfo = space.hfo_configs[-1]
            record = profiler.profile_candidate(tiny_model, node, g, hfo)
            truth = analytic[(g, hfo.sysclk_hz)]
            assert record.latency_s == pytest.approx(
                truth.latency_s, rel=0.02
            )
            assert record.energy_j == pytest.approx(truth.energy_j, rel=0.10)

    def test_profile_layer_covers_space(self, profiler, tiny_model):
        node = tiny_model.dae_nodes()[0]
        records = profiler.profile_layer(tiny_model, node)
        assert len(records) == profiler.space.size_per_dae_layer

    def test_non_dae_layer_profiles_frequencies_only(
        self, profiler, tiny_model
    ):
        node = tiny_model.conv_nodes()[0]
        assert not node.layer.supports_dae
        records = profiler.profile_layer(tiny_model, node)
        assert len(records) == len(profiler.space.hfo_configs)

    def test_measured_pareto_front_sensible(self, profiler, tiny_model):
        """Even measured (noisy, quantized) records produce a usable
        Pareto front for the MCKP stage."""
        node = tiny_model.dae_nodes()[-1]
        records = profiler.profile_layer(tiny_model, node)
        front = pareto_front(
            records, key=lambda r: (r.latency_s, r.energy_j)
        )
        assert 0 < len(front) <= len(records)
        # Fastest front point should use a high frequency.
        fastest = min(front, key=lambda r: r.latency_s)
        assert fastest.hfo.sysclk_hz >= 150e6
