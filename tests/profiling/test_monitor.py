"""Layer monitor: measured vs. true latency/energy."""

import pytest

from repro.errors import ProfilingError
from repro.power import EnergyCategory, EnergyInterval, INA219Config
from repro.profiling import LayerMonitor


def trace(durations_powers):
    return [
        EnergyInterval(d, p, EnergyCategory.COMPUTE)
        for d, p in durations_powers
    ]


class TestMeasurement:
    def test_flat_trace_accurate(self, board):
        monitor = LayerMonitor(
            board, sensor_config=INA219Config(
                sample_period_s=10e-6, noise_std_w=0.0
            )
        )
        m = monitor.measure_trace(trace([(0.010, 0.300)]))
        assert m.latency_s == pytest.approx(0.010, rel=1e-3)
        assert m.energy_j == pytest.approx(0.003, rel=0.01)
        assert m.latency_error < 1e-3
        assert m.energy_error < 0.01

    def test_multi_phase_trace(self, board):
        monitor = LayerMonitor(
            board, sensor_config=INA219Config(
                sample_period_s=5e-6, noise_std_w=0.0
            )
        )
        m = monitor.measure_trace(
            trace([(0.002, 0.050), (0.004, 0.400), (0.001, 0.100)])
        )
        true_energy = 0.002 * 0.05 + 0.004 * 0.4 + 0.001 * 0.1
        assert m.true_energy_j == pytest.approx(true_energy)
        assert m.energy_error < 0.05

    def test_timer_quantization_reflected(self, board):
        monitor = LayerMonitor(board)
        # Timer clocked at 50 MHz (board default LFO): 20 ns ticks.
        m = monitor.measure_trace(
            trace([(1.00001e-3, 0.2)]), timer_clock_hz=50e6
        )
        assert m.latency_s <= 1.00001e-3
        assert m.latency_s >= 1.00001e-3 - 2 / 50e6

    def test_noise_bounded_for_many_samples(self, board):
        monitor = LayerMonitor(
            board, sensor_config=INA219Config(
                sample_period_s=5e-6, noise_std_w=2e-3
            )
        )
        m = monitor.measure_trace(trace([(0.050, 0.300)]))
        assert m.energy_error < 0.02

    def test_sample_count_reported(self, board):
        monitor = LayerMonitor(
            board, sensor_config=INA219Config(sample_period_s=1e-3)
        )
        m = monitor.measure_trace(trace([(0.010, 0.2)]))
        assert m.samples == 10

    def test_empty_trace_rejected(self, board):
        with pytest.raises(ProfilingError):
            LayerMonitor(board).measure_trace([])

    def test_zero_error_properties_on_degenerate_truth(self, board):
        monitor = LayerMonitor(board)
        m = monitor.measure_trace(trace([(1e-9, 0.0)]))
        assert m.energy_error == 0.0
