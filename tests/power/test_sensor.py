"""INA219 sensor model: sampling, noise, drift compensation."""

import pytest

from repro.errors import PowerModelError
from repro.power import (
    EnergyCategory,
    EnergyInterval,
    INA219Config,
    INA219Sensor,
    differential_energy,
)


def flat_trace(duration_s, power_w):
    return [EnergyInterval(duration_s, power_w, EnergyCategory.COMPUTE)]


def stepped_trace():
    return [
        EnergyInterval(0.010, 0.100, EnergyCategory.MEMORY),
        EnergyInterval(0.020, 0.400, EnergyCategory.COMPUTE),
        EnergyInterval(0.010, 0.050, EnergyCategory.IDLE),
    ]


class TestSampling:
    def test_sample_count_matches_duration(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        samples = sensor.measure(flat_trace(0.050, 0.3))
        assert len(samples) == 50

    def test_flat_trace_measured_accurately(self):
        sensor = INA219Sensor(
            INA219Config(sample_period_s=1e-3, noise_std_w=0.0)
        )
        samples = sensor.measure(flat_trace(0.100, 0.300))
        energy = sensor.estimate_energy(samples)
        assert energy == pytest.approx(0.03, rel=0.01)

    def test_stepped_trace_energy_close_to_truth(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-4))
        trace = stepped_trace()
        true_energy = sum(i.energy_j for i in trace)
        energy = sensor.estimate_energy(sensor.measure(trace))
        assert energy == pytest.approx(true_energy, rel=0.05)

    def test_quantization_to_power_lsb(self):
        sensor = INA219Sensor(
            INA219Config(sample_period_s=1e-3, noise_std_w=0.0, power_lsb_w=0.01)
        )
        samples = sensor.measure(flat_trace(0.01, 0.123))
        for sample in samples:
            ratio = sample.power_w / 0.01
            assert ratio == pytest.approx(round(ratio))

    def test_noise_is_reproducible_after_reset(self):
        sensor = INA219Sensor(INA219Config(noise_std_w=5e-3))
        first = sensor.measure(flat_trace(0.05, 0.3))
        sensor.reset()
        second = sensor.measure(flat_trace(0.05, 0.3))
        assert [s.power_w for s in first] == [s.power_w for s in second]

    def test_average_power_estimate(self):
        sensor = INA219Sensor(INA219Config(noise_std_w=0.0))
        samples = sensor.measure(flat_trace(0.05, 0.25))
        assert sensor.estimate_average_power(samples) == pytest.approx(
            0.25, rel=0.01
        )

    def test_empty_samples_average_zero(self):
        sensor = INA219Sensor()
        assert sensor.estimate_average_power([]) == 0.0


class TestTailCoverage:
    """Regression: non-period-aligned traces must not lose their tail.

    The original ``measure`` truncated the sample count
    (``int(total / period)``), dropping up to one full conversion
    period of trace -- a 1.9 ms trace at a 1 ms period yielded one
    sample and under-reported energy by ~47%.
    """

    def test_non_aligned_trace_gets_tail_sample(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        samples = sensor.measure(flat_trace(1.9e-3, 0.3))
        assert len(samples) == 2
        assert samples[0].duration_s == pytest.approx(1e-3)
        assert samples[1].duration_s == pytest.approx(0.9e-3)

    def test_non_aligned_trace_energy_accurate(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        trace = flat_trace(1.9e-3, 0.3)
        energy = sensor.estimate_energy(sensor.measure(trace))
        assert energy == pytest.approx(1.9e-3 * 0.3, rel=1e-6)

    def test_clamped_sample_not_charged_full_period(self):
        # A 1.1-period trace: the 0.1-period tail sample must weigh
        # 0.1 periods in the estimate, not a full period.
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        samples = sensor.measure(flat_trace(1.1e-3, 0.5))
        energy = sensor.estimate_energy(samples)
        assert energy == pytest.approx(1.1e-3 * 0.5, rel=1e-6)
        assert energy < 2 * 1e-3 * 0.5  # full-period charging would hit this

    def test_covered_duration_matches_trace(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        samples = sensor.measure(stepped_trace())
        total = sum(i.duration_s for i in stepped_trace())
        assert sensor.covered_duration_s(samples) == pytest.approx(total)

    def test_aligned_trace_sample_count_unchanged(self):
        # Exact period multiples must not grow a phantom sample out of
        # float rounding (0.05 / 1e-3 > 50 in binary floats).
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        samples = sensor.measure(flat_trace(0.050, 0.3))
        assert len(samples) == 50
        assert all(s.duration_s == pytest.approx(1e-3) for s in samples)


class TestDriftCompensation:
    def drifty_sensor(self):
        return INA219Sensor(
            INA219Config(
                sample_period_s=1e-3,
                noise_std_w=0.0,
                drift_amplitude_w=0.050,
                drift_period_s=1.0,
            )
        )

    def test_drift_biases_absolute_measurement(self):
        sensor = self.drifty_sensor()
        # Sample near the drift peak (t ~ 0.25 s into the sine).
        samples = sensor.measure(flat_trace(0.050, 0.300), start_time_s=0.22)
        energy = sensor.estimate_energy(samples)
        true_energy = 0.050 * 0.300
        assert abs(energy - true_energy) / true_energy > 0.05

    def test_differential_measurement_cancels_drift(self):
        # The paper's Sec. IV methodology: compare against the baseline
        # at the corresponding timestamp.
        sensor = self.drifty_sensor()
        test_trace = flat_trace(0.050, 0.300)
        baseline_trace = flat_trace(0.050, 0.400)
        baseline_energy = 0.050 * 0.400
        compensated = differential_energy(
            sensor,
            test_trace,
            baseline_trace,
            baseline_energy,
            start_time_s=0.22,
        )
        true_energy = 0.050 * 0.300
        assert compensated == pytest.approx(true_energy, rel=0.02)


class TestSeededStreams:
    """Per-instance seeding: fleet devices must not share noise."""

    NOISY = INA219Config(sample_period_s=1e-3, noise_std_w=5e-3)

    def test_distinct_seeds_draw_distinct_noise(self):
        a = INA219Sensor(self.NOISY, seed=1)
        b = INA219Sensor(self.NOISY, seed=2)
        trace = flat_trace(0.05, 0.3)
        assert [s.power_w for s in a.measure(trace)] != [
            s.power_w for s in b.measure(trace)
        ]

    def test_same_seed_same_stream(self):
        trace = flat_trace(0.05, 0.3)
        first = INA219Sensor(self.NOISY, seed=7).measure(trace)
        second = INA219Sensor(self.NOISY, seed=7).measure(trace)
        assert [s.power_w for s in first] == [s.power_w for s in second]

    def test_explicit_seed_reset_preserves_stream(self):
        sensor = INA219Sensor(self.NOISY, seed=11)
        trace = flat_trace(0.05, 0.3)
        first = sensor.measure(trace)
        sensor.reset()
        second = sensor.measure(trace)
        assert [s.power_w for s in first] == [s.power_w for s in second]

    def test_seed_sequence_accepted(self):
        import numpy as np

        root = np.random.SeedSequence(0)
        children = root.spawn(2)
        trace = flat_trace(0.05, 0.3)
        a = INA219Sensor(self.NOISY, seed=children[0]).measure(trace)
        b = INA219Sensor(self.NOISY, seed=children[1]).measure(trace)
        assert [s.power_w for s in a] != [s.power_w for s in b]


class TestConfigValidation:
    def test_nonpositive_period_rejected(self):
        with pytest.raises(PowerModelError):
            INA219Config(sample_period_s=0.0)

    def test_nonpositive_lsb_rejected(self):
        with pytest.raises(PowerModelError):
            INA219Config(power_lsb_w=0.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(PowerModelError):
            INA219Config(noise_std_w=-1e-3)


class TestFaultInjection:
    QUIET = INA219Config(sample_period_s=1e-3, noise_std_w=0.0)

    @staticmethod
    def clock_with(*events):
        from repro.faults import FaultPlan

        return FaultPlan(scheduled=tuple(events)).clock_for(0)

    def test_nack_raises_sensor_read_error(self):
        from repro.errors import SensorReadError
        from repro.faults import FaultKind

        clock = self.clock_with((FaultKind.SENSOR_NACK, 0))
        sensor = INA219Sensor(self.QUIET, fault_clock=clock)
        with pytest.raises(SensorReadError, match="NACK"):
            sensor.measure(flat_trace(0.010, 0.3))
        # The next transaction goes through.
        assert sensor.measure(flat_trace(0.010, 0.3))

    def test_dropout_leaves_gaps_without_shifting_noise(self):
        from repro.faults import FaultKind

        noisy = INA219Config(sample_period_s=1e-3, noise_std_w=1e-3)
        trace = flat_trace(0.010, 0.3)
        clean = INA219Sensor(noisy).measure(trace)
        clock = self.clock_with(
            (FaultKind.SENSOR_DROPOUT, 2), (FaultKind.SENSOR_DROPOUT, 7)
        )
        faulted = INA219Sensor(noisy, fault_clock=clock).measure(trace)
        assert len(faulted) == len(clean) - 2
        # Fault decisions draw after the noise, so surviving samples
        # are bit-identical to the fault-free train.
        survivors = [s for k, s in enumerate(clean) if k not in (2, 7)]
        assert [s.power_w for s in faulted] == [s.power_w for s in survivors]

    def test_dropout_reduces_covered_duration(self):
        from repro.faults import FaultKind

        clock = self.clock_with((FaultKind.SENSOR_DROPOUT, 0))
        sensor = INA219Sensor(self.QUIET, fault_clock=clock)
        samples = sensor.measure(flat_trace(0.010, 0.3))
        assert sensor.covered_duration_s(samples) == pytest.approx(0.009)

    def test_stuck_register_latches_first_value(self):
        from repro.faults import FaultKind

        clock = self.clock_with((FaultKind.SENSOR_STUCK, 0))
        sensor = INA219Sensor(self.QUIET, fault_clock=clock)
        samples = sensor.measure(stepped_trace())
        assert len({s.power_w for s in samples}) == 1
        assert samples[0].power_w == pytest.approx(0.100, abs=1e-3)

    def test_stuck_clears_on_next_measure(self):
        from repro.faults import FaultKind

        clock = self.clock_with((FaultKind.SENSOR_STUCK, 0))
        sensor = INA219Sensor(self.QUIET, fault_clock=clock)
        sensor.measure(stepped_trace())
        fresh = sensor.measure(stepped_trace())
        assert len({s.power_w for s in fresh}) > 1

    def test_zero_rate_clock_is_transparent(self):
        from repro.faults import FaultPlan

        trace = stepped_trace()
        clean = INA219Sensor(self.QUIET).measure(trace)
        hardened = INA219Sensor(
            self.QUIET, fault_clock=FaultPlan().clock_for(0)
        ).measure(trace)
        assert [s.power_w for s in clean] == [s.power_w for s in hardened]
