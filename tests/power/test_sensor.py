"""INA219 sensor model: sampling, noise, drift compensation."""

import pytest

from repro.errors import PowerModelError
from repro.power import (
    EnergyCategory,
    EnergyInterval,
    INA219Config,
    INA219Sensor,
    differential_energy,
)


def flat_trace(duration_s, power_w):
    return [EnergyInterval(duration_s, power_w, EnergyCategory.COMPUTE)]


def stepped_trace():
    return [
        EnergyInterval(0.010, 0.100, EnergyCategory.MEMORY),
        EnergyInterval(0.020, 0.400, EnergyCategory.COMPUTE),
        EnergyInterval(0.010, 0.050, EnergyCategory.IDLE),
    ]


class TestSampling:
    def test_sample_count_matches_duration(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-3, noise_std_w=0))
        samples = sensor.measure(flat_trace(0.050, 0.3))
        assert len(samples) == 50

    def test_flat_trace_measured_accurately(self):
        sensor = INA219Sensor(
            INA219Config(sample_period_s=1e-3, noise_std_w=0.0)
        )
        samples = sensor.measure(flat_trace(0.100, 0.300))
        energy = sensor.estimate_energy(samples)
        assert energy == pytest.approx(0.03, rel=0.01)

    def test_stepped_trace_energy_close_to_truth(self):
        sensor = INA219Sensor(INA219Config(sample_period_s=1e-4))
        trace = stepped_trace()
        true_energy = sum(i.energy_j for i in trace)
        energy = sensor.estimate_energy(sensor.measure(trace))
        assert energy == pytest.approx(true_energy, rel=0.05)

    def test_quantization_to_power_lsb(self):
        sensor = INA219Sensor(
            INA219Config(sample_period_s=1e-3, noise_std_w=0.0, power_lsb_w=0.01)
        )
        samples = sensor.measure(flat_trace(0.01, 0.123))
        for sample in samples:
            ratio = sample.power_w / 0.01
            assert ratio == pytest.approx(round(ratio))

    def test_noise_is_reproducible_after_reset(self):
        sensor = INA219Sensor(INA219Config(noise_std_w=5e-3))
        first = sensor.measure(flat_trace(0.05, 0.3))
        sensor.reset()
        second = sensor.measure(flat_trace(0.05, 0.3))
        assert [s.power_w for s in first] == [s.power_w for s in second]

    def test_average_power_estimate(self):
        sensor = INA219Sensor(INA219Config(noise_std_w=0.0))
        samples = sensor.measure(flat_trace(0.05, 0.25))
        assert sensor.estimate_average_power(samples) == pytest.approx(
            0.25, rel=0.01
        )

    def test_empty_samples_average_zero(self):
        sensor = INA219Sensor()
        assert sensor.estimate_average_power([]) == 0.0


class TestDriftCompensation:
    def drifty_sensor(self):
        return INA219Sensor(
            INA219Config(
                sample_period_s=1e-3,
                noise_std_w=0.0,
                drift_amplitude_w=0.050,
                drift_period_s=1.0,
            )
        )

    def test_drift_biases_absolute_measurement(self):
        sensor = self.drifty_sensor()
        # Sample near the drift peak (t ~ 0.25 s into the sine).
        samples = sensor.measure(flat_trace(0.050, 0.300), start_time_s=0.22)
        energy = sensor.estimate_energy(samples)
        true_energy = 0.050 * 0.300
        assert abs(energy - true_energy) / true_energy > 0.05

    def test_differential_measurement_cancels_drift(self):
        # The paper's Sec. IV methodology: compare against the baseline
        # at the corresponding timestamp.
        sensor = self.drifty_sensor()
        test_trace = flat_trace(0.050, 0.300)
        baseline_trace = flat_trace(0.050, 0.400)
        baseline_energy = 0.050 * 0.400
        compensated = differential_energy(
            sensor,
            test_trace,
            baseline_trace,
            baseline_energy,
            start_time_s=0.22,
        )
        true_energy = 0.050 * 0.300
        assert compensated == pytest.approx(true_energy, rel=0.02)


class TestConfigValidation:
    def test_nonpositive_period_rejected(self):
        with pytest.raises(PowerModelError):
            INA219Config(sample_period_s=0.0)

    def test_nonpositive_lsb_rejected(self):
        with pytest.raises(PowerModelError):
            INA219Config(power_lsb_w=0.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(PowerModelError):
            INA219Config(noise_std_w=-1e-3)
