"""Energy accounting: ledgers, categories, merging, invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.power import (
    EnergyAccount,
    EnergyCategory,
    EnergyInterval,
    merge_accounts,
)


class TestEnergyInterval:
    def test_energy_is_duration_times_power(self):
        interval = EnergyInterval(0.5, 0.4, EnergyCategory.COMPUTE)
        assert interval.energy_j == pytest.approx(0.2)

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError):
            EnergyInterval(-0.1, 0.4, EnergyCategory.COMPUTE)

    def test_negative_power_rejected(self):
        with pytest.raises(TraceError):
            EnergyInterval(0.1, -0.4, EnergyCategory.COMPUTE)


class TestEnergyAccount:
    def make_account(self):
        account = EnergyAccount()
        account.add(1.0, 0.1, EnergyCategory.COMPUTE, "layer_a")
        account.add(0.5, 0.2, EnergyCategory.MEMORY, "layer_a")
        account.add(2.0, 0.05, EnergyCategory.IDLE, "idle")
        return account

    def test_totals(self):
        account = self.make_account()
        assert account.total_time_s == pytest.approx(3.5)
        assert account.total_energy_j == pytest.approx(0.1 + 0.1 + 0.1)

    def test_average_power(self):
        account = self.make_account()
        assert account.average_power_w == pytest.approx(0.3 / 3.5)

    def test_average_power_empty(self):
        assert EnergyAccount().average_power_w == 0.0

    def test_zero_duration_dropped(self):
        account = EnergyAccount()
        account.add(0.0, 1.0, EnergyCategory.COMPUTE)
        assert account.intervals == []

    def test_energy_by_category(self):
        breakdown = self.make_account().energy_by_category()
        assert breakdown[EnergyCategory.COMPUTE] == pytest.approx(0.1)
        assert breakdown[EnergyCategory.MEMORY] == pytest.approx(0.1)
        assert breakdown[EnergyCategory.IDLE] == pytest.approx(0.1)
        assert EnergyCategory.SWITCH not in breakdown

    def test_time_by_category(self):
        breakdown = self.make_account().time_by_category()
        assert breakdown[EnergyCategory.IDLE] == pytest.approx(2.0)

    def test_energy_by_label(self):
        breakdown = self.make_account().energy_by_label()
        assert breakdown["layer_a"] == pytest.approx(0.2)
        assert breakdown["idle"] == pytest.approx(0.1)

    def test_extend_preserves_order(self):
        a = self.make_account()
        b = EnergyAccount()
        b.add(1.0, 1.0, EnergyCategory.SWITCH)
        a.extend(b)
        assert a.intervals[-1].category is EnergyCategory.SWITCH

    def test_merge_accounts_leaves_inputs_untouched(self):
        a = self.make_account()
        b = self.make_account()
        merged = merge_accounts([a, b])
        assert len(merged.intervals) == 6
        assert len(a.intervals) == 3
        assert merged.total_energy_j == pytest.approx(2 * a.total_energy_j)

    def test_as_power_trace_is_a_copy(self):
        account = self.make_account()
        trace = account.as_power_trace()
        trace.clear()
        assert len(account.intervals) == 3


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.0, max_value=5.0),
        ),
        max_size=50,
    )
)
def test_account_totals_additive(pairs):
    """Property: totals equal the sum of interval contributions."""
    account = EnergyAccount()
    for duration, power in pairs:
        account.add(duration, power, EnergyCategory.OTHER)
    expected_time = sum(d for d, _ in pairs)
    expected_energy = sum(d * p for d, p in pairs)
    assert account.total_time_s == pytest.approx(expected_time)
    assert account.total_energy_j == pytest.approx(expected_energy)
