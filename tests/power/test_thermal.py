"""Thermal model: RC dynamics, leakage feedback, steady state."""

import math

import pytest

from repro.errors import PowerModelError
from repro.power import (
    EnergyCategory,
    EnergyInterval,
    ThermalModelParams,
    steady_state_temperature,
    sustained_energy_correction,
    thermal_replay,
)


def flat(duration_s, power_w):
    return [EnergyInterval(duration_s, power_w, EnergyCategory.COMPUTE)]


class TestParams:
    def test_time_constant(self):
        params = ThermalModelParams(r_th_c_per_w=40, c_th_j_per_c=0.15)
        assert params.time_constant_s == pytest.approx(6.0)

    def test_leakage_exponential(self):
        params = ThermalModelParams(t_slope_c=35.0, leakage_ref_w=0.008)
        assert params.leakage_at(25.0) == pytest.approx(0.008)
        assert params.leakage_at(60.0) == pytest.approx(
            0.008 * math.e, rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(PowerModelError):
            ThermalModelParams(r_th_c_per_w=0)
        with pytest.raises(PowerModelError):
            ThermalModelParams(t_slope_c=-1)
        with pytest.raises(PowerModelError):
            ThermalModelParams(leakage_ref_w=-0.1)


class TestTemperatureStep:
    """Explicit-Euler stepping (the governor's epoch integrator)."""

    def test_heats_toward_steady_state(self):
        params = ThermalModelParams()
        t = params.t_ambient_c
        for _ in range(600):
            t = params.temperature_step(t, 0.4, 0.1)
        assert t == pytest.approx(
            steady_state_temperature(0.4, ThermalModelParams(leakage_ref_w=0.0)),
            abs=0.5,
        )

    def test_cools_toward_ambient_without_power(self):
        params = ThermalModelParams()
        t = 60.0
        for _ in range(400):
            t = params.temperature_step(t, 0.0, 0.1)
        assert t == pytest.approx(params.t_ambient_c, abs=0.5)

    def test_zero_dt_is_identity(self):
        params = ThermalModelParams()
        assert params.temperature_step(37.0, 0.5, 0.0) == 37.0

    def test_step_matches_rc_rate(self):
        params = ThermalModelParams(r_th_c_per_w=40.0, c_th_j_per_c=0.15)
        t0 = params.t_ambient_c
        dt = 1e-3
        t1 = params.temperature_step(t0, 0.3, dt)
        # At ambient the conduction term vanishes: dT = P * dt / C.
        assert t1 - t0 == pytest.approx(0.3 * dt / 0.15, rel=1e-9)

    def test_negative_dt_rejected(self):
        with pytest.raises(PowerModelError):
            ThermalModelParams().temperature_step(25.0, 0.1, -1.0)

    def test_drift_ramp_grows_leakage(self):
        # The governor's drift source end to end: sustained load warms
        # the die, and leakage_at() along the trajectory is strictly
        # non-decreasing.
        params = ThermalModelParams(leakage_ref_w=0.008)
        t = params.t_ambient_c
        leaks = []
        for _ in range(100):
            t = params.temperature_step(t, 0.4, 0.2)
            leaks.append(params.leakage_at(t))
        assert all(b >= a for a, b in zip(leaks, leaks[1:]))
        assert leaks[-1] > params.leakage_ref_w * 1.2


class TestReplay:
    def test_short_trace_barely_heats(self):
        result = thermal_replay(flat(0.010, 0.4))
        assert result.peak_temperature_c < 26.0
        assert result.energy_j == pytest.approx(
            result.baseline_energy_j, rel=0.01
        )

    def test_sustained_trace_approaches_steady_state(self):
        params = ThermalModelParams()
        power = 0.4
        result = thermal_replay(
            flat(params.time_constant_s * 6, power), params,
            max_step_s=5e-3,
        )
        t_ss = steady_state_temperature(power, params)
        assert result.final_temperature_c == pytest.approx(t_ss, abs=0.5)

    def test_temperature_never_exceeds_steady_state(self):
        params = ThermalModelParams()
        result = thermal_replay(flat(10.0, 0.3), params, max_step_s=5e-3)
        t_ss = steady_state_temperature(0.3, params)
        assert result.peak_temperature_c <= t_ss + 1e-6

    def test_feedback_increases_energy_when_hot(self):
        params = ThermalModelParams()
        result = thermal_replay(flat(30.0, 0.5), params, max_step_s=10e-3)
        assert result.energy_j > result.baseline_energy_j
        assert result.leakage_correction > 0

    def test_cooling_between_bursts(self):
        params = ThermalModelParams()
        trace = (
            flat(2.0, 0.5)
            + flat(6.0, 0.02)
            + flat(0.001, 0.5)
        )
        result = thermal_replay(trace, params, max_step_s=5e-3)
        # After a long cool-down, the final temp is near the idle SS.
        idle_ss = steady_state_temperature(0.02, params)
        assert result.temperatures_c[-2] < result.peak_temperature_c
        assert abs(result.final_temperature_c - idle_ss) < 5.0

    def test_bad_step_rejected(self):
        with pytest.raises(PowerModelError):
            thermal_replay(flat(1.0, 0.1), max_step_s=0)


class TestSteadyState:
    def test_matches_closed_form_without_feedback(self):
        params = ThermalModelParams(leakage_ref_w=0.0)
        t = steady_state_temperature(0.5, params)
        assert t == pytest.approx(25.0 + 0.5 * 40.0)

    def test_feedback_raises_steady_state(self):
        no_leak = ThermalModelParams(leakage_ref_w=0.0)
        leaky = ThermalModelParams(leakage_ref_w=0.008)
        assert steady_state_temperature(0.4, leaky) > (
            steady_state_temperature(0.4, no_leak)
        )

    def test_runaway_detected(self):
        # Absurd parameters: huge R_th and steep leakage slope.
        params = ThermalModelParams(
            r_th_c_per_w=500.0, t_slope_c=5.0, leakage_ref_w=0.05
        )
        with pytest.raises(PowerModelError, match="runaway"):
            steady_state_temperature(1.0, params)

    def test_correction_monotone_in_power(self):
        params = ThermalModelParams()
        low = sustained_energy_correction(0.1, params)
        high = sustained_energy_correction(0.5, params)
        assert 0 <= low < high

    def test_zero_power_correction(self):
        assert sustained_energy_correction(0.0) == 0.0
