"""Board power model: structure, orderings, voltage scaling."""

import pytest

from repro.clock import hfo_grid, lfo_config, pll_config
from repro.clock.configs import ClockConfig, SysclkSource
from repro.errors import PowerModelError
from repro.power import BoardPowerModel, PowerModelParams, PowerState
from repro.units import MHZ


@pytest.fixture
def pm():
    return BoardPowerModel()


class TestPowerStructure:
    def test_power_increases_with_frequency_along_grid(self, pm):
        grid = sorted(hfo_grid(), key=lambda c: c.sysclk_hz)
        powers = [pm.active_power(c) for c in grid]
        for lower, higher in zip(powers, powers[1:]):
            assert higher >= lower - 1e-12

    def test_iso_frequency_power_gap(self, pm):
        # Fig. 2: same SYSCLK, different VCO -> large power gap.
        low_vco = pll_config(50 * MHZ, 25, 100, pllp=2)   # VCO 200 MHz
        high_vco = pll_config(50 * MHZ, 25, 200, pllp=4)  # VCO 400 MHz
        assert low_vco.sysclk_hz == pytest.approx(high_vco.sysclk_hz)
        gap = pm.active_power(high_vco) / pm.active_power(low_vco)
        assert gap > 1.15

    def test_hse_direct_cheaper_than_iso_frequency_pll(self, pm):
        # LFO rationale: 50 MHz from the HSE beats 50 MHz via the PLL.
        hse50 = lfo_config()
        pll50 = pll_config(50 * MHZ, 50, 100, pllp=2)
        assert pll50.sysclk_hz == pytest.approx(hse50.sysclk_hz)
        assert pm.active_power(hse50) < pm.active_power(pll50)

    def test_hsi_more_expensive_than_hse(self, pm):
        # Sec. II-A: the HSI yields higher power than the HSE.
        hsi = ClockConfig(source=SysclkSource.HSI)
        hse16 = ClockConfig(source=SysclkSource.HSE, hse_hz=16 * MHZ)
        assert hsi.sysclk_hz == pytest.approx(hse16.sysclk_hz)
        assert pm.active_power(hsi) > pm.active_power(hse16)

    def test_state_ordering(self, pm, hfo_216):
        compute = pm.power(hfo_216, PowerState.ACTIVE_COMPUTE)
        memory = pm.power(hfo_216, PowerState.ACTIVE_MEMORY)
        idle = pm.power(hfo_216, PowerState.IDLE)
        gated = pm.power(hfo_216, PowerState.IDLE_GATED)
        assert compute > memory > idle > gated

    def test_gated_power_ignores_configuration(self, pm, hfo_216):
        assert pm.power(hfo_216, PowerState.IDLE_GATED) == pytest.approx(
            pm.power(lfo_config(), PowerState.IDLE_GATED)
        )

    def test_gated_is_much_cheaper_than_hot_idle(self, pm, hfo_216):
        # The gap that makes the clock-gating baseline competitive.
        assert pm.idle_power(hfo_216) > 4 * pm.gated_power()

    def test_plausible_magnitudes(self, pm, hfo_216):
        # Whole-board power at full tilt should be hundreds of mW.
        active = pm.active_power(hfo_216)
        assert 0.2 < active < 1.0
        assert 0.03 < pm.active_power(lfo_config()) < 0.2


class TestVoltageScaling:
    def test_voltage_steps_ascend(self):
        params = PowerModelParams()
        freqs = [50e6, 100e6, 150e6, 170e6, 216e6]
        volts = [params.core_voltage(f) for f in freqs]
        assert volts == sorted(volts)

    def test_energy_per_cycle_u_shape(self, pm):
        # The DVFS sweet spot: energy/cycle is not monotone in f.
        grid = sorted(hfo_grid(), key=lambda c: c.sysclk_hz)
        epc = [pm.active_power(c) / c.sysclk_hz for c in grid]
        top = epc[-1]
        assert min(epc) < 0.95 * top  # somewhere cheaper than 216 MHz
        # and the very lowest frequency is not the cheapest either
        assert epc[0] > min(epc)

    def test_frequency_beyond_steps_rejected(self):
        params = PowerModelParams()
        with pytest.raises(PowerModelError):
            params.core_voltage(300e6)

    def test_dynamic_scale_at_reference_is_one(self):
        params = PowerModelParams()
        assert params.dynamic_scale(216e6) == pytest.approx(1.0)

    def test_dynamic_scale_below_one_at_low_frequency(self):
        params = PowerModelParams()
        assert params.dynamic_scale(50e6) < 1.0


class TestParams:
    def test_negative_constant_rejected(self):
        with pytest.raises(PowerModelError):
            PowerModelParams(p_board_static_w=-0.01)

    def test_activity_out_of_range_rejected(self):
        with pytest.raises(PowerModelError):
            PowerModelParams(activity_idle=1.5)

    def test_empty_vos_steps_rejected(self):
        with pytest.raises(PowerModelError):
            PowerModelParams(vos_steps=())

    def test_descending_vos_steps_rejected(self):
        with pytest.raises(PowerModelError):
            PowerModelParams(vos_steps=((216e6, 1.32), (144e6, 1.14)))

    def test_scaled_override(self):
        params = PowerModelParams().scaled(p_gated_w=0.005)
        assert params.p_gated_w == pytest.approx(0.005)

    def test_switching_power_between_gated_and_active(self, pm, hfo_216):
        switching = pm.switching_power(lfo_config())
        assert pm.gated_power() < switching < pm.active_power(hfo_216)
