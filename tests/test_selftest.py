"""Installation self-test."""

from repro.selftest import run_selftest


class TestSelfTest:
    def test_all_checks_pass(self):
        result = run_selftest()
        assert result.ok, result.summary()
        assert len(result.checks) == 5

    def test_summary_format(self):
        result = run_selftest()
        text = result.summary()
        assert "self-test PASSED" in text
        assert text.count("[ok ]") == 5
