"""Installation self-test."""

from repro.selftest import run_selftest


class TestSelfTest:
    def test_all_checks_pass(self):
        result = run_selftest()
        assert result.ok, result.summary()
        assert len(result.checks) == 5
        assert not result.quick

    def test_summary_format(self):
        result = run_selftest()
        text = result.summary()
        assert "self-test PASSED" in text
        assert text.count("[ok ]") == 5

    def test_quick_subset(self):
        result = run_selftest(quick=True)
        assert result.ok, result.summary()
        assert result.quick
        assert len(result.checks) == 3
        names = [name for name, _, _ in result.checks]
        assert not any("pipeline" in name for name in names)
        assert "quick self-test PASSED" in result.summary()

    def test_quick_is_prefix_of_full(self):
        """The health endpoint's subset is the full sweep's head."""
        quick = [name for name, _, _ in run_selftest(quick=True).checks]
        full = [name for name, _, _ in run_selftest().checks]
        assert full[: len(quick)] == quick

    def test_to_dict(self):
        data = run_selftest(quick=True).to_dict()
        assert data["ok"] is True
        assert data["quick"] is True
        assert len(data["checks"]) == 3
        assert all(
            set(check) == {"name", "ok", "detail"}
            for check in data["checks"]
        )
