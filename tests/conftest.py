"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clock import hfo_grid, lfo_config, max_performance_config
from repro.mcu import make_nucleo_f767zi
from repro.nn import QuantizedTensor, build_tiny_test_model
from repro.nn.models import INPUT_PARAMS


@pytest.fixture
def board():
    """A fresh default Nucleo-F767ZI board model."""
    return make_nucleo_f767zi()


@pytest.fixture
def tiny_model():
    """The small test CNN (conv + separable + inverted residual)."""
    return build_tiny_test_model()


@pytest.fixture
def tiny_input():
    """A deterministic input tensor for the tiny model."""
    rng = np.random.default_rng(42)
    data = rng.integers(-128, 128, size=(16, 16, 3)).astype(np.int8)
    return QuantizedTensor(
        data=data,
        scale=INPUT_PARAMS.scale,
        zero_point=INPUT_PARAMS.zero_point,
    )


@pytest.fixture
def lfo():
    """The paper's LFO clock (HSE direct at 50 MHz)."""
    return lfo_config()


@pytest.fixture
def hfo_216():
    """The minimum-power 216 MHz configuration."""
    return max_performance_config()


@pytest.fixture
def hfo_configs():
    """The paper's HFO grid."""
    return hfo_grid()
