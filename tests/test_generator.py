"""Random-architecture property tests: the stack holds on any model.

These are the heaviest property tests in the suite: each generated
architecture runs through bit-exact DAE execution and the full
optimization pipeline.  Example counts are kept small; determinism
comes from the generator seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import DAEDVFSPipeline
from repro.engine import DAEExecutor
from repro.errors import ShapeError
from repro.nn import QuantizedTensor
from repro.nn.generator import random_separable_cnn
from repro.nn.models import INPUT_PARAMS
from repro.optimize import QoSLevel


def make_input(model, seed):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        rng.integers(-128, 128, size=model.input_shape).astype(np.int8),
        INPUT_PARAMS.scale,
        INPUT_PARAMS.zero_point,
    )


class TestGenerator:
    def test_deterministic(self):
        a = random_separable_cnn(seed=5)
        b = random_separable_cnn(seed=5)
        x = make_input(a, 0)
        assert np.array_equal(a.forward(x).data, b.forward(x).data)

    def test_seeds_vary_architecture(self):
        shapes = {
            tuple(
                n.output_shape for n in random_separable_cnn(seed=s).nodes
            )
            for s in range(5)
        }
        assert len(shapes) > 1

    def test_validation(self):
        with pytest.raises(ShapeError):
            random_separable_cnn(seed=0, num_blocks=0)
        with pytest.raises(ShapeError):
            random_separable_cnn(seed=0, input_hw=4)

    def test_channel_bound_respected(self):
        model = random_separable_cnn(seed=3, max_channels=32)
        for node in model.conv_nodes():
            assert node.output_shape[-1] <= max(32, 4)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dae_bit_exact_on_random_architectures(seed):
    """Property: DAE == reference on arbitrary generated CNNs."""
    model = random_separable_cnn(seed=seed, num_blocks=3, input_hw=16)
    x = make_input(model, seed + 1)
    reference = model.forward(x)
    for g in (3, 8, 16):
        out, _ = DAEExecutor(
            {n.node_id: g for n in model.dae_nodes()}
        ).run(model, x)
        assert np.array_equal(out.data, reference.data)


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    slack=st.sampled_from([0.15, 0.40]),
)
def test_pipeline_handles_random_architectures(seed, slack):
    """Property: the full pipeline produces a QoS-feasible,
    baseline-beating schedule for arbitrary generated CNNs."""
    model = random_separable_cnn(seed=seed, num_blocks=3, input_hw=16)
    pipeline = DAEDVFSPipeline()
    level = QoSLevel(name="rand", slack=slack)
    row = pipeline.compare(model, level)
    assert row.ours.met_qos
    assert row.ours.energy_j <= row.tinyengine.energy_j
