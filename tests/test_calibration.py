"""Paper-shape calibration tests.

These tests pin the *qualitative* results of the paper's evaluation on
the calibrated default board: every ordering, trend and crossover the
paper reports must hold, and the headline magnitudes must land in the
same band (not necessarily the same point -- the substrate is a
simulator, not the authors' testbed; EXPERIMENTS.md records the
numbers side by side).
"""

import pytest

from repro import DAEDVFSPipeline, build_mbv2, build_vww
from repro.analysis import (
    share_at_frequency,
    share_at_granularity,
    share_at_or_below_frequency,
)
from repro.clock import pll_config
from repro.nn import LayerKind
from repro.optimize import RELAXED, TIGHT
from repro.power import BoardPowerModel
from repro.units import MHZ


@pytest.fixture(scope="module")
def pipeline():
    return DAEDVFSPipeline()


@pytest.fixture(scope="module")
def vww():
    return build_vww()


@pytest.fixture(scope="module")
def mbv2():
    return build_mbv2()


@pytest.fixture(scope="module")
def vww_rows(pipeline, vww):
    return {
        level.name: pipeline.compare(vww, level)
        for level in (TIGHT, RELAXED)
    }


@pytest.fixture(scope="module")
def mbv2_plans(pipeline, mbv2):
    return {
        level.name: pipeline.optimize(mbv2, qos_level=level).plan
        for level in (TIGHT, RELAXED)
    }


class TestFig2Shapes:
    def test_iso_frequency_gap_at_100mhz(self):
        """Fig. 2: iso-frequency configurations differ substantially in
        power (the paper reports ~50% at 100 MHz)."""
        pm = BoardPowerModel()
        candidates = [
            pll_config(50 * MHZ, 25, 100, pllp=2),   # VCO 200 MHz
            pll_config(50 * MHZ, 25, 200, pllp=4),   # VCO 400 MHz
            pll_config(16 * MHZ, 8, 100, pllp=2),    # VCO 200, HSE 16
        ]
        powers = [pm.active_power(c) for c in candidates]
        gap = max(powers) / min(powers) - 1.0
        assert gap > 0.20

    def test_power_monotone_in_frequency_along_min_power_grid(self):
        from repro.dse import paper_design_space

        space = paper_design_space()
        pm = BoardPowerModel()
        powers = [pm.active_power(c) for c in space.hfo_configs]
        assert powers == sorted(powers)


class TestFig4Shapes:
    def test_dae_power_drop_on_depthwise_layer(self, pipeline, mbv2):
        """Fig. 4: DAE + LFO memory phases drop average layer power
        substantially (the paper reports up to 54.2%)."""
        from repro.clock import max_performance_config
        from repro.dse.explorer import LayerCostModel
        from repro.engine.cost import TraceBuilder

        board = pipeline.board
        tracer = TraceBuilder(board)
        pricer = LayerCostModel(board)
        hfo = max_performance_config()
        lfo = pipeline.space.lfo
        drops = []
        for node in mbv2.dae_nodes():
            if node.layer.kind is not LayerKind.DEPTHWISE_CONV:
                continue
            fused = pricer.price(
                tracer.build(mbv2, node, 0), hfo, lfo, assume_relock=False
            )
            dae = pricer.price(
                tracer.build(mbv2, node, 16), hfo, lfo, assume_relock=False
            )
            fused_power = fused[1] / fused[0]
            dae_power = dae[1] / dae[0]
            drops.append(1.0 - dae_power / fused_power)
        # Paper reports up to 54.2%; our substrate reaches ~20%
        # (EXPERIMENTS.md discusses the gap) -- the direction and
        # significance of the effect are what this test pins.
        assert max(drops) > 0.15

    def test_granularity_trades_latency_and_power(self, pipeline, mbv2):
        """Fig. 4 (right): sweeping g moves both latency and power."""
        from repro.clock import max_performance_config
        from repro.dse.explorer import LayerCostModel
        from repro.engine.cost import TraceBuilder

        board = pipeline.board
        tracer = TraceBuilder(board)
        pricer = LayerCostModel(board)
        hfo = max_performance_config()
        node = mbv2.dae_nodes()[0]
        latencies, powers = [], []
        for g in (2, 4, 8, 12, 16):
            latency, energy = pricer.price(
                tracer.build(mbv2, node, g), hfo, pipeline.space.lfo,
                assume_relock=False,
            )
            latencies.append(latency)
            powers.append(energy / latency)
        assert max(latencies) / min(latencies) > 1.02
        assert max(powers) / min(powers) > 1.02


class TestFig5Shapes:
    def test_ordering_ours_below_gated_below_plain(self, vww_rows):
        for row in vww_rows.values():
            assert row.ours.energy_j < row.clock_gated.energy_j
            assert row.clock_gated.energy_j < row.tinyengine.energy_j

    def test_savings_vs_te_band(self, vww_rows):
        """Paper: up to 25.2% vs TinyEngine across the grid."""
        best = max(r.savings_vs_tinyengine for r in vww_rows.values())
        assert 0.15 < best < 0.45

    def test_savings_vs_cg_band(self, vww_rows):
        """Paper: up to 7.2% vs TinyEngine + clock gating."""
        best = max(r.savings_vs_clock_gated for r in vww_rows.values())
        assert 0.03 < best < 0.30

    def test_savings_grow_with_relaxed_qos(self, vww_rows):
        assert (
            vww_rows["relaxed"].savings_vs_tinyengine
            > vww_rows["tight"].savings_vs_tinyengine
        )

    def test_relaxing_qos_reduces_our_energy(self, pipeline, mbv2):
        """Paper: MBV2 at 50% slack uses 20.4% less energy than at 10%."""
        tight = pipeline.compare(mbv2, TIGHT)
        relaxed = pipeline.compare(mbv2, RELAXED)
        reduction = 1.0 - relaxed.ours.energy_j / tight.ours.energy_j
        assert reduction > 0.03

    def test_qos_always_met(self, vww_rows):
        for row in vww_rows.values():
            assert row.ours.met_qos


class TestFig6Shapes:
    def test_memory_tolerant_layers_park_at_low_frequencies(
        self, mbv2_plans, mbv2
    ):
        """Paper: layers whose execution is least compute-intensive
        tolerate the lowest clocks.  In our substrate the memory-bound
        population is the *large pointwise* layers (whose compute
        phases stream weights from flash), so under a relaxed budget
        the layers parked at/below 108 MHz carry an above-average
        weight footprint.  (The paper attributes the low-frequency
        tolerance to depthwise layers instead; EXPERIMENTS.md discusses
        the deviation.)"""
        plan = mbv2_plans["relaxed"]
        weights = {
            node.node_id: node.layer.weight_bytes()
            for node in mbv2.conv_nodes()
        }
        low, high = [], []
        for node_id, lp in plan.layer_plans.items():
            (low if lp.hfo.sysclk_hz <= 108 * MHZ + 1 else high).append(
                weights[node_id]
            )
        if low and high:
            assert sum(low) / len(low) > sum(high) / len(high)

    def test_tight_qos_uses_more_max_frequency(self, mbv2_plans, mbv2):
        """Paper: 18.6% more layers at 216 MHz under the 10% budget."""
        tight = share_at_frequency(mbv2_plans["tight"], mbv2, 216 * MHZ)
        relaxed = share_at_frequency(mbv2_plans["relaxed"], mbv2, 216 * MHZ)
        assert tight > relaxed

    def test_relaxed_qos_uses_lower_frequencies(self, mbv2_plans, mbv2):
        """Paper: ~45% of conv layers park at the lowest frequencies
        under relaxed budgets."""
        tight = share_at_or_below_frequency(
            mbv2_plans["tight"], mbv2, 108 * MHZ
        )
        relaxed = share_at_or_below_frequency(
            mbv2_plans["relaxed"], mbv2, 108 * MHZ
        )
        assert relaxed >= tight

    def test_relaxed_qos_prefers_larger_granularity(self, mbv2_plans):
        """Paper: 22.3% more layers at g=16 under the 50% budget."""
        tight = share_at_granularity(mbv2_plans["tight"], 16)
        relaxed = share_at_granularity(mbv2_plans["relaxed"], 16)
        assert relaxed >= tight

    def test_majority_of_layers_decoupled(self, mbv2_plans):
        """DAE is the default winner: most layers pick g > 0."""
        for plan in mbv2_plans.values():
            decoupled = sum(
                1 for lp in plan.layer_plans.values() if lp.granularity > 0
            )
            assert decoupled > 0.5 * len(plan.layer_plans)
