"""Model persistence: bit-exact round trips."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import (
    QuantizedTensor,
    build_tiny_test_model,
    build_vww,
)
from repro.nn.models import INPUT_PARAMS
from repro.nn.serialize import load_model, save_model


def run(model, seed=0):
    rng = np.random.default_rng(seed)
    x = QuantizedTensor(
        rng.integers(-128, 128, size=model.input_shape).astype(np.int8),
        INPUT_PARAMS.scale,
        INPUT_PARAMS.zero_point,
    )
    return model.forward(x)


class TestRoundTrip:
    def test_tiny_model_bit_exact(self, tmp_path):
        model = build_tiny_test_model()
        path = tmp_path / "tiny.npz"
        save_model(model, path)
        restored = load_model(path)
        assert restored.name == model.name
        assert restored.input_shape == model.input_shape
        assert len(restored.nodes) == len(model.nodes)
        assert np.array_equal(run(model).data, run(restored).data)

    def test_vww_bit_exact(self, tmp_path):
        model = build_vww()
        path = tmp_path / "vww.npz"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(run(model).data, run(restored).data)

    def test_quantized_weights_identical(self, tmp_path):
        model = build_tiny_test_model()
        path = tmp_path / "m.npz"
        save_model(model, path)
        restored = load_model(path)
        for a, b in zip(model.nodes, restored.nodes):
            if hasattr(a.layer, "weights_q"):
                assert np.array_equal(a.layer.weights_q, b.layer.weights_q)
                assert np.array_equal(a.layer.bias_q, b.layer.bias_q)
                assert a.layer.weight_scale == pytest.approx(
                    b.layer.weight_scale
                )

    def test_graph_wiring_preserved(self, tmp_path):
        model = build_tiny_test_model()  # contains a residual add
        path = tmp_path / "m.npz"
        save_model(model, path)
        restored = load_model(path)
        for a, b in zip(model.nodes, restored.nodes):
            assert a.inputs == b.inputs
            assert a.output_shape == b.output_shape
            assert a.layer.kind == b.layer.kind

    def test_cost_model_sees_identical_model(self, tmp_path, board):
        from repro.engine.cost import TraceBuilder

        model = build_tiny_test_model()
        path = tmp_path / "m.npz"
        save_model(model, path)
        restored = load_model(path)
        tracer = TraceBuilder(board)
        for a, b in zip(model.nodes, restored.nodes):
            ta = tracer.build(model, a, 4).total_workload()
            tb = tracer.build(restored, b, 4).total_workload()
            assert ta.cpu_cycles == pytest.approx(tb.cpu_cycles)
            assert ta.flash_bytes == pytest.approx(tb.flash_bytes)
            assert ta.sram_bytes == pytest.approx(tb.sram_bytes)


class TestErrors:
    def test_not_a_bundle(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(GraphError):
            load_model(path)

    def test_wrong_version(self, tmp_path):
        import json

        model = build_tiny_test_model()
        path = tmp_path / "m.npz"
        save_model(model, path)
        with np.load(path) as bundle:
            arrays = {k: bundle[k] for k in bundle.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode())
        manifest["format_version"] = 42
        arrays["manifest"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(GraphError):
            load_model(path)
