"""Depthwise conv: numerics, per-channel-group kernel, DAE equality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn import DepthwiseConv2D, LayerKind, QuantizedTensor
from repro.nn.quantize import QuantParams

IN_PARAMS = QuantParams(scale=0.04, zero_point=-5)
OUT_PARAMS = QuantParams(scale=0.08, zero_point=2)


def make_dw(kernel=3, channels=8, stride=1, padding="same", seed=0,
            activation="relu6"):
    rng = np.random.default_rng(seed)
    return DepthwiseConv2D(
        name="dw",
        weights=rng.normal(0, 0.4, size=(kernel, kernel, channels)),
        bias=rng.normal(0, 0.1, size=channels),
        input_params=IN_PARAMS,
        output_params=OUT_PARAMS,
        stride=stride,
        padding=padding,
        activation=activation,
    )


def make_input(h=8, w=8, c=8, seed=1):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        data=rng.integers(-128, 128, size=(h, w, c)).astype(np.int8),
        scale=IN_PARAMS.scale,
        zero_point=IN_PARAMS.zero_point,
    )


class TestShapes:
    def test_same_padding(self):
        assert make_dw().output_shape((8, 8, 8)) == (8, 8, 8)

    def test_stride(self):
        assert make_dw(stride=2).output_shape((8, 8, 8)) == (4, 4, 8)

    def test_channel_count_enforced(self):
        with pytest.raises(ShapeError):
            make_dw(channels=8).output_shape((8, 8, 4))

    def test_weights_rank_enforced(self):
        with pytest.raises(ShapeError):
            DepthwiseConv2D(
                "bad", np.zeros((3, 3, 4, 2)), None, IN_PARAMS, OUT_PARAMS
            )

    def test_kind(self):
        layer = make_dw()
        assert layer.kind is LayerKind.DEPTHWISE_CONV
        assert layer.supports_dae

    def test_macs(self):
        assert make_dw().macs((8, 8, 8)) == 8 * 8 * 9 * 8


class TestChannelIndependence:
    def test_each_channel_depends_only_on_itself(self):
        layer = make_dw(channels=4)
        x = make_input(c=4)
        baseline = layer.forward(x)
        # Perturb channel 0; only output channel 0 may change.
        perturbed_data = x.data.copy()
        perturbed_data[:, :, 0] = np.roll(perturbed_data[:, :, 0], 1)
        perturbed = x.with_data(perturbed_data)
        out = layer.forward(perturbed)
        assert np.array_equal(out.data[:, :, 1:], baseline.data[:, :, 1:])
        assert not np.array_equal(out.data[:, :, 0], baseline.data[:, :, 0])


class TestForwardChannels:
    def test_single_channel_matches_full(self):
        layer = make_dw()
        x = make_input()
        full = layer.forward(x)
        for c in range(8):
            group = layer.forward_channels(x, [c])
            assert np.array_equal(group[:, :, 0], full.data[:, :, c])

    def test_group_matches_full(self):
        layer = make_dw()
        x = make_input()
        full = layer.forward(x)
        group = layer.forward_channels(x, [2, 5, 7])
        assert np.array_equal(group, full.data[:, :, [2, 5, 7]])

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            make_dw().forward_channels(make_input(), [])

    def test_out_of_range_channel_rejected(self):
        with pytest.raises(ShapeError):
            make_dw().forward_channels(make_input(), [8])

    @settings(max_examples=25, deadline=None)
    @given(
        channels=st.integers(min_value=1, max_value=12),
        g=st.integers(min_value=1, max_value=16),
        stride=st.sampled_from([1, 2]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_dae_grouping_bit_exact_property(self, channels, g, stride, seed):
        """Property (paper Sec. III-A): any grouping of channels is
        bit-identical to the reference execution."""
        layer = make_dw(channels=channels, stride=stride, seed=seed)
        x = make_input(h=6, w=6, c=channels, seed=seed + 1)
        full = layer.forward(x)
        pieces = []
        for start in range(0, channels, g):
            idx = list(range(start, min(start + g, channels)))
            pieces.append(layer.forward_channels(x, idx))
        stitched = np.concatenate(pieces, axis=2)
        assert np.array_equal(stitched, full.data)
