"""Per-channel weight quantization (TFLite's production scheme)."""

import numpy as np
import pytest

from repro.engine import run_depthwise_dae, run_pointwise_dae
from repro.engine.kernels import depthwise_conv_scalar, pointwise_conv_scalar
from repro.nn import (
    Conv2D,
    Dense,
    DepthwiseConv2D,
    PointwiseConv2D,
    QuantizedTensor,
)
from repro.nn.quantize import QuantParams

IN_PARAMS = QuantParams(scale=0.04, zero_point=-3)
OUT_PARAMS = QuantParams(scale=0.09, zero_point=5)


def imbalanced_weights(rng, shape):
    """Weights whose per-channel magnitudes differ wildly -- the case
    per-channel quantization exists for."""
    w = rng.normal(0, 0.3, size=shape)
    scales = np.logspace(-2, 0.5, shape[-1])
    return w * scales


def make_x(h=6, w=5, c=6, seed=1):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        rng.integers(-128, 128, (h, w, c)).astype(np.int8),
        IN_PARAMS.scale, IN_PARAMS.zero_point,
    )


class TestAccuracyImprovement:
    def test_per_channel_reduces_weight_error(self):
        rng = np.random.default_rng(0)
        weights = imbalanced_weights(rng, (3, 3, 6, 8))

        def reconstruction_error(per_channel):
            layer = Conv2D(
                "c", weights, None, IN_PARAMS, OUT_PARAMS,
                per_channel=per_channel,
            )
            reconstructed = layer.weights_q.astype(np.float64) * np.asarray(
                layer.weight_scale
            )
            return np.abs(reconstructed - weights).max()

        assert reconstruction_error(True) < reconstruction_error(False)

    def test_per_channel_scales_shape(self):
        rng = np.random.default_rng(0)
        layer = PointwiseConv2D(
            "pw", rng.normal(0, 0.3, (6, 8)), None, IN_PARAMS, OUT_PARAMS,
            per_channel=True,
        )
        assert np.asarray(layer.weight_scale).shape == (8,)
        assert layer.requant.is_per_channel


class TestBitExactness:
    def test_depthwise_dae_per_channel(self):
        rng = np.random.default_rng(2)
        layer = DepthwiseConv2D(
            "dw", imbalanced_weights(rng, (3, 3, 6)),
            rng.normal(0, 0.1, 6), IN_PARAMS, OUT_PARAMS,
            per_channel=True,
        )
        x = make_x()
        reference = layer.forward(x)
        for g in (1, 2, 4, 6):
            assert np.array_equal(
                run_depthwise_dae(layer, x, g).data, reference.data
            )

    def test_pointwise_dae_per_channel(self):
        rng = np.random.default_rng(3)
        layer = PointwiseConv2D(
            "pw", imbalanced_weights(rng, (6, 8)),
            rng.normal(0, 0.1, 8), IN_PARAMS, OUT_PARAMS,
            per_channel=True,
        )
        x = make_x()
        reference = layer.forward(x)
        for g in (1, 4, 16):
            assert np.array_equal(
                run_pointwise_dae(layer, x, g).data, reference.data
            )

    def test_scalar_kernels_per_channel(self):
        rng = np.random.default_rng(4)
        dw = DepthwiseConv2D(
            "dw", imbalanced_weights(rng, (3, 3, 6)), None,
            IN_PARAMS, OUT_PARAMS, per_channel=True,
        )
        pw = PointwiseConv2D(
            "pw", imbalanced_weights(rng, (6, 8)), None,
            IN_PARAMS, OUT_PARAMS, per_channel=True,
        )
        x = make_x()
        assert np.array_equal(
            depthwise_conv_scalar(dw, x), dw.forward(x).data
        )
        assert np.array_equal(
            pointwise_conv_scalar(pw, x), pw.forward(x).data
        )

    def test_dense_per_channel(self):
        rng = np.random.default_rng(5)
        layer = Dense(
            "fc", imbalanced_weights(rng, (12, 4)),
            rng.normal(0, 0.1, 4), IN_PARAMS, OUT_PARAMS,
            per_channel=True,
        )
        x = QuantizedTensor(
            rng.integers(-128, 128, (12,)).astype(np.int8),
            IN_PARAMS.scale, IN_PARAMS.zero_point,
        )
        out = layer.forward(x)
        # Per-channel result is closer to the float reference.
        w_real = layer.weights_q.astype(np.float64) * np.asarray(
            layer.weight_scale
        )
        b_real = (
            layer.bias_q.astype(np.float64)
            * IN_PARAMS.scale * np.asarray(layer.weight_scale)
        )
        expected = x.dequantize() @ w_real + b_real
        zp, scale = OUT_PARAMS.zero_point, OUT_PARAMS.scale
        expected = np.clip(expected, (-128 - zp) * scale, (127 - zp) * scale)
        assert np.abs(out.dequantize() - expected).max() <= scale * 1.01


class TestEndToEnd:
    def test_per_channel_model_pipeline(self, board):
        from repro import DAEDVFSPipeline
        from repro.engine import validate_plan_numerics
        from repro.nn.models import _Builder
        from repro.optimize import MODERATE

        b = _Builder("pc", (12, 12, 3), seed=9, per_channel=True)
        b.conv(8, stride=2)
        b.separable(16, stride=1)
        b.global_pool()
        b.flatten()
        b.dense(4)
        model = b.model
        pipeline = DAEDVFSPipeline(board=board)
        plan = pipeline.optimize(model, qos_level=MODERATE).plan
        assert validate_plan_numerics(model, plan.granularities())

    def test_per_channel_serialization_round_trip(self, tmp_path):
        from repro.nn import load_model, save_model
        from repro.nn.models import _Builder

        b = _Builder("pc", (12, 12, 3), seed=9, per_channel=True)
        b.conv(8, stride=2)
        b.separable(16, stride=1)
        b.global_pool()
        b.flatten()
        b.dense(4)
        model = b.model
        path = tmp_path / "pc.npz"
        save_model(model, path)
        restored = load_model(path)
        rng = np.random.default_rng(0)
        x = QuantizedTensor(
            rng.integers(-128, 128, (12, 12, 3)).astype(np.int8),
            model.input_params.scale, model.input_params.zero_point,
        )
        assert np.array_equal(
            model.forward(x).data, restored.forward(x).data
        )
        assert restored.nodes[0].layer.per_channel
