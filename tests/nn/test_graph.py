"""Model graph: construction validation, execution, introspection."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import (
    Flatten,
    GlobalAveragePool,
    INPUT_ID,
    Model,
    QuantizedTensor,
    ResidualAdd,
)
from repro.nn.models import INPUT_PARAMS, _Builder
from repro.nn.quantize import QuantParams


def empty_model():
    return Model(
        name="m", input_shape=(8, 8, 3), input_params=INPUT_PARAMS
    )


class TestConstruction:
    def test_sequential_default_wiring(self):
        b = _Builder("m", (8, 8, 3), seed=0)
        first = b.conv(4)
        second = b.dw()
        model = b.model
        assert model.nodes[0].inputs == (INPUT_ID,)
        assert model.nodes[1].inputs == (first,)
        assert second == 2

    def test_dangling_reference_rejected(self):
        model = empty_model()
        with pytest.raises(GraphError):
            model.add(Flatten("f"), inputs=(5,))

    def test_duplicate_names_rejected(self):
        model = empty_model()
        model.add(Flatten("f"), inputs=(0,))
        with pytest.raises(GraphError):
            model.add(Flatten("f"), inputs=(0,))

    def test_shape_inference_at_add_time(self):
        b = _Builder("m", (8, 8, 3), seed=0)
        b.conv(4, stride=2)
        assert b.model.shape_of(1) == (4, 4, 4)

    def test_bad_input_shape_rejected(self):
        with pytest.raises(GraphError):
            Model(name="m", input_shape=(0, 8, 3), input_params=INPUT_PARAMS)

    def test_shape_of_unknown_node(self):
        with pytest.raises(GraphError):
            empty_model().shape_of(3)


class TestResidualWiring:
    def test_skip_connection(self):
        b = _Builder("m", (8, 8, 3), seed=0)
        b.conv(8)
        block_in = b.last_id
        b.pw(8, activation=None)
        add_id = b.residual_add(block_in, b.last_id)
        node = b.model.nodes[add_id - 1]
        assert len(node.inputs) == 2
        assert node.output_shape == (8, 8, 8)


class TestExecution:
    def test_forward_returns_final_output(self, tiny_model, tiny_input):
        out = tiny_model.forward(tiny_input)
        assert out.shape == tiny_model.output_shape

    def test_forward_with_activations_covers_all_nodes(
        self, tiny_model, tiny_input
    ):
        acts = tiny_model.forward_with_activations(tiny_input)
        assert set(acts) == set(range(len(tiny_model.nodes) + 1))

    def test_wrong_input_shape_rejected(self, tiny_model):
        bad = QuantizedTensor(
            np.zeros((8, 8, 3), dtype=np.int8),
            INPUT_PARAMS.scale,
            INPUT_PARAMS.zero_point,
        )
        with pytest.raises(GraphError):
            tiny_model.forward(bad)

    def test_wrong_input_quantization_rejected(self, tiny_model):
        bad = QuantizedTensor(
            np.zeros((16, 16, 3), dtype=np.int8), 0.5, 0
        )
        with pytest.raises(GraphError):
            tiny_model.forward(bad)

    def test_deterministic(self, tiny_model, tiny_input):
        a = tiny_model.forward(tiny_input)
        b = tiny_model.forward(tiny_input)
        assert np.array_equal(a.data, b.data)


class TestIntrospection:
    def test_conv_nodes_excludes_structure_layers(self, tiny_model):
        kinds = {n.layer.kind.value for n in tiny_model.conv_nodes()}
        assert "avg_pool" not in kinds
        assert "flatten" not in kinds

    def test_dae_nodes_subset_of_conv_nodes(self, tiny_model):
        conv_ids = {n.node_id for n in tiny_model.conv_nodes()}
        for node in tiny_model.dae_nodes():
            assert node.node_id in conv_ids
            assert node.layer.supports_dae

    def test_total_macs_positive(self, tiny_model):
        assert tiny_model.total_macs() > 0

    def test_total_weight_bytes_counts_all_params(self, tiny_model):
        expected = sum(
            n.layer.weight_bytes() for n in tiny_model.nodes
        )
        assert tiny_model.total_weight_bytes() == expected

    def test_summary_mentions_every_layer(self, tiny_model):
        text = tiny_model.summary()
        for node in tiny_model.nodes:
            assert node.layer.name in text

    def test_output_shape_of_empty_model(self):
        assert empty_model().output_shape == (8, 8, 3)
