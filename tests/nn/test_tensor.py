"""QuantizedTensor: validation, dequantization, equality."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn import INT8_MAX, INT8_MIN, QuantizedTensor


def make(data, scale=0.1, zp=0):
    return QuantizedTensor(
        data=np.asarray(data, dtype=np.int8), scale=scale, zero_point=zp
    )


class TestValidation:
    def test_requires_int8(self):
        with pytest.raises(QuantizationError):
            QuantizedTensor(np.zeros(4, dtype=np.int32), 0.1, 0)

    def test_requires_positive_scale(self):
        with pytest.raises(QuantizationError):
            make([1, 2], scale=0.0)
        with pytest.raises(QuantizationError):
            make([1, 2], scale=-0.5)

    def test_zero_point_in_int8_range(self):
        with pytest.raises(QuantizationError):
            make([1], zp=200)
        make([1], zp=INT8_MIN)
        make([1], zp=INT8_MAX)


class TestSemantics:
    def test_dequantize(self):
        t = make([0, 10, -10], scale=0.5, zp=2)
        np.testing.assert_allclose(
            t.dequantize(), [-1.0, 4.0, -6.0]
        )

    def test_shape_and_size(self):
        t = make(np.zeros((4, 3, 2), dtype=np.int8))
        assert t.shape == (4, 3, 2)
        assert t.size_bytes == 24

    def test_with_data_keeps_parameters(self):
        t = make([1, 2], scale=0.3, zp=5)
        u = t.with_data(np.array([7, 8], dtype=np.int8))
        assert u.scale == t.scale
        assert u.zero_point == t.zero_point
        assert list(u.data) == [7, 8]

    def test_equality_checks_data_and_params(self):
        a = make([1, 2, 3])
        b = make([1, 2, 3])
        c = make([1, 2, 4])
        d = make([1, 2, 3], scale=0.2)
        assert a == b
        assert a != c
        assert a != d

    def test_equality_against_other_types(self):
        assert make([1]) != "not a tensor"
