"""Pointwise conv: numerics, per-column-group kernel, DAE equality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.nn import LayerKind, PointwiseConv2D, QuantizedTensor
from repro.nn.quantize import QuantParams

IN_PARAMS = QuantParams(scale=0.03, zero_point=7)
OUT_PARAMS = QuantParams(scale=0.06, zero_point=-1)


def make_pw(c_in=6, c_out=10, seed=0, activation="relu6"):
    rng = np.random.default_rng(seed)
    return PointwiseConv2D(
        name="pw",
        weights=rng.normal(0, 0.3, size=(c_in, c_out)),
        bias=rng.normal(0, 0.1, size=c_out),
        input_params=IN_PARAMS,
        output_params=OUT_PARAMS,
        activation=activation,
    )


def make_input(h=5, w=7, c=6, seed=1):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        data=rng.integers(-128, 128, size=(h, w, c)).astype(np.int8),
        scale=IN_PARAMS.scale,
        zero_point=IN_PARAMS.zero_point,
    )


class TestShapes:
    def test_preserves_spatial_dims(self):
        assert make_pw().output_shape((5, 7, 6)) == (5, 7, 10)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            make_pw().output_shape((5, 7, 4))

    def test_weights_rank_enforced(self):
        with pytest.raises(ShapeError):
            PointwiseConv2D(
                "bad", np.zeros((3, 3, 6, 10)), None, IN_PARAMS, OUT_PARAMS
            )

    def test_kind_and_dae(self):
        layer = make_pw()
        assert layer.kind is LayerKind.POINTWISE_CONV
        assert layer.supports_dae

    def test_macs(self):
        assert make_pw().macs((5, 7, 6)) == 5 * 7 * 6 * 10

    def test_weight_bytes(self):
        assert make_pw().weight_bytes() == 6 * 10 + 4 * 10


class TestNumerics:
    def test_equivalent_to_1x1_matmul_reference(self):
        layer = make_pw(activation=None)
        x = make_input()
        out = layer.forward(x)
        x_real = x.dequantize().reshape(-1, 6)
        w_real = layer.weights_q.astype(np.float64) * layer.weight_scale
        b_real = (
            layer.bias_q.astype(np.float64)
            * IN_PARAMS.scale * layer.weight_scale
        )
        expected = (x_real @ w_real + b_real).reshape(5, 7, 10)
        assert np.abs(out.dequantize() - expected).max() <= OUT_PARAMS.scale * 1.01

    def test_column_independence(self):
        layer = make_pw()
        x = make_input()
        baseline = layer.forward(x)
        perturbed_data = x.data.copy()
        perturbed_data[0, 0, :] = np.roll(perturbed_data[0, 0, :], 1)
        out = layer.forward(x.with_data(perturbed_data))
        # Only position (0, 0) may differ.
        assert np.array_equal(out.data[1:, :, :], baseline.data[1:, :, :])
        assert np.array_equal(out.data[0, 1:, :], baseline.data[0, 1:, :])


class TestForwardColumns:
    def test_single_column_matches_full(self):
        layer = make_pw()
        x = make_input()
        full = layer.forward(x).data.reshape(-1, 10)
        for col in (0, 17, 34):
            out = layer.forward_columns(x, [col])
            assert np.array_equal(out[0], full[col])

    def test_column_group_matches_full(self):
        layer = make_pw()
        x = make_input()
        full = layer.forward(x).data.reshape(-1, 10)
        idx = [3, 11, 19, 27]
        assert np.array_equal(layer.forward_columns(x, idx), full[idx])

    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            make_pw().forward_columns(make_input(), [])

    def test_out_of_range_rejected(self):
        with pytest.raises(ShapeError):
            make_pw().forward_columns(make_input(), [5 * 7])

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(min_value=1, max_value=6),
        w=st.integers(min_value=1, max_value=6),
        g=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_dae_grouping_bit_exact_property(self, h, w, g, seed):
        """Property: per-column-group execution in any granularity is
        bit-identical to the reference (paper: no accuracy drop)."""
        layer = make_pw(seed=seed)
        x = make_input(h=h, w=w, seed=seed + 1)
        full = layer.forward(x).data.reshape(-1, 10)
        positions = h * w
        pieces = []
        for start in range(0, positions, g):
            idx = list(range(start, min(start + g, positions)))
            pieces.append(layer.forward_columns(x, idx))
        stitched = np.concatenate(pieces, axis=0)
        assert np.array_equal(stitched, full)
