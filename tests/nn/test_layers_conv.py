"""Conv2D: shapes, numerics vs. a float reference, cost hooks."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Conv2D, LayerKind, QuantizedTensor
from repro.nn.quantize import QuantParams

IN_PARAMS = QuantParams(scale=0.05, zero_point=3)
OUT_PARAMS = QuantParams(scale=0.1, zero_point=-4)


def make_conv(kernel=3, c_in=3, c_out=8, stride=1, padding="same",
              activation=None, seed=0):
    rng = np.random.default_rng(seed)
    return Conv2D(
        name="conv",
        weights=rng.normal(0, 0.3, size=(kernel, kernel, c_in, c_out)),
        bias=rng.normal(0, 0.1, size=c_out),
        input_params=IN_PARAMS,
        output_params=OUT_PARAMS,
        stride=stride,
        padding=padding,
        activation=activation,
    )


def make_input(h=8, w=8, c=3, seed=1):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        data=rng.integers(-128, 128, size=(h, w, c)).astype(np.int8),
        scale=IN_PARAMS.scale,
        zero_point=IN_PARAMS.zero_point,
    )


def float_conv_reference(layer, x):
    """Dequantized reference using the layer's quantized weights."""
    x_real = x.dequantize()
    w_real = layer.weights_q.astype(np.float64) * layer.weight_scale
    bias_real = (
        layer.bias_q.astype(np.float64)
        * layer.input_params.scale
        * layer.weight_scale
    )
    out_h, out_w, c_out = layer.output_shape(x.shape)
    k, s = layer.kernel, layer.stride
    if layer.padding == "same":
        from repro.nn.layers.convutils import same_padding_amounts

        top, bottom = same_padding_amounts(x_real.shape[0], k, s)
        left, right = same_padding_amounts(x_real.shape[1], k, s)
        x_real = np.pad(
            x_real, ((top, bottom), (left, right), (0, 0))
        )
    out = np.zeros((out_h, out_w, c_out))
    for i in range(out_h):
        for j in range(out_w):
            patch = x_real[i * s:i * s + k, j * s:j * s + k, :]
            out[i, j, :] = (
                np.tensordot(patch, w_real, axes=([0, 1, 2], [0, 1, 2]))
                + bias_real
            )
    # Clip to the representable output range (int8 saturation).
    zp, scale = OUT_PARAMS.zero_point, OUT_PARAMS.scale
    return np.clip(out, (-128 - zp) * scale, (127 - zp) * scale)


class TestShapes:
    def test_same_padding_preserves_hw(self):
        conv = make_conv()
        assert conv.output_shape((8, 8, 3)) == (8, 8, 8)

    def test_valid_padding_shrinks(self):
        conv = make_conv(padding="valid")
        assert conv.output_shape((8, 8, 3)) == (6, 6, 8)

    def test_stride_two(self):
        conv = make_conv(stride=2)
        assert conv.output_shape((8, 8, 3)) == (4, 4, 8)
        conv = make_conv(stride=2)
        assert conv.output_shape((9, 9, 3)) == (5, 5, 8)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            make_conv(c_in=3).output_shape((8, 8, 4))

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            make_conv().output_shape((8, 8))

    def test_non_square_kernel_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ShapeError):
            Conv2D(
                "bad", rng.normal(size=(3, 5, 3, 4)), None,
                IN_PARAMS, OUT_PARAMS,
            )

    def test_bias_shape_checked(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ShapeError):
            Conv2D(
                "bad", rng.normal(size=(3, 3, 3, 4)), np.zeros(5),
                IN_PARAMS, OUT_PARAMS,
            )


class TestNumerics:
    def test_matches_float_reference_within_one_lsb(self):
        conv = make_conv()
        x = make_input()
        out = conv.forward(x)
        expected = float_conv_reference(conv, x)
        error = np.abs(out.dequantize() - expected)
        assert error.max() <= OUT_PARAMS.scale * 1.01

    def test_stride_and_valid_padding_numerics(self):
        conv = make_conv(stride=2, padding="valid")
        x = make_input(9, 9)
        out = conv.forward(x)
        expected = float_conv_reference(conv, x)
        assert np.abs(out.dequantize() - expected).max() <= OUT_PARAMS.scale * 1.01

    def test_relu_clamps_at_zero_point(self):
        conv = make_conv(activation="relu", seed=3)
        out = conv.forward(make_input(seed=4))
        assert out.data.min() >= OUT_PARAMS.zero_point

    def test_relu6_upper_clamp(self):
        conv = make_conv(activation="relu6", seed=5)
        out = conv.forward(make_input(seed=6))
        upper = OUT_PARAMS.zero_point + round(6.0 / OUT_PARAMS.scale)
        assert out.data.max() <= min(127, upper)

    def test_deterministic(self):
        conv = make_conv()
        x = make_input()
        a = conv.forward(x)
        b = conv.forward(x)
        assert np.array_equal(a.data, b.data)

    def test_output_quantization_params(self):
        out = make_conv().forward(make_input())
        assert out.scale == OUT_PARAMS.scale
        assert out.zero_point == OUT_PARAMS.zero_point


class TestCostHooks:
    def test_macs(self):
        conv = make_conv()
        # 8*8 positions * 3*3 kernel * 3 in * 8 out
        assert conv.macs((8, 8, 3)) == 8 * 8 * 9 * 3 * 8

    def test_weight_bytes(self):
        conv = make_conv()
        assert conv.weight_bytes() == 3 * 3 * 3 * 8 + 4 * 8

    def test_kind_and_dae_eligibility(self):
        conv = make_conv()
        assert conv.kind is LayerKind.CONV2D
        assert not conv.supports_dae

    def test_io_bytes(self):
        conv = make_conv()
        assert conv.input_bytes((8, 8, 3)) == 192
        assert conv.output_bytes((8, 8, 3)) == 8 * 8 * 8
