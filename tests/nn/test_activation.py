"""Standalone ReLU layer."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import LayerKind, QuantizedTensor, ReLU


def qt(data, scale=0.05, zp=-10):
    return QuantizedTensor(
        np.asarray(data, dtype=np.int8), scale=scale, zero_point=zp
    )


class TestReLU:
    def test_clamps_at_zero_point(self):
        layer = ReLU("relu")
        x = qt([-50, -10, 0, 40])
        out = layer.forward(x)
        assert out.data.tolist() == [-10, -10, 0, 40]

    def test_relu6_upper_clamp(self):
        layer = ReLU("relu6", max_value=6.0)
        # zp=-10, scale=0.05: q(6.0) = -10 + 120 = 110.
        x = qt([-50, 100, 127])
        out = layer.forward(x)
        assert out.data.tolist() == [-10, 100, 110]

    def test_preserves_quantization(self):
        out = ReLU("relu").forward(qt([1, 2]))
        assert out.scale == 0.05
        assert out.zero_point == -10

    def test_shape_identity(self):
        assert ReLU("relu").output_shape((4, 4, 8)) == (4, 4, 8)

    def test_kind_and_dae(self):
        layer = ReLU("relu")
        assert layer.kind is LayerKind.ACTIVATION
        assert not layer.supports_dae

    def test_bad_max_value(self):
        with pytest.raises(ShapeError):
            ReLU("bad", max_value=0.0)

    def test_in_graph(self, tiny_input):
        from repro.nn import Model
        from repro.nn.models import INPUT_PARAMS

        model = Model(
            name="act", input_shape=(16, 16, 3), input_params=INPUT_PARAMS
        )
        model.add(ReLU("relu"))
        out = model.forward(tiny_input)
        assert out.data.min() >= INPUT_PARAMS.zero_point


class TestHotspots:
    def test_ranked_and_shares_sum(self, board, tiny_model):
        from repro.analysis import identify_hotspots

        hotspots = identify_hotspots(board, tiny_model)
        latencies = [h.latency_s for h in hotspots]
        assert latencies == sorted(latencies, reverse=True)
        assert sum(h.latency_share for h in hotspots) == pytest.approx(1.0)
        assert len(hotspots) == len(tiny_model.conv_nodes())

    def test_top_k(self, board, tiny_model):
        from repro.analysis import identify_hotspots

        top = identify_hotspots(board, tiny_model, top_k=3)
        assert len(top) == 3

    def test_dae_flag_present(self, board, tiny_model):
        from repro.analysis import identify_hotspots

        hotspots = identify_hotspots(board, tiny_model)
        assert any(h.supports_dae for h in hotspots)
        assert any(not h.supports_dae for h in hotspots)
