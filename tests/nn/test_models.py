"""The paper's evaluation models: structure, scale, reproducibility."""

import numpy as np
import pytest

from repro.nn import (
    PAPER_MODELS,
    QuantizedTensor,
    build_mbv2,
    build_person_detection,
    build_tiny_test_model,
    build_vww,
    scale_channels,
)
from repro.nn.models import INPUT_PARAMS


def run_model(model):
    rng = np.random.default_rng(0)
    h, w, c = model.input_shape
    x = QuantizedTensor(
        rng.integers(-128, 128, size=(h, w, c)).astype(np.int8),
        INPUT_PARAMS.scale,
        INPUT_PARAMS.zero_point,
    )
    return model.forward(x)


class TestScaleChannels:
    def test_multiples_of_eight(self):
        assert scale_channels(32, 0.35) % 8 == 0

    def test_minimum_eight(self):
        assert scale_channels(16, 0.1) == 8

    def test_identity_at_full_width(self):
        assert scale_channels(32, 1.0) == 32


class TestPaperModels:
    @pytest.mark.parametrize("name", ["vww", "pd", "mbv2"])
    def test_registry_builds(self, name):
        model = PAPER_MODELS[name]()
        assert model.name == name
        assert len(model.nodes) > 10

    def test_dae_layer_share_above_80_percent(self):
        # Paper Sec. III-A: DW+PW make up over 80% of the layers of
        # deep lightweight CNNs.
        for build in (build_vww, build_person_detection, build_mbv2):
            assert build().dae_layer_fraction() > 0.8

    def test_mbv2_is_deepest(self):
        assert len(build_mbv2().conv_nodes()) > len(build_vww().conv_nodes())
        assert len(build_mbv2().conv_nodes()) > len(
            build_person_detection().conv_nodes()
        )

    def test_mbv2_has_residual_adds(self):
        kinds = [n.layer.kind.value for n in build_mbv2().nodes]
        assert "add" in kinds

    def test_pd_is_mbv1_style_no_residuals(self):
        kinds = [n.layer.kind.value for n in build_person_detection().nodes]
        assert "add" not in kinds

    @pytest.mark.parametrize(
        "build,classes",
        [(build_vww, 2), (build_person_detection, 2), (build_mbv2, 1000)],
    )
    def test_output_classes(self, build, classes):
        model = build()
        assert model.output_shape == (classes,)

    def test_macs_in_tinyml_range(self):
        # MCUNet-scale models run single-digit-to-tens of MMACs.
        for build in (build_vww, build_person_detection, build_mbv2):
            mmacs = build().total_macs() / 1e6
            assert 1 < mmacs < 100

    def test_weights_fit_mcu_flash(self):
        for build in (build_vww, build_person_detection, build_mbv2):
            assert build().total_weight_bytes() < 2 * 1024 * 1024

    def test_builders_deterministic(self):
        a, b = build_vww(), build_vww()
        out_a, out_b = run_model(a), run_model(b)
        assert np.array_equal(out_a.data, out_b.data)

    def test_different_seeds_differ(self):
        a = build_vww(seed=1)
        b = build_vww(seed=2)
        assert not np.array_equal(run_model(a).data, run_model(b).data)

    @pytest.mark.parametrize("build", [build_vww, build_person_detection])
    def test_end_to_end_inference(self, build):
        out = run_model(build())
        assert out.shape == (2,)

    def test_width_multiplier_changes_channels(self):
        narrow = build_mbv2(width_mult=0.2)
        wide = build_mbv2(width_mult=0.5)
        assert wide.total_weight_bytes() > narrow.total_weight_bytes()

    def test_tiny_model_fast_path(self):
        model = build_tiny_test_model()
        out = run_model(model)
        assert out.shape == (4,)
        assert len(model.dae_nodes()) >= 4
