"""Dense, pooling, residual add, flatten."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import (
    Dense,
    Flatten,
    GlobalAveragePool,
    LayerKind,
    MaxPool2D,
    QuantizedTensor,
    ResidualAdd,
)
from repro.nn.quantize import QuantParams

IN_PARAMS = QuantParams(scale=0.05, zero_point=0)
OUT_PARAMS = QuantParams(scale=0.1, zero_point=0)


def qt(data, scale=0.05, zp=0):
    return QuantizedTensor(
        data=np.asarray(data, dtype=np.int8), scale=scale, zero_point=zp
    )


class TestDense:
    def make(self, in_features=12, out_features=4, seed=0):
        rng = np.random.default_rng(seed)
        return Dense(
            name="fc",
            weights=rng.normal(0, 0.3, size=(in_features, out_features)),
            bias=rng.normal(0, 0.1, size=out_features),
            input_params=IN_PARAMS,
            output_params=OUT_PARAMS,
        )

    def test_flattens_any_input_shape(self):
        layer = self.make()
        assert layer.output_shape((2, 2, 3)) == (4,)
        assert layer.output_shape((12,)) == (4,)

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            self.make().output_shape((5, 5, 1))

    def test_numerics_match_float(self):
        layer = self.make()
        rng = np.random.default_rng(1)
        x = qt(rng.integers(-128, 128, size=(12,)))
        out = layer.forward(x)
        w_real = layer.weights_q.astype(np.float64) * layer.weight_scale
        b_real = (
            layer.bias_q.astype(np.float64)
            * IN_PARAMS.scale * layer.weight_scale
        )
        expected = x.dequantize() @ w_real + b_real
        assert np.abs(out.dequantize() - expected).max() <= OUT_PARAMS.scale * 1.01

    def test_macs_and_kind(self):
        layer = self.make()
        assert layer.macs((12,)) == 48
        assert layer.kind is LayerKind.DENSE
        assert not layer.supports_dae


class TestGlobalAveragePool:
    def test_shape(self):
        assert GlobalAveragePool("gap").output_shape((7, 5, 16)) == (1, 1, 16)

    def test_mean_rounded_half_away(self):
        layer = GlobalAveragePool("gap")
        data = np.zeros((2, 2, 2), dtype=np.int8)
        data[:, :, 0] = [[1, 2], [1, 2]]      # mean 1.5 -> 2
        data[:, :, 1] = [[-1, -2], [-1, -2]]  # mean -1.5 -> -2
        out = layer.forward(qt(data))
        assert out.data[0, 0, 0] == 2
        assert out.data[0, 0, 1] == -2

    def test_keeps_quantization_params(self):
        out = GlobalAveragePool("gap").forward(qt(np.ones((2, 2, 3)), 0.07, 9))
        assert out.scale == 0.07
        assert out.zero_point == 9

    def test_no_macs(self):
        assert GlobalAveragePool("gap").macs((4, 4, 8)) == 0


class TestMaxPool:
    def test_shape_and_values(self):
        layer = MaxPool2D("mp", pool=2)
        data = np.arange(16, dtype=np.int8).reshape(4, 4, 1)
        out = layer.forward(qt(data))
        assert out.shape == (2, 2, 1)
        assert out.data[:, :, 0].tolist() == [[5, 7], [13, 15]]

    def test_indivisible_input_rejected(self):
        with pytest.raises(ShapeError):
            MaxPool2D("mp", pool=2).output_shape((5, 4, 1))

    def test_bad_pool_size(self):
        with pytest.raises(ShapeError):
            MaxPool2D("mp", pool=0)


class TestResidualAdd:
    def make(self, sa=0.05, sb=0.05, so=0.05):
        return ResidualAdd(
            name="add",
            a_params=QuantParams(scale=sa, zero_point=0),
            b_params=QuantParams(scale=sb, zero_point=0),
            output_params=QuantParams(scale=so, zero_point=0),
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            self.make().output_shape((2, 2, 3), (2, 2, 4))

    def test_same_scale_addition(self):
        layer = self.make()
        a = qt(np.full((2, 2, 1), 10))
        b = qt(np.full((2, 2, 1), 5))
        out = layer.forward(a, b)
        assert np.all(out.data == 15)

    def test_rescaling_addition(self):
        # a at scale 0.1, b at scale 0.05, out at 0.1:
        # real = 10*0.1 + 20*0.05 = 2.0 -> q = 20 at scale 0.1.
        layer = self.make(sa=0.1, sb=0.05, so=0.1)
        a = qt(np.full((1, 1, 1), 10), 0.1)
        b = qt(np.full((1, 1, 1), 20), 0.05)
        out = layer.forward(a, b)
        assert out.data[0, 0, 0] == 20

    def test_negative_values(self):
        layer = self.make()
        a = qt(np.full((1, 1, 1), -30))
        b = qt(np.full((1, 1, 1), 10))
        assert layer.forward(a, b).data[0, 0, 0] == -20

    def test_saturation(self):
        layer = self.make()
        a = qt(np.full((1, 1, 1), 120))
        b = qt(np.full((1, 1, 1), 120))
        assert layer.forward(a, b).data[0, 0, 0] == 127

    def test_kind(self):
        layer = self.make()
        assert layer.kind is LayerKind.ADD
        assert not layer.supports_dae


class TestFlatten:
    def test_shape_and_data(self):
        layer = Flatten("flat")
        x = qt(np.arange(12).reshape(2, 2, 3))
        out = layer.forward(x)
        assert out.shape == (12,)
        assert np.array_equal(out.data, np.arange(12, dtype=np.int8))

    def test_kind(self):
        assert Flatten("flat").kind is LayerKind.FLATTEN
