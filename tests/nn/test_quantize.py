"""Quantization math: qparams, round trips, fixed-point requantization."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantizationError
from repro.nn import (
    choose_qparams,
    quantize_array,
    quantize_multiplier,
    quantize_tensor,
    requantize,
)
from repro.nn.quantize import QuantParams, dequantize_error


class TestChooseQParams:
    def test_range_covers_zero(self):
        params = choose_qparams(2.0, 6.0)
        # Zero must be exactly representable (padding correctness).
        zero_q = round(-0.0 / params.scale) + params.zero_point
        assert -128 <= zero_q <= 127

    def test_symmetric_zero_point_is_zero(self):
        params = choose_qparams(-3.0, 5.0, symmetric=True)
        assert params.zero_point == 0

    def test_inverted_range_rejected(self):
        with pytest.raises(QuantizationError):
            choose_qparams(1.0, -1.0)

    def test_nonfinite_rejected(self):
        with pytest.raises(QuantizationError):
            choose_qparams(float("nan"), 1.0)
        with pytest.raises(QuantizationError):
            choose_qparams(0.0, float("inf"))

    def test_degenerate_range_allowed(self):
        params = choose_qparams(0.0, 0.0)
        assert params.scale > 0


class TestQuantizeRoundTrip:
    def test_exact_grid_values_round_trip(self):
        params = QuantParams(scale=0.5, zero_point=3)
        values = np.array([-2.0, 0.0, 1.5, 10.0])
        q = quantize_array(values, params)
        reconstructed = params.scale * (q.astype(np.float32) - params.zero_point)
        np.testing.assert_allclose(reconstructed, values)

    def test_clipping_at_int8_bounds(self):
        params = QuantParams(scale=0.1, zero_point=0)
        q = quantize_array(np.array([1e6, -1e6]), params)
        assert list(q) == [127, -128]

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100),
            min_size=1,
            max_size=64,
        )
    )
    def test_reconstruction_error_bounded(self, values):
        """Property: in-range values reconstruct within half a step."""
        arr = np.asarray(values)
        tensor = quantize_tensor(arr)
        # Half a step, plus a whisker for zero-point rounding at the
        # extreme ends of the range interacting with round-half-even.
        assert dequantize_error(arr, tensor) <= tensor.scale * 0.501 + 1e-6


class TestQuantizeMultiplier:
    @pytest.mark.parametrize("real", [0.9, 0.5, 0.25, 0.001, 1e-6])
    def test_decomposition_accuracy(self, real):
        m0, shift = quantize_multiplier(real)
        reconstructed = m0 * 2.0 ** (-31 - shift)
        assert reconstructed == pytest.approx(real, rel=1e-8)

    def test_mantissa_normalized(self):
        m0, _ = quantize_multiplier(0.3)
        assert (1 << 30) <= m0 < (1 << 31)

    @pytest.mark.parametrize("real", [0.0, 1.0, 1.5, -0.3])
    def test_out_of_domain_rejected(self, real):
        with pytest.raises(QuantizationError):
            quantize_multiplier(real)

    @given(st.floats(min_value=1e-9, max_value=0.999999))
    def test_decomposition_property(self, real):
        """Property: |m0 * 2^-(31+shift) - real| is tiny for all reals."""
        m0, shift = quantize_multiplier(real)
        assert m0 * 2.0 ** (-31 - shift) == pytest.approx(real, rel=1e-6)


class TestRequantize:
    def test_matches_float_rounding(self):
        real_multiplier = 0.0037
        m0, shift = quantize_multiplier(real_multiplier)
        acc = np.array([12345, -9876, 0, 100000], dtype=np.int64)
        out = requantize(acc, m0, shift, output_zero_point=3)
        expected = np.clip(
            np.array([round(v * real_multiplier) + 3 for v in acc]),
            -128,
            127,
        )
        np.testing.assert_array_equal(out, expected)

    def test_round_half_away_from_zero(self):
        # multiplier 0.5 exactly: acc=1 -> 0.5 -> rounds to 1; acc=-1 -> -1.
        m0, shift = quantize_multiplier(0.5)
        out = requantize(np.array([1, -1], dtype=np.int64), m0, shift, 0)
        assert list(out) == [1, -1]

    def test_activation_clamp(self):
        m0, shift = quantize_multiplier(0.5)
        acc = np.array([-100, 0, 100], dtype=np.int64)
        out = requantize(
            acc, m0, shift, output_zero_point=0,
            activation_min=0, activation_max=20,
        )
        assert list(out) == [0, 0, 20]

    def test_invalid_clamp_rejected(self):
        m0, shift = quantize_multiplier(0.5)
        with pytest.raises(QuantizationError):
            requantize(
                np.array([0], dtype=np.int64), m0, shift, 0,
                activation_min=5, activation_max=1,
            )

    @given(
        st.lists(
            st.integers(min_value=-(2**30), max_value=2**30),
            min_size=1,
            max_size=32,
        ),
        st.floats(min_value=1e-6, max_value=0.99),
    )
    def test_requantize_matches_float_model(self, accs, real):
        """Property: integer requantization == rounded float scaling."""
        m0, shift = quantize_multiplier(real)
        acc = np.array(accs, dtype=np.int64)
        out = requantize(acc, m0, shift, 0)
        # Allow 1 LSB of slack for mantissa truncation on huge accs.
        float_model = np.clip(
            np.array(
                [math.floor(abs(v) * real + 0.5) * (1 if v >= 0 else -1)
                 for v in acc]
            ),
            -128,
            127,
        )
        assert np.max(np.abs(out.astype(np.int32) - float_model)) <= 1
