"""End-to-end pipeline: optimization, deployment, baselines."""

import pytest

from repro import DAEDVFSPipeline
from repro.errors import QoSInfeasibleError, SolverError
from repro.optimize import MODERATE, RELAXED, TIGHT, QoSLevel


@pytest.fixture
def pipeline(board):
    return DAEDVFSPipeline(board=board)


class TestOptimize:
    def test_plan_covers_all_conv_nodes(self, pipeline, tiny_model):
        result = pipeline.optimize(tiny_model, qos_level=MODERATE)
        conv_ids = {n.node_id for n in tiny_model.conv_nodes()}
        assert set(result.plan.layer_plans) == conv_ids

    def test_deployment_meets_qos(self, pipeline, tiny_model):
        for level in (TIGHT, MODERATE, RELAXED):
            result = pipeline.optimize(tiny_model, qos_level=level)
            report = pipeline.deploy(tiny_model, result.plan)
            assert report.met_qos
            assert report.latency_s <= result.qos_s

    def test_absolute_qos_budget(self, pipeline, tiny_model):
        baseline = pipeline.baseline_latency_s(tiny_model)
        result = pipeline.optimize(tiny_model, qos_s=baseline * 1.4)
        assert result.qos_s == pytest.approx(baseline * 1.4)

    def test_both_qos_forms_rejected(self, pipeline, tiny_model):
        with pytest.raises(SolverError):
            pipeline.optimize(tiny_model, qos_level=TIGHT, qos_s=1.0)
        with pytest.raises(SolverError):
            pipeline.optimize(tiny_model)

    def test_impossible_qos_raises(self, pipeline, tiny_model):
        baseline = pipeline.baseline_latency_s(tiny_model)
        with pytest.raises(QoSInfeasibleError) as info:
            pipeline.optimize(tiny_model, qos_s=baseline / 100)
        assert info.value.min_latency_s > info.value.qos_s

    def test_pareto_fronts_attached(self, pipeline, tiny_model):
        result = pipeline.optimize(tiny_model, qos_level=MODERATE)
        assert set(result.pareto_fronts) == set(result.plan.layer_plans)
        for front in result.pareto_fronts.values():
            assert front

    def test_relaxed_qos_never_costs_more_energy(self, pipeline, tiny_model):
        tight = pipeline.deploy(
            tiny_model, pipeline.optimize(tiny_model, qos_level=TIGHT).plan
        )
        relaxed = pipeline.deploy(
            tiny_model, pipeline.optimize(tiny_model, qos_level=RELAXED).plan
        )
        assert (
            relaxed.inference_energy_j
            <= tight.inference_energy_j * 1.001
        )

    def test_unknown_solver_rejected(self, board):
        with pytest.raises(SolverError):
            DAEDVFSPipeline(board=board, solver="magic")

    def test_greedy_solver_runs(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board, solver="greedy")
        result = pipeline.optimize(tiny_model, qos_level=MODERATE)
        report = pipeline.deploy(tiny_model, result.plan)
        assert report.met_qos

    def test_dp_never_worse_than_greedy(self, board, tiny_model):
        dp = DAEDVFSPipeline(board=board, solver="dp")
        greedy = DAEDVFSPipeline(board=board, solver="greedy")
        for level in (TIGHT, RELAXED):
            e_dp = dp.deploy(
                tiny_model, dp.optimize(tiny_model, qos_level=level).plan
            ).energy_j
            e_greedy = greedy.deploy(
                tiny_model,
                greedy.optimize(tiny_model, qos_level=level).plan,
            ).energy_j
            assert e_dp <= e_greedy * 1.005


class TestCompare:
    def test_ours_beats_both_baselines(self, pipeline, tiny_model):
        row = pipeline.compare(tiny_model, MODERATE)
        assert row.ours.energy_j < row.clock_gated.energy_j
        assert row.clock_gated.energy_j < row.tinyengine.energy_j
        assert 0 < row.savings_vs_tinyengine < 1
        assert 0 < row.savings_vs_clock_gated < 1

    def test_savings_vs_te_grow_with_slack(self, pipeline, tiny_model):
        tight = pipeline.compare(tiny_model, TIGHT)
        relaxed = pipeline.compare(tiny_model, RELAXED)
        assert (
            relaxed.savings_vs_tinyengine > tight.savings_vs_tinyengine
        )

    def test_all_engines_share_the_qos_window(self, pipeline, tiny_model):
        row = pipeline.compare(tiny_model, MODERATE)
        assert row.ours.qos_s == row.tinyengine.qos_s == row.clock_gated.qos_s

    def test_zero_slack_feasible(self, pipeline, tiny_model):
        # Iso-latency with no slack at all: DAE makes the model at
        # least as fast as the baseline, so this must be solvable.
        row = pipeline.compare(tiny_model, QoSLevel(name="iso", slack=0.0))
        assert row.ours.met_qos


class TestFixedOverhead:
    def test_overhead_positive_and_small(self, pipeline, tiny_model):
        overhead = pipeline.fixed_overhead_s(tiny_model)
        baseline = pipeline.baseline_latency_s(tiny_model)
        assert 0 < overhead < 0.5 * baseline


class TestNonDAEModels:
    def test_pipeline_on_conv_dense_only_model(self, pipeline):
        """A model with no DAE-eligible layers degenerates to pure
        per-layer DVFS and must still optimize and deploy."""
        import numpy as np

        from repro.nn import Conv2D, Dense, Flatten, Model
        from repro.nn.models import INPUT_PARAMS, LOGIT_PARAMS, RELU6_PARAMS

        rng = np.random.default_rng(0)
        model = Model(
            name="convnet", input_shape=(8, 8, 3),
            input_params=INPUT_PARAMS,
        )
        model.add(
            Conv2D(
                "c1", rng.normal(0, 0.3, (3, 3, 3, 8)), None,
                INPUT_PARAMS, RELU6_PARAMS, stride=2,
            )
        )
        model.add(
            Conv2D(
                "c2", rng.normal(0, 0.3, (3, 3, 8, 8)), None,
                RELU6_PARAMS, RELU6_PARAMS, stride=2,
            )
        )
        model.add(Flatten("flat"))
        model.add(
            Dense(
                "fc", rng.normal(0, 0.2, (32, 4)), None,
                RELU6_PARAMS, LOGIT_PARAMS,
            )
        )
        result = pipeline.optimize(model, qos_level=MODERATE)
        assert all(
            lp.granularity == 0 for lp in result.plan.layer_plans.values()
        )
        report = pipeline.deploy(model, result.plan)
        assert report.met_qos
