"""Measured-profiles mode: the pipeline fed by the sensor chain."""

import pytest

from repro import DAEDVFSPipeline
from repro.dse import paper_design_space
from repro.optimize import MODERATE
from repro.power import INA219Config
from repro.profiling import LayerMonitor, LayerProfiler


@pytest.fixture(scope="module")
def pipelines():
    analytic = DAEDVFSPipeline()
    monitor = LayerMonitor(
        analytic.board,
        sensor_config=INA219Config(sample_period_s=2e-6, noise_std_w=5e-4),
    )
    profiler = LayerProfiler(
        analytic.board,
        paper_design_space(analytic.board.power_model),
        monitor=monitor,
    )
    measured = DAEDVFSPipeline(board=analytic.board, profiler=profiler)
    return analytic, measured


class TestMeasuredMode:
    def test_measured_plan_meets_qos(self, pipelines, tiny_model):
        _, measured = pipelines
        result = measured.optimize(tiny_model, qos_level=MODERATE)
        report = measured.deploy(tiny_model, result.plan)
        assert report.met_qos

    def test_measured_energy_close_to_analytic(self, pipelines, tiny_model):
        """Profiling noise and timer quantization must not derail the
        optimization: the measured-mode schedule's deployed energy is
        within a few percent of the analytic-mode schedule's."""
        analytic, measured = pipelines
        measured.profiler.monitor.sensor.reset()
        e_analytic = analytic.deploy(
            tiny_model,
            analytic.optimize(tiny_model, qos_level=MODERATE).plan,
        ).energy_j
        e_measured = measured.deploy(
            tiny_model,
            measured.optimize(tiny_model, qos_level=MODERATE).plan,
        ).energy_j
        assert e_measured == pytest.approx(e_analytic, rel=0.05)

    def test_clouds_have_same_shape(self, pipelines, tiny_model):
        analytic, measured = pipelines
        a_clouds = analytic._explore_clouds(tiny_model)
        m_clouds = measured._explore_clouds(tiny_model)
        assert set(a_clouds) == set(m_clouds)
        for node_id in a_clouds:
            assert len(a_clouds[node_id]) == len(m_clouds[node_id])

    def test_measured_points_track_analytic(self, pipelines, tiny_model):
        analytic, measured = pipelines
        measured.profiler.monitor.sensor.reset()
        a_clouds = analytic._explore_clouds(tiny_model)
        m_clouds = measured._explore_clouds(tiny_model)
        node_id = next(iter(a_clouds))
        a_by_key = {
            (p.granularity, p.hfo.sysclk_hz): p for p in a_clouds[node_id]
        }
        for p in m_clouds[node_id]:
            truth = a_by_key[(p.granularity, p.hfo.sysclk_hz)]
            assert p.latency_s == pytest.approx(truth.latency_s, rel=0.05)
            assert p.energy_j == pytest.approx(truth.energy_j, rel=0.15)
