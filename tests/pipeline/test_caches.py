"""Pipeline Step-2 caches and the refinement-loop budget regression."""

from types import SimpleNamespace

import pytest

from repro import DAEDVFSPipeline
from repro.dse.explorer import SolutionPoint
from repro.nn import LayerKind
from repro.optimize import MODERATE, RELAXED, MCKPItem


class TestStepTwoCaches:
    def test_clouds_memoized_across_calls(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        first = pipeline._explore_clouds(tiny_model)
        # A second call must come from the cache: break the explorer
        # and show the pipeline never notices.
        pipeline.explorer.explore_model = _boom
        assert pipeline._explore_clouds(tiny_model) is first

    def test_fronts_memoized(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        clouds = pipeline._explore_clouds(tiny_model)
        first = pipeline._pareto_fronts(tiny_model, clouds)
        assert pipeline._pareto_fronts(tiny_model, clouds) is first

    def test_fixed_overhead_memoized(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        value = pipeline.fixed_overhead_s(tiny_model)
        pipeline.explorer.pricer.price = _boom
        assert pipeline.fixed_overhead_s(tiny_model) == value

    def test_optimize_across_qos_levels_explores_once(
        self, board, tiny_model
    ):
        pipeline = DAEDVFSPipeline(board=board)
        calls = []
        original = pipeline.explorer.explore_model

        def counting(model):
            calls.append(model.name)
            return original(model)

        pipeline.explorer.explore_model = counting
        pipeline.optimize(tiny_model, qos_level=MODERATE)
        pipeline.optimize(tiny_model, qos_level=RELAXED)
        assert len(calls) == 1

    def test_qos_results_unchanged_by_caching(self, board, tiny_model):
        """Cached Step-2 reuse must not change any priced number."""
        cached = DAEDVFSPipeline(board=board)
        cached.optimize(tiny_model, qos_level=MODERATE)  # warm the caches
        warm = cached.optimize(tiny_model, qos_level=RELAXED)
        cold = DAEDVFSPipeline(board=board).optimize(
            tiny_model, qos_level=RELAXED
        )
        assert warm.plan.predicted_energy_j == cold.plan.predicted_energy_j
        assert warm.plan.predicted_latency_s == cold.plan.predicted_latency_s
        assert warm.plan.granularities() == cold.plan.granularities()

    def test_clear_caches_invalidates(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        pipeline._explore_clouds(tiny_model)
        assert pipeline.tracer.cache_misses > 0
        pipeline.clear_caches()
        assert not pipeline._cloud_cache
        assert not pipeline._front_cache
        assert not pipeline._uniform_front_cache
        assert not pipeline._fixed_overhead_cache
        assert pipeline.tracer.cache_misses == 0
        # And the pipeline rebuilds from scratch afterwards.
        pipeline._explore_clouds(tiny_model)
        assert pipeline.tracer.cache_misses > 0

    def test_shared_tracer_across_components(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        assert pipeline.tracer is pipeline.explorer.tracer
        assert pipeline.tracer is pipeline.runtime.tracer
        assert pipeline.tracer is pipeline._tinyengine._runtime.tracer
        assert pipeline.tracer is pipeline._clock_gated._runtime.tracer

    def test_uniform_classes_memoized(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        clouds = pipeline._explore_clouds(tiny_model)
        first = pipeline._uniform_classes(tiny_model, clouds)
        assert pipeline._uniform_classes(tiny_model, clouds) is first
        assert set(first) == set(pipeline.space.hfo_configs)


def _boom(*args, **kwargs):
    raise AssertionError("cache miss: recomputed a memoized Step-2 result")


class TestRefinementBudgetMonotonicity:
    """Regression: the refinement loop must tighten the *previous*
    effective budget each round.

    The original code recomputed ``conv_budget * 0.999 - unpriced *
    1.05 - ...`` from scratch every round, so when the runtime's
    unpriced overhead grows with the schedule (switch-dominated
    models), consecutive rounds solved near-identical knapsacks until
    ``max_refinements`` was exhausted and the free plan was abandoned.
    """

    def synthetic_classes(self, pipeline):
        """One class whose items let us steer the solver per round.

        Values fall as weights rise, so the DP always picks the
        heaviest item that fits the effective budget.
        """
        hfo = pipeline.space.hfo_configs[-1]
        items = []
        for weight in (0.99, 0.97, 0.95, 0.93, 0.90):
            point = SolutionPoint(
                node_id=0,
                layer_name="synthetic",
                layer_kind=LayerKind.POINTWISE_CONV,
                granularity=0,
                hfo=hfo,
                latency_s=weight,
                energy_j=2.0 - weight,
            )
            items.append(
                MCKPItem(weight=weight, value=2.0 - weight, payload=point)
            )
        return [items]

    def install_growing_overhead(self, pipeline, per_round=0.02):
        """Runtime stub whose unpriced overhead grows every round."""
        state = {"round": 0}

        def fake_run(model, plan, **kwargs):
            state["round"] += 1
            return SimpleNamespace(
                latency_s=plan.predicted_latency_s
                + per_round * state["round"]
            )

        pipeline.runtime.run = fake_run
        return state

    def recording_solver(self, pipeline):
        budgets = []
        original = pipeline._solve_classes

        def recording(classes, budget):
            budgets.append(budget)
            return original(classes, budget)

        pipeline._solve_classes = recording
        return budgets

    def test_converges_on_growing_overhead(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board, max_refinements=3)
        classes = self.synthetic_classes(pipeline)
        state = self.install_growing_overhead(pipeline)
        budgets = self.recording_solver(pipeline)
        plan = pipeline._refine_free_plan(
            tiny_model, classes, conv_budget=1.0, budget=1.0, fixed=0.0
        )
        # The old per-round recompute stalls here (returns None after
        # exhausting max_refinements); compounding converges.
        assert plan is not None
        assert state["round"] <= pipeline.max_refinements + 1
        assert plan.predicted_latency_s <= 1.0

    def test_effective_budget_strictly_decreasing(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board, max_refinements=3)
        classes = self.synthetic_classes(pipeline)
        self.install_growing_overhead(pipeline)
        budgets = self.recording_solver(pipeline)
        pipeline._refine_free_plan(
            tiny_model, classes, conv_budget=1.0, budget=1.0, fixed=0.0
        )
        assert len(budgets) >= 2
        for earlier, later in zip(budgets, budgets[1:]):
            assert later < earlier

    def test_constant_overhead_converges_in_two_rounds(
        self, board, tiny_model
    ):
        """Sanity: the common constant-overhead case is untouched --
        round two's budget equals the original formula's, so existing
        behavior (converge on the second solve) is preserved."""
        pipeline = DAEDVFSPipeline(board=board, max_refinements=3)
        classes = self.synthetic_classes(pipeline)

        def fake_run(model, plan, **kwargs):
            return SimpleNamespace(latency_s=plan.predicted_latency_s + 0.02)

        pipeline.runtime.run = fake_run
        budgets = self.recording_solver(pipeline)
        plan = pipeline._refine_free_plan(
            tiny_model, classes, conv_budget=1.0, budget=1.0, fixed=0.0
        )
        assert plan is not None
        assert len(budgets) == 2
        assert budgets[1] == pytest.approx(
            1.0 * 0.999 - 0.02 * 1.05 - 2.0 * budgets[0] / 4000
        )
