"""Pipeline internals: fallbacks, resolution sensitivity, policies."""

import functools

import pytest

from repro import DAEDVFSPipeline
from repro.dse import adaptive_granularities
from repro.optimize import MODERATE, TIGHT


class TestUniformFallback:
    def test_uniform_plan_single_hfo(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        result = pipeline.optimize(tiny_model, qos_level=MODERATE)
        clouds = pipeline._explore_clouds(tiny_model)
        baseline = pipeline.baseline_latency_s(tiny_model)
        budget = MODERATE.budget_s(baseline)
        fixed = pipeline.fixed_overhead_s(tiny_model)
        plan = pipeline._best_uniform_hfo_plan(
            tiny_model, clouds, budget - fixed, budget, fixed
        )
        hfos = {lp.hfo for lp in plan.layer_plans.values()}
        assert len(hfos) == 1
        report = pipeline.runtime.run(
            tiny_model, plan, initial_config=plan.initial_config()
        )
        assert report.latency_s <= budget
        assert report.relock_count == 0

    def test_chosen_plan_never_worse_than_uniform(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(board=board)
        result = pipeline.optimize(tiny_model, qos_level=MODERATE)
        clouds = pipeline._explore_clouds(tiny_model)
        budget = result.qos_s
        fixed = result.fixed_overhead_s
        uniform = pipeline._best_uniform_hfo_plan(
            tiny_model, clouds, budget - fixed, budget, fixed
        )
        e_chosen = pipeline.runtime.run(
            tiny_model, result.plan, qos_s=budget,
            initial_config=result.plan.initial_config(),
        ).energy_j
        e_uniform = pipeline.runtime.run(
            tiny_model, uniform, qos_s=budget,
            initial_config=uniform.initial_config(),
        ).energy_j
        assert e_chosen <= e_uniform * (1 + 1e-9)


class TestResolutionSensitivity:
    def test_coarse_and_fine_dp_agree(self, board, tiny_model):
        coarse = DAEDVFSPipeline(board=board, dp_resolution=500)
        fine = DAEDVFSPipeline(board=board, dp_resolution=16000)
        e_coarse = coarse.deploy(
            tiny_model, coarse.optimize(tiny_model, qos_level=MODERATE).plan
        ).energy_j
        e_fine = fine.deploy(
            tiny_model, fine.optimize(tiny_model, qos_level=MODERATE).plan
        ).energy_j
        assert e_coarse == pytest.approx(e_fine, rel=0.03)

    def test_both_meet_qos(self, board, tiny_model):
        for resolution in (500, 16000):
            pipeline = DAEDVFSPipeline(board=board, dp_resolution=resolution)
            result = pipeline.optimize(tiny_model, qos_level=TIGHT)
            assert pipeline.deploy(tiny_model, result.plan).met_qos


class TestAdaptiveIntegration:
    def test_adaptive_pipeline_end_to_end(self, board, tiny_model):
        pipeline = DAEDVFSPipeline(
            board=board,
            granularity_fn=functools.partial(adaptive_granularities, board),
        )
        result = pipeline.optimize(tiny_model, qos_level=MODERATE)
        report = pipeline.deploy(tiny_model, result.plan)
        assert report.met_qos
        # Some layer exploits a beyond-paper granularity.
        assert any(
            lp.granularity > 16 for lp in result.plan.layer_plans.values()
        )

    def test_adaptive_numerics_still_bit_exact(self, board, tiny_model):
        from repro.engine import validate_plan_numerics

        pipeline = DAEDVFSPipeline(
            board=board,
            granularity_fn=functools.partial(adaptive_granularities, board),
        )
        plan = pipeline.optimize(tiny_model, qos_level=MODERATE).plan
        assert validate_plan_numerics(
            tiny_model, plan.granularities(), n_inputs=2
        )
