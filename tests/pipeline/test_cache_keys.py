"""Cache-key completeness: board identity must be part of the key.

Regression for the serve layer's reconfiguration case: memoized Step-2
results (exploration clouds, Pareto fronts, baselines) are only valid
for the exact hardware description they were priced against, so the
pipeline's cache key must cover the board fingerprint -- power-model
*and* timing parameters -- not just the model.
"""

from repro.mcu import make_nucleo_f767zi
from repro.mcu.cache import CacheModel
from repro.mcu.board import make_nucleo_f746zg
from repro.pipeline import DAEDVFSPipeline
from repro.power.model import BoardPowerModel, PowerModelParams
from repro.serve.cache import PlanCache


class TestModelKeyCoversBoard:
    def test_power_param_flip_changes_key(self, tiny_model):
        """Flipping one power constant must miss every memoized cache."""
        pipeline_a = DAEDVFSPipeline(board=make_nucleo_f767zi())
        pipeline_b = DAEDVFSPipeline(
            board=make_nucleo_f767zi(
                power_params=PowerModelParams().scaled(
                    p_mcu_leakage_w=0.011
                )
            )
        )
        assert pipeline_a._model_key(tiny_model) != pipeline_b._model_key(
            tiny_model
        )

    def test_timing_flip_changes_key(self, tiny_model):
        pipeline_a = DAEDVFSPipeline(board=make_nucleo_f767zi())
        pipeline_b = DAEDVFSPipeline(
            board=make_nucleo_f767zi(
                cache=CacheModel(capacity_bytes=4 * 1024)
            )
        )
        assert pipeline_a._model_key(tiny_model) != pipeline_b._model_key(
            tiny_model
        )

    def test_sibling_board_changes_key(self, tiny_model):
        pipeline_a = DAEDVFSPipeline(board=make_nucleo_f767zi())
        pipeline_b = DAEDVFSPipeline(board=make_nucleo_f746zg())
        assert pipeline_a._model_key(tiny_model) != pipeline_b._model_key(
            tiny_model
        )

    def test_identical_boards_share_key(self, tiny_model):
        pipeline_a = DAEDVFSPipeline(board=make_nucleo_f767zi())
        pipeline_b = DAEDVFSPipeline(board=make_nucleo_f767zi())
        assert pipeline_a._model_key(tiny_model) == pipeline_b._model_key(
            tiny_model
        )

    def test_power_model_swap_invalidates_memoized_clouds(
        self, tiny_model
    ):
        """Replacing the board's power model must recompute, in place."""
        pipeline = DAEDVFSPipeline(board=make_nucleo_f767zi())
        first = pipeline._explore_clouds(tiny_model)
        assert pipeline._explore_clouds(tiny_model) is first
        pipeline.board.power_model = BoardPowerModel(
            PowerModelParams().scaled(p_mcu_leakage_w=0.011)
        )
        assert pipeline._explore_clouds(tiny_model) is not first


class TestPlanCacheKeyCoversBoard:
    def test_board_flip_misses_plan_cache(self, tiny_model):
        """The serve-layer mirror of the pipeline regression above."""
        from repro.engine.cost import model_fingerprint

        cache = PlanCache()
        board_a = make_nucleo_f767zi()
        board_b = make_nucleo_f767zi(
            power_params=PowerModelParams().scaled(p_board_static_w=0.2)
        )
        space_fp = ("space",)
        model_fp = model_fingerprint(tiny_model)
        cache.put(
            (model_fp, board_a.fingerprint(), space_fp, ("percent", 30.0)),
            {"plan": "a"},
        )
        assert (
            cache.get(
                (
                    model_fp,
                    board_b.fingerprint(),
                    space_fp,
                    ("percent", 30.0),
                )
            )
            is None
        )
