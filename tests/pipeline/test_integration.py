"""Cross-module integration tests on a paper-scale model.

These exercise the whole stack together on VWW: cost-model vs runtime
agreement, numerics vs scheduling consistency, plan serialization
through deployment, and end-to-end invariants that only hold if every
module agrees on the same hardware description.
"""

import numpy as np
import pytest

from repro import DAEDVFSPipeline, build_vww
from repro.engine import DAEExecutor, load_plan, save_plan, uniform_plan
from repro.nn import QuantizedTensor
from repro.nn.models import INPUT_PARAMS
from repro.optimize import MODERATE
from repro.power import EnergyCategory


@pytest.fixture(scope="module")
def ctx():
    pipeline = DAEDVFSPipeline()
    model = build_vww()
    result = pipeline.optimize(model, qos_level=MODERATE)
    report = pipeline.deploy(model, result.plan)
    return pipeline, model, result, report


class TestEndToEnd:
    def test_qos_met_with_margin_accounting(self, ctx):
        _, _, result, report = ctx
        assert report.met_qos
        assert report.latency_s <= result.qos_s
        # The optimizer should not leave more than ~15% of the budget
        # unused (it would mean it overpriced something badly).
        assert report.latency_s >= 0.8 * result.qos_s

    def test_every_conv_layer_scheduled_and_executed(self, ctx):
        _, model, result, report = ctx
        scheduled = set(result.plan.layer_plans)
        executed = {r.node_id for r in report.layer_reports}
        assert scheduled == {n.node_id for n in model.conv_nodes()}
        assert executed == {n.node_id for n in model.nodes}

    def test_window_energy_decomposition(self, ctx):
        _, _, _, report = ctx
        breakdown = report.account.energy_by_category()
        total = sum(breakdown.values())
        assert total == pytest.approx(report.energy_j)
        assert breakdown[EnergyCategory.COMPUTE] > breakdown.get(
            EnergyCategory.SWITCH, 0.0
        )

    def test_schedule_numerics_bit_exact_on_real_model(self, ctx):
        _, model, result, _ = ctx
        rng = np.random.default_rng(123)
        x = QuantizedTensor(
            rng.integers(-128, 128, size=model.input_shape).astype(np.int8),
            INPUT_PARAMS.scale,
            INPUT_PARAMS.zero_point,
        )
        reference = model.forward(x)
        out, _ = DAEExecutor(result.plan.granularities()).run(model, x)
        assert np.array_equal(out.data, reference.data)

    def test_plan_survives_serialization_and_redeployment(
        self, ctx, tmp_path
    ):
        pipeline, model, result, report = ctx
        path = tmp_path / "vww.plan.json"
        save_plan(result.plan, path)
        redeployed = pipeline.deploy(model, load_plan(path))
        assert redeployed.energy_j == pytest.approx(report.energy_j)
        assert redeployed.latency_s == pytest.approx(report.latency_s)


class TestCostModelRuntimeAgreement:
    def test_uniform_plan_prices_match_runtime(self, ctx):
        """Sum of per-layer DSE prices == runtime totals for a uniform
        plan with a pinned clock (no sequence effects)."""
        pipeline, model, _, _ = ctx
        from repro.clock import max_performance_config
        from repro.engine.cost import TraceBuilder

        hfo = max_performance_config()
        plan = uniform_plan(model, hfo=hfo, granularity=8)
        report = pipeline.runtime.run(model, plan, initial_config=hfo)
        tracer = TraceBuilder(pipeline.board)
        total_latency = 0.0
        total_energy = 0.0
        for node in model.nodes:
            g = plan.granularities().get(node.node_id, 0)
            trace = tracer.build(model, node, g)
            latency, energy = pipeline.explorer.pricer.price(
                trace, hfo, plan.lfo, assume_relock=False
            )
            total_latency += latency
            total_energy += energy
        assert report.latency_s == pytest.approx(total_latency, rel=1e-6)
        assert report.inference_energy_j == pytest.approx(
            total_energy, rel=1e-6
        )

    def test_predicted_energy_close_to_deployed(self, ctx):
        _, _, result, report = ctx
        predicted = result.plan.predicted_energy_j
        # Prediction covers the scheduled conv layers only; deployed
        # inference adds elementwise layers and switching.
        assert predicted <= report.inference_energy_j
        assert report.inference_energy_j <= predicted * 1.25


class TestMonotonicityAcrossBudgets:
    def test_energy_monotone_in_slack(self, ctx):
        pipeline, model, _, _ = ctx
        from repro.optimize import QoSLevel

        energies = []
        for slack in (0.10, 0.30, 0.60):
            level = QoSLevel(name=f"{slack}", slack=slack)
            plan = pipeline.optimize(model, qos_level=level).plan
            energies.append(
                pipeline.runtime.run(
                    model, plan, initial_config=plan.initial_config()
                ).energy_j
            )
        for tighter, looser in zip(energies, energies[1:]):
            assert looser <= tighter * 1.01
