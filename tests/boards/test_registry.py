"""Board registry: lookup, validation, digests, build isolation."""

import json

import pytest

from repro.boards import (
    DEFAULT_BOARD,
    board_names,
    build_board,
    get_spec,
    iter_specs,
    register,
)
from repro.boards.spec import BoardSpec
from repro.errors import BoardError
from repro.mcu import make_nucleo_f767zi
from repro.units import MHZ


class TestRegistry:
    def test_default_board_registered_first(self):
        names = board_names()
        assert names[0] == DEFAULT_BOARD
        assert DEFAULT_BOARD == "nucleo-f767zi"

    def test_shipped_targets_present(self):
        names = set(board_names())
        assert {
            "nucleo-f767zi",
            "nucleo-f746zg",
            "frdm-mcxn947",
            "nucleo-n657x0",
        } <= names

    def test_unknown_board_raises_with_known_list(self):
        with pytest.raises(BoardError, match="frdm-mcxn947"):
            get_spec("no-such-board")

    def test_duplicate_registration_rejected(self):
        import repro.boards.registry as registry_mod

        spec = BoardSpec(
            name="throwaway-test-board",
            title="t",
            core="cortex-m7",
            family="test",
            description="d",
        )
        register(spec)
        try:
            with pytest.raises(BoardError, match="already registered"):
                register(spec)
            register(spec, replace=True)  # explicit override allowed
        finally:
            registry_mod._REGISTRY.pop("throwaway-test-board", None)

    def test_iter_specs_matches_names(self):
        assert [s.name for s in iter_specs()] == board_names()


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(BoardError):
            BoardSpec(
                name="", title="t", core="c", family="f", description="d"
            )

    def test_hse_outside_limits_window_rejected(self):
        from repro.boards.targets import MCXN947_LIMITS

        with pytest.raises(BoardError, match="hse"):
            BoardSpec(
                name="bad-hse",
                title="t",
                core="c",
                family="f",
                description="d",
                limits=MCXN947_LIMITS,  # window tops out at 32 MHz
                hse_hz=50 * MHZ,
                lfo_hz=50 * MHZ,
            )

    def test_empty_pll_ladder_rejected(self):
        with pytest.raises(BoardError):
            BoardSpec(
                name="bad-ladder",
                title="t",
                core="c",
                family="f",
                description="d",
                plln_values=(),
            )


class TestSpecDigests:
    def test_digest_deterministic(self):
        for name in board_names():
            assert get_spec(name).digest() == get_spec(name).digest()

    def test_digests_distinct_across_boards(self):
        digests = [get_spec(n).digest() for n in board_names()]
        assert len(set(digests)) == len(digests)

    def test_to_dict_is_json_ready(self):
        for name in board_names():
            data = get_spec(name).to_dict()
            round_tripped = json.loads(json.dumps(data, sort_keys=True))
            assert round_tripped["name"] == name
            assert "clock" in data and "power" in data and "timing" in data
            assert data["clock"]["sysclk_ladder_hz"]


class TestBuild:
    def test_builds_are_isolated(self):
        a = build_board("nucleo-n657x0")
        b = build_board("nucleo-n657x0")
        assert a is not b
        assert a.rcc is not b.rcc
        assert a.fingerprint() == b.fingerprint()

    def test_default_build_matches_legacy_factory(self):
        assert (
            build_board().fingerprint()
            == make_nucleo_f767zi().fingerprint()
        )

    def test_fingerprints_distinct_across_boards(self):
        prints = [build_board(n).fingerprint() for n in board_names()]
        assert len(set(prints)) == len(prints)

    def test_npu_only_on_the_n6(self):
        assert build_board("nucleo-n657x0").npu is not None
        for name in ("nucleo-f767zi", "nucleo-f746zg", "frdm-mcxn947"):
            assert build_board(name).npu is None

    def test_space_factory_respects_board_ladder(self):
        from repro.boards.registry import get_spec

        for name in ("frdm-mcxn947", "nucleo-n657x0"):
            spec = get_spec(name)
            board = spec.build()
            space = board.space_factory(board)
            limits = spec.limits
            for hfo in space.hfo_configs:
                assert hfo.sysclk_hz <= limits.sysclk_max_hz
            assert space.lfo.sysclk_hz == spec.lfo_hz
