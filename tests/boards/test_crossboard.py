"""Cross-board DSE report: ranking, anchoring, determinism."""

import pytest

from repro.boards import board_names, cross_board_report
from repro.nn import build_tiny_test_model


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


@pytest.fixture(scope="module")
def report(tiny):
    return cross_board_report(tiny, qos_percent=30.0)


class TestReportShape:
    def test_one_row_per_registered_board(self, report):
        assert [r["board"] for r in report["boards"]] == board_names()

    def test_qos_anchored_on_reference_baseline(self, report):
        assert report["reference"] == "nucleo-f767zi"
        assert report["qos_s"] == pytest.approx(
            report["reference_baseline_s"] * 1.30
        )

    def test_requires_exactly_one_qos_form(self, tiny):
        with pytest.raises(ValueError):
            cross_board_report(tiny)
        with pytest.raises(ValueError):
            cross_board_report(tiny, qos_s=0.001, qos_percent=30.0)

    def test_board_subset_honored(self, tiny):
        sub = cross_board_report(
            tiny,
            qos_percent=30.0,
            boards=["nucleo-f767zi", "nucleo-n657x0"],
        )
        assert [r["board"] for r in sub["boards"]] == [
            "nucleo-f767zi",
            "nucleo-n657x0",
        ]

    def test_infeasible_rows_record_min_latency(self, report):
        rows = {r["board"]: r for r in report["boards"]}
        mcx = rows["frdm-mcxn947"]
        if not (mcx["feasible"] and mcx["met_qos"]):
            assert mcx["min_latency_s"] is not None
            assert mcx["min_latency_s"] > report["qos_s"]


class TestRanking:
    def test_ranking_sorted_by_energy(self, report):
        rows = {r["board"]: r for r in report["boards"]}
        energies = [rows[name]["energy_j"] for name in report["ranking"]]
        assert energies == sorted(energies)

    def test_winner_heads_the_ranking(self, report):
        assert report["winner"] == report["ranking"][0]

    def test_only_budget_meeting_boards_ranked(self, report):
        rows = {r["board"]: r for r in report["boards"]}
        for name in report["ranking"]:
            assert rows[name]["feasible"] and rows[name]["met_qos"]

    def test_n6_npu_layers_counted(self, report, tiny):
        from repro.boards import build_board

        rows = {r["board"]: r for r in report["boards"]}
        n6 = rows["nucleo-n657x0"]
        npu = build_board("nucleo-n657x0").npu
        expected = sum(
            1 for n in tiny.nodes if npu.supports(n.layer.kind)
        )
        assert expected > 0
        assert n6["npu_layers"] == expected
        assert rows["nucleo-f767zi"]["npu_layers"] == 0


class TestDeterminism:
    def test_digest_reproduces(self, report, tiny):
        again = cross_board_report(tiny, qos_percent=30.0)
        assert again["digest"] == report["digest"]
        assert again == report
