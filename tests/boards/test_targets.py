"""Calibrated targets: per-board planning, clock limits, NPU pricing."""

import pytest

from repro.boards import board_names, build_board, get_spec
from repro.boards.targets import MCXN947_LIMITS, STM32N6_LIMITS
from repro.clock import RCC, lfo_config
from repro.clock.configs import hsi_config
from repro.clock.limits import resolve_limits
from repro.clock.switching import SwitchCostModel
from repro.dse.explorer import DSEExplorer
from repro.nn import build_tiny_test_model
from repro.optimize import QoSLevel
from repro.pipeline import DAEDVFSPipeline

QOS_30 = QoSLevel(name="30%", slack=0.30)


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


class TestPerBoardPlanning:
    @pytest.mark.parametrize("name", board_names())
    def test_optimize_and_deploy(self, name, tiny):
        """Every registered board plans the tiny model end to end.

        QoS is relative to each board's *own* TinyEngine baseline, so
        30% slack is feasible everywhere regardless of absolute speed.
        """
        board = build_board(name)
        pipeline = DAEDVFSPipeline(board=board)
        result = pipeline.optimize(tiny, qos_level=QOS_30)
        assert result.plan.layer_plans
        report = pipeline.deploy(tiny, result.plan)
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert report.latency_s <= result.qos_s * (1 + 1e-9)

    def test_n6_is_fastest_target(self, tiny):
        latencies = {}
        for name in ("nucleo-f767zi", "nucleo-n657x0"):
            pipeline = DAEDVFSPipeline(board=build_board(name))
            latencies[name] = pipeline.baseline_latency_s(tiny)
        assert latencies["nucleo-n657x0"] < latencies["nucleo-f767zi"]

    @pytest.mark.parametrize("name", board_names())
    def test_vos_ladder_covers_sysclk_range(self, name):
        """Every grid frequency must have a VOS step (power pricing)."""
        spec = get_spec(name)
        params = spec.build().power_model.params
        top_step_hz = max(hz for hz, _ in params.vos_steps)
        assert max(spec.sysclk_ladder_hz()) <= top_step_hz


class TestNPUFrequencyInsensitivity:
    """The issue's pinned N6 behaviour: NPU-mapped layers price as
    fixed-latency segments, identical across the whole HFO ladder."""

    def test_npu_points_identical_across_hfo_ladder(self, tiny):
        board = build_board("nucleo-n657x0")
        space = board.space_factory(board)
        explorer = DSEExplorer(board, space)
        for node in tiny.nodes:
            if not board.npu.supports(node.layer.kind):
                continue
            points = explorer.explore_layer(tiny, node)
            assert len(points) == len(space.hfo_configs)
            assert len({p.latency_s for p in points}) == 1
            assert len({p.energy_j for p in points}) == 1
            assert all(p.granularity == 0 for p in points)

    def test_cpu_points_do_vary_with_frequency(self, tiny):
        """Control: the F767's CPU path spreads over the ladder."""
        from repro.dse.space import paper_design_space

        # The legacy factory ships no space_factory: the pipeline
        # falls back to the paper grid, so the test does too.
        board = build_board("nucleo-f767zi")
        space = paper_design_space(board.power_model)
        explorer = DSEExplorer(board, space)
        node = next(n for n in tiny.nodes if n.layer.supports_dae)
        points = explorer.explore_layer(tiny, node)
        assert len({p.latency_s for p in points}) > 1


class TestPerBoardClockLimits:
    """Satellite: CSS failsafe and PLL budgets come from the board
    descriptor, not hard-coded F7 constants."""

    FAILSAFE_HZ = {
        "nucleo-f767zi": 16e6,
        "nucleo-f746zg": 16e6,
        "frdm-mcxn947": 12e6,
        "nucleo-n657x0": 64e6,
    }

    @staticmethod
    def _faulted_rcc(spec):
        from repro.faults import FaultKind, FaultPlan

        limits = spec.limits
        clock = FaultPlan(
            scheduled=((FaultKind.HSE_DROPOUT, 0),)
        ).clock_for(0)
        return RCC(
            cost_model=SwitchCostModel(
                pll_relock_s=resolve_limits(limits).pll_lock_time_s
            ),
            initial=lfo_config(spec.lfo_hz, limits=limits),
            limits=limits,
            fault_clock=clock,
        )

    @pytest.mark.parametrize("name", sorted(FAILSAFE_HZ))
    def test_css_parks_on_the_boards_own_hsi(self, name):
        spec = get_spec(name)
        rcc = self._faulted_rcc(spec)
        hfo = spec.grid_configs()[0]
        rcc.apply(hfo)  # HSE restart consumes the dropout -> CSS
        assert rcc.css_count == 1
        assert rcc.current == hsi_config(spec.limits)
        assert rcc.current.sysclk_hz == pytest.approx(
            self.FAILSAFE_HZ[name]
        )

    @pytest.mark.parametrize("name", board_names())
    def test_switch_cost_uses_the_boards_lock_budget(self, name):
        spec = get_spec(name)
        board = spec.build()
        budget = resolve_limits(spec.limits).pll_lock_time_s
        assert board.rcc.cost_model.pll_relock_s == pytest.approx(budget)
        hfo = spec.grid_configs()[0]
        cost = board.rcc.apply(hfo)
        assert cost.latency_s >= budget

    def test_lock_budgets_differ_across_parts(self):
        budgets = {
            name: resolve_limits(get_spec(name).limits).pll_lock_time_s
            for name in ("nucleo-f767zi", "frdm-mcxn947", "nucleo-n657x0")
        }
        assert len(set(budgets.values())) == 3

    def test_mcx_ladder_respects_150mhz_cap(self):
        assert max(get_spec("frdm-mcxn947").sysclk_ladder_hz()) <= (
            MCXN947_LIMITS.sysclk_max_hz
        )

    def test_n6_ladder_respects_800mhz_cap(self):
        assert max(get_spec("nucleo-n657x0").sysclk_ladder_hz()) <= (
            STM32N6_LIMITS.sysclk_max_hz
        )
