"""Golden-digest regression pins for the default board.

These digests were captured on the pre-registry tree (before
``repro.boards`` existed).  The registry refactor must keep every
default-board artifact byte-identical: same plans, same fleet rows,
same scenario timeline -- so the STM32F767ZI behaviour the paper's
numbers rest on cannot drift while new targets are added.

If one of these fails, the default board's physics changed; that is a
breaking change to every published number, not a test to re-pin.
"""

import json

from repro.cli import main

# Captured pre-refactor (see module docstring) -- do not re-pin.
PLAN_TINY_30 = (
    "ff21a93658e71379ebeb56cd1f9f1e078e3b3711a4a0c77cc8005ad34d35c3f6"
)
OPTIMIZE_TINY_30 = (
    "ef76648cdba3a046af5a812392fa1ca8e5e8233fe7b4f230e5f3368c46c28e4f"
)
FLEET_8_SEED0_EPOCHS2 = (
    "5d770747d59e74c3d310736afb8d35e555e89f8550222ce5495d780bcd026a2b"
)
SCENARIO_ZERO_EVENT_6_SEED0 = (
    "f4baadc0b30ed2bb68664006d46295db9d97ddaed7b0c5d6ec05365603209f64"
)
SCENARIO_ZERO_EVENT_FLEET = (
    "615a199e508630db23a9a0354861a67738d23ab314dcdd7ff866df9420024589"
)


def run_json(capsys, argv):
    assert main(argv + ["--json"]) == 0
    return json.loads(capsys.readouterr().out)


class TestDefaultBoardDigestPins:
    def test_plan_payload_pinned(self, capsys):
        payload = run_json(
            capsys, ["plan", "tiny", "--qos-percent", "30"]
        )
        assert payload["digest"] == PLAN_TINY_30
        assert "board" not in payload

    def test_optimize_payload_pinned(self, capsys):
        payload = run_json(
            capsys, ["optimize", "tiny", "--qos-percent", "30"]
        )
        assert payload["digest"] == OPTIMIZE_TINY_30
        assert "board" not in payload

    def test_fleet_report_pinned(self, capsys):
        payload = run_json(
            capsys,
            [
                "fleet", "--devices", "8", "--seed", "0",
                "--epochs", "2",
            ],
        )
        assert payload["digest"] == FLEET_8_SEED0_EPOCHS2
        assert "boards" not in payload
        assert all("board" not in row for row in payload["devices"])

    def test_zero_event_scenario_pinned(self, capsys):
        payload = run_json(
            capsys,
            ["scenario", "zero-event", "--devices", "6", "--seed", "0"],
        )
        assert payload["digest"] == SCENARIO_ZERO_EVENT_6_SEED0
        assert payload["fleet"]["digest"] == SCENARIO_ZERO_EVENT_FLEET
        assert "boards" not in payload["config"]
