"""Firmware scaffolding generation."""

import pytest

from repro import DAEDVFSPipeline
from repro.codegen import (
    distinct_hfos,
    generate_clock_header,
    generate_firmware,
    generate_inference_source,
)
from repro.engine import DeploymentPlan, LayerPlan, uniform_plan
from repro.errors import GraphError
from repro.nn import build_tiny_test_model
from repro.optimize import MODERATE


@pytest.fixture(scope="module")
def planned():
    pipeline = DAEDVFSPipeline()
    model = build_tiny_test_model()
    result = pipeline.optimize(model, qos_level=MODERATE)
    return model, result.plan


class TestClockHeader:
    def test_contains_pll_register_values(self, planned):
        model, plan = planned
        header = generate_clock_header(plan)
        for config in distinct_hfos(plan):
            mhz = int(round(config.sysclk_hz / 1e6))
            assert f"HFO_{mhz}MHZ_PLLM {config.pll.pllm}U" in header
            assert f"HFO_{mhz}MHZ_PLLN {config.pll.plln}U" in header

    def test_lfo_frequency_emitted(self, planned):
        _, plan = planned
        header = generate_clock_header(plan)
        assert f"LFO_HSE_HZ {int(plan.lfo.hse_hz)}UL" in header

    def test_include_guard(self, planned):
        _, plan = planned
        header = generate_clock_header(plan)
        assert header.startswith("/*")
        assert "#ifndef DAE_DVFS_CLOCKS_H" in header
        assert header.rstrip().endswith("#endif /* DAE_DVFS_CLOCKS_H */")

    def test_non_pll_hfo_rejected(self, tiny_model, lfo):
        plan = DeploymentPlan(model_name=tiny_model.name)
        plan.layer_plans[1] = LayerPlan(node_id=1, granularity=0, hfo=lfo)
        with pytest.raises(GraphError):
            generate_clock_header(plan)


class TestInferenceSource:
    def test_listing1_structure_for_dae_layers(self, planned):
        model, plan = planned
        source = generate_inference_source(model, plan)
        assert "ClockSwitchHSE(LFO_HSE_HZ);" in source
        assert "ClockSwitchPLL(" in source
        assert "memory-bound segment" in source
        assert "compute-bound segment" in source

    def test_every_layer_mentioned(self, planned):
        model, plan = planned
        source = generate_inference_source(model, plan)
        for node in model.nodes:
            assert node.layer.name in source

    def test_granularity_in_loop_bounds(self, planned):
        model, plan = planned
        source = generate_inference_source(model, plan)
        for node_id, lp in plan.layer_plans.items():
            node = model.nodes[node_id - 1]
            if lp.granularity > 0 and node.layer.supports_dae:
                assert f"base += {lp.granularity}" in source

    def test_braces_balanced(self, planned):
        model, plan = planned
        source = generate_inference_source(model, plan)
        assert source.count("{") == source.count("}")

    def test_fused_layers_have_no_hse_switch(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        source = generate_inference_source(tiny_model, plan)
        assert "ClockSwitchHSE" not in source
        assert "ClockSwitchPLL" in source

    def test_wrong_model_rejected(self, planned, tiny_model):
        _, plan = planned
        other = build_tiny_test_model(input_hw=8)
        other.name = "other"
        with pytest.raises(GraphError):
            generate_inference_source(other, plan)

    def test_deterministic(self, planned):
        model, plan = planned
        assert generate_inference_source(model, plan) == (
            generate_inference_source(model, plan)
        )


class TestFirmwareBundle:
    def test_both_files_present(self, planned):
        model, plan = planned
        files = generate_firmware(model, plan)
        assert set(files) == {"dae_dvfs_clocks.h", "dae_dvfs_inference.c"}
        assert '#include "dae_dvfs_clocks.h"' in files["dae_dvfs_inference.c"]


class TestLargeModels:
    def test_mbv2_scale_generation(self):
        from repro import DAEDVFSPipeline
        from repro.nn import build_vww
        from repro.optimize import TIGHT

        pipeline = DAEDVFSPipeline()
        model = build_vww()
        plan = pipeline.optimize(model, qos_level=TIGHT).plan
        files = generate_firmware(model, plan)
        source = files["dae_dvfs_inference.c"]
        assert source.count("{") == source.count("}")
        # Every scheduled DAE layer emits its buffer.
        dae_layers = sum(
            1 for lp in plan.layer_plans.values() if lp.granularity > 0
        )
        assert source.count("static q7_t buf[") == dae_layers
