"""Heterogeneous fleets: board mixing, stream stability, determinism."""

import pytest

from repro.errors import BoardError
from repro.fleet import FleetScheduler, aggregate_fleet, sample_fleet
from repro.nn import build_tiny_test_model
from repro.optimize import QoSLevel

MIX = ("nucleo-f767zi", "frdm-mcxn947", "nucleo-n657x0")


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


class TestSampling:
    def test_assignment_deterministic(self):
        a = sample_fleet(8, seed=3, boards=list(MIX))
        b = sample_fleet(8, seed=3, boards=list(MIX))
        assert [d.board.name for d in a] == [d.board.name for d in b]

    def test_mix_actually_mixes(self):
        fleet = sample_fleet(16, seed=3, boards=list(MIX))
        names = {d.board.name for d in fleet}
        assert len(names) > 1
        assert names <= set(MIX)

    def test_unknown_board_rejected(self):
        with pytest.raises(BoardError):
            sample_fleet(4, seed=0, boards=["no-such-board"])

    def test_empty_mix_rejected(self):
        with pytest.raises(Exception):
            sample_fleet(4, seed=0, boards=[])

    def test_device_streams_unshifted_by_board_mixing(self):
        """Board assignment draws from its own sibling stream, so
        device k's thermal/battery perturbations are identical whether
        or not the fleet mixes boards (same root seed)."""
        plain = sample_fleet(6, seed=11)
        mixed = sample_fleet(6, seed=11, boards=list(MIX))
        for p, m in zip(plain, mixed):
            assert m.thermal.t_ambient_c == pytest.approx(
                p.thermal.t_ambient_c
            )
            assert m.battery.charge_fraction == pytest.approx(
                p.battery.charge_fraction
            )

    def test_homogeneous_default_board_unchanged(self):
        """boards=None is byte-identical to the pre-registry sampler."""
        plain = sample_fleet(4, seed=7)
        assert all(d.board.name == "nucleo-f767zi" for d in plain)


class TestSchedulingAndReport:
    def test_heterogeneous_run_deterministic(self, tiny):
        level = QoSLevel(name="30%", slack=0.30)
        digests = []
        for pooled in (True, False):
            fleet = sample_fleet(6, seed=3, boards=list(MIX))
            scheduler = FleetScheduler(
                tiny, qos_level=level, max_workers=3
            )
            results = scheduler.run(fleet, pooled=pooled)
            qos_s = next(
                r.optimized.qos_s for r in results if r.error is None
            )
            report = aggregate_fleet(tiny, qos_s, results)
            digests.append(report.digest())
        assert digests[0] == digests[1]

    def test_report_carries_board_histogram(self, tiny):
        level = QoSLevel(name="30%", slack=0.30)
        fleet = sample_fleet(6, seed=3, boards=list(MIX))
        scheduler = FleetScheduler(tiny, qos_level=level, max_workers=3)
        results = scheduler.run(fleet, pooled=True)
        qos_s = next(
            r.optimized.qos_s for r in results if r.error is None
        )
        report = aggregate_fleet(tiny, qos_s, results)
        hist = report.board_hist()
        assert sum(hist.values()) == 6
        assert set(hist) == {d.board.name for d in fleet}
        data = report.to_dict()
        assert data["boards"] == hist
        assert all("board" in row for row in data["devices"])
        assert "board mix:" in report.summary()

    def test_homogeneous_report_shape_unchanged(self, tiny):
        level = QoSLevel(name="30%", slack=0.30)
        fleet = sample_fleet(3, seed=0)
        scheduler = FleetScheduler(tiny, qos_level=level, max_workers=2)
        results = scheduler.run(fleet, pooled=True)
        qos_s = next(
            r.optimized.qos_s for r in results if r.error is None
        )
        report = aggregate_fleet(tiny, qos_s, results)
        data = report.to_dict()
        assert "boards" not in data
        assert all("board" not in row for row in data["devices"])
