"""Re-plan governor: drift detection, re-solve, convergence."""

import numpy as np
import pytest

from repro.analysis import Battery, BatteryState
from repro.errors import PowerModelError
from repro.fleet import (
    FleetScheduler,
    GovernorConfig,
    sample_fleet,
    supervise_device,
)
from repro.fleet.variation import DeviceProfile
from repro.mcu import make_nucleo_f767zi
from repro.nn import build_tiny_test_model
from repro.optimize import MODERATE, TIGHT
from repro.power.model import PowerModelParams
from repro.power.thermal import ThermalModelParams


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


def make_profile(
    leak_mult=1.0,
    ambient_c=25.0,
    charge=1.0,
    battery=None,
    sensor_seed=123,
):
    base = PowerModelParams()
    params = base.scaled(
        p_mcu_leakage_w=base.p_mcu_leakage_w * leak_mult
    )
    return DeviceProfile(
        device_id=0,
        board=make_nucleo_f767zi(power_params=params),
        thermal=ThermalModelParams(
            t_ambient_c=ambient_c,
            leakage_ref_w=params.p_mcu_leakage_w,
        ),
        battery=BatteryState(
            battery=battery or Battery(), charge_fraction=charge
        ),
        sensor_seed=np.random.SeedSequence(sensor_seed),
    )


def supervise(tiny, profile, qos_level, config, count_exploration=False):
    scheduler = FleetScheduler(tiny, qos_level=qos_level)
    result = scheduler.plan_device(profile)
    assert result.error is None, result.error
    pipeline = scheduler.pipeline_for(profile)
    calls = []
    if count_exploration:
        original = pipeline.explorer.explore_layer

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        pipeline.explorer.explore_layer = counting
    governed = supervise_device(
        pipeline, profile, tiny, result.optimized, config
    )
    return result, governed, calls


class TestThermalDrift:
    """A hot, leaky-corner device: the paper's plan mispredicts its
    energy, the governor detects it and re-solves toward faster
    schedules."""

    CONFIG = GovernorConfig(epochs=16, max_replans=8)

    def test_drift_detected_and_replanned_without_exploration(self, tiny):
        profile = make_profile(leak_mult=6.0, ambient_c=55.0)
        _, governed, calls = supervise(
            tiny, profile, MODERATE, self.CONFIG, count_exploration=True
        )
        # The first window mispredicts by far more than the tolerance.
        assert abs(governed.samples[0].drift) > self.CONFIG.drift_threshold
        assert governed.replans >= 1
        # Core contract: re-planning re-solves from the cached fronts;
        # the design space is NEVER re-explored.
        assert calls == []

    def test_device_reconverges_under_qos(self, tiny):
        profile = make_profile(leak_mult=6.0, ambient_c=55.0)
        _, governed, _ = supervise(tiny, profile, MODERATE, self.CONFIG)
        assert governed.converged
        last = governed.samples[-1]
        assert last.met_qos
        assert abs(last.drift) <= self.CONFIG.drift_threshold
        # Every epoch kept its QoS budget while the governor adapted.
        assert governed.epochs_met == len(governed.samples)

    def test_temperature_ramp_flips_mckp_picks(self, tiny):
        """The extra leakage joules grow with schedule latency, so a
        hot die re-ranks the fronts toward faster HFOs -- picks the
        cold solve chose get overturned."""
        profile = make_profile(leak_mult=6.0, ambient_c=55.0)
        result, governed, _ = supervise(
            tiny, profile, MODERATE, self.CONFIG
        )
        old = result.optimized.plan.layer_plans
        new = governed.final_plan.layer_plans
        flips = [
            nid for nid in old if old[nid].hfo != new[nid].hfo
        ]
        assert flips
        for nid in flips:
            assert (
                new[nid].hfo.sysclk_hz > old[nid].hfo.sysclk_hz
            )

    def test_nominal_device_never_replans(self, tiny):
        profile = make_profile(leak_mult=1.0, ambient_c=25.0)
        _, governed, _ = supervise(
            tiny, profile, MODERATE, GovernorConfig(epochs=6)
        )
        assert governed.replans == 0
        assert governed.converged

    def test_replan_compensation_shrinks_drift(self, tiny):
        profile = make_profile(leak_mult=6.0, ambient_c=55.0)
        _, governed, _ = supervise(tiny, profile, MODERATE, self.CONFIG)
        trigger = next(s for s in governed.samples if s.replanned)
        after = governed.samples[trigger.epoch + 1]
        assert abs(after.drift) < abs(trigger.drift)


class TestBatterySag:
    def test_sagged_cell_clamps_tight_plan(self, tiny):
        # TIGHT budgets need 216 MHz; a cell holding only 180 MHz
        # clamps the schedule past its budget, and no re-solve can fix
        # it (every under-cap schedule is slower than the budget) --
        # the honest outcome is a non-converged, QoS-missing device.
        profile = make_profile(charge=0.7)
        assert profile.battery.max_sysclk_hz() == pytest.approx(180e6)
        _, governed, calls = supervise(
            tiny, profile, TIGHT, GovernorConfig(epochs=4),
            count_exploration=True,
        )
        assert all(s.clamped for s in governed.samples)
        assert not governed.samples[-1].met_qos
        assert not governed.converged
        assert calls == []

    def test_draining_cell_loses_qos_mid_run(self, tiny):
        # A near-dead cell drains across the supervision horizon: the
        # early epochs hold the plan's frequencies, then the rail caps
        # below the plan and the windows start missing.
        profile = make_profile(
            charge=0.6, battery=Battery(capacity_mah=0.7)
        )
        _, governed, _ = supervise(
            tiny, profile, MODERATE, GovernorConfig(epochs=10)
        )
        first, last = governed.samples[0], governed.samples[-1]
        assert not first.clamped
        assert first.met_qos
        assert last.clamped
        assert not last.met_qos
        assert last.charge_fraction < first.charge_fraction


class TestConfigValidation:
    def test_bad_epochs_rejected(self):
        with pytest.raises(PowerModelError):
            GovernorConfig(epochs=0)

    def test_bad_threshold_rejected(self):
        with pytest.raises(PowerModelError):
            GovernorConfig(drift_threshold=0.0)

    def test_bad_epoch_duration_rejected(self):
        with pytest.raises(PowerModelError):
            GovernorConfig(epoch_s=-1.0)

    def test_negative_replan_budget_rejected(self):
        with pytest.raises(PowerModelError):
            GovernorConfig(max_replans=-1)


class TestDeterminism:
    def test_supervision_is_reproducible(self, tiny):
        config = GovernorConfig(epochs=6)
        runs = []
        for _ in range(2):
            profile = sample_fleet(3, seed=17)[2]
            scheduler = FleetScheduler(tiny, qos_level=MODERATE)
            result = scheduler.plan_device(profile)
            pipeline = scheduler.pipeline_for(profile)
            governed = supervise_device(
                pipeline, profile, tiny, result.optimized, config
            )
            runs.append(governed)
        assert [s.measured_energy_j for s in runs[0].samples] == [
            s.measured_energy_j for s in runs[1].samples
        ]
        assert [s.drift for s in runs[0].samples] == [
            s.drift for s in runs[1].samples
        ]
        assert runs[0].replans == runs[1].replans


def supervise_faulted(tiny, profile, qos_level, config, fault_clock):
    scheduler = FleetScheduler(tiny, qos_level=qos_level)
    result = scheduler.plan_device(profile)
    assert result.error is None, result.error
    pipeline = scheduler.pipeline_for(profile)
    return supervise_device(
        pipeline, profile, tiny, result.optimized, config,
        fault_clock=fault_clock,
    )


class TestFaultTolerance:
    @staticmethod
    def clock_with(*events):
        from repro.faults import FaultPlan

        return FaultPlan(scheduled=tuple(events)).clock_for(0)

    def test_nacked_epochs_invalidated_plan_held(self, tiny):
        from repro.faults import FaultKind

        clock = self.clock_with(
            (FaultKind.SENSOR_NACK, 0), (FaultKind.SENSOR_NACK, 1)
        )
        governed = supervise_faulted(
            tiny, make_profile(), MODERATE, GovernorConfig(epochs=4), clock
        )
        assert governed.invalid_epochs == 2
        assert len(governed.samples) == 4
        assert not governed.samples[0].valid
        assert not governed.samples[1].valid
        assert governed.samples[2].valid
        # Blind epochs never feed the drift trigger.
        assert governed.samples[0].measured_energy_j == 0.0
        assert governed.samples[0].drift == 0.0

    def test_stuck_telemetry_invalidated(self, tiny):
        from repro.faults import FaultKind

        clock = self.clock_with((FaultKind.SENSOR_STUCK, 0))
        governed = supervise_faulted(
            tiny, make_profile(), MODERATE, GovernorConfig(epochs=2), clock
        )
        assert not governed.samples[0].valid
        assert governed.samples[1].valid
        assert governed.invalid_epochs == 1

    def test_brownout_sag_clamps_the_window(self, tiny):
        from repro.faults import FaultPlan

        clock = FaultPlan(brownout_rate=1.0, brownout_derate=0.3).clock_for(0)
        governed = supervise_faulted(
            tiny, make_profile(), MODERATE, GovernorConfig(epochs=2), clock
        )
        assert any(s.clamped for s in governed.samples)

    def test_zero_rate_clock_matches_fault_free_supervision(self, tiny):
        from repro.faults import FaultPlan

        cfg = GovernorConfig(epochs=3)
        clean = supervise_faulted(
            tiny, make_profile(), MODERATE, cfg, fault_clock=None
        )
        hardened = supervise_faulted(
            tiny, make_profile(), MODERATE, cfg,
            fault_clock=FaultPlan().clock_for(0),
        )
        assert len(clean.samples) == len(hardened.samples)
        for a, b in zip(clean.samples, hardened.samples):
            assert a == b
        assert hardened.invalid_epochs == 0
        assert hardened.css_events == 0


class TestConfigHardening:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_coverage": -0.1},
            {"min_coverage": 1.5},
            {"widen_factor": 0.9},
            {"max_widen": 0.5},
        ],
    )
    def test_tolerance_knobs_validated(self, kwargs):
        with pytest.raises(PowerModelError):
            GovernorConfig(**kwargs)

    def test_validation_errors_are_repro_errors(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            GovernorConfig(epochs=0)
