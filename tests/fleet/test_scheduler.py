"""Fleet scheduler: pooled/serial/shared equivalence, cache reuse."""

import threading

import pytest

from repro.errors import ReproError
from repro.fleet import FleetScheduler, sample_fleet
from repro.nn import build_tiny_test_model
from repro.optimize import MODERATE


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


@pytest.fixture(scope="module")
def fleet():
    return sample_fleet(6, seed=3)


def run_results(tiny, fleet, share, pooled, max_workers=4):
    scheduler = FleetScheduler(
        tiny, qos_level=MODERATE, share=share, max_workers=max_workers
    )
    return scheduler.run(fleet, pooled=pooled)


def assert_result_lists_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.device_id == y.device_id
        assert x.error == y.error
        assert x.optimized.plan == y.optimized.plan
        assert x.report.energy_j == y.report.energy_j
        assert x.report.latency_s == y.report.latency_s
        assert x.report.met_qos == y.report.met_qos


class TestEquivalence:
    def test_pooled_equals_serial(self, tiny, fleet):
        pooled = run_results(tiny, fleet, share=True, pooled=True)
        serial = run_results(tiny, fleet, share=True, pooled=False)
        assert_result_lists_identical(pooled, serial)

    def test_shared_equals_private(self, tiny, fleet):
        # The whole point of the fleet caches: sharing timing across
        # devices must not move a single bit of any device's result.
        shared = run_results(tiny, fleet, share=True, pooled=False)
        private = run_results(tiny, fleet, share=False, pooled=False)
        assert_result_lists_identical(shared, private)

    def test_worker_count_does_not_matter(self, tiny, fleet):
        two = run_results(tiny, fleet, share=True, pooled=True, max_workers=2)
        eight = run_results(
            tiny, fleet, share=True, pooled=True, max_workers=8
        )
        assert_result_lists_identical(two, eight)

    def test_results_sorted_by_device_id(self, tiny, fleet):
        results = run_results(tiny, fleet, share=True, pooled=True)
        ids = [r.device_id for r in results]
        assert ids == sorted(ids)


class TestSharing:
    def test_distinct_devices_get_distinct_pipelines(self, tiny, fleet):
        scheduler = FleetScheduler(tiny, qos_level=MODERATE)
        pipes = {
            p.device_id: scheduler.pipeline_for(p) for p in fleet
        }
        assert len(set(map(id, pipes.values()))) == len(fleet)

    def test_equal_fingerprint_devices_share_a_pipeline(self, tiny, fleet):
        scheduler = FleetScheduler(tiny, qos_level=MODERATE)
        profile = fleet[0]
        assert scheduler.pipeline_for(profile) is scheduler.pipeline_for(
            profile
        )

    def test_fleet_shares_one_trace_cache(self, tiny, fleet):
        scheduler = FleetScheduler(tiny, qos_level=MODERATE)
        scheduler.run(fleet, pooled=False)
        # Every device's explorer and runtime point at the same tracer.
        tracers = {
            id(scheduler.pipeline_for(p).explorer.tracer) for p in fleet
        }
        assert tracers == {id(scheduler.shared.tracer)}

    def test_second_device_runs_no_new_schedules(self, tiny, fleet):
        scheduler = FleetScheduler(tiny, qos_level=MODERATE)
        scheduler.plan_device(fleet[0])
        replays = len(scheduler.shared.replays)
        components = len(scheduler.shared.components)
        assert replays > 0 and components > 0
        scheduler.plan_device(fleet[1])
        # Both devices deploy the same schedule shape; the second one
        # re-prices the recorded intervals instead of re-executing.
        assert len(scheduler.shared.replays) == replays
        assert len(scheduler.shared.components) == components

    def test_concurrent_optimize_on_one_shared_pipeline(self, tiny):
        # Hammer a single pipeline from many threads; the lock/
        # setdefault discipline must keep results identical to a cold
        # solo run.
        scheduler = FleetScheduler(tiny, qos_level=MODERATE)
        pipeline = scheduler.pipeline_for(sample_fleet(1, seed=5)[0])
        reference = pipeline.optimize(tiny, qos_level=MODERATE)
        pipeline.clear_caches()
        results = [None] * 8
        errors = []

        def worker(i):
            try:
                results[i] = pipeline.optimize(tiny, qos_level=MODERATE)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for r in results:
            assert r.plan == reference.plan
            assert r.qos_s == reference.qos_s


class TestErrors:
    def test_infeasible_device_captured_not_raised(self, tiny, fleet):
        scheduler = FleetScheduler(tiny, qos_s=1e-9)
        results = scheduler.run(fleet, pooled=True)
        assert len(results) == len(fleet)
        for r in results:
            assert r.error is not None
            assert r.optimized is None

    def test_qos_forms_are_exclusive(self, tiny):
        with pytest.raises(ReproError):
            FleetScheduler(tiny, qos_level=MODERATE, qos_s=0.01)
        with pytest.raises(ReproError):
            FleetScheduler(tiny)

    def test_bad_worker_count_rejected(self, tiny):
        with pytest.raises(ReproError):
            FleetScheduler(tiny, qos_level=MODERATE, max_workers=0)


class TestFaultIsolation:
    def test_poisoned_device_cannot_kill_pooled_run(
        self, tiny, fleet, monkeypatch
    ):
        # A non-ReproError bug in one device's models is captured as
        # DeviceResult.error; the rest of the fleet plans normally.
        scheduler = FleetScheduler(tiny, qos_level=MODERATE, max_workers=4)
        poisoned_id = fleet[2].device_id
        real = FleetScheduler.pipeline_for

        def poisoned(self, profile):
            if profile.device_id == poisoned_id:
                raise RuntimeError("corrupted calibration table")
            return real(self, profile)

        monkeypatch.setattr(FleetScheduler, "pipeline_for", poisoned)
        results = scheduler.run(fleet, pooled=True)
        assert len(results) == len(fleet)
        by_id = {r.device_id: r for r in results}
        bad = by_id[poisoned_id]
        assert bad.error == "RuntimeError: corrupted calibration table"
        assert bad.report is None
        assert bad.attempts == 1  # non-transient: no retry burned
        assert not bad.quarantined  # a bug, not a hardware fault
        assert scheduler.quarantined == []
        for result in results:
            if result.device_id != poisoned_id:
                assert result.error is None
                assert result.report is not None

    def test_transient_faults_retried_then_quarantined(self, tiny, fleet):
        from repro.faults import FaultPlan

        # A watchdog storm kills every deploy attempt: the budget
        # drains and the device lands in quarantine.
        scheduler = FleetScheduler(
            tiny,
            qos_level=MODERATE,
            fault_plan=FaultPlan(watchdog_rate=1.0),
            max_plan_attempts=3,
        )
        result = scheduler.plan_device(fleet[0])
        assert result.error is not None
        assert result.error.startswith("WatchdogResetError")
        assert result.attempts == 3
        assert result.quarantined
        assert scheduler.quarantined == [fleet[0].device_id]

    def test_zero_rate_fault_plan_is_transparent(self, tiny, fleet):
        from repro.faults import FaultPlan

        plain = FleetScheduler(tiny, qos_level=MODERATE)
        hardened = FleetScheduler(
            tiny, qos_level=MODERATE, fault_plan=FaultPlan()
        )
        assert_result_lists_identical(
            plain.run(fleet, pooled=False), hardened.run(fleet, pooled=False)
        )
        assert hardened.quarantined == []

    def test_scheduler_validates_retry_budget(self, tiny):
        with pytest.raises(ReproError):
            FleetScheduler(tiny, qos_level=MODERATE, max_plan_attempts=0)
        with pytest.raises(ReproError):
            FleetScheduler(tiny, qos_level=MODERATE, plan_backoff_s=-1.0)


class TestSeriesHook:
    """The monitor hook: schedulers feed a SeriesStore as they go."""

    def test_serial_samples_once_per_device(self, tiny, fleet):
        from repro.obs.series import SeriesStore

        store = SeriesStore(capacity=16)
        scheduler = FleetScheduler(tiny, qos_level=MODERATE)
        results = scheduler.run(fleet, pooled=False, series=store)
        assert len(results) == len(fleet)
        assert len(store) == len(fleet)
        # Device index is the injected clock: no wall time anywhere.
        assert store.latest()[0] == float(len(fleet))

    def test_pooled_samples_at_the_barrier(self, tiny, fleet):
        from repro.obs.series import SeriesStore

        store = SeriesStore(capacity=16)
        scheduler = FleetScheduler(tiny, qos_level=MODERATE, max_workers=4)
        scheduler.run(fleet, pooled=True, series=store)
        assert len(store) == 1
        assert store.latest()[0] == float(len(fleet))

    def test_series_is_optional_and_results_identical(self, tiny, fleet):
        from repro.obs.series import SeriesStore

        store = SeriesStore(capacity=16)
        with_series = FleetScheduler(tiny, qos_level=MODERATE).run(
            fleet, pooled=False, series=store
        )
        without = FleetScheduler(tiny, qos_level=MODERATE).run(
            fleet, pooled=False
        )
        assert_result_lists_identical(with_series, without)
