"""Battery-sag clamping at the discharge-curve knee.

As the cell discharges past a supply-rail knee, the terminal voltage
can no longer hold the VOS scale the plan asked for and the governor
clamps every over-cap layer to the fastest rail-supported HFO.  These
tests pin the three contract points: the clamp engages exactly below
the knee, releases when the cell recovers (swap/recharge), and never
substitutes an HFO faster than the plan it clamps.
"""

import numpy as np
import pytest

from repro.analysis import Battery, BatteryState
from repro.analysis.battery import SUPPLY_RAILS
from repro.fleet import FleetScheduler, GovernorConfig
from repro.fleet.governor import FleetGovernor, clamp_plan_to_cap
from repro.fleet.variation import DeviceProfile
from repro.mcu import make_nucleo_f767zi
from repro.nn import build_tiny_test_model
from repro.optimize import TIGHT
from repro.power.model import PowerModelParams
from repro.power.thermal import ThermalModelParams


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


def make_profile(charge=1.0):
    params = PowerModelParams()
    return DeviceProfile(
        device_id=0,
        board=make_nucleo_f767zi(power_params=params),
        thermal=ThermalModelParams(
            t_ambient_c=25.0, leakage_ref_w=params.p_mcu_leakage_w
        ),
        battery=BatteryState(
            battery=Battery(), charge_fraction=charge
        ),
        sensor_seed=np.random.SeedSequence(123),
    )


def plan_governor(tiny, max_replans=0, epochs=4):
    """Plan at full charge under TIGHT QoS, governor with a frozen
    plan (no re-plan budget) so the clamp physics are isolated."""
    profile = make_profile(charge=1.0)
    scheduler = FleetScheduler(tiny, qos_level=TIGHT)
    result = scheduler.plan_device(profile)
    assert result.error is None, result.error
    governor = FleetGovernor(
        scheduler.pipeline_for(profile),
        profile,
        tiny,
        result.optimized,
        GovernorConfig(epochs=epochs, max_replans=max_replans),
    )
    governor.start()
    return governor, result.optimized.plan


def plan_max_hz(plan):
    return max(lp.hfo.sysclk_hz for lp in plan.layer_plans.values())


def sag_state(target_v):
    """A BatteryState whose loaded terminal voltage is ``target_v``."""
    state = BatteryState(battery=Battery())
    full_v = state.voltage_v
    charge = 1.0 - (full_v - target_v) / state.droop_v
    sagged = BatteryState(battery=Battery(), charge_fraction=charge)
    assert sagged.voltage_v == pytest.approx(target_v)
    return sagged


def knee_below(plan_hz):
    """The discharge knee for a plan: the terminal voltage below
    which the rails can no longer hold the plan's fastest clock, and
    the cap that takes over just under it."""
    supporting = [v for v, hz in SUPPLY_RAILS if hz >= plan_hz]
    assert supporting, f"no rail supports {plan_hz} Hz"
    knee_v = min(supporting)
    below = [hz for v, hz in SUPPLY_RAILS if v < knee_v]
    assert below, (
        f"plan at {plan_hz} Hz fits even the lowest rail; nothing sags"
    )
    return knee_v, max(below)


class TestSagClamp:
    def test_clamp_engages_below_the_knee(self, tiny):
        governor, plan = plan_governor(tiny)
        knee_v, cap_hz = knee_below(plan_max_hz(plan))

        # A hair of terminal voltage above the knee: full cap, no clamp.
        governor.set_battery(sag_state(knee_v + 0.01))
        assert not governor.step().clamped

        # Just below the knee: the rail caps the plan's fastest layers.
        governor.set_battery(sag_state(knee_v - 0.01))
        sample = governor.step()
        assert sample.clamped
        assert governor.battery_state.max_sysclk_hz() == cap_hz

    def test_clamp_releases_on_recovery(self, tiny):
        governor, plan = plan_governor(tiny)
        knee_v, _cap_hz = knee_below(plan_max_hz(plan))

        governor.set_battery(sag_state(knee_v - 0.01))
        assert governor.step().clamped

        # Cell swap / recharge: the full rail returns and the very
        # next epoch runs the original plan unclamped.
        governor.set_battery(BatteryState(battery=Battery()))
        assert not governor.step().clamped
        assert governor.plan is plan  # frozen plan never moved

    def test_clamp_never_raises_above_pre_sag_plan(self, tiny):
        governor, plan = plan_governor(tiny)
        hfo_configs = governor.pipeline.space.hfo_configs
        _knee_v, cap_hz = knee_below(plan_max_hz(plan))

        sagged, moved = clamp_plan_to_cap(plan, cap_hz, hfo_configs)
        assert moved
        assert plan_max_hz(sagged) <= cap_hz
        # Clamping only ever slows layers down, never speeds them up.
        for node_id, lp in sagged.layer_plans.items():
            assert (
                lp.hfo.sysclk_hz
                <= plan.layer_plans[node_id].hfo.sysclk_hz
            )

        # Recovery: a cap at (or above) the pre-sag plan's fastest
        # clock returns the plan untouched -- the clamp never
        # substitutes a faster HFO than the plan asked for.
        recovered, moved = clamp_plan_to_cap(
            plan, plan_max_hz(plan), hfo_configs
        )
        assert recovered is plan and not moved
        # And re-clamping the sagged plan at full rail keeps the
        # sagged choices rather than re-raising them.
        held, moved = clamp_plan_to_cap(
            sagged, max(c.sysclk_hz for c in hfo_configs), hfo_configs
        )
        assert held is sagged and not moved

    def test_deep_brownout_falls_back_to_slowest_grid_point(self, tiny):
        governor, plan = plan_governor(tiny)
        hfo_configs = governor.pipeline.space.hfo_configs
        slowest = min(c.sysclk_hz for c in hfo_configs)

        crushed, moved = clamp_plan_to_cap(plan, 1.0, hfo_configs)
        assert moved
        assert plan_max_hz(crushed) == slowest
