"""Device-variation sampling: determinism, power-only perturbation."""

import pytest

from repro.errors import PowerModelError
from repro.fleet import VariationModel, sample_fleet
from repro.mcu import make_nucleo_f767zi


class TestDeterminism:
    def test_resampling_is_bit_identical(self):
        a = sample_fleet(16, seed=42)
        b = sample_fleet(16, seed=42)
        for x, y in zip(a, b):
            assert x.board.power_model.params == y.board.power_model.params
            assert x.thermal == y.thermal
            assert x.battery == y.battery

    def test_different_seeds_differ(self):
        a = sample_fleet(4, seed=0)
        b = sample_fleet(4, seed=1)
        assert any(
            x.board.power_model.params != y.board.power_model.params
            for x, y in zip(a, b)
        )

    def test_prefix_stability(self):
        # Growing the fleet must not re-roll the existing devices.
        small = sample_fleet(4, seed=7)
        large = sample_fleet(8, seed=7)
        for x, y in zip(small, large):
            assert x.board.power_model.params == y.board.power_model.params

    def test_device_ids_are_sampling_order(self):
        fleet = sample_fleet(5, seed=0)
        assert [p.device_id for p in fleet] == [0, 1, 2, 3, 4]


class TestPowerOnlyVariation:
    def test_timing_fingerprint_shared_fleet_wide(self):
        nominal = make_nucleo_f767zi()
        for profile in sample_fleet(8, seed=3):
            assert (
                profile.board.timing_fingerprint()
                == nominal.timing_fingerprint()
            )

    def test_power_params_spread(self):
        fleet = sample_fleet(8, seed=3)
        leakages = {
            p.board.power_model.params.p_mcu_leakage_w for p in fleet
        }
        assert len(leakages) == len(fleet)

    def test_board_fingerprints_distinct(self):
        fleet = sample_fleet(8, seed=3)
        assert len({p.board.fingerprint() for p in fleet}) == len(fleet)

    def test_ambient_and_charge_within_model_ranges(self):
        variation = VariationModel()
        for p in sample_fleet(32, seed=9, variation=variation):
            assert (
                variation.ambient_low_c
                <= p.thermal.t_ambient_c
                <= variation.ambient_high_c
            )
            assert (
                variation.charge_low
                <= p.battery.charge_fraction
                <= variation.charge_high
            )

    def test_zero_sigma_collapses_to_nominal(self):
        frozen = VariationModel(
            static_sigma=0.0,
            leakage_sigma=0.0,
            k_core_sigma=0.0,
            k_vco_sigma=0.0,
            k_hse_sigma=0.0,
        )
        nominal = make_nucleo_f767zi()
        for p in sample_fleet(3, seed=0, variation=frozen):
            assert (
                p.board.power_model.params == nominal.power_model.params
            )


class TestSensorSeeds:
    def test_devices_have_private_noise_streams(self):
        fleet = sample_fleet(3, seed=0)
        from repro.power import EnergyCategory, EnergyInterval, INA219Config

        trace = [EnergyInterval(0.05, 0.3, EnergyCategory.COMPUTE)]
        config = INA219Config(sample_period_s=1e-3, noise_std_w=5e-3)
        readings = [
            [s.power_w for s in p.make_sensor(config).measure(trace)]
            for p in fleet
        ]
        assert readings[0] != readings[1]
        assert readings[1] != readings[2]

    def test_sensor_stream_reproducible_across_resampling(self):
        from repro.power import EnergyCategory, EnergyInterval, INA219Config

        trace = [EnergyInterval(0.05, 0.3, EnergyCategory.COMPUTE)]
        config = INA219Config(sample_period_s=1e-3, noise_std_w=5e-3)
        first = sample_fleet(2, seed=5)[1].make_sensor(config).measure(trace)
        second = sample_fleet(2, seed=5)[1].make_sensor(config).measure(trace)
        assert [s.power_w for s in first] == [s.power_w for s in second]


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(PowerModelError):
            sample_fleet(0)

    def test_inverted_ambient_range_rejected(self):
        with pytest.raises(PowerModelError):
            VariationModel(ambient_low_c=40, ambient_high_c=10)

    def test_negative_sigma_rejected(self):
        with pytest.raises(PowerModelError):
            VariationModel(leakage_sigma=-0.1)

    def test_charge_range_outside_unit_interval_rejected(self):
        with pytest.raises(PowerModelError):
            VariationModel(charge_low=0.5, charge_high=1.2)
