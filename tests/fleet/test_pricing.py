"""Shared-timing pricing: bit-identity against the unshared paths."""

import pytest

from repro.dse.explorer import DSEExplorer
from repro.dse.space import paper_design_space
from repro.engine.runtime import DVFSRuntime
from repro.fleet import (
    FleetSharedState,
    ReplayingRuntime,
    SharedComponentExplorer,
    plan_signature,
    sample_fleet,
)
from repro.mcu import make_nucleo_f767zi
from repro.nn import build_tiny_test_model
from repro.optimize import MODERATE
from repro.pipeline import DAEDVFSPipeline


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


@pytest.fixture(scope="module")
def nominal_board():
    return make_nucleo_f767zi()


@pytest.fixture(scope="module")
def space(nominal_board):
    return paper_design_space(nominal_board.power_model)


@pytest.fixture(scope="module")
def perturbed_board():
    # A device off the nominal power corner (timing identical).
    return sample_fleet(2, seed=11)[1].board


def clouds_equal(a, b):
    assert len(a) == len(b)
    for pa, pb in zip(a, b):
        assert pa.node_id == pb.node_id
        assert pa.granularity == pb.granularity
        assert pa.hfo == pb.hfo
        assert pa.latency_s == pb.latency_s
        assert pa.energy_j == pb.energy_j


class TestSharedExplorer:
    def test_cloud_bit_identical_to_plain_explorer(
        self, tiny, nominal_board, space, perturbed_board
    ):
        shared = FleetSharedState(nominal_board)
        for board in (nominal_board, perturbed_board):
            plain = DSEExplorer(board, space)
            fleet = SharedComponentExplorer(board, space, shared)
            for node in tiny.dae_nodes():
                clouds_equal(
                    fleet.explore_layer(tiny, node),
                    plain.explore_layer(tiny, node),
                )

    def test_cache_warm_after_first_device(
        self, tiny, nominal_board, space, perturbed_board
    ):
        shared = FleetSharedState(nominal_board)
        first = SharedComponentExplorer(nominal_board, space, shared)
        for node in tiny.dae_nodes():
            first.explore_layer(tiny, node)
        entries = len(shared.components)
        assert entries > 0
        second = SharedComponentExplorer(perturbed_board, space, shared)
        for node in tiny.dae_nodes():
            second.explore_layer(tiny, node)
        # The second device re-prices; it never re-decomposes.
        assert len(shared.components) == entries

    def test_relock_pricing_kept_distinct(
        self, tiny, nominal_board, space
    ):
        shared = FleetSharedState(nominal_board)
        explorer = SharedComponentExplorer(nominal_board, space, shared)
        node = tiny.dae_nodes()[0]
        relocked = explorer.explore_layer(tiny, node, assume_relock=True)
        free = explorer.explore_layer(tiny, node, assume_relock=False)
        assert any(
            r.latency_s != f.latency_s for r, f in zip(relocked, free)
        )


class TestPlanSignature:
    def test_equal_plans_equal_signatures(self, tiny, nominal_board):
        pipeline = DAEDVFSPipeline(board=nominal_board)
        plan = pipeline.optimize(tiny, qos_level=MODERATE).plan
        again = pipeline.optimize(tiny, qos_level=MODERATE).plan
        assert plan_signature(plan) == plan_signature(again)

    def test_different_budgets_differ(self, tiny, nominal_board):
        from repro.optimize import RELAXED, TIGHT

        pipeline = DAEDVFSPipeline(board=nominal_board)
        tight = pipeline.optimize(tiny, qos_level=TIGHT).plan
        relaxed = pipeline.optimize(tiny, qos_level=RELAXED).plan
        assert plan_signature(tight) != plan_signature(relaxed)


class TestReplayingRuntime:
    def run_both(self, board, tiny, plan, **kwargs):
        shared = FleetSharedState(board)
        direct = DVFSRuntime(board).run(tiny, plan, **kwargs)
        replayed = ReplayingRuntime(board, shared).run(tiny, plan, **kwargs)
        # Run twice: the second hit prices from the recorded schedule.
        replayed2 = ReplayingRuntime(board, shared).run(tiny, plan, **kwargs)
        return direct, replayed, replayed2

    def assert_reports_identical(self, a, b):
        assert a.latency_s == b.latency_s
        assert a.energy_j == b.energy_j
        assert a.inference_energy_j == b.inference_energy_j
        assert a.relock_count == b.relock_count
        assert a.mux_switch_count == b.mux_switch_count
        assert a.met_qos == b.met_qos
        for la, lb in zip(a.layer_reports, b.layer_reports):
            assert la.latency_s == lb.latency_s
            assert la.energy_j == lb.energy_j
            assert la.hfo_hz == lb.hfo_hz

    def test_replay_bit_identical_no_qos(self, tiny, nominal_board):
        pipeline = DAEDVFSPipeline(board=nominal_board)
        result = pipeline.optimize(tiny, qos_level=MODERATE)
        direct, replayed, replayed2 = self.run_both(
            nominal_board, tiny, result.plan,
            initial_config=result.plan.initial_config(),
        )
        self.assert_reports_identical(direct, replayed)
        self.assert_reports_identical(direct, replayed2)

    def test_replay_bit_identical_with_qos_idle(self, tiny, nominal_board):
        pipeline = DAEDVFSPipeline(board=nominal_board)
        result = pipeline.optimize(tiny, qos_level=MODERATE)
        direct, replayed, replayed2 = self.run_both(
            nominal_board, tiny, result.plan,
            qos_s=result.qos_s,
            initial_config=result.plan.initial_config(),
        )
        self.assert_reports_identical(direct, replayed)
        self.assert_reports_identical(direct, replayed2)

    def test_replay_on_perturbed_board_matches_its_direct_run(
        self, tiny, nominal_board, perturbed_board
    ):
        # The record is captured by the *nominal* device, then
        # re-priced by the perturbed one -- still bit-identical to the
        # perturbed device running the engine itself.
        pipeline = DAEDVFSPipeline(board=nominal_board)
        result = pipeline.optimize(tiny, qos_level=MODERATE)
        shared = FleetSharedState(nominal_board)
        kwargs = dict(
            qos_s=result.qos_s,
            initial_config=result.plan.initial_config(),
        )
        ReplayingRuntime(nominal_board, shared).run(
            tiny, result.plan, **kwargs
        )
        replayed = ReplayingRuntime(perturbed_board, shared).run(
            tiny, result.plan, **kwargs
        )
        direct = DVFSRuntime(perturbed_board).run(
            tiny, result.plan, **kwargs
        )
        self.assert_reports_identical(direct, replayed)
        assert len(shared.replays) == 1

    def test_energy_differs_across_devices(
        self, tiny, nominal_board, perturbed_board
    ):
        pipeline = DAEDVFSPipeline(board=nominal_board)
        result = pipeline.optimize(tiny, qos_level=MODERATE)
        shared = FleetSharedState(nominal_board)
        kwargs = dict(initial_config=result.plan.initial_config())
        a = ReplayingRuntime(nominal_board, shared).run(
            tiny, result.plan, **kwargs
        )
        b = ReplayingRuntime(perturbed_board, shared).run(
            tiny, result.plan, **kwargs
        )
        assert a.latency_s == b.latency_s
        assert a.energy_j != b.energy_j
