"""Fleet report: aggregation, determinism digest, CLI command."""

import json

import pytest

from repro.cli import main
from repro.fleet import (
    DeviceResult,
    FleetScheduler,
    GovernorConfig,
    aggregate_fleet,
    sample_fleet,
    supervise_device,
)
from repro.nn import build_tiny_test_model
from repro.optimize import MODERATE


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


@pytest.fixture(scope="module")
def fleet_run(tiny):
    fleet = sample_fleet(5, seed=2)
    scheduler = FleetScheduler(tiny, qos_level=MODERATE)
    results = scheduler.run(fleet, pooled=True)
    config = GovernorConfig(epochs=4)
    governed = {
        r.device_id: supervise_device(
            scheduler.pipeline_for(r.profile), r.profile, tiny,
            r.optimized, config,
        )
        for r in results
        if r.error is None
    }
    qos_s = results[0].optimized.qos_s
    return results, governed, qos_s


class TestAggregation:
    def test_counts(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        report = aggregate_fleet(tiny, qos_s, results, governed)
        assert report.n_devices == 5
        assert report.failures == 0
        assert len(report.rows()) == 5

    def test_stats_bracket_the_population(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        report = aggregate_fleet(tiny, qos_s, results, governed)
        energies = [r.report.energy_j for r in results]
        stats = report.energy_stats_j
        assert min(energies) <= stats["p50"] <= max(energies)
        assert stats["mean"] == pytest.approx(
            sum(energies) / len(energies)
        )
        assert stats["p50"] <= stats["p95"]

    def test_frequency_histogram_counts_all_layers(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        report = aggregate_fleet(tiny, qos_s, results, governed)
        layers = len(results[0].optimized.plan.layer_plans)
        assert sum(report.frequency_hist.values()) == 5 * layers
        assert sum(report.granularity_hist.values()) == 5 * layers

    def test_governor_columns_joined(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        report = aggregate_fleet(tiny, qos_s, results, governed)
        for row in report.summaries:
            assert row.epochs == 4
            assert row.final_temperature_c > 0

    def test_failed_devices_counted_not_averaged(self, tiny, fleet_run):
        results, _, qos_s = fleet_run
        broken = list(results) + [
            DeviceResult(
                profile=results[0].profile, error="QoSInfeasibleError: x"
            )
        ]
        report = aggregate_fleet(tiny, qos_s, broken)
        assert report.n_devices == 6
        assert report.failures == 1
        assert len(report.planned) == 5
        assert report.energy_stats_j["mean"] == pytest.approx(
            aggregate_fleet(tiny, qos_s, results).energy_stats_j["mean"]
        )

    def test_digest_is_deterministic(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        a = aggregate_fleet(tiny, qos_s, results, governed)
        b = aggregate_fleet(tiny, qos_s, list(reversed(results)), governed)
        assert a.digest() == b.digest()

    def test_digest_sensitive_to_results(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        a = aggregate_fleet(tiny, qos_s, results, governed)
        b = aggregate_fleet(tiny, qos_s, results[:-1], governed)
        assert a.digest() != b.digest()

    def test_summary_text(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        report = aggregate_fleet(tiny, qos_s, results, governed)
        text = report.summary()
        assert "fleet of 5 devices" in text
        assert report.digest() in text

    def test_to_dict_round_trips_json(self, tiny, fleet_run):
        results, governed, qos_s = fleet_run
        report = aggregate_fleet(tiny, qos_s, results, governed)
        blob = json.dumps(report.to_dict())
        data = json.loads(blob)
        assert data["n_devices"] == 5
        assert data["digest"] == report.digest()
        assert len(data["devices"]) == 5


class TestCliFleet:
    def test_fleet_command_runs_and_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "fleet.json"
        code = main(
            ["fleet", "--devices", "4", "--seed", "0",
             "--epochs", "2", "--json", str(out_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        # --json owns stdout; the human summary moves to stderr.
        assert "fleet of 4 devices" in captured.err
        assert "digest:" in captured.err
        data = json.loads(out_path.read_text())
        assert json.loads(captured.out) == data
        assert data["n_devices"] == 4
        assert data["digest"] in captured.err

    def test_fleet_command_deterministic(self, capsys):
        args = ["fleet", "--devices", "4", "--seed", "1", "--epochs", "2"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_serial_matches_pooled(self, capsys):
        base = ["fleet", "--devices", "4", "--seed", "2", "--epochs", "0"]
        assert main(base) == 0
        pooled = capsys.readouterr().out
        assert main(base + ["--serial"]) == 0
        serial = capsys.readouterr().out
        assert pooled == serial
