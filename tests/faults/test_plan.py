"""Fault models: plan validation, seeded decision streams, scheduling."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FaultClock, FaultKind, FaultPlan, GOVERN_STAGE, PLAN_STAGE


class TestPlanValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "hse_dropout_rate",
            "pll_lock_timeout_rate",
            "sensor_dropout_rate",
            "sensor_stuck_rate",
            "sensor_nack_rate",
            "brownout_rate",
            "watchdog_rate",
        ],
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(FaultInjectionError):
            FaultPlan(**{field: value})

    def test_brownout_derate_bounds(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(brownout_derate=0.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(brownout_derate=1.1)

    def test_negative_reset_stall_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(watchdog_reset_s=-1e-3)

    def test_max_consecutive_resets_positive(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(max_consecutive_resets=0)

    def test_scheduled_entries_validated(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(scheduled=(("not-a-kind", 0),))
        with pytest.raises(FaultInjectionError):
            FaultPlan(scheduled=((FaultKind.HSE_DROPOUT, -1),))

    def test_validation_raises_repro_error_subclass(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            FaultPlan(hse_dropout_rate=2.0)

    def test_any_faults(self):
        assert not FaultPlan().any_faults
        assert FaultPlan(watchdog_rate=0.1).any_faults
        assert FaultPlan(scheduled=((FaultKind.SENSOR_NACK, 0),)).any_faults

    def test_rate_lookup(self):
        plan = FaultPlan(sensor_stuck_rate=0.25)
        assert plan.rate(FaultKind.SENSOR_STUCK) == 0.25
        assert plan.rate(FaultKind.HSE_DROPOUT) == 0.0

    def test_to_dict_round_trips_schedule(self):
        plan = FaultPlan(seed=7, scheduled=((FaultKind.BROWNOUT_SAG, 2),))
        d = plan.to_dict()
        assert d["seed"] == 7
        assert d["scheduled"] == [["brownout-sag", 2]]


class TestFaultClock:
    def test_zero_rate_never_trips(self):
        clock = FaultPlan().clock_for(0)
        assert not any(clock.hse_dropout() for _ in range(100))
        assert clock.total_injected == 0
        assert clock.opportunities[FaultKind.HSE_DROPOUT] == 100

    def test_rate_one_always_trips(self):
        clock = FaultPlan(sensor_nack_rate=1.0).clock_for(0)
        assert all(clock.sensor_nack() for _ in range(10))
        assert clock.injected[FaultKind.SENSOR_NACK] == 10

    def test_scheduled_trips_exact_opportunity(self):
        plan = FaultPlan(scheduled=((FaultKind.WATCHDOG_RESET, 2),))
        clock = plan.clock_for(0)
        hits = [clock.watchdog_reset() for _ in range(5)]
        assert hits == [False, False, True, False, False]

    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=11, pll_lock_timeout_rate=0.3)
        left = plan.clock_for(4)
        right = plan.clock_for(4)
        assert [left.pll_lock_timeout() for _ in range(50)] == [
            right.pll_lock_timeout() for _ in range(50)
        ]

    def test_kinds_draw_independent_streams(self):
        # Interleaving other kinds must not shift a kind's decisions.
        plan = FaultPlan(
            seed=3, hse_dropout_rate=0.4, sensor_dropout_rate=0.4
        )
        solo = plan.clock_for(0)
        pure = [solo.hse_dropout() for _ in range(40)]
        mixed_clock = plan.clock_for(0)
        mixed = []
        for _ in range(40):
            mixed_clock.sensor_dropout()  # interleaved foreign draws
            mixed.append(mixed_clock.hse_dropout())
        assert pure == mixed

    def test_devices_and_stages_are_independent(self):
        plan = FaultPlan(seed=5, watchdog_rate=0.5)
        streams = {}
        for device in (0, 1):
            for stage in (PLAN_STAGE, GOVERN_STAGE):
                clock = plan.clock_for(device, stage=stage)
                streams[(device, stage)] = [
                    clock.watchdog_reset() for _ in range(64)
                ]
        assert len({tuple(s) for s in streams.values()}) == len(streams)

    def test_injected_by_kind_reports_only_fired(self):
        plan = FaultPlan(scheduled=((FaultKind.SENSOR_STUCK, 0),))
        clock = FaultClock(plan)
        clock.sensor_stuck()
        clock.hse_dropout()
        assert clock.injected_by_kind() == {"sensor-stuck": 1}
        assert clock.total_injected == 1
