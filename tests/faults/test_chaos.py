"""Chaos harness: determinism, survival acceptance, no-fault transparency."""

import pytest

from repro.faults import ChaosConfig, FaultPlan, run_campaign
from repro.fleet import (
    FleetScheduler,
    GovernorConfig,
    aggregate_fleet,
    sample_fleet,
    supervise_device,
)
from repro.nn import build_tiny_test_model
from repro.optimize import QoSLevel

#: Fleet+governor report digest of the fault-free path, recorded on the
#: commit *before* the fault-injection subsystem landed.  If this test
#: fails, the hardening changed nominal behaviour -- that is a bug, not
#: a reason to re-pin.
PRE_FAULT_FLEET_DIGEST = (
    "c7b0af126a7756923f013cd0e11ef1546aeca1504b7275f082c74569409ddfee"
)

MIXED_RATES = dict(
    hse_dropout_rate=0.02,
    pll_lock_timeout_rate=0.05,
    sensor_dropout_rate=0.05,
    sensor_stuck_rate=0.02,
    sensor_nack_rate=0.02,
    brownout_rate=0.05,
    watchdog_rate=0.002,
)


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


class TestNoFaultTransparency:
    def test_fleet_digest_matches_pre_fault_pin(self, tiny):
        # The exact scenario whose digest was recorded before this
        # subsystem existed: 8 devices, seed 0, pooled planning at 30%
        # slack, 3 governed epochs each.
        level = QoSLevel(name="30%", slack=0.30)
        fleet = sample_fleet(8, seed=0)
        scheduler = FleetScheduler(tiny, qos_level=level, max_workers=4)
        results = scheduler.run(fleet, pooled=True)
        cfg = GovernorConfig(epochs=3)
        governed = {
            r.device_id: supervise_device(
                scheduler.pipeline_for(r.profile),
                r.profile,
                tiny,
                r.optimized,
                cfg,
            )
            for r in results
            if r.error is None
        }
        qos_s = next(r.optimized.qos_s for r in results if r.error is None)
        report = aggregate_fleet(tiny, qos_s, results, governed)
        assert report.digest() == PRE_FAULT_FLEET_DIGEST

    def test_zero_rate_campaign_injects_nothing(self, tiny):
        config = ChaosConfig(devices=4, seed=0, epochs=2)
        report = run_campaign(tiny, FaultPlan(), config)
        assert report.quarantine_free_fraction == 1.0
        assert report.total_injected == {}
        assert report.total_retries == 0
        assert report.energy_overhead == 0.0
        for row in report.rows:
            assert row.planned
            assert row.attempts == 1
            assert row.css_events == 0
            assert row.watchdog_resets == 0
            assert row.pll_retries == 0
            # Faulted and baseline passes are the same code path here.
            assert row.energy_j == row.baseline_energy_j


class TestAcceptanceCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, tiny):
        plan = FaultPlan(seed=7, **MIXED_RATES)
        config = ChaosConfig(devices=64, seed=0, epochs=4)
        return (
            run_campaign(tiny, plan, config),
            run_campaign(tiny, plan, config),
        )

    def test_64_devices_mostly_survive(self, campaign):
        report, _ = campaign
        assert report.n_devices == 64
        assert report.quarantine_free_fraction >= 0.90

    def test_same_seed_runs_byte_identical(self, campaign):
        first, second = campaign
        assert first.digest() == second.digest()
        assert first.to_dict() == second.to_dict()

    def test_faults_actually_injected_and_absorbed(self, campaign):
        report, _ = campaign
        assert sum(report.total_injected.values()) > 0
        # Survival has a price: the failsafe windows cost energy.
        assert report.energy_overhead > 0.0
        # And QoS survival stays a fraction, not a rounding artifact.
        assert 0.0 < report.qos_met_fraction < 1.0

    def test_errors_are_rows_not_exceptions(self, campaign):
        report, _ = campaign
        for row in report.rows:
            if not row.planned:
                assert row.error  # captured, never raised


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"devices": 0},
            {"epochs": 0},
            {"qos_slack": -0.1},
            {"max_workers": 0},
            {"max_plan_attempts": 0},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        from repro.errors import FaultInjectionError

        with pytest.raises(FaultInjectionError):
            ChaosConfig(**kwargs)
