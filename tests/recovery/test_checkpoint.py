"""Checkpoint file format: save/load round trip and typed failures."""

import pickle

import pytest

from repro.errors import ReproError
from repro.recovery import (
    CHECKPOINT_VERSION,
    ScenarioCheckpoint,
    load_checkpoint,
    save_checkpoint,
)


def make_checkpoint(**overrides) -> ScenarioCheckpoint:
    fields = {
        "config": {"name": "stub"},
        "events_processed": 4,
        "clock_now": 1800.0,
        "queue_seq": 9,
    }
    fields.update(overrides)
    return ScenarioCheckpoint(**fields)


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(make_checkpoint(), path)
        loaded = load_checkpoint(path)
        assert loaded.version == CHECKPOINT_VERSION
        assert loaded.events_processed == 4
        assert loaded.clock_now == 1800.0
        assert loaded.config == {"name": "stub"}

    def test_save_is_atomic_replace(self, tmp_path):
        """A re-save over an existing file never leaves a torn one."""
        path = str(tmp_path / "run.ckpt")
        save_checkpoint(make_checkpoint(events_processed=1), path)
        save_checkpoint(make_checkpoint(events_processed=2), path)
        assert load_checkpoint(path).events_processed == 2
        assert not (tmp_path / "run.ckpt.tmp").exists()


class TestTypedFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot load"):
            load_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        blob = pickle.dumps(make_checkpoint())
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ReproError, match="cannot load"):
            load_checkpoint(str(path))

    def test_wrong_type(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(ReproError, match="ScenarioCheckpoint"):
            load_checkpoint(str(path))

    def test_version_mismatch(self, tmp_path):
        path = str(tmp_path / "old.ckpt")
        save_checkpoint(
            make_checkpoint(version=CHECKPOINT_VERSION + 1), path
        )
        with pytest.raises(ReproError, match="version"):
            load_checkpoint(path)
