"""Write-ahead journal: record integrity, tail tolerance, replay."""

import json

import pytest

from repro.errors import ReproError
from repro.recovery import (
    JournaledSharedCache,
    PlanJournal,
    decode_record,
    encode_record,
    journal_replans,
    read_journal,
    replay_into_cache,
)
from repro.serve.protocol import plan_digest
from repro.serve.shared_cache import (
    LocalSharedCache,
    request_key,
    wire_key,
)

KEY = (("model", "fp"), ("board", "fp"), ("space", "fp"), ("percent", 30.0))


def make_payload(value: float = 1.0) -> dict:
    core = {"model": "tiny", "qos": {"percent": value}, "plan": [value]}
    core["digest"] = plan_digest(core)
    return core


class TestRecordCodec:
    def test_round_trip(self):
        line = encode_record("publish", {"key": "k", "payload": {"a": 1}})
        record = decode_record(line)
        assert record.kind == "publish"
        assert record.data == {"key": "k", "payload": {"a": 1}}

    def test_digest_covers_the_body(self):
        line = encode_record("publish", {"key": "k"})
        tampered = line.replace('"k"', '"x"')
        with pytest.raises(ReproError):
            decode_record(tampered)

    def test_truncated_line_rejected(self):
        line = encode_record("publish", {"key": "k"})
        with pytest.raises(ReproError):
            decode_record(line[: len(line) // 2])

    def test_non_object_rejected(self):
        with pytest.raises(ReproError):
            decode_record("[1, 2, 3]")

    def test_missing_fields_rejected(self):
        with pytest.raises(ReproError):
            decode_record(json.dumps({"kind": "publish"}))


class TestReadJournal:
    def test_missing_file_reads_empty(self, tmp_path):
        records, stats = read_journal(str(tmp_path / "absent.jsonl"))
        assert records == []
        assert stats == {"read": 0, "dropped_tail": 0, "bytes": 0}

    def test_appends_read_back_in_order(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = PlanJournal(path)
        journal.append("publish", {"key": "a"})
        journal.append("request", {"key": "b", "digest": "d"})
        journal.close()
        records, stats = read_journal(path)
        assert [r.kind for r in records] == ["publish", "request"]
        assert stats["read"] == 2
        assert stats["dropped_tail"] == 0

    def test_truncated_tail_is_tolerated(self, tmp_path):
        """The crash signature: a torn final record drops, the rest
        survives."""
        path = str(tmp_path / "j.jsonl")
        journal = PlanJournal(path)
        journal.append("publish", {"key": "a"})
        journal.append("publish", {"key": "b"})
        journal.close()
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(raw[:-10])  # tear the tail record
        records, stats = read_journal(path)
        assert [r.data["key"] for r in records] == ["a"]
        assert stats["read"] == 1
        assert stats["dropped_tail"] == 1

    def test_scan_stops_at_first_bad_record(self, tmp_path):
        """Nothing after a torn write can be trusted to be complete."""
        path = str(tmp_path / "j.jsonl")
        good = encode_record("publish", {"key": "a"})
        bad = "{'not json'}"
        tail = encode_record("publish", {"key": "b"})
        with open(path, "w") as handle:
            handle.write(f"{good}\n{bad}\n{tail}\n")
        records, stats = read_journal(path)
        assert [r.data["key"] for r in records] == ["a"]
        assert stats["dropped_tail"] == 2

    def test_journal_handle_pickles_by_path(self, tmp_path):
        import pickle

        path = str(tmp_path / "j.jsonl")
        journal = PlanJournal(path)
        journal.append("publish", {"key": "a"})
        clone = pickle.loads(pickle.dumps(journal))
        clone.append("publish", {"key": "b"})
        journal.close()
        clone.close()
        records, _ = read_journal(path)
        assert [r.data["key"] for r in records] == ["a", "b"]

    def test_empty_path_rejected(self):
        with pytest.raises(ReproError):
            PlanJournal("")


class TestReplay:
    def test_rebuilds_publishes_and_request_index(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        source = JournaledSharedCache(LocalSharedCache(), PlanJournal(path))
        payload = make_payload()
        source.publish(KEY, payload)
        rk = request_key("tiny", ("percent", 30.0))
        source.register_request(rk, payload["digest"])
        source.journal.close()

        rebuilt = LocalSharedCache()
        stats = replay_into_cache(path, rebuilt)
        assert stats["replayed"] == 1
        assert stats["requests"] == 1
        assert stats["skipped"] == 0
        assert rebuilt.lookup(KEY) == payload
        assert rebuilt.lookup_request(rk) == payload
        assert rebuilt.stats()["replayed"] == 1

    def test_replay_is_idempotent(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        source = JournaledSharedCache(LocalSharedCache(), PlanJournal(path))
        payload = make_payload()
        source.publish(KEY, payload)
        source.journal.close()

        rebuilt = LocalSharedCache()
        replay_into_cache(path, rebuilt)
        replay_into_cache(path, rebuilt)  # duplicate pass
        assert rebuilt.lookup(KEY) == payload
        assert rebuilt.stats()["size"] == 1

    def test_tampered_payload_is_skipped_not_served(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        payload = make_payload()
        record = encode_record(
            "publish",
            {"key": wire_key(KEY), "payload": {**payload, "plan": [9.0]}},
        )
        with open(path, "w") as handle:
            handle.write(record + "\n")
        rebuilt = LocalSharedCache()
        stats = replay_into_cache(path, rebuilt)
        assert stats["skipped"] == 1
        assert stats["replayed"] == 0
        assert rebuilt.lookup(KEY) is None

    def test_unknown_kinds_are_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = PlanJournal(path)
        journal.append("future-kind", {"anything": True})
        journal.close()
        stats = replay_into_cache(path, LocalSharedCache())
        assert stats["skipped"] == 1


class TestJournaledSharedCache:
    def test_write_ahead_ordering(self, tmp_path):
        """The record hits the journal even if the tier rejects it."""
        path = str(tmp_path / "j.jsonl")
        tier = JournaledSharedCache(
            LocalSharedCache(capacity=1), PlanJournal(path)
        )
        tier.publish(KEY, make_payload(1.0))
        other = (("model", "fp"), ("percent", 50.0))
        tier.publish(other, make_payload(2.0))  # over capacity: rejected
        tier.journal.close()
        records, _ = read_journal(path)
        assert len(records) == 2  # both appended before the verdict
        assert tier.stats()["rejected"] == 1

    def test_lookups_pass_through_unjournaled(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        tier = JournaledSharedCache(LocalSharedCache(), PlanJournal(path))
        payload = make_payload()
        tier.publish(KEY, payload)
        assert tier.lookup(KEY) == payload
        tier.journal.close()
        records, _ = read_journal(path)
        assert len(records) == 1  # the publish only

    def test_stats_name_the_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        tier = JournaledSharedCache(LocalSharedCache(), PlanJournal(path))
        assert tier.stats()["journal"] == path


class TestJournalReplans:
    def test_appends_each_decision(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = PlanJournal(path)
        count = journal_replans(
            journal,
            [
                {"device": 0, "epoch": 3, "verdict": "applied"},
                {"device": 1, "epoch": 3, "verdict": "declined"},
            ],
        )
        journal.close()
        assert count == 2
        records, _ = read_journal(path)
        assert [r.kind for r in records] == ["replan", "replan"]

    def test_none_journal_is_a_noop(self):
        assert journal_replans(None, [{"device": 0}]) == 0
