"""Harmonization pass: re-lock reduction without QoS violations."""

import pytest

from repro import DAEDVFSPipeline
from repro.errors import SolverError
from repro.optimize import MODERATE, harmonize_plan


@pytest.fixture(scope="module")
def context():
    pipeline = DAEDVFSPipeline()
    from repro.nn import build_tiny_test_model

    model = build_tiny_test_model()
    result = pipeline.optimize(model, qos_level=MODERATE)
    return pipeline, model, result


class TestHarmonize:
    def test_never_worse_and_qos_kept(self, context):
        pipeline, model, result = context
        outcome = pipeline.harmonize(model, result)
        assert outcome.report.energy_j <= outcome.initial_report.energy_j
        assert outcome.report.latency_s <= result.qos_s
        assert outcome.report.met_qos

    def test_relocks_never_increase(self, context):
        pipeline, model, result = context
        outcome = pipeline.harmonize(model, result)
        assert outcome.report.relock_count <= (
            outcome.initial_report.relock_count
        )
        assert outcome.relocks_removed >= 0

    def test_idempotent_on_uniform_plans(self, context):
        pipeline, model, result = context
        first = pipeline.harmonize(model, result)
        # Harmonize the harmonized plan: no further moves possible
        # beyond noise, and energy cannot regress.
        import dataclasses

        second_result = dataclasses.replace(result, plan=first.plan)
        second = pipeline.harmonize(model, second_result)
        assert second.report.energy_j <= first.report.energy_j * (1 + 1e-9)

    def test_missing_fronts_rejected(self, context):
        pipeline, model, result = context
        with pytest.raises(SolverError):
            harmonize_plan(
                pipeline.runtime, model, result.plan, fronts={},
                qos_s=result.qos_s,
            )

    def test_energy_improvement_property(self, context):
        pipeline, model, result = context
        outcome = pipeline.harmonize(model, result)
        assert 0.0 <= outcome.energy_improvement < 1.0
        assert outcome.moves_applied >= 0
