"""Greedy MCKP baseline: feasibility, quality bound vs. the DP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QoSInfeasibleError, SolverError
from repro.optimize import (
    MCKPItem,
    solve_mckp_bruteforce,
    solve_mckp_dp,
    solve_mckp_greedy,
)


def item(w, v):
    return MCKPItem(weight=w, value=v)


SIMPLE = [
    [item(1.0, 10.0), item(2.0, 4.0), item(3.0, 1.0)],
    [item(1.0, 8.0), item(2.0, 6.0), item(4.0, 2.0)],
]


class TestGreedy:
    def test_unconstrained_matches_dp(self):
        greedy = solve_mckp_greedy(SIMPLE, budget=100.0)
        dp = solve_mckp_dp(SIMPLE, budget=100.0)
        assert greedy.total_value == pytest.approx(dp.total_value)

    def test_respects_budget(self):
        solution = solve_mckp_greedy(SIMPLE, budget=3.0)
        assert solution.total_weight <= 3.0

    def test_infeasible_raises(self):
        with pytest.raises(QoSInfeasibleError):
            solve_mckp_greedy(SIMPLE, budget=1.0)

    def test_empty_instance_rejected(self):
        with pytest.raises(SolverError):
            solve_mckp_greedy([], budget=1.0)

    def test_never_beats_exhaustive(self):
        brute = solve_mckp_bruteforce(SIMPLE, budget=4.0)
        greedy = solve_mckp_greedy(SIMPLE, budget=4.0)
        assert greedy.total_value >= brute.total_value - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        classes=st.lists(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.01, max_value=5.0),
                    st.floats(min_value=0.0, max_value=10.0),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        ),
        budget_scale=st.floats(min_value=1.0, max_value=2.0),
    )
    def test_greedy_feasible_and_bounded_property(self, classes, budget_scale):
        """Property: greedy is always feasible and never better than
        the exhaustive optimum."""
        from repro.optimize import min_total_weight

        instance = [[item(w, v) for w, v in cls] for cls in classes]
        budget = min_total_weight(instance) * budget_scale
        greedy = solve_mckp_greedy(instance, budget=budget)
        brute = solve_mckp_bruteforce(instance, budget=budget)
        assert greedy.total_weight <= budget + 1e-9
        assert greedy.total_value >= brute.total_value - 1e-9
