"""MCKP: DP solver optimality, transformation, edge cases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QoSInfeasibleError, SolverError
from repro.optimize import (
    MCKPItem,
    min_total_weight,
    reprice_classes,
    solve_mckp_bruteforce,
    solve_mckp_dp,
    to_maximization,
)


def item(w, v):
    return MCKPItem(weight=w, value=v)


SIMPLE = [
    [item(1.0, 10.0), item(2.0, 4.0), item(3.0, 1.0)],
    [item(1.0, 8.0), item(2.0, 6.0), item(4.0, 2.0)],
]


class TestDPSolver:
    def test_unconstrained_picks_min_values(self):
        solution = solve_mckp_dp(SIMPLE, budget=100.0)
        assert solution.total_value == pytest.approx(3.0)

    def test_tight_budget_forces_fast_items(self):
        solution = solve_mckp_dp(SIMPLE, budget=2.0)
        assert solution.total_weight <= 2.0
        assert solution.total_value == pytest.approx(18.0)

    def test_intermediate_budget(self):
        solution = solve_mckp_dp(SIMPLE, budget=4.0, resolution=4000)
        brute = solve_mckp_bruteforce(SIMPLE, budget=4.0)
        assert solution.total_value == pytest.approx(brute.total_value)

    def test_infeasible_raises_with_min_latency(self):
        with pytest.raises(QoSInfeasibleError) as info:
            solve_mckp_dp(SIMPLE, budget=1.5)
        assert info.value.min_latency_s == pytest.approx(2.0)

    def test_one_item_per_class_selected(self):
        solution = solve_mckp_dp(SIMPLE, budget=5.0)
        assert len(solution.items) == len(SIMPLE)

    def test_payloads_carried_through(self):
        classes = [[MCKPItem(1.0, 1.0, payload="tagged")]]
        solution = solve_mckp_dp(classes, budget=2.0)
        assert solution.items[0].payload == "tagged"

    def test_empty_instance_rejected(self):
        with pytest.raises(SolverError):
            solve_mckp_dp([], budget=1.0)

    def test_empty_class_rejected(self):
        with pytest.raises(SolverError):
            solve_mckp_dp([[item(1, 1)], []], budget=1.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(SolverError):
            solve_mckp_dp(SIMPLE, budget=-1.0)

    def test_negative_item_rejected(self):
        with pytest.raises(SolverError):
            MCKPItem(weight=-1.0, value=0.0)

    def test_zero_weight_items(self):
        classes = [[item(0.0, 5.0), item(0.0, 1.0)]]
        solution = solve_mckp_dp(classes, budget=1.0)
        assert solution.total_value == pytest.approx(1.0)

    def test_conservative_rounding_never_violates_budget(self):
        # Weights are rounded UP: a reported-feasible selection is
        # feasible in continuous time, even on a coarse grid.
        classes = [
            [item(0.33333, 2.0), item(0.9, 1.0)],
            [item(0.33333, 2.0), item(0.9, 1.0)],
            [item(0.33334, 2.0), item(0.9, 1.0)],
        ]
        solution = solve_mckp_dp(classes, budget=1.2, resolution=30)
        assert solution.total_weight <= 1.2 + 1e-9

    def test_borderline_instance_rejected_conservatively(self):
        # A selection that fits the budget *exactly* may be rejected by
        # the ceil-rounded grid -- conservatism, never QoS violation.
        classes = [
            [item(0.33333, 2.0)],
            [item(0.33333, 2.0)],
            [item(0.33334, 2.0)],
        ]
        with pytest.raises(QoSInfeasibleError):
            solve_mckp_dp(classes, budget=1.0, resolution=30)

    @settings(max_examples=40, deadline=None)
    @given(
        classes=st.lists(
            st.lists(
                st.tuples(
                    st.floats(min_value=0.01, max_value=5.0),
                    st.floats(min_value=0.0, max_value=10.0),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=4,
        ),
        budget_scale=st.floats(min_value=1.02, max_value=2.0),
    )
    def test_dp_matches_bruteforce_property(self, classes, budget_scale):
        """Property: with fine resolution, the DP is feasible, never
        better than the exhaustive optimum, and at least as good as
        any selection that fits the conservatively rounded budget."""
        instance = [[item(w, v) for w, v in cls] for cls in classes]
        budget = min_total_weight(instance) * budget_scale
        resolution = 20000
        dp = solve_mckp_dp(instance, budget=budget, resolution=resolution)
        brute = solve_mckp_bruteforce(instance, budget=budget)
        assert dp.total_weight <= budget + 1e-9
        assert dp.total_value >= brute.total_value - 1e-9
        # Ceil-rounding shrinks the effective budget by at most one
        # grid step per class; the DP must match the optimum of that
        # shrunken instance.
        shrunk = budget - len(instance) * (budget / resolution)
        try:
            conservative = solve_mckp_bruteforce(instance, budget=shrunk)
        except QoSInfeasibleError:
            return
        assert dp.total_value <= conservative.total_value + 1e-9


class TestSeededRandomInstances:
    """DP vs. brute force on a fixed battery of 50 seeded instances.

    Unlike the hypothesis property above, this battery is fully
    deterministic (no shrinking, identical on every machine/CI run):
    up to 5 classes x 4 items with adversarial weight spreads, checked
    against the documented discretization contract -- the DP never
    exceeds the budget, and its energy is no worse than the exhaustive
    optimum of the budget shrunk by one grid step per class.
    """

    RESOLUTION = 20000

    def random_instance(self, rng):
        n_classes = rng.randint(1, 5)
        classes = []
        for _ in range(n_classes):
            n_items = rng.randint(1, 4)
            classes.append(
                [
                    item(
                        rng.uniform(1e-4, 5.0),
                        rng.uniform(0.0, 10.0),
                    )
                    for _ in range(n_items)
                ]
            )
        budget = min_total_weight(classes) * rng.uniform(1.01, 3.0)
        return classes, budget

    def test_fifty_seeded_instances(self):
        import random

        rng = random.Random(0xDAE)
        checked = 0
        for _ in range(50):
            classes, budget = self.random_instance(rng)
            dp = solve_mckp_dp(
                classes, budget=budget, resolution=self.RESOLUTION
            )
            brute = solve_mckp_bruteforce(classes, budget=budget)
            # One item per class, never over budget, never beats the
            # continuous optimum.
            assert len(dp.items) == len(classes)
            assert dp.total_weight <= budget + 1e-9
            assert dp.total_value >= brute.total_value - 1e-9
            # Documented bound: ceil-rounding shrinks the effective
            # budget by at most one grid step per class.
            shrunk = budget - len(classes) * (budget / self.RESOLUTION)
            try:
                conservative = solve_mckp_bruteforce(classes, budget=shrunk)
            except QoSInfeasibleError:
                continue
            assert dp.total_value <= conservative.total_value + 1e-9
            checked += 1
        # The battery must actually exercise the bound, not skip it.
        assert checked >= 40


class TestReprice:
    """Incremental re-pricing for drifted operating points."""

    def test_weights_untouched(self):
        repriced = reprice_classes(SIMPLE, extra_power_w=0.5)
        for old_cls, new_cls in zip(SIMPLE, repriced):
            for old, new in zip(old_cls, new_cls):
                assert new.weight == old.weight

    def test_values_gain_extra_energy(self):
        repriced = reprice_classes(SIMPLE, extra_power_w=2.0)
        # value' = value + extra_w * weight: the slow 3 s item pays
        # 6 J extra, the fast 1 s item only 2 J.
        assert repriced[0][0].value == pytest.approx(12.0)
        assert repriced[0][2].value == pytest.approx(7.0)

    def test_zero_extra_power_is_identity(self):
        repriced = reprice_classes(SIMPLE, extra_power_w=0.0)
        for old_cls, new_cls in zip(SIMPLE, repriced):
            for old, new in zip(old_cls, new_cls):
                assert new.value == old.value

    def test_negative_extra_power_rejected(self):
        with pytest.raises(SolverError):
            reprice_classes(SIMPLE, extra_power_w=-0.1)

    def test_item_filter_drops_items(self):
        repriced = reprice_classes(
            SIMPLE, item_filter=lambda i: i.weight < 3.0
        )
        assert [len(c) for c in repriced] == [2, 2]

    def test_filter_emptying_a_class_is_infeasible(self):
        with pytest.raises(QoSInfeasibleError):
            reprice_classes(SIMPLE, item_filter=lambda i: i.weight > 10)

    def test_payloads_preserved(self):
        classes = [[MCKPItem(1.0, 1.0, payload="tag")]]
        repriced = reprice_classes(classes, extra_power_w=1.0)
        assert repriced[0][0].payload == "tag"

    def test_leakage_ramp_flips_the_pick(self):
        """The governor's core mechanism: the slow/cheap item wins
        cold, but under enough extra leakage power the fast/pricey
        item absorbs fewer extra joules and the solver flips to it."""
        classes = [
            [
                MCKPItem(weight=2.0, value=1.0, payload="slow"),
                MCKPItem(weight=1.0, value=1.5, payload="fast"),
            ]
        ]
        cold = solve_mckp_dp(classes, budget=3.0)
        assert cold.items[0].payload == "slow"
        # Above extra_w = 0.5 W the orderings cross:
        # 1.0 + 2 w  vs  1.5 + 1 w.
        hot = solve_mckp_dp(
            reprice_classes(classes, extra_power_w=1.0), budget=3.0
        )
        assert hot.items[0].payload == "fast"


class TestMaximizationTransformation:
    def test_offset_is_sum_of_class_maxima(self):
        transformed, offset = to_maximization(SIMPLE)
        assert offset == pytest.approx(10.0 + 8.0)
        assert len(transformed) == len(SIMPLE)

    def test_values_complemented(self):
        transformed, _ = to_maximization(SIMPLE)
        assert transformed[0][0].value == pytest.approx(0.0)
        assert transformed[0][2].value == pytest.approx(9.0)

    def test_equivalence_with_minimization(self):
        """Kellerer: maximizing the transformed instance selects the
        minimizing items, and offset - max == min."""
        budget = 4.0
        min_solution = solve_mckp_bruteforce(SIMPLE, budget)
        transformed, offset = to_maximization(SIMPLE)
        # Exhaustive maximization over the transformed instance.
        import itertools

        best = None
        for combo in itertools.product(*transformed):
            if sum(i.weight for i in combo) > budget:
                continue
            value = sum(i.value for i in combo)
            if best is None or value > best[0]:
                best = (value, combo)
        assert best is not None
        assert offset - best[0] == pytest.approx(min_solution.total_value)

    def test_weights_preserved(self):
        transformed, _ = to_maximization(SIMPLE)
        for original_cls, new_cls in zip(SIMPLE, transformed):
            for original, new in zip(original_cls, new_cls):
                assert new.weight == original.weight
