"""QoS levels and budget derivation."""

import pytest

from repro.errors import SolverError
from repro.optimize import MODERATE, PAPER_QOS_LEVELS, RELAXED, TIGHT, QoSLevel


class TestPaperLevels:
    def test_three_levels(self):
        assert len(PAPER_QOS_LEVELS) == 3

    def test_slacks_match_paper(self):
        assert TIGHT.slack == pytest.approx(0.10)
        assert MODERATE.slack == pytest.approx(0.30)
        assert RELAXED.slack == pytest.approx(0.50)

    def test_percent_labels(self):
        assert [lvl.percent for lvl in PAPER_QOS_LEVELS] == [10, 30, 50]


class TestBudget:
    def test_budget_formula(self):
        assert TIGHT.budget_s(1.0) == pytest.approx(1.10)
        assert RELAXED.budget_s(0.050) == pytest.approx(0.075)

    def test_nonpositive_baseline_rejected(self):
        with pytest.raises(SolverError):
            TIGHT.budget_s(0.0)

    def test_negative_slack_rejected(self):
        with pytest.raises(SolverError):
            QoSLevel(name="bad", slack=-0.1)

    def test_zero_slack_allowed(self):
        level = QoSLevel(name="iso", slack=0.0)
        assert level.budget_s(2.0) == pytest.approx(2.0)
