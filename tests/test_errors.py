"""Error hierarchy: everything derives from ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ClockConfigError,
    errors.ClockSwitchError,
    errors.PowerModelError,
    errors.QuantizationError,
    errors.ShapeError,
    errors.GraphError,
    errors.TraceError,
    errors.ProfilingError,
    errors.DesignSpaceError,
    errors.SolverError,
    errors.FaultInjectionError,
    errors.SensorReadError,
    errors.WatchdogResetError,
    errors.ProtocolError,
    errors.OverloadedError,
    errors.DeadlineExceededError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_derives_from_repro_error(self, error_type):
        assert issubclass(error_type, errors.ReproError)
        assert issubclass(error_type, Exception)

    def test_qos_infeasible_carries_context(self):
        err = errors.QoSInfeasibleError(qos_s=0.010, min_latency_s=0.015)
        assert isinstance(err, errors.ReproError)
        assert err.qos_s == pytest.approx(0.010)
        assert err.min_latency_s == pytest.approx(0.015)
        assert "10.000 ms" in str(err)
        assert "15.000 ms" in str(err)

    def test_watchdog_reset_carries_context(self):
        err = errors.WatchdogResetError(layer_name="conv0", resets=4)
        assert isinstance(err, errors.ReproError)
        assert err.layer_name == "conv0"
        assert err.resets == 4
        assert "conv0" in str(err)

    def test_overloaded_carries_context(self):
        err = errors.OverloadedError(
            reason="queue_full", retry_after_s=0.25
        )
        assert err.reason == "queue_full"
        assert err.retry_after_s == pytest.approx(0.25)
        assert "queue_full" in str(err)

    def test_deadline_exceeded_carries_context(self):
        err = errors.DeadlineExceededError(deadline_s=0.5)
        assert err.deadline_s == pytest.approx(0.5)

    def test_catch_all_via_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ShapeError("bad shape")
