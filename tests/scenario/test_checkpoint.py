"""Checkpoint/resume: the resume-at-any-boundary parity invariant.

Every test builds a *fresh* config per run: stochastic arrival models
carry their consumed per-device RNG streams as instance state, so
sharing one config object between the baseline run and the
checkpointed run would diverge the draws (and the digests) for
reasons that have nothing to do with the checkpoint machinery.
"""

import pytest

from repro.errors import ReproError
from repro.recovery import load_checkpoint, save_checkpoint
from repro.scenario import ScenarioEngine, resume_scenario, run_scenario
from repro.scenario.library import churn_heavy, flash_crowd, smoke

HOUR_S = 3600.0


def small_smoke():
    return smoke(devices=6, horizon_s=1.5 * HOUR_S, seed=4)


def checkpoint_at(config, boundary: int, path: str) -> int:
    """Run ``config`` to the given event boundary, snapshot, abandon.

    Returns the number of events actually dispatched (the run may be
    shorter than the requested boundary).
    """
    engine = ScenarioEngine(config)
    try:
        engine.start()
        while engine.events_processed < boundary and engine.step():
            pass
        save_checkpoint(engine.checkpoint(), str(path))
        return engine.events_processed
    finally:
        engine.close()


class TestResumeParity:
    @pytest.mark.parametrize("boundary", [0, 1, 3, 7])
    def test_smoke_resume_any_boundary_is_byte_identical(
        self, tmp_path, boundary
    ):
        baseline = run_scenario(small_smoke())
        path = tmp_path / "smoke.ckpt"
        reached = checkpoint_at(small_smoke(), boundary, path)
        assert reached == boundary
        resumed = resume_scenario(str(path))
        assert resumed.digest() == baseline.digest()
        assert resumed.to_dict() == baseline.to_dict()

    def test_churn_and_faults_resume_identically(self, tmp_path):
        """Churned fleet + staged fault campaign: the hardest state to
        snapshot (victim RNG, campaign clocks, joined governors)."""

        def config():
            return churn_heavy(devices=5, horizon_s=6 * HOUR_S, seed=1)

        baseline = run_scenario(config())
        path = tmp_path / "churn.ckpt"
        checkpoint_at(config(), 9, path)
        resumed = resume_scenario(str(path))
        assert resumed.digest() == baseline.digest()

    def test_rate_limited_serve_resumes_identically(self, tmp_path):
        """Admission bucket/shed counters cross the boundary intact."""

        def config():
            return flash_crowd(devices=4, horizon_s=3 * HOUR_S, seed=2)

        baseline = run_scenario(config())
        path = tmp_path / "flash.ckpt"
        checkpoint_at(config(), 5, path)
        resumed = resume_scenario(str(path))
        assert resumed.digest() == baseline.digest()

    def test_checkpoint_past_end_resumes_to_same_report(self, tmp_path):
        """A boundary beyond the horizon snapshots the drained run."""
        baseline = run_scenario(small_smoke())
        path = tmp_path / "late.ckpt"
        checkpoint_at(small_smoke(), 10**9, path)
        resumed = resume_scenario(str(path))
        assert resumed.digest() == baseline.digest()


class TestCheckpointRestrictions:
    def test_sharded_engine_refuses_to_checkpoint(self):
        config = small_smoke()
        config.shards = 2
        engine = ScenarioEngine(config)
        with pytest.raises(ReproError, match="shard"):
            engine.checkpoint()

    def test_checkpoint_records_progress(self, tmp_path):
        path = tmp_path / "progress.ckpt"
        checkpoint_at(small_smoke(), 3, path)
        checkpoint = load_checkpoint(str(path))
        assert checkpoint.events_processed == 3
        assert checkpoint.clock_now >= 0.0
        assert checkpoint.governors  # initial fleet snapshotted
