"""Event queue and simulated-clock semantics."""

import pytest

from repro.errors import ReproError
from repro.scenario import Event, EventKind, EventQueue, SimClock


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30.0, EventKind.TICK)
        q.push(10.0, EventKind.TICK)
        q.push(20.0, EventKind.TICK)
        assert [q.pop().time_s for _ in range(3)] == [10.0, 20.0, 30.0]

    def test_same_time_orders_by_kind_priority(self):
        q = EventQueue()
        q.push(5.0, EventKind.TICK)
        q.push(5.0, EventKind.LEAVE)
        q.push(5.0, EventKind.JOIN)
        q.push(5.0, EventKind.STAGE_ENTER)
        kinds = [q.pop().kind for _ in range(4)]
        # Campaign staging < membership changes < the tick that runs
        # windows, so a tick always sees the tick-instant's final fleet.
        assert kinds == [
            EventKind.STAGE_ENTER,
            EventKind.JOIN,
            EventKind.LEAVE,
            EventKind.TICK,
        ]

    def test_same_time_same_kind_is_fifo(self):
        q = EventQueue()
        q.push(1.0, EventKind.JOIN, n=1)
        q.push(1.0, EventKind.JOIN, n=2)
        assert q.pop().payload["n"] == 1
        assert q.pop().payload["n"] == 2

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ReproError):
            q.push(-1.0, EventKind.TICK)

    def test_peek_and_len(self):
        q = EventQueue()
        assert not q and q.peek_time() is None
        q.push(7.0, EventKind.TICK)
        assert len(q) == 1 and q.peek_time() == 7.0


class TestSimClock:
    def test_advances_forward_only(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.advance_to(10.0)  # same instant is fine
        assert clock.now == 10.0
        with pytest.raises(ReproError):
            clock.advance_to(9.0)

    def test_event_is_immutable(self):
        event = Event(time_s=1.0, kind=EventKind.TICK, seq=0)
        with pytest.raises(Exception):
            event.time_s = 2.0
