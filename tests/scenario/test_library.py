"""Preset library and the scenario CLI surface."""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.scenario import PRESETS, build_preset, list_presets
from repro.scenario.engine import ScenarioConfig


class TestPresets:
    def test_every_preset_builds_a_valid_config(self):
        for name in PRESETS:
            config = build_preset(name, devices=4)
            assert isinstance(config, ScenarioConfig)
            assert config.name == name
            assert config.devices == 4

    def test_listing_is_sorted_and_json_ready(self):
        listed = list_presets()
        names = [entry["name"] for entry in listed]
        assert names == sorted(PRESETS)
        json.dumps(listed)  # must be JSON-clean
        assert all(entry["description"] for entry in listed)

    def test_overrides_apply(self):
        config = build_preset(
            "steady-diurnal", devices=7, horizon_s=3600.0, seed=9
        )
        assert config.devices == 7
        assert config.horizon_s == 3600.0
        assert config.seed == 9

    def test_zero_event_rejects_horizon_override(self):
        with pytest.raises(ReproError):
            build_preset("zero-event", horizon_s=1234.0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ReproError):
            build_preset("no-such-scenario")


class TestScenarioCLI:
    def test_list_text(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in PRESETS:
            assert name in out

    def test_list_json_is_clean(self, capsys):
        assert main(["scenario", "--list", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload["presets"]] == sorted(PRESETS)

    def test_missing_preset_is_an_error(self, capsys):
        assert main(["scenario"]) != 0

    def test_run_json_payload(self, capsys):
        code = main(
            [
                "scenario",
                "zero-event",
                "--devices",
                "3",
                "--json",
                "-",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "zero-event"
        assert payload["devices_initial"] == 3
        assert payload["digest"]
        assert payload["fleet_digest"]
        assert payload["demand"]["windows_deferred"] == 0
