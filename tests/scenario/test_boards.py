"""Scenario engine board mixing: config validation, determinism."""

import pytest

from repro.errors import ReproError
from repro.scenario.engine import ScenarioConfig, ScenarioEngine

MIX = ("nucleo-f767zi", "nucleo-n657x0")


def small_config(**overrides):
    defaults = dict(
        name="board-test",
        devices=3,
        horizon_s=300.0,
        tick_s=60.0,
        seed=5,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestConfig:
    def test_unknown_board_rejected(self):
        with pytest.raises(ReproError):
            small_config(boards=("no-such-board",))

    def test_empty_mix_rejected(self):
        with pytest.raises(ReproError):
            small_config(boards=())

    def test_describe_omits_boards_by_default(self):
        assert "boards" not in small_config().describe()

    def test_describe_carries_the_mix(self):
        desc = small_config(boards=MIX).describe()
        assert desc["boards"] == list(MIX)


class TestEngine:
    def _run(self, config):
        engine = ScenarioEngine(config)
        try:
            return engine.run()
        finally:
            engine.close()

    def test_mixed_pool_assignment(self):
        engine = ScenarioEngine(small_config(devices=8, boards=MIX))
        try:
            names = {p.board.name for p in engine.pool}
            assert names <= set(MIX)
            assert len(names) > 1
        finally:
            engine.close()

    def test_mixed_scenario_deterministic(self):
        first = self._run(small_config(boards=MIX)).to_dict()
        second = self._run(small_config(boards=MIX)).to_dict()
        assert first["digest"] == second["digest"]
        assert first["config"]["boards"] == list(MIX)

    def test_device_streams_match_homogeneous_pool(self):
        """Mixing boards must not shift the device variation streams."""
        plain = ScenarioEngine(small_config())
        mixed = ScenarioEngine(small_config(boards=MIX))
        try:
            for p, m in zip(plain.pool, mixed.pool):
                assert m.thermal.t_ambient_c == pytest.approx(
                    p.thermal.t_ambient_c
                )
        finally:
            plain.close()
            mixed.close()
