"""Arrival-trace generators: determinism and timetable arithmetic."""

import math

import pytest

from repro.errors import ReproError
from repro.scenario import (
    CompositeArrivals,
    ConstantArrivals,
    DAY_S,
    DiurnalArrivals,
    PoissonBurstArrivals,
    TimetableArrivals,
)


class TestConstantArrivals:
    def test_fixed_demand(self):
        model = ConstantArrivals(2)
        assert model.windows_at(0, 0.0, 60.0) == 2
        assert model.windows_at(99, 1e6, 60.0) == 2

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            ConstantArrivals(-1)


class TestDiurnalArrivals:
    def test_rate_follows_sinusoid(self):
        model = DiurnalArrivals(mean_per_hour=3.6, amplitude=0.5)
        base = 3.6 / 3600.0
        assert model.rate_at(0.0) == pytest.approx(base)
        assert model.rate_at(DAY_S / 4) == pytest.approx(base * 1.5)
        assert model.rate_at(3 * DAY_S / 4) == pytest.approx(base * 0.5)

    def test_same_seed_same_trace(self):
        trace = [
            DiurnalArrivals(2.0, seed=5).windows_at(d, t, 900.0)
            for d in range(4)
            for t in (0.0, 900.0, 1800.0)
        ]
        rerun = [
            DiurnalArrivals(2.0, seed=5).windows_at(d, t, 900.0)
            for d in range(4)
            for t in (0.0, 900.0, 1800.0)
        ]
        assert trace == rerun

    def test_per_device_streams_independent(self):
        """Querying device 1 never shifts device 0's draw sequence."""
        alone = DiurnalArrivals(2.0, seed=5)
        solo = [alone.windows_at(0, t * 900.0, 900.0) for t in range(8)]
        mixed_model = DiurnalArrivals(2.0, seed=5)
        mixed = []
        for t in range(8):
            mixed.append(mixed_model.windows_at(0, t * 900.0, 900.0))
            mixed_model.windows_at(1, t * 900.0, 900.0)
        assert solo == mixed


class TestPoissonBurstArrivals:
    def test_burst_multiplies_rate(self):
        model = PoissonBurstArrivals(
            base_per_hour=3.6, bursts=((100.0, 200.0, 20.0),)
        )
        base = 3.6 / 3600.0
        assert model.rate_at(50.0) == pytest.approx(base)
        assert model.rate_at(150.0) == pytest.approx(base * 20.0)
        assert model.rate_at(200.0) == pytest.approx(base)  # end excl.

    def test_overlapping_bursts_compound(self):
        model = PoissonBurstArrivals(
            base_per_hour=3.6,
            bursts=((0.0, 100.0, 2.0), (50.0, 150.0, 3.0)),
        )
        assert model.rate_at(75.0) == pytest.approx(3.6 / 3600.0 * 6.0)

    def test_invalid_burst_rejected(self):
        with pytest.raises(ReproError):
            PoissonBurstArrivals(1.0, bursts=((10.0, 10.0, 2.0),))


class TestTimetableArrivals:
    def test_matches_loadgen_dispatch_enumeration(self):
        """The residue-class count equals brute-force replay of the
        open-loop timetable (event i at start + i/rate, round-robin)."""
        model = TimetableArrivals(
            rate_rps=0.7, devices=3, total=100, start_s=5.0
        )
        tick_s = 13.0
        for device_id in range(3):
            for k in range(12):
                t0 = k * tick_s
                counted = model.windows_at(device_id, t0, tick_s)
                brute = sum(
                    1
                    for i in range(100)
                    if i % 3 == device_id
                    and t0 <= 5.0 + i / 0.7 < t0 + tick_s
                )
                assert counted == brute, (device_id, k)

    def test_every_event_lands_exactly_once(self):
        model = TimetableArrivals(rate_rps=2.0, devices=4, total=50)
        total = sum(
            model.windows_at(d, k * 7.0, 7.0)
            for d in range(4)
            for k in range(10)
        )
        assert total == 50

    def test_unknown_device_gets_nothing(self):
        model = TimetableArrivals(rate_rps=1.0, devices=2)
        assert model.windows_at(5, 0.0, 60.0) == 0


class TestCompositeArrivals:
    def test_sums_parts(self):
        model = CompositeArrivals(
            [ConstantArrivals(1), ConstantArrivals(2)]
        )
        assert model.windows_at(0, 0.0, 60.0) == 3

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            CompositeArrivals([])

    def test_describe_nests_parts(self):
        model = CompositeArrivals([ConstantArrivals(1)])
        desc = model.describe()
        assert desc["kind"] == "composite"
        assert desc["parts"][0]["kind"] == "constant"
