"""The report's ``health`` section: digest-stable fleet monitoring."""

import json

from repro.obs.registry import snapshot_digest
from repro.scenario import run_scenario
from repro.scenario.library import flash_crowd, zero_event

HOUR_S = 3600.0


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def small(seed: int = 2):
    return flash_crowd(devices=5, horizon_s=2 * HOUR_S, seed=seed)


class TestHealthDeterminism:
    def test_same_seed_byte_identical_health(self):
        """The acceptance pin: two same-seed runs in one process must
        produce byte-identical health sections -- the series rollup is
        delta-based, so counter residue left in the process-wide
        registry by the first run cannot leak into the second."""
        first = run_scenario(small())
        second = run_scenario(small())
        assert first.health is not None
        assert canonical(first.health) == canonical(second.health)
        assert first.digest() == second.digest()

    def test_registry_residue_cannot_reach_health(self):
        """Regression: counter/gauge residue left in the process-wide
        registry between runs (cells the second run's own activity
        never touches, stale gauges) must not move a byte of the
        health section."""
        from repro.obs.registry import MetricsRegistry, set_registry

        original = set_registry(MetricsRegistry())
        try:
            first = run_scenario(small())
            from repro.obs.registry import get_registry

            registry = get_registry()
            registry.count("fleet.governor", n=50, event="replan")
            registry.count("serve.sheds", n=50, reason="queue_full")
            registry.gauge_set("scenario.oracle_gap_pct", 999.0)
            second = run_scenario(small())
        finally:
            set_registry(original)
        assert canonical(first.health) == canonical(second.health)

    def test_rollup_and_alert_digests_recompute(self):
        health = run_scenario(small()).health
        assert health["rollup_digest"] == snapshot_digest(
            health["rollup"]
        )
        assert health["alerts_digest"] == snapshot_digest(
            {"alerts": health["alerts"]}
        )


class TestHealthShape:
    def test_section_structure(self):
        report = run_scenario(small())
        health = report.health
        assert set(health) == {
            "series",
            "rollup",
            "slos",
            "alerts",
            "alerts_active",
            "evaluations",
            "rollup_digest",
            "alerts_digest",
        }
        # One sample per tick: the series covers the whole horizon.
        assert health["series"]["total_samples"] >= 1
        assert health["evaluations"] >= 1
        assert {slo["name"] for slo in health["slos"]} >= {
            "scenario-shed-ratio",
            "scenario-governor-drift",
        }
        # Raw absolute snapshots are process-relative, so their digest
        # must NOT appear in the report.
        assert "latest_digest" not in health["series"]

    def test_rollup_carries_scenario_gauges(self):
        rollup = run_scenario(small()).health["rollup"]
        assert "scenario.governor_drift" in rollup["gauges"]
        # Every family in the rollup passed the simulation projection:
        # wall-clock latencies can never enter the health digest.
        assert "serve.latency" not in rollup["histograms"]

    def test_health_lands_in_to_dict_and_summary(self):
        report = run_scenario(small())
        assert report.to_dict()["health"] == report.health
        assert "health:" in report.summary()


class TestMonitorOff:
    def test_zero_event_preset_has_no_health(self):
        report = run_scenario(zero_event(devices=2, epochs=2, seed=1))
        assert report.health is None
        assert "health" not in report.to_dict()

    def test_monitor_flag_disables_health(self):
        config = small()
        config.monitor = False
        report = run_scenario(config)
        assert report.health is None
