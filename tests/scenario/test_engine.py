"""Scenario engine: determinism, the zero-event pin, lifecycle flows."""

import pytest

from repro.fleet import (
    FleetScheduler,
    aggregate_fleet,
    sample_fleet,
    supervise_device,
)
from repro.fleet.governor import GovernorConfig
from repro.nn import build_tiny_test_model
from repro.faults.campaign import FaultCampaign, FaultStage
from repro.faults.plan import FaultPlan
from repro.optimize import QoSLevel
from repro.scenario import ConstantArrivals, ScenarioConfig, run_scenario
from repro.scenario.library import churn_heavy, flash_crowd, zero_event
from repro.serve.server import ServeConfig

HOUR_S = 3600.0


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        config = flash_crowd(devices=5, horizon_s=3 * HOUR_S, seed=2)
        first = run_scenario(config)
        second = run_scenario(
            flash_crowd(devices=5, horizon_s=3 * HOUR_S, seed=2)
        )
        assert first.digest() == second.digest()
        assert first.to_dict() == second.to_dict()

    def test_different_seed_diverges(self):
        a = run_scenario(flash_crowd(devices=5, horizon_s=2 * HOUR_S, seed=0))
        b = run_scenario(flash_crowd(devices=5, horizon_s=2 * HOUR_S, seed=1))
        assert a.digest() != b.digest()


class TestZeroEventPin:
    def test_fleet_digest_matches_plain_fleet_path(self):
        """No events layered on => the embedded fleet report is
        bit-identical to FleetScheduler.run + supervise_device."""
        devices, epochs, seed = 4, 6, 3
        report = run_scenario(
            zero_event(devices=devices, epochs=epochs, seed=seed)
        )

        model = build_tiny_test_model()
        qos_level = QoSLevel(name="30%", slack=0.3)
        scheduler = FleetScheduler(model, qos_level=qos_level, max_workers=4)
        results = scheduler.run(sample_fleet(devices, seed=seed), pooled=True)
        config = GovernorConfig(epochs=epochs)
        governed = {
            r.profile.device_id: supervise_device(
                scheduler.pipeline_for(r.profile),
                r.profile,
                model,
                r.optimized,
                config,
            )
            for r in results
            if r.error is None
        }
        qos_s = next(r.optimized.qos_s for r in results if r.error is None)
        plain = aggregate_fleet(model, qos_s, results, governed)

        assert report.fleet.digest() == plain.digest()

    def test_zero_event_demand_is_every_tick(self):
        report = run_scenario(zero_event(devices=3, epochs=4, seed=0))
        assert report.demand["windows_requested"] == 12
        assert report.demand["epochs_run"] == 12
        assert report.demand["windows_deferred"] == 0
        assert report.replans["shed"] == 0


class TestLifecycle:
    @pytest.fixture(scope="class")
    def churn_report(self):
        return run_scenario(
            churn_heavy(devices=5, horizon_s=6 * HOUR_S, seed=1)
        )

    def test_churn_reshapes_fleet(self, churn_report):
        churn = churn_report.churn
        assert churn["joins"] > 0
        assert churn["leaves"] > 0
        assert churn["final_devices"] == (
            churn_report.devices_initial
            + churn["joins"]
            - churn["leaves"]
        )

    def test_fault_wave_injects_and_quarantines(self, churn_report):
        assert sum(churn_report.faults_injected.values()) > 0
        kinds = {
            entry["event"] for entry in churn_report.lifecycle_timeline
        }
        assert "join" in kinds or "leave" in kinds

    def test_admission_limited_replans_shed(self):
        """A permanent brownout keeps every governor asking to
        re-plan; a nearly-closed admission bucket sheds the flood."""
        report = run_scenario(
            ScenarioConfig(
                name="shed-flood",
                devices=8,
                horizon_s=0.5 * HOUR_S,
                tick_s=60.0,
                seed=0,
                arrivals=ConstantArrivals(1),
                campaign=FaultCampaign(
                    stages=(
                        FaultStage(
                            start_s=0.0,
                            end_s=0.5 * HOUR_S,
                            plan=FaultPlan(seed=5, brownout_rate=1.0),
                            label="always-brown",
                        ),
                    )
                ),
                serve=ServeConfig(
                    rate_per_s=0.2,
                    burst=1.0,
                    admission_tick_s=0.02,
                    max_queue_depth=1000,
                ),
                storm_threshold=4,
            )
        )
        assert report.replans["requested"] > 0
        assert report.replans["shed"] > 0
        assert (
            sum(report.serve["sheds"].values())
            == report.replans["shed"]
        )
        assert report.replans["storm_ticks"] > 0
        # Every shed tick is on the timeline with a positive count.
        assert all(e["sheds"] > 0 for e in report.shed_timeline)
        assert (
            sum(e["sheds"] for e in report.shed_timeline)
            == report.replans["shed"]
        )
