"""CLI: every subcommand exercised end to end."""

import json

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["summary", "resnet152"])

    def test_optimize_requires_qos(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["optimize", "tiny"])

    def test_qos_forms_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(
                ["optimize", "tiny", "--qos-percent", "30", "--qos-ms", "5"]
            )


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "DAE-eligible" in out

    def test_optimize_writes_plan(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            ["optimize", "tiny", "--qos-percent", "30",
             "--output", str(plan_path)]
        )
        assert code == 0
        data = json.loads(plan_path.read_text())
        assert data["model_name"] == "tiny"
        assert data["layers"]

    def test_optimize_harmonized(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            ["optimize", "tiny", "--qos-percent", "30", "--harmonize",
             "--output", str(plan_path)]
        )
        assert code == 0

    def test_deploy_roundtrip(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        timeline_path = tmp_path / "timeline.csv"
        main(["optimize", "tiny", "--qos-percent", "30",
              "--output", str(plan_path)])
        capsys.readouterr()
        code = main(
            ["deploy", "tiny", "--plan", str(plan_path),
             "--qos-ms", "2.0", "--timeline", str(timeline_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QoS met: True" in out
        assert timeline_path.read_text().startswith("start_s,")

    def test_deploy_missing_plan_reports_error(self, capsys, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{broken")
        code = main(["deploy", "tiny", "--plan", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "tiny", "--qos-percents", "20"]) == 0
        out = capsys.readouterr().out
        assert "vs TE" in out
        assert "20%" in out

    def test_microbench(self, capsys):
        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "MHz" in out
        assert "mW" in out

    def test_lifetime(self, capsys):
        code = main(
            ["lifetime", "tiny", "--qos-percent", "30",
             "--capacity-mah", "500", "--windows-per-hour", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "days" in out
        assert "DAE + DVFS" in out

    def test_codegen(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        main(["optimize", "tiny", "--qos-percent", "30",
              "--output", str(plan_path)])
        capsys.readouterr()
        outdir = tmp_path / "firmware"
        code = main(
            ["codegen", "tiny", "--plan", str(plan_path),
             "--outdir", str(outdir)]
        )
        assert code == 0
        header = (outdir / "dae_dvfs_clocks.h").read_text()
        source = (outdir / "dae_dvfs_inference.c").read_text()
        assert "PLLN" in header
        assert "run_inference" in source

    def test_infeasible_qos_reports_error(self, capsys):
        code = main(["optimize", "tiny", "--qos-ms", "0.001"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().err

    def test_stream(self, capsys):
        code = main(
            ["stream", "tiny", "--qos-percent", "30",
             "--windows", "20", "--idle", "stop"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "20 windows" in out
        assert "thermal" in out

    def test_hotspots(self, capsys):
        assert main(["hotspots", "tiny", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "share" in out

    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "self-test PASSED" in out

    def test_chaos_campaign(self, capsys, tmp_path):
        out_path = tmp_path / "chaos.json"
        code = main(
            ["chaos", "tiny", "--devices", "3", "--epochs", "1",
             "--watchdog-rate", "0.01", "--json", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos campaign" in out
        assert "digest:" in out
        data = json.loads(out_path.read_text())
        assert data["n_devices"] == 3
        assert data["digest"]
        assert len(data["devices"]) == 3
