"""CLI: every subcommand exercised end to end."""

import json

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            main(["summary", "resnet152"])

    def test_optimize_requires_qos(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["optimize", "tiny"])

    def test_qos_forms_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(
                ["optimize", "tiny", "--qos-percent", "30", "--qos-ms", "5"]
            )


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "DAE-eligible" in out

    def test_optimize_writes_plan(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            ["optimize", "tiny", "--qos-percent", "30",
             "--output", str(plan_path)]
        )
        assert code == 0
        data = json.loads(plan_path.read_text())
        assert data["model_name"] == "tiny"
        assert data["layers"]

    def test_optimize_harmonized(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        code = main(
            ["optimize", "tiny", "--qos-percent", "30", "--harmonize",
             "--output", str(plan_path)]
        )
        assert code == 0

    def test_deploy_roundtrip(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        timeline_path = tmp_path / "timeline.csv"
        main(["optimize", "tiny", "--qos-percent", "30",
              "--output", str(plan_path)])
        capsys.readouterr()
        code = main(
            ["deploy", "tiny", "--plan", str(plan_path),
             "--qos-ms", "2.0", "--timeline", str(timeline_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "QoS met: True" in out
        assert timeline_path.read_text().startswith("start_s,")

    def test_deploy_missing_plan_reports_error(self, capsys, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{broken")
        code = main(["deploy", "tiny", "--plan", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "tiny", "--qos-percents", "20"]) == 0
        out = capsys.readouterr().out
        assert "vs TE" in out
        assert "20%" in out

    def test_microbench(self, capsys):
        assert main(["microbench"]) == 0
        out = capsys.readouterr().out
        assert "MHz" in out
        assert "mW" in out

    def test_lifetime(self, capsys):
        code = main(
            ["lifetime", "tiny", "--qos-percent", "30",
             "--capacity-mah", "500", "--windows-per-hour", "120"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "days" in out
        assert "DAE + DVFS" in out

    def test_codegen(self, capsys, tmp_path):
        plan_path = tmp_path / "plan.json"
        main(["optimize", "tiny", "--qos-percent", "30",
              "--output", str(plan_path)])
        capsys.readouterr()
        outdir = tmp_path / "firmware"
        code = main(
            ["codegen", "tiny", "--plan", str(plan_path),
             "--outdir", str(outdir)]
        )
        assert code == 0
        header = (outdir / "dae_dvfs_clocks.h").read_text()
        source = (outdir / "dae_dvfs_inference.c").read_text()
        assert "PLLN" in header
        assert "run_inference" in source

    def test_infeasible_qos_reports_error(self, capsys):
        code = main(["optimize", "tiny", "--qos-ms", "0.001"])
        assert code == 1
        assert "infeasible" in capsys.readouterr().err

    def test_stream(self, capsys):
        code = main(
            ["stream", "tiny", "--qos-percent", "30",
             "--windows", "20", "--idle", "stop"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "20 windows" in out
        assert "thermal" in out

    def test_hotspots(self, capsys):
        assert main(["hotspots", "tiny", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "share" in out

    def test_selftest(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "self-test PASSED" in out

    def test_chaos_campaign(self, capsys, tmp_path):
        out_path = tmp_path / "chaos.json"
        code = main(
            ["chaos", "tiny", "--devices", "3", "--epochs", "1",
             "--watchdog-rate", "0.01", "--json", str(out_path)]
        )
        assert code == 0
        captured = capsys.readouterr()
        # --json owns stdout; the human summary moves to stderr.
        assert "chaos campaign" in captured.err
        assert "digest:" in captured.err
        data = json.loads(out_path.read_text())
        assert json.loads(captured.out) == data
        assert data["n_devices"] == 3
        assert data["digest"]
        assert len(data["devices"]) == 3


class TestJsonContract:
    """--json: machine-parseable stdout, human text on stderr."""

    def test_optimize_json_stdout_only(self, capsys):
        code = main(
            ["optimize", "tiny", "--qos-percent", "30", "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["model"] == "tiny"
        assert payload["plan"]["layers"]
        assert len(payload["digest"]) == 64
        assert "baseline" in captured.err  # human text on stderr

    def test_optimize_json_to_file(self, capsys, tmp_path):
        path = tmp_path / "out.json"
        code = main(
            ["optimize", "tiny", "--qos-percent", "30",
             "--json", str(path)]
        )
        assert code == 0
        on_disk = json.loads(path.read_text())
        on_stdout = json.loads(capsys.readouterr().out)
        assert on_disk == on_stdout

    def test_compare_json(self, capsys):
        code = main(
            ["compare", "tiny", "--qos-percents", "30", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["qos_percent"] == 30
        assert payload["rows"][0]["met_qos"]

    def test_lifetime_json(self, capsys):
        code = main(
            ["lifetime", "tiny", "--qos-percent", "30", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["systems"]["ours"]["days"] > 0

    def test_selftest_quick_json(self, capsys):
        code = main(["selftest", "--quick", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["quick"] is True
        assert len(payload["checks"]) == 3

    def test_error_emits_structured_json(self, capsys):
        code = main(
            ["optimize", "tiny", "--qos-ms", "0.001", "--json"]
        )
        assert code == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["ok"] is False
        assert payload["error"]["kind"] == "qos_infeasible"
        assert "infeasible" in captured.err

    def test_fleet_json_stdout(self, capsys):
        code = main(
            ["fleet", "tiny", "--devices", "2", "--epochs", "0",
             "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["n_devices"] == 2
        assert "fleet" in captured.err


class TestServeCommands:
    def test_loadgen_json(self, capsys):
        code = main(
            ["loadgen", "--requests", "6", "--concurrency", "2",
             "--qos-percents", "30", "--workers", "2", "--json"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["ok"] == 6
        assert payload["sheds"] == 0
        assert payload["cache_consistent"] is True
        assert "req/s" in captured.err

    def test_loadgen_human_only(self, capsys):
        code = main(
            ["loadgen", "--requests", "4", "--concurrency", "2",
             "--qos-percents", "30", "--workers", "2", "--no-verify"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "4/4 ok" in captured.out
        assert captured.err == ""


class TestMonitorCommand:
    @pytest.fixture(scope="class")
    def metrics_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("metrics") / "fleet.metrics.json"
        code = main(
            ["fleet", "tiny", "--devices", "2", "--epochs", "0",
             "--metrics", str(path)]
        )
        assert code == 0
        return path

    def test_metrics_flag_writes_verifiable_snapshot(self, metrics_file):
        from repro.obs.registry import snapshot_digest

        doc = json.loads(metrics_file.read_text())
        assert doc["digest"] == snapshot_digest(doc["registry"])
        assert "fleet.pricing" in doc["registry"]["counters"]

    def test_monitor_tails_single_snapshot(self, capsys, metrics_file):
        assert main(["monitor", str(metrics_file)]) == 0
        out = capsys.readouterr().out
        assert "monitor:" in out
        assert "counter" in out

    def test_monitor_delta_between_snapshots_json(
        self, capsys, metrics_file
    ):
        code = main(
            ["monitor", str(metrics_file), str(metrics_file), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sources"] == [str(metrics_file)] * 2
        # Identical endpoints: no window activity, so no counter
        # families at all (zero-delta cells are omitted).
        assert payload["rollup"]["counters"] == {}

    def test_monitor_prom_export_lints_clean(
        self, capsys, metrics_file, tmp_path
    ):
        prom_path = tmp_path / "metrics.prom"
        code = main(
            ["monitor", str(metrics_file), "--prom", str(prom_path),
             "--lint"]
        )
        assert code == 0
        assert prom_path.read_text().startswith("# HELP ")
        assert "lint: exposition clean" in capsys.readouterr().out

    def test_monitor_slo_json_reports_rows(self, capsys, metrics_file):
        code = main(
            ["monitor", str(metrics_file), "--slo", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in payload["slo"]["rows"]}
        assert "serve-latency-p95" in names
        assert "scenario-governor-drift" in names

    def test_monitor_detects_tampered_digest(self, tmp_path, capsys):
        path = tmp_path / "bad.metrics.json"
        code = main(
            ["fleet", "tiny", "--devices", "2", "--epochs", "0",
             "--metrics", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        doc["digest"] = "0" * 64
        path.write_text(json.dumps(doc))
        assert main(["monitor", str(path)]) != 0

    def test_monitor_requires_a_source(self, capsys):
        assert main(["monitor"]) != 0
