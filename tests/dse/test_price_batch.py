"""Vectorized pricing vs. the scalar reference oracle.

``LayerCostModel.price_batch`` is the DSE hot path; its contract is
exact agreement (1e-12 relative) with the scalar ``price`` oracle over
the full paper grid -- every conv node, every granularity, every HFO,
with and without the per-layer relock charge.
"""

import numpy as np
import pytest

from repro.dse import paper_design_space
from repro.dse.explorer import DSEExplorer, LayerCostModel
from repro.engine.cost import TraceBuilder


REL_TOL = 1e-12


@pytest.fixture
def space(board):
    return paper_design_space(board.power_model)


def iter_traces(board, space, model):
    tracer = TraceBuilder(board)
    for node in model.conv_nodes():
        granularities = (
            space.granularities if node.layer.supports_dae else (0,)
        )
        for g in granularities:
            yield tracer.build(model, node, g)


class TestOracleAgreement:
    def test_full_paper_grid_agreement(self, board, space, tiny_model):
        """Batch and scalar prices agree to 1e-12 on every candidate."""
        pricer = LayerCostModel(board)
        checked = 0
        for trace in iter_traces(board, space, tiny_model):
            for relock in (False, True):
                lat_vec, en_vec = pricer.price_batch(
                    trace, space.hfo_configs, space.lfo,
                    assume_relock=relock,
                )
                for i, hfo in enumerate(space.hfo_configs):
                    lat, en = pricer.price(
                        trace, hfo, space.lfo, assume_relock=relock
                    )
                    assert lat_vec[i] == pytest.approx(lat, rel=REL_TOL)
                    assert en_vec[i] == pytest.approx(en, rel=REL_TOL)
                    checked += 1
        # Every (layer, g, HFO, relock) candidate of the grid was hit.
        assert checked >= 2 * len(space.hfo_configs) * len(
            tiny_model.conv_nodes()
        )

    def test_batch_output_shapes(self, board, space, tiny_model):
        pricer = LayerCostModel(board)
        trace = next(iter_traces(board, space, tiny_model))
        lat, en = pricer.price_batch(trace, space.hfo_configs, space.lfo)
        assert lat.shape == en.shape == (len(space.hfo_configs),)
        assert np.all(lat > 0) and np.all(en > 0)

    def test_subset_of_hfos(self, board, space, tiny_model):
        """Batch pricing works on arbitrary HFO subsets, not just the grid."""
        pricer = LayerCostModel(board)
        trace = next(iter_traces(board, space, tiny_model))
        subset = space.hfo_configs[::2]
        lat, en = pricer.price_batch(trace, subset, space.lfo)
        for i, hfo in enumerate(subset):
            s_lat, s_en = pricer.price(
                trace, hfo, space.lfo, assume_relock=False
            )
            assert lat[i] == pytest.approx(s_lat, rel=REL_TOL)
            assert en[i] == pytest.approx(s_en, rel=REL_TOL)


class TestPowerVectorCache:
    def test_vectors_memoized_per_hfo_tuple(self, board, space):
        pricer = LayerCostModel(board)
        first = pricer._power_vectors(space.hfo_configs)
        second = pricer._power_vectors(space.hfo_configs)
        assert first is second

    def test_distinct_tuples_get_distinct_vectors(self, board, space):
        pricer = LayerCostModel(board)
        full = pricer._power_vectors(space.hfo_configs)
        sub = pricer._power_vectors(space.hfo_configs[:3])
        assert len(sub["f"]) == 3
        assert len(full["f"]) == len(space.hfo_configs)


class TestExplorerUsesBatch:
    def test_explore_layer_matches_scalar_pricing(
        self, board, space, tiny_model
    ):
        """End-to-end: explorer points equal scalar-priced points."""
        explorer = DSEExplorer(board, space)
        node = tiny_model.conv_nodes()[0]
        points = explorer.explore_layer(tiny_model, node)
        pricer = LayerCostModel(board)
        tracer = TraceBuilder(board)
        for point in points:
            trace = tracer.build(tiny_model, node, point.granularity)
            lat, en = pricer.price(
                trace, point.hfo, space.lfo, assume_relock=False
            )
            assert point.latency_s == pytest.approx(lat, rel=REL_TOL)
            assert point.energy_j == pytest.approx(en, rel=REL_TOL)
