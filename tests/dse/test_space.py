"""Design space: paper grid, pruning, validation."""

import pytest

from repro.clock import hfo_grid, lfo_config
from repro.dse import DesignSpace, paper_design_space, prune_iso_frequency
from repro.errors import DesignSpaceError
from repro.power import BoardPowerModel
from repro.units import MHZ


class TestPaperDesignSpace:
    def test_granularities_match_paper(self):
        space = paper_design_space()
        assert space.granularities == (0, 2, 4, 8, 12, 16)

    def test_lfo_is_hse_50(self):
        space = paper_design_space()
        assert space.lfo == lfo_config()
        assert space.lfo.sysclk_hz == pytest.approx(50 * MHZ)

    def test_one_config_per_frequency(self):
        space = paper_design_space()
        freqs = [c.sysclk_hz for c in space.hfo_configs]
        assert len(freqs) == len(set(freqs))

    def test_frequency_range(self):
        freqs = paper_design_space().frequencies_hz()
        assert freqs[0] == pytest.approx(50 * MHZ)
        assert freqs[-1] == pytest.approx(216 * MHZ)
        assert len(freqs) >= 6

    def test_size_per_dae_layer(self):
        space = paper_design_space()
        expected = 6 * len(space.hfo_configs)
        assert space.size_per_dae_layer == expected


class TestPruning:
    def test_prune_keeps_min_power_per_frequency(self):
        pm = BoardPowerModel()
        pruned = prune_iso_frequency(hfo_grid(), pm)
        freqs = [c.sysclk_hz for c in pruned]
        assert len(freqs) == len(set(freqs))
        # Every pruned config must be the cheapest of its group.
        for config in pruned:
            peers = [
                c for c in hfo_grid()
                if abs(c.sysclk_hz - config.sysclk_hz) <= 1.0
            ]
            assert pm.active_power(config) == pytest.approx(
                min(pm.active_power(c) for c in peers)
            )

    def test_pruned_sorted_ascending(self):
        pruned = prune_iso_frequency(hfo_grid(), BoardPowerModel())
        freqs = [c.sysclk_hz for c in pruned]
        assert freqs == sorted(freqs)


class TestValidation:
    def test_empty_granularities_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(granularities=(), hfo_configs=tuple(hfo_grid()))

    def test_missing_zero_granularity_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(granularities=(2, 4), hfo_configs=tuple(hfo_grid()))

    def test_negative_granularity_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(granularities=(0, -2), hfo_configs=tuple(hfo_grid()))

    def test_empty_hfo_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace(granularities=(0, 2), hfo_configs=())
