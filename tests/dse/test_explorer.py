"""DSE explorer: candidate clouds, pricing consistency, trends."""

import pytest

from repro.dse import DSEExplorer, paper_design_space, pareto_front
from repro.dse.explorer import LayerCostModel, layer_intervals
from repro.engine.cost import TraceBuilder
from repro.errors import DesignSpaceError
from repro.nn import LayerKind


@pytest.fixture
def explorer(board):
    return DSEExplorer(board, paper_design_space(board.power_model))


def node_of_kind(model, kind):
    for node in model.nodes:
        if node.layer.kind is kind:
            return node
    raise AssertionError


class TestExploreLayer:
    def test_dae_layer_gets_full_grid(self, explorer, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        points = explorer.explore_layer(tiny_model, dw)
        assert len(points) == explorer.space.size_per_dae_layer
        granularities = {p.granularity for p in points}
        assert granularities == set(explorer.space.granularities)

    def test_non_dae_conv_gets_frequency_sweep_only(self, explorer, tiny_model):
        conv = node_of_kind(tiny_model, LayerKind.CONV2D)
        points = explorer.explore_layer(tiny_model, conv)
        assert len(points) == len(explorer.space.hfo_configs)
        assert all(p.granularity == 0 for p in points)

    def test_pool_layer_rejected(self, explorer, tiny_model):
        pool = node_of_kind(tiny_model, LayerKind.AVG_POOL)
        with pytest.raises(DesignSpaceError):
            explorer.explore_layer(tiny_model, pool)

    def test_explore_model_covers_conv_nodes(self, explorer, tiny_model):
        clouds = explorer.explore_model(tiny_model)
        assert set(clouds) == {n.node_id for n in tiny_model.conv_nodes()}

    def test_latency_decreases_with_frequency_at_fixed_g(
        self, explorer, tiny_model
    ):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        points = [
            p for p in explorer.explore_layer(tiny_model, dw)
            if p.granularity == 4
        ]
        points.sort(key=lambda p: p.hfo.sysclk_hz)
        for slow, fast in zip(points, points[1:]):
            assert fast.latency_s <= slow.latency_s + 1e-12

    def test_pareto_front_nonempty_and_smaller(self, explorer, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        points = explorer.explore_layer(tiny_model, dw)
        front = pareto_front(points, key=lambda p: (p.latency_s, p.energy_j))
        assert 0 < len(front) < len(points)

    def test_dominates_helper(self, explorer, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        points = explorer.explore_layer(tiny_model, dw)
        front = pareto_front(points, key=lambda p: (p.latency_s, p.energy_j))
        for member in front:
            assert not any(p.dominates(member) for p in points)


class TestPricingConsistency:
    def test_intervals_match_price(self, board, tiny_model):
        """layer_intervals totals must equal LayerCostModel.price."""
        space = paper_design_space(board.power_model)
        tracer = TraceBuilder(board)
        pricer = LayerCostModel(board)
        for node in tiny_model.conv_nodes():
            for g in (0, 4):
                if g and not node.layer.supports_dae:
                    continue
                trace = tracer.build(tiny_model, node, g)
                for hfo in space.hfo_configs[::3]:
                    for relock in (True, False):
                        latency, energy = pricer.price(
                            trace, hfo, space.lfo, assume_relock=relock
                        )
                        account = layer_intervals(
                            board, trace, hfo, space.lfo, assume_relock=relock
                        )
                        assert account.total_time_s == pytest.approx(latency)
                        assert account.total_energy_j == pytest.approx(energy)

    def test_relock_charge_increases_cost(self, board, tiny_model):
        space = paper_design_space(board.power_model)
        tracer = TraceBuilder(board)
        pricer = LayerCostModel(board)
        node = tiny_model.conv_nodes()[0]
        trace = tracer.build(tiny_model, node, 0)
        hfo = space.hfo_configs[-1]
        with_relock = pricer.price(trace, hfo, space.lfo, assume_relock=True)
        without = pricer.price(trace, hfo, space.lfo, assume_relock=False)
        assert with_relock[0] > without[0]
        assert with_relock[1] > without[1]
