"""Pareto-front extraction: correctness and properties."""

import pytest
from hypothesis import given, strategies as st

from repro.dse import hypervolume_2d, is_pareto_optimal, pareto_front


def identity(p):
    return p


class TestParetoFront:
    def test_simple_front(self):
        points = [(1, 10), (2, 5), (3, 7), (4, 1)]
        front = pareto_front(points, identity)
        assert front == [(1, 10), (2, 5), (4, 1)]

    def test_single_point(self):
        assert pareto_front([(1, 1)], identity) == [(1, 1)]

    def test_empty(self):
        assert pareto_front([], identity) == []

    def test_duplicates_collapsed(self):
        points = [(1, 5), (1, 5), (2, 3)]
        front = pareto_front(points, identity)
        assert front == [(1, 5), (2, 3)]

    def test_equal_first_objective_keeps_best_second(self):
        points = [(1, 7), (1, 4), (2, 2)]
        front = pareto_front(points, identity)
        assert front == [(1, 4), (2, 2)]

    def test_totally_dominated_point_removed(self):
        points = [(1, 1), (2, 2)]
        assert pareto_front(points, identity) == [(1, 1)]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            max_size=60,
        )
    )
    def test_front_properties(self, points):
        """Properties: front members are mutually non-dominating, every
        input point is dominated by (or equal to) a front member, and
        the front is sorted with strictly decreasing second objective."""
        front = pareto_front(points, identity)
        # Sorted ascending in x, strictly descending in y.
        for (x1, y1), (x2, y2) in zip(front, front[1:]):
            assert x1 < x2
            assert y1 > y2
        # Every original point is weakly dominated by some front point.
        for px, py in points:
            assert any(fx <= px and fy <= py for fx, fy in front)
        # Every front member is actually non-dominated in the input.
        for member in front:
            assert is_pareto_optimal(member, points, identity)


class TestIsParetoOptimal:
    def test_dominated_point(self):
        points = [(1, 1), (2, 2)]
        assert not is_pareto_optimal((2, 2), points, identity)
        assert is_pareto_optimal((1, 1), points, identity)

    def test_incomparable_points(self):
        points = [(1, 5), (5, 1)]
        assert is_pareto_optimal((1, 5), points, identity)
        assert is_pareto_optimal((5, 1), points, identity)


class TestHypervolume:
    def test_single_point_rectangle(self):
        volume = hypervolume_2d([(1, 1)], identity, reference=(3, 3))
        assert volume == pytest.approx(4.0)

    def test_staircase(self):
        volume = hypervolume_2d(
            [(1, 2), (2, 1)], identity, reference=(3, 3)
        )
        # (1..2)x(2..3 gap -> height 1) + (2..3)x(height 2) = 1 + 2
        assert volume == pytest.approx(3.0)

    def test_points_beyond_reference_ignored(self):
        volume = hypervolume_2d(
            [(5, 5), (1, 1)], identity, reference=(3, 3)
        )
        assert volume == pytest.approx(4.0)

    def test_dominated_points_do_not_add_volume(self):
        base = hypervolume_2d([(1, 1)], identity, reference=(4, 4))
        more = hypervolume_2d([(1, 1), (2, 2)], identity, reference=(4, 4))
        assert more == pytest.approx(base)


class TestParetoProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            max_size=40,
        )
    )
    def test_idempotent(self, points):
        """Property: the front of a front is the front."""
        front = pareto_front(points, identity)
        assert pareto_front(front, identity) == front

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_front_contains_extremes(self, points):
        """Property: the min-x and min-y points are never dominated
        away entirely -- the front contains points achieving both
        minima."""
        front = pareto_front(points, identity)
        min_x = min(p[0] for p in points)
        min_y = min(p[1] for p in points)
        assert any(p[0] == min_x for p in front)
        assert any(p[1] == min_y for p in front)
