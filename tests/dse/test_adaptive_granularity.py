"""Adaptive granularity policy."""

import functools

import pytest

from repro.dse import (
    ADAPTIVE_GRANULARITY_LADDER,
    DSEExplorer,
    adaptive_granularities,
    paper_design_space,
)
from repro.errors import DesignSpaceError
from repro.mcu import CacheModel, make_nucleo_f767zi
from repro.nn import LayerKind


def node_of_kind(model, kind):
    for node in model.nodes:
        if node.layer.kind is kind:
            return node
    raise AssertionError


class TestAdaptiveGranularities:
    def test_always_contains_zero(self, board, tiny_model):
        for node in tiny_model.conv_nodes():
            grid = adaptive_granularities(board, tiny_model, node)
            assert grid[0] == 0

    def test_non_dae_layer_gets_only_zero(self, board, tiny_model):
        conv = node_of_kind(tiny_model, LayerKind.CONV2D)
        assert adaptive_granularities(board, tiny_model, conv) == (0,)

    def test_capped_by_unit_count(self, board, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        channels = dw.layer.channels
        grid = adaptive_granularities(board, tiny_model, dw)
        assert all(g <= channels for g in grid if g > 0)

    def test_small_cache_shrinks_grid(self, tiny_model):
        big = make_nucleo_f767zi()
        small = make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=512, usable_fraction=0.5)
        )
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        big_grid = adaptive_granularities(big, tiny_model, dw)
        small_grid = adaptive_granularities(small, tiny_model, dw)
        assert max(small_grid) <= max(big_grid)

    def test_pointwise_can_exceed_paper_grid(self, board, tiny_model):
        # Small columns fit many at a time: the ladder extends past 16.
        pw = node_of_kind(tiny_model, LayerKind.POINTWISE_CONV)
        grid = adaptive_granularities(board, tiny_model, pw)
        assert max(grid) > 16
        assert max(grid) in ADAPTIVE_GRANULARITY_LADDER

    def test_always_offers_some_decoupling(self, tiny_model):
        tiny_cache = make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=64, usable_fraction=0.5)
        )
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        grid = adaptive_granularities(tiny_cache, tiny_model, dw)
        assert 2 in grid


class TestExplorerIntegration:
    def test_explorer_uses_policy(self, board, tiny_model):
        space = paper_design_space(board.power_model)
        explorer = DSEExplorer(
            board, space,
            granularity_fn=functools.partial(adaptive_granularities, board),
        )
        pw = node_of_kind(tiny_model, LayerKind.POINTWISE_CONV)
        points = explorer.explore_layer(tiny_model, pw)
        granularities = {p.granularity for p in points}
        assert granularities == set(
            adaptive_granularities(board, tiny_model, pw)
        )

    def test_policy_without_zero_rejected(self, board, tiny_model):
        space = paper_design_space(board.power_model)
        explorer = DSEExplorer(
            board, space, granularity_fn=lambda m, n: (2, 4)
        )
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        with pytest.raises(DesignSpaceError):
            explorer.explore_layer(tiny_model, dw)
