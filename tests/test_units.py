"""Unit helpers: conversions are exact inverses."""

import pytest

from repro import units


class TestFrequency:
    def test_constants(self):
        assert units.MHZ == 1e6
        assert units.KHZ == 1e3
        assert units.GHZ == 1e9

    def test_mhz_round_trip(self):
        assert units.to_mhz(units.mhz(216)) == pytest.approx(216)


class TestTime:
    @pytest.mark.parametrize(
        "forward,backward,value",
        [
            (units.us, units.to_us, 200.0),
            (units.ms, units.to_ms, 31.5),
        ],
    )
    def test_round_trips(self, forward, backward, value):
        assert backward(forward(value)) == pytest.approx(value)

    def test_ns(self):
        assert units.ns(40) == pytest.approx(40e-9)


class TestPowerEnergy:
    @pytest.mark.parametrize(
        "forward,backward,value",
        [
            (units.mw, units.to_mw, 450.0),
            (units.mj, units.to_mj, 18.0),
            (units.uj, units.to_uj, 7.5),
        ],
    )
    def test_round_trips(self, forward, backward, value):
        assert backward(forward(value)) == pytest.approx(value)


class TestCapacity:
    def test_kib(self):
        assert units.kib(16) == 16384
        assert units.KIB == 1024
        assert units.MIB == 1024 * 1024
