"""Prometheus text exposition (0.0.4): rendering and the linter."""

from repro.obs.prom import lint_exposition, metric_name, to_prometheus
from repro.obs.registry import MetricsRegistry, merge_snapshot


def sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.count("serve.requests", n=3, op="plan")
    registry.count("serve.requests", op="stats")
    registry.gauge_set("serve.queue_depth", 2.0)
    for value in (0.001, 0.01, 0.1):
        registry.observe("serve.latency", value, op="plan")
    return registry


class TestRendering:
    def test_metric_name_maps_dots_to_underscores(self):
        assert metric_name("serve.latency") == "serve_latency"
        assert metric_name("fleet.governor") == "fleet_governor"

    def test_counters_get_total_suffix(self):
        text = to_prometheus(sample_registry().snapshot())
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_requests_total{op="plan"} 3' in text
        assert 'serve_requests_total{op="stats"} 1' in text

    def test_help_and_type_precede_samples(self):
        lines = to_prometheus(sample_registry().snapshot()).splitlines()
        first_sample = next(
            i for i, line in enumerate(lines)
            if not line.startswith("#")
        )
        head = lines[:first_sample]
        assert any(line.startswith("# HELP ") for line in head)
        assert any(line.startswith("# TYPE ") for line in head)

    def test_histogram_buckets_are_cumulative_and_closed(self):
        text = to_prometheus(sample_registry().snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith('serve_latency_seconds_bucket{op="plan"')
        ]
        assert counts == sorted(counts)  # cumulative, not per-bucket
        inf_line = next(
            line for line in text.splitlines()
            if line.startswith("serve_latency_seconds_bucket")
            and 'le="+Inf"' in line
        )
        count_line = next(
            line for line in text.splitlines()
            if line.startswith('serve_latency_seconds_count{op="plan"')
        )
        assert inf_line.rsplit(" ", 1)[1] == "3"
        assert count_line.rsplit(" ", 1)[1] == "3"

    def test_exposition_is_deterministic(self):
        a = to_prometheus(sample_registry().snapshot())
        b = to_prometheus(sample_registry().snapshot())
        assert a == b

    def test_merged_snapshot_renders_clean(self):
        snaps = [sample_registry().snapshot() for _ in range(2)]
        text = to_prometheus(merge_snapshot(snaps))
        assert lint_exposition(text) == []
        assert 'serve_requests_total{op="plan"} 6' in text


class TestLint:
    def test_generated_output_is_clean(self):
        assert lint_exposition(
            to_prometheus(sample_registry().snapshot())
        ) == []

    def test_empty_snapshot_is_clean(self):
        assert lint_exposition(to_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        )) == []

    def test_counter_without_total_suffix(self):
        text = (
            "# HELP serve_requests repro\n"
            "# TYPE serve_requests counter\n"
            "serve_requests 3\n"
        )
        assert lint_exposition(text)

    def test_sample_before_type_is_flagged(self):
        text = (
            "serve_requests_total 3\n"
            "# HELP serve_requests_total repro\n"
            "# TYPE serve_requests_total counter\n"
        )
        assert lint_exposition(text)

    def test_non_monotone_buckets_are_flagged(self):
        text = (
            "# HELP x_seconds repro\n"
            "# TYPE x_seconds histogram\n"
            'x_seconds_bucket{le="0.1"} 5\n'
            'x_seconds_bucket{le="1"} 3\n'
            'x_seconds_bucket{le="+Inf"} 5\n'
            "x_seconds_sum 1\n"
            "x_seconds_count 5\n"
        )
        assert lint_exposition(text)

    def test_inf_bucket_count_mismatch_is_flagged(self):
        text = (
            "# HELP x_seconds repro\n"
            "# TYPE x_seconds histogram\n"
            'x_seconds_bucket{le="0.1"} 2\n'
            'x_seconds_bucket{le="+Inf"} 2\n'
            "x_seconds_sum 1\n"
            "x_seconds_count 5\n"
        )
        assert lint_exposition(text)

    def test_bad_metric_name_is_flagged(self):
        text = (
            "# HELP bad-name repro\n"
            "# TYPE bad-name gauge\n"
            "bad-name 1\n"
        )
        assert lint_exposition(text)
