"""Span API: nesting, correlation, thread hand-off, disabled path."""

from concurrent.futures import ThreadPoolExecutor

from repro.obs.tracing import (
    Tracer,
    correlation,
    current_correlation,
    get_tracer,
    install,
    span,
    traced,
    uninstall,
    wrap,
)


class TestDisabledPath:
    def test_span_is_shared_noop_singleton(self):
        assert get_tracer() is None
        first = span("a", x=1)
        second = span("b")
        assert first is second  # no allocation while disabled
        with first as s:
            s.set(anything="goes")

    def test_wrap_returns_fn_unchanged(self):
        def fn():
            return 42

        assert wrap(fn) is fn

    def test_traced_calls_through(self):
        @traced("never.recorded")
        def double(x):
            return 2 * x

        assert double(21) == 42


class TestNesting:
    def test_parent_child_links(self, tracer):
        with span("outer"):
            with span("inner"):
                pass
            with span("sibling"):
                pass
        outer, inner, sibling = tracer.spans()
        assert outer.parent_seq is None
        assert inner.parent_seq == outer.seq
        assert sibling.parent_seq == outer.seq

    def test_attrs_and_set(self, tracer):
        with span("s", model="tiny") as sp:
            sp.set(cached=True)
        (record,) = tracer.spans()
        assert record.attrs == {"model": "tiny", "cached": True}

    def test_exception_recorded_and_propagated(self, tracer):
        try:
            with span("boom"):
                raise ValueError("nope")
        except ValueError:
            pass
        (record,) = tracer.spans()
        assert record.attrs["error"] == "ValueError"
        assert record.end_s is not None

    def test_traced_decorator_records(self, tracer):
        @traced("fn.call", kind="test")
        def fn():
            return "ok"

        assert fn() == "ok"
        (record,) = tracer.spans()
        assert record.name == "fn.call"
        assert record.attrs == {"kind": "test"}


class TestCorrelation:
    def test_correlation_applies_to_nested_spans(self, tracer):
        assert current_correlation() is None
        with correlation("req-7"):
            assert current_correlation() == "req-7"
            with span("a"):
                with span("b"):
                    pass
        assert current_correlation() is None
        assert all(r.correlation == "req-7" for r in tracer.spans())

    def test_wrap_carries_context_into_pool(self, tracer):
        def work():
            with span("pooled"):
                pass

        with correlation("req-9"):
            with span("submitting"):
                with ThreadPoolExecutor(max_workers=2) as pool:
                    bound = wrap(work)
                    for f in [pool.submit(bound) for _ in range(3)]:
                        f.result()
        records = {r.name: r for r in tracer.spans()}
        submitting = records["submitting"]
        pooled = [r for r in tracer.spans() if r.name == "pooled"]
        assert len(pooled) == 3
        for r in pooled:
            assert r.parent_seq == submitting.seq
            assert r.correlation == "req-9"


class TestTracer:
    def test_deterministic_clock_counts(self):
        t = Tracer(deterministic=True)
        install(t)
        try:
            with span("a"):
                pass
            with span("b"):
                pass
        finally:
            uninstall()
        a, b = t.spans()
        assert (a.start_s, a.end_s) == (1.0, 2.0)
        assert (b.start_s, b.end_s) == (3.0, 4.0)

    def test_max_spans_drops_beyond_bound(self):
        t = Tracer(deterministic=True, max_spans=2)
        install(t)
        try:
            for _ in range(5):
                with span("s"):
                    pass
        finally:
            uninstall()
        assert len(t.spans()) == 2
        assert t.dropped == 3

    def test_clear_resets(self, tracer):
        with span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        with span("y"):
            pass
        assert tracer.spans()[0].seq == 0

    def test_install_uninstall_roundtrip(self):
        t = install(Tracer())
        assert get_tracer() is t
        assert uninstall() is t
        assert get_tracer() is None
