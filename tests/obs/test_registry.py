"""Metrics registry: families, labels, histograms, snapshots."""

import math

import pytest

from repro.obs.registry import (
    LatencyHistogram,
    MetricsRegistry,
    _log_bounds,
)


class TestLatencyHistogram:
    def test_percentile_is_bucket_upper_bound(self):
        h = LatencyHistogram()
        for v in [0.001, 0.002, 0.004, 0.008]:
            h.record(v)
        p50 = h.percentile_s(50)
        assert p50 >= 0.002  # never under-estimates
        ratio = 10.0 ** (1.0 / 8.0)
        assert p50 <= 0.002 * ratio + 1e-12

    def test_over_estimate_bounded_by_bucket_ratio(self):
        # The documented error bound: the answer is the upper bound of
        # the value's bucket, so relative error < 10**(1/8) - 1 (~33%).
        h = LatencyHistogram()
        value = 0.00317
        h.record(value)
        answer = h.percentile_s(99)
        assert answer >= value
        assert (answer - value) / value < 10.0 ** (1.0 / 8.0) - 1.0

    def test_buckets_exact_counts(self):
        h = LatencyHistogram()
        for v in [1e-4, 1e-4, 5e-3]:
            h.record(v)
        buckets = h.buckets()
        assert sum(b["count"] for b in buckets) == 3
        assert all(b["count"] > 0 for b in buckets)
        # Each recorded value is <= its bucket's upper bound.
        assert any(b["le"] >= 5e-3 and b["count"] == 1 for b in buckets)

    def test_overflow_bucket_reports_inf(self):
        h = LatencyHistogram()
        h.record(1e6)  # beyond the 100 s top bound
        (bucket,) = h.buckets()
        assert math.isinf(bucket["le"])
        assert h.percentile_s(50) == 1e6  # falls back to max_s

    def test_to_dict_buckets_opt_in(self):
        h = LatencyHistogram()
        h.record(0.01)
        assert "buckets" not in h.to_dict()
        assert h.to_dict(include_buckets=True)["buckets"]

    def test_observe_aliases_record(self):
        h = LatencyHistogram()
        h.observe(0.5)
        assert h.count == 1

    def test_log_bounds_span_decades(self):
        bounds = _log_bounds()
        assert bounds[0] == 1e-6
        assert bounds[-1] == 100.0
        assert all(b < a for b, a in zip(bounds, bounds[1:]))


class TestMetricsRegistry:
    def test_counters_with_labels(self, registry):
        registry.count("pipeline.cache", cache="cloud", event="hit")
        registry.count("pipeline.cache", cache="cloud", event="hit")
        registry.count("pipeline.cache", cache="cloud", event="miss")
        assert registry.counter_value(
            "pipeline.cache", cache="cloud", event="hit"
        ) == 2.0
        assert registry.counter_value(
            "pipeline.cache", cache="cloud", event="miss"
        ) == 1.0
        assert registry.counter_value("absent") == 0.0

    def test_label_name_mismatch_raises(self, registry):
        registry.count("serve.sheds", reason="queue_full")
        with pytest.raises(ValueError):
            registry.count("serve.sheds", why="rate_limited")

    def test_kind_mismatch_raises(self, registry):
        registry.count("x")
        with pytest.raises(ValueError):
            registry.gauge_set("x", 1.0)

    def test_gauges_overwrite(self, registry):
        registry.gauge_set("serve.queue_depth", 3.0)
        registry.gauge_set("serve.queue_depth", 1.0)
        assert registry.snapshot()["gauges"]["serve.queue_depth"][""] == 1.0

    def test_histograms_in_snapshot(self, registry):
        registry.observe("serve.latency", 0.01, op="plan")
        snap = registry.snapshot()
        entry = snap["histograms"]["serve.latency"]["op=plan"]
        assert entry["count"] == 1
        assert entry["buckets"]

    def test_snapshot_is_deterministically_ordered(self, registry):
        registry.count("b.metric", event="z")
        registry.count("a.metric", event="y")
        registry.count("b.metric", event="a")
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.metric", "b.metric"]
        assert list(snap["counters"]["b.metric"]) == [
            "event=a", "event=z",
        ]

    def test_reset_drops_families(self, registry):
        registry.count("x")
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_independent_instances(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("only.a")
        assert b.counter_value("only.a") == 0.0


class TestServeMetricsCompat:
    def test_latency_histogram_reexported(self):
        from repro.serve import metrics

        assert metrics.LatencyHistogram is LatencyHistogram

    def test_serve_metrics_mirror_into_registry(self, registry):
        from repro.serve.metrics import ServeMetrics

        m = ServeMetrics()
        m.record_request("plan", 0.01)
        m.record_shed("queue_full")
        assert registry.counter_value("serve.requests", op="plan") == 1.0
        assert registry.counter_value(
            "serve.sheds", reason="queue_full"
        ) == 1.0
        snap = m.snapshot()
        assert snap["latency_by_op"]["plan"]["count"] == 1
        assert snap["latency_by_op"]["plan"]["buckets"]
