"""Exporters: digest determinism, Chrome schema, JSONL round-trip."""

import json

from repro.obs.export import (
    chrome_trace,
    dicts_to_records,
    dump_jsonl,
    load_jsonl,
    span_dicts,
    trace_digest,
    write_trace,
)
from repro.obs.tracing import Tracer, correlation, install, span, uninstall


def _record_workload(deterministic=True):
    tracer = install(Tracer(deterministic=deterministic))
    try:
        with correlation("req-1"):
            with span("outer", model="tiny"):
                with span("inner", rate=0.25):
                    pass
    finally:
        uninstall()
    return tracer


class TestDigest:
    def test_identical_workloads_digest_identically(self):
        a = _record_workload()
        b = _record_workload()
        assert trace_digest(a.spans()) == trace_digest(b.spans())

    def test_wall_clock_does_not_change_digest(self):
        # Same structure, one tick-clocked and one wall-clocked: the
        # digest covers only deterministic fields.
        a = _record_workload(deterministic=True)
        b = _record_workload(deterministic=False)
        assert trace_digest(a.spans()) == trace_digest(b.spans())

    def test_attr_change_changes_digest(self):
        a = _record_workload()
        tracer = install(Tracer(deterministic=True))
        try:
            with correlation("req-1"):
                with span("outer", model="tiny"):
                    with span("inner", rate=0.5):  # flipped parameter
                        pass
        finally:
            uninstall()
        assert trace_digest(a.spans()) != trace_digest(tracer.spans())

    def test_drop_count_changes_digest(self):
        a = _record_workload()
        assert trace_digest(a.spans(), 0) != trace_digest(a.spans(), 1)

    def test_float_attrs_bit_exact(self):
        a = _record_workload()
        # 0.25 vs the nearest-but-different float must not collide.
        tracer = install(Tracer(deterministic=True))
        try:
            with correlation("req-1"):
                with span("outer", model="tiny"):
                    with span("inner", rate=0.25000000000000006):
                        pass
        finally:
            uninstall()
        assert trace_digest(a.spans()) != trace_digest(tracer.spans())


class TestChromeTrace:
    def test_schema(self):
        tracer = _record_workload()
        doc = chrome_trace(tracer.spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["dur"] >= 0.0
            assert "seq" in event["args"]
            assert event["args"]["correlation"] == "req-1"
        inner = next(
            e for e in doc["traceEvents"] if e["name"] == "inner"
        )
        assert "parent_seq" in inner["args"]

    def test_json_serializable(self):
        tracer = _record_workload()
        json.dumps(chrome_trace(tracer.spans()))


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _record_workload()
        path = str(tmp_path / "trace.jsonl")
        dump_jsonl(tracer.spans(), path)
        entries = load_jsonl(path)
        records = dicts_to_records(entries)
        assert trace_digest(records) == trace_digest(tracer.spans())
        assert span_dicts(records) == span_dicts(tracer.spans())


class TestWriteTrace:
    def test_format_inferred_from_extension(self, tmp_path):
        tracer = _record_workload()
        jsonl = str(tmp_path / "t.jsonl")
        chrome = str(tmp_path / "t.json")
        s1 = write_trace(tracer, jsonl)
        s2 = write_trace(tracer, chrome)
        assert s1["format"] == "jsonl"
        assert s2["format"] == "chrome"
        assert s1["digest"] == s2["digest"]
        assert s1["spans"] == 2
        assert "traceEvents" in json.load(open(chrome))
