"""merge_snapshot algebra: lossless, order-independent, exact.

The merge is the load-bearing primitive of fleet-coherent monitoring:
the shard router's ``metrics``/``stats`` ops and the scenario resume
splice all assume that merging per-worker snapshots is *exactly*
additive (counters and histogram buckets), commutative, and
associative.  The tests pin those algebraic properties byte-for-byte
via :func:`snapshot_digest`, using dyadic-rational latencies so float
addition itself cannot smuggle in rounding.
"""

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    merge_snapshot,
    snapshot_digest,
)

#: Exactly-representable binary fractions: sums and fsum reorderings
#: are bit-exact, so any digest difference is a real merge bug.
DYADIC = [2.0 ** -k for k in range(3, 11)]


def seeded_registry(seed: int, events: int = 48) -> MetricsRegistry:
    """A registry filled from a tiny deterministic LCG."""
    registry = MetricsRegistry()
    state = (seed * 2654435761 + 12345) % 2 ** 31 | 1
    for _ in range(events):
        state = (1103515245 * state + 12345) % 2 ** 31
        op = ("plan", "reprice", "telemetry")[state % 3]
        registry.count("serve.requests", op=op)
        if state % 5 == 0:
            registry.count("serve.sheds", reason="queue_full")
        registry.observe(
            "serve.latency", DYADIC[state % len(DYADIC)], op=op
        )
    return registry


class TestSnapshotDeterminism:
    def test_label_insertion_order_is_irrelevant(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("serve.requests", op="plan", client="x")
        b.count("serve.requests", client="x", op="plan")
        a.observe("serve.latency", 0.25, op="plan", client="x")
        b.observe("serve.latency", 0.25, client="x", op="plan")
        assert snapshot_digest(a.snapshot()) == snapshot_digest(
            b.snapshot()
        )

    def test_family_recording_order_is_irrelevant(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("z.family")
        a.count("a.family")
        b.count("a.family")
        b.count("z.family")
        assert snapshot_digest(a.snapshot()) == snapshot_digest(
            b.snapshot()
        )

    def test_same_seed_same_digest(self):
        assert snapshot_digest(
            seeded_registry(7).snapshot()
        ) == snapshot_digest(seeded_registry(7).snapshot())


class TestMergeAlgebra:
    def test_commutative(self):
        snaps = [seeded_registry(s).snapshot() for s in (1, 2)]
        assert snapshot_digest(
            merge_snapshot(snaps)
        ) == snapshot_digest(merge_snapshot(list(reversed(snaps))))

    def test_associative(self):
        a, b, c = (
            seeded_registry(s).snapshot() for s in (1, 2, 3)
        )
        left = merge_snapshot([merge_snapshot([a, b]), c])
        right = merge_snapshot([a, merge_snapshot([b, c])])
        flat = merge_snapshot([a, b, c])
        assert snapshot_digest(left) == snapshot_digest(flat)
        assert snapshot_digest(right) == snapshot_digest(flat)

    def test_split_stream_merges_back_to_the_whole(self):
        """The acceptance-pin property, in miniature.

        Recording a stream into one registry, or alternating it
        across two and merging, must produce the *identical* snapshot
        -- counters, histogram counts, bucket counts, sums, and the
        percentiles recomputed from them.
        """
        whole = MetricsRegistry()
        shards = [MetricsRegistry(), MetricsRegistry()]
        state = 99991
        for i in range(60):
            state = (1103515245 * state + 12345) % 2 ** 31
            op = ("plan", "reprice")[state % 2]
            value = DYADIC[state % len(DYADIC)]
            for target in (whole, shards[i % 2]):
                target.count("serve.requests", op=op)
                target.observe("serve.latency", value, op=op)
        merged = merge_snapshot([s.snapshot() for s in shards])
        assert snapshot_digest(merged) == snapshot_digest(
            whole.snapshot()
        )

    def test_counter_cells_add_per_label(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("serve.requests", n=3, op="plan")
        b.count("serve.requests", n=4, op="plan")
        b.count("serve.requests", n=2, op="stats")
        merged = merge_snapshot([a.snapshot(), b.snapshot()])
        cells = merged["counters"]["serve.requests"]
        assert cells["op=plan"] == 7
        assert cells["op=stats"] == 2

    def test_histogram_bucket_sums_are_exact(self):
        shards = [seeded_registry(s) for s in (11, 12, 13)]
        snaps = [s.snapshot() for s in shards]
        merged = merge_snapshot(snaps)
        for label, summary in merged["histograms"][
            "serve.latency"
        ].items():
            per_shard = [
                snap["histograms"]["serve.latency"].get(label)
                for snap in snaps
            ]
            per_shard = [s for s in per_shard if s is not None]
            assert summary["count"] == sum(
                s["count"] for s in per_shard
            )
            assert summary["sum_s"] == sum(
                s["sum_s"] for s in per_shard
            )
            merged_buckets = {
                b["le"]: b["count"] for b in summary["buckets"]
            }
            expect: dict = {}
            for s in per_shard:
                for bucket in s["buckets"]:
                    expect[bucket["le"]] = (
                        expect.get(bucket["le"], 0) + bucket["count"]
                    )
            assert merged_buckets == expect

    def test_merge_of_merges_composes(self):
        snaps = [seeded_registry(s).snapshot() for s in range(4)]
        once = merge_snapshot(snaps)
        twice = merge_snapshot(
            [merge_snapshot(snaps[:2]), merge_snapshot(snaps[2:])]
        )
        assert snapshot_digest(once) == snapshot_digest(twice)

    def test_empty_merge_is_a_valid_snapshot(self):
        merged = merge_snapshot([])
        assert merged == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestGaugeMerge:
    def snaps(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge_set("serve.queue_depth", 3.0)
        b.gauge_set("serve.queue_depth", 5.0)
        return [a.snapshot(), b.snapshot()]

    def test_sum_is_the_default(self):
        merged = merge_snapshot(self.snaps())
        assert merged["gauges"]["serve.queue_depth"][""] == 8.0

    def test_max_min_last(self):
        snaps = self.snaps()
        assert merge_snapshot(snaps, gauge_merge="max")["gauges"][
            "serve.queue_depth"
        ][""] == 5.0
        assert merge_snapshot(snaps, gauge_merge="min")["gauges"][
            "serve.queue_depth"
        ][""] == 3.0
        assert merge_snapshot(snaps, gauge_merge="last")["gauges"][
            "serve.queue_depth"
        ][""] == 5.0

    def test_per_family_override(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge_set("pool.size", 2.0)
        a.gauge_set("queue.peak", 4.0)
        b.gauge_set("pool.size", 3.0)
        b.gauge_set("queue.peak", 9.0)
        merged = merge_snapshot(
            [a.snapshot(), b.snapshot()],
            gauge_modes={"queue.peak": "max"},
        )
        assert merged["gauges"]["pool.size"][""] == 5.0  # default sum
        assert merged["gauges"]["queue.peak"][""] == 9.0

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            merge_snapshot(self.snaps(), gauge_merge="median")
