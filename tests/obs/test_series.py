"""SeriesStore: injected clocks, delta rollups, splice, persistence."""

import json

import pytest

from repro.obs.registry import (
    MetricsRegistry,
    merge_snapshot,
    snapshot_digest,
)
from repro.obs.series import (
    SeriesStore,
    rollup_between,
    subtract_snapshot,
)


def canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TestSampling:
    def test_timestamps_must_be_non_decreasing(self, registry):
        store = SeriesStore(capacity=4)
        store.sample(10.0)
        store.sample(10.0)  # equal is fine (same-tick resample)
        with pytest.raises(ValueError):
            store.sample(9.0)

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            SeriesStore(capacity=1)

    def test_ring_drops_oldest_and_counts(self, registry):
        store = SeriesStore(capacity=2)
        for t in (1.0, 2.0, 3.0):
            store.sample(t)
        assert len(store) == 2
        assert store.dropped == 1
        assert store.total_samples == 3
        assert store.latest()[0] == 3.0
        assert store.at_or_before(1.5) is None  # evicted

    def test_explicit_snapshot_bypasses_registry(self, registry):
        registry.count("serve.requests", op="plan")
        store = SeriesStore(capacity=2)
        store.sample(0.0, {"counters": {}, "gauges": {}, "histograms": {}})
        assert store.latest()[1]["counters"] == {}

    def test_bound_registry_is_sampled(self):
        private = MetricsRegistry()
        private.count("serve.requests", op="plan")
        store = SeriesStore(capacity=2, registry=private)
        store.sample(1.0)
        assert store.latest()[1]["counters"]["serve.requests"][
            "op=plan"
        ] == 1


class TestRollup:
    def test_counter_delta_and_rate(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        registry.count("serve.requests", n=10, op="plan")
        store.sample(0.0)
        registry.count("serve.requests", n=30, op="plan")
        store.sample(60.0)
        rollup = store.rollup(60.0)
        cell = rollup["counters"]["serve.requests"]["op=plan"]
        assert cell["delta"] == 30.0
        assert cell["rate_per_s"] == 0.5
        assert rollup["samples"] == 2
        assert rollup["clamped"] is False

    def test_zero_delta_cells_are_omitted(self, registry):
        """A cell with no window activity must be indistinguishable
        from a cell that never existed, or counter residue from
        earlier work in the process de-determinizes every digest
        downstream of the rollup."""
        store = SeriesStore(capacity=4, registry=registry)
        registry.count("serve.requests", n=10, op="plan")
        registry.observe("serve.latency", 0.01, op="plan")
        store.sample(0.0)
        registry.count("serve.requests", n=3, op="stats")
        store.sample(60.0)
        rollup = store.rollup(60.0)
        assert rollup["counters"]["serve.requests"] == {
            "op=stats": {"delta": 3.0, "rate_per_s": 0.05}
        }
        assert "serve.latency" not in rollup["histograms"]

    def test_gauges_report_last_value(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        registry.gauge_set("serve.queue_depth", 5.0)
        store.sample(0.0)
        registry.gauge_set("serve.queue_depth", 2.0)
        store.sample(30.0)
        rollup = store.rollup(30.0)
        assert rollup["gauges"]["serve.queue_depth"][""] == {
            "last": 2.0
        }

    def test_histogram_percentiles_are_window_local(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        for _ in range(8):
            registry.observe("serve.latency", 0.001, op="plan")
        store.sample(0.0)
        for _ in range(8):
            registry.observe("serve.latency", 0.1, op="plan")
        store.sample(60.0)
        window = store.rollup(60.0)["histograms"]["serve.latency"][
            "op=plan"
        ]
        assert window["delta_count"] == 8.0
        # Only the second batch is in the window: p50 must sit near
        # 0.1 s, nowhere near the 1 ms of the pre-window batch.
        assert window["p50_s"] >= 0.05
        lifetime = rollup_between(
            {}, registry.snapshot(), 60.0
        )["histograms"]["serve.latency"]["op=plan"]
        assert lifetime["delta_count"] == 16.0
        assert lifetime["p50_s"] <= 0.002

    def test_window_clamps_to_oldest_sample(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        store.sample(100.0)
        store.sample(110.0)
        rollup = store.rollup(3600.0)
        assert rollup["clamped"] is True
        assert rollup["start_s"] == 100.0

    def test_end_anchor(self, registry):
        store = SeriesStore(capacity=8, registry=registry)
        registry.count("serve.requests", op="plan")
        store.sample(0.0)
        registry.count("serve.requests", op="plan")
        store.sample(10.0)
        registry.count("serve.requests", n=5, op="plan")
        store.sample(20.0)
        rollup = store.rollup(10.0, end_s=10.0)
        assert rollup["end_s"] == 10.0
        cell = rollup["counters"]["serve.requests"]["op=plan"]
        assert cell["delta"] == 1.0

    def test_empty_store_rollup_is_shaped(self, registry):
        rollup = SeriesStore(capacity=2).rollup(60.0)
        assert rollup["samples"] == 0
        assert rollup["counters"] == {}


class TestSubtractSplice:
    def test_subtract_then_merge_restores_current(self):
        """The resume-splice identity the scenario engine relies on:
        ``merge([base_sample, subtract(now, base)], gauge_merge="last")``
        must rebuild ``now`` exactly."""
        registry = MetricsRegistry()
        for k in range(10):
            registry.count("serve.requests", op="plan")
            registry.observe(
                "serve.latency", 2.0 ** -(3 + k % 6), op="plan"
            )
        registry.gauge_set("serve.queue_depth", 4.0)
        base = registry.snapshot()
        for k in range(7):
            registry.count("serve.requests", op="plan")
            registry.observe(
                "serve.latency", 2.0 ** -(4 + k % 5), op="plan"
            )
        registry.gauge_set("serve.queue_depth", 1.0)
        now = registry.snapshot()
        spliced = merge_snapshot(
            [base, subtract_snapshot(now, base)], gauge_merge="last"
        )
        assert canonical(
            spliced["counters"]
        ) == canonical(now["counters"])
        assert canonical(spliced["gauges"]) == canonical(now["gauges"])
        merged_h = spliced["histograms"]["serve.latency"]["op=plan"]
        now_h = now["histograms"]["serve.latency"]["op=plan"]
        for key in ("count", "sum_s", "mean_s", "min_s", "max_s",
                    "p50_s", "p95_s", "p99_s", "buckets"):
            assert merged_h[key] == now_h[key], key

    def test_counter_residue_cancels(self):
        registry = MetricsRegistry()
        registry.count("serve.requests", n=100, op="plan")
        base = registry.snapshot()
        delta = subtract_snapshot(registry.snapshot(), base)
        # No activity since base: the family is all-zero, and kept
        # out of the delta entirely.
        assert "serve.requests" not in delta["counters"]

    def test_gauges_pass_through_current(self):
        registry = MetricsRegistry()
        registry.gauge_set("scenario.governor_drift", 0.25)
        base = registry.snapshot()
        registry.gauge_set("scenario.governor_drift", 0.5)
        delta = subtract_snapshot(registry.snapshot(), base)
        assert delta["gauges"]["scenario.governor_drift"][""] == 0.5


class TestPersistence:
    def test_state_round_trip_preserves_rollups(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        registry.count("serve.requests", op="plan")
        store.sample(0.0)
        registry.count("serve.requests", n=4, op="plan")
        store.sample(60.0)
        restored = SeriesStore.from_state(store.to_state())
        assert canonical(restored.rollup(60.0)) == canonical(
            store.rollup(60.0)
        )
        assert restored.summary() == store.summary()

    def test_state_round_trip_survives_json(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        registry.observe("serve.latency", 0.01, op="plan")
        store.sample(5.0)
        state = json.loads(json.dumps(store.to_state()))
        restored = SeriesStore.from_state(state)
        assert snapshot_digest(
            restored.latest()[1]
        ) == snapshot_digest(store.latest()[1])

    def test_summary_shape(self, registry):
        store = SeriesStore(capacity=4, registry=registry)
        assert store.summary()["latest_digest"] is None
        store.sample(1.0)
        summary = store.summary()
        assert summary["len"] == 1
        assert summary["start_s"] == summary["end_s"] == 1.0
        assert summary["latest_digest"]
