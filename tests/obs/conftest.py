"""Shared obs fixtures: isolate the process-wide singletons per test."""

import pytest

from repro.obs.audit import DecisionLog, set_audit_log
from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.tracing import Tracer, install, uninstall


@pytest.fixture
def tracer():
    """A deterministic tracer installed for the test, removed after."""
    t = install(Tracer(deterministic=True))
    yield t
    uninstall()


@pytest.fixture
def registry():
    """A fresh default registry for the test; the old one is restored."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def audit():
    """A fresh default decision log; the old one is restored."""
    fresh = DecisionLog()
    previous = set_audit_log(fresh)
    yield fresh
    set_audit_log(previous)
