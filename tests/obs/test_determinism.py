"""End-to-end trace determinism: seeded runs digest identically.

The acceptance gate of the obs layer: the trace digest is a pure
function of what the run computed, so two identical seeded runs match
byte-for-byte while any parameter flip (QoS, drift power) shows up as
a different digest.
"""

import asyncio

import pytest

from repro.nn import build_tiny_test_model
from repro.obs.export import trace_digest
from repro.obs.tracing import Tracer, install, uninstall
from repro.optimize import QoSLevel
from repro.pipeline import DAEDVFSPipeline


def _traced_optimize(slack: float) -> tuple:
    tracer = install(Tracer(deterministic=True))
    try:
        pipeline = DAEDVFSPipeline()
        model = build_tiny_test_model()
        pipeline.optimize(
            model, qos_level=QoSLevel(name=f"{slack:.0%}", slack=slack)
        )
    finally:
        uninstall()
    return tracer.spans(), tracer.dropped


class TestPipelineDeterminism:
    def test_identical_runs_digest_identically(self):
        spans_a, dropped_a = _traced_optimize(0.30)
        spans_b, dropped_b = _traced_optimize(0.30)
        assert trace_digest(spans_a, dropped_a) == trace_digest(
            spans_b, dropped_b
        )

    def test_flipped_qos_changes_digest(self):
        spans_a, dropped_a = _traced_optimize(0.30)
        spans_b, dropped_b = _traced_optimize(0.50)
        assert trace_digest(spans_a, dropped_a) != trace_digest(
            spans_b, dropped_b
        )


class TestServeSpanTree:
    @pytest.fixture
    def served_spans(self):
        from repro.serve import PlanServer, ServeConfig

        tracer = install(Tracer(deterministic=True))
        try:
            server = PlanServer(ServeConfig(workers=2))
            request = {
                "v": 1,
                "id": "plan-1",
                "op": "plan",
                "params": {"model": "tiny", "qos_percent": 30},
            }

            async def _run():
                try:
                    return await server.handle_request_dict(request)
                finally:
                    server.batcher.shutdown()

            response = asyncio.run(_run())
        finally:
            uninstall()
        assert response["ok"], response
        return tracer.spans()

    def test_span_tree_spans_all_layers(self, served_spans):
        names = {r.name for r in served_spans}
        assert {
            "serve.request",
            "serve.batch",
            "serve.plan",
            "pipeline.optimize",
            "pipeline.explore",
            "dse.explore",
            "mckp.solve",
        } <= names

    def test_one_correlation_id_everywhere(self, served_spans):
        assert {r.correlation for r in served_spans} == {"plan-1"}

    def test_parent_links_chain_to_the_request(self, served_spans):
        by_seq = {r.seq: r for r in served_spans}

        def root_of(record):
            while record.parent_seq is not None:
                record = by_seq[record.parent_seq]
            return record

        request = next(
            r for r in served_spans if r.name == "serve.request"
        )
        solves = [r for r in served_spans if r.name == "mckp.solve"]
        assert solves
        for solve in solves:
            assert root_of(solve) is request
