"""Decision log: recording, querying, bounded capacity."""

from repro.obs.audit import DecisionLog
from repro.obs.tracing import correlation


class TestDecisionLog:
    def test_record_and_query(self, audit):
        audit.record("serve.cache", "miss", model="tiny")
        audit.record("serve.cache", "hit", model="tiny")
        audit.record("governor.epoch", "replan", drift=0.3)
        assert len(audit) == 3
        hits = audit.query(kind="serve.cache", decision="hit")
        assert len(hits) == 1
        assert hits[0].inputs == {"model": "tiny"}
        assert [r.seq for r in audit.query()] == [0, 1, 2]

    def test_counts(self, audit):
        audit.record("serve.admission", "shed", reason="queue_full")
        audit.record("serve.admission", "shed", reason="rate_limited")
        audit.record("serve.cache", "hit")
        assert audit.counts() == {
            "serve.admission:shed": 2,
            "serve.cache:hit": 1,
        }

    def test_capacity_drops_oldest(self):
        log = DecisionLog(capacity=3)
        for i in range(5):
            log.record("k", "d", i=i)
        assert len(log) == 3
        assert log.dropped == 2
        assert [r.inputs["i"] for r in log.query()] == [2, 3, 4]

    def test_correlation_captured(self, audit):
        with correlation("req-3"):
            audit.record("serve.cache", "miss")
        audit.record("serve.cache", "miss")
        by_corr = audit.query(correlation="req-3")
        assert len(by_corr) == 1
        assert audit.query()[1].correlation is None

    def test_to_dicts_json_shape(self, audit):
        audit.record("fleet.scheduler", "quarantine", device_id=7)
        (entry,) = audit.to_dicts(kind="fleet.scheduler")
        assert entry == {
            "seq": 0,
            "kind": "fleet.scheduler",
            "decision": "quarantine",
            "correlation": None,
            "inputs": {"device_id": 7},
        }

    def test_clear(self, audit):
        audit.record("k", "d")
        audit.clear()
        assert len(audit) == 0
        audit.record("k", "d")
        assert audit.query()[0].seq == 0
