"""SLOs: signal extraction, burn rates, edge-triggered alerting."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.series import SeriesStore
from repro.obs.slo import (
    SIMULATION_FAMILY_PREFIXES,
    SLO,
    SLOEvaluator,
    Signal,
    default_scenario_slos,
    default_serve_slos,
    deterministic_projection,
    signal_value,
    simulation_projection,
)

SHED = SLO(
    name="shed-ratio",
    signal=Signal(
        kind="ratio", family="serve.sheds", den_family="serve.requests"
    ),
    objective=0.10,
    fast_window_s=60.0,
    slow_window_s=120.0,
)


def store_with(registry: MetricsRegistry) -> SeriesStore:
    return SeriesStore(capacity=16, registry=registry)


class TestSignalValue:
    def rollup(self, registry, interval=60.0):
        store = store_with(registry)
        snapshot = registry.snapshot()
        store.sample(0.0, {"counters": {}, "gauges": {}, "histograms": {}})
        store.sample(interval, snapshot)
        return store.rollup(interval)

    def test_ratio(self):
        registry = MetricsRegistry()
        registry.count("serve.requests", n=20, op="plan")
        registry.count("serve.sheds", n=5, reason="queue_full")
        measured, weight = signal_value(
            SHED.signal, self.rollup(registry)
        )
        assert measured == 0.25
        assert weight == 20.0

    def test_ratio_missing_numerator_measures_zero(self):
        """Regression: whether the numerator *cell exists* is process
        history (counter residue), so a live denominator with no
        numerator must measure 0.0 -- identically whether the cell is
        absent or present with a zero window delta."""
        fresh = MetricsRegistry()
        fresh.count("serve.requests", n=20, op="plan")
        residue = MetricsRegistry()
        residue.count("serve.sheds", n=7, reason="queue_full")
        base = residue.snapshot()  # numerator cell exists, delta 0
        residue.count("serve.requests", n=20, op="plan")
        from repro.obs.series import rollup_between

        assert signal_value(
            SHED.signal, rollup_between({}, fresh.snapshot(), 60.0)
        ) == (0.0, 20.0)
        assert signal_value(
            SHED.signal,
            rollup_between(base, residue.snapshot(), 60.0),
        ) == (0.0, 20.0)

    def test_ratio_zero_denominator_is_no_data(self):
        registry = MetricsRegistry()
        registry.count("serve.sheds", reason="queue_full")
        measured, weight = signal_value(
            SHED.signal, self.rollup(registry)
        )
        assert measured is None
        assert weight == 0.0

    def test_rate(self):
        registry = MetricsRegistry()
        registry.count("serve.requests", n=30, op="plan")
        signal = Signal(kind="rate", family="serve.requests")
        measured, weight = signal_value(signal, self.rollup(registry))
        assert measured == 0.5
        assert weight == 30.0

    def test_percentile(self):
        registry = MetricsRegistry()
        for _ in range(10):
            registry.observe("serve.latency", 0.008, op="plan")
        signal = Signal(
            kind="percentile",
            family="serve.latency",
            label="op=plan",
            percentile=95,
        )
        measured, weight = signal_value(signal, self.rollup(registry))
        assert weight == 10.0
        assert measured >= 0.008
        assert measured <= 0.008 * 10.0 ** (1.0 / 8.0) + 1e-12

    def test_gauge_label_and_wildcard(self):
        registry = MetricsRegistry()
        registry.gauge_set("scenario.governor_drift", 0.25)
        rollup = self.rollup(registry)
        by_label = Signal(
            kind="gauge", family="scenario.governor_drift", label=""
        )
        wildcard = Signal(
            kind="gauge", family="scenario.governor_drift"
        )
        assert signal_value(by_label, rollup) == (0.25, 1.0)
        assert signal_value(wildcard, rollup) == (0.25, 1.0)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            signal_value(
                Signal(kind="median", family="x"), self.rollup(
                    MetricsRegistry()
                )
            )


class TestBurn:
    def test_le_burn_is_measured_over_objective(self):
        assert SHED.burn(0.05) == 0.5
        assert SHED.burn(0.20) == 2.0

    def test_ge_burn_inverts_and_handles_zero(self):
        slo = SLO(
            name="applied",
            signal=Signal(kind="rate", family="x"),
            objective=0.5,
            comparator="ge",
        )
        assert slo.burn(1.0) == 0.5
        assert slo.burn(0.25) == 2.0
        assert slo.burn(0.0) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(
                name="bad",
                signal=Signal(kind="rate", family="x"),
                objective=0.5,
                comparator="between",
            )
        with pytest.raises(ValueError):
            SLO(
                name="bad",
                signal=Signal(kind="rate", family="x"),
                objective=0.0,
            )


class TestEvaluator:
    def test_edge_triggered_fire_and_resolve(self, audit):
        registry = MetricsRegistry()
        store = store_with(registry)
        evaluator = SLOEvaluator([SHED], audit=audit)
        registry.count("serve.requests", n=10, op="plan")
        store.sample(0.0)
        # Burn: half the requests shed.
        registry.count("serve.requests", n=10, op="plan")
        registry.count("serve.sheds", n=5, reason="queue_full")
        store.sample(60.0)
        first = evaluator.evaluate(store, 60.0)
        assert [a.state for a in first] == ["firing"]
        # Still burning: no duplicate alert (edge-triggered).
        registry.count("serve.requests", n=10, op="plan")
        registry.count("serve.sheds", n=5, reason="queue_full")
        store.sample(120.0)
        assert evaluator.evaluate(store, 120.0) == []
        assert evaluator.active() == ["shed-ratio"]
        # Clean traffic washes both windows: falling edge resolves.
        for t in (180.0, 240.0, 300.0):
            registry.count("serve.requests", n=50, op="plan")
            store.sample(t)
            evaluator.evaluate(store, t)
        assert evaluator.active() == []
        states = [a.state for a in evaluator.alerts]
        assert states == ["firing", "resolved"]

    def test_insufficient_data_holds_state(self):
        registry = MetricsRegistry()
        store = store_with(registry)
        slo = SLO(
            name="needs-data",
            signal=SHED.signal,
            objective=0.10,
            fast_window_s=60.0,
            slow_window_s=120.0,
            min_weight=100.0,
        )
        evaluator = SLOEvaluator([slo])
        store.sample(0.0)
        registry.count("serve.requests", n=10, op="plan")
        registry.count("serve.sheds", n=9, reason="queue_full")
        store.sample(60.0)
        assert evaluator.evaluate(store, 60.0) == []
        assert evaluator.active() == []

    def test_transitions_land_in_audit_log(self, audit):
        registry = MetricsRegistry()
        store = store_with(registry)
        evaluator = SLOEvaluator([SHED], audit=audit)
        store.sample(0.0)
        registry.count("serve.requests", n=10, op="plan")
        registry.count("serve.sheds", n=8, reason="queue_full")
        store.sample(60.0)
        evaluator.evaluate(store, 60.0)
        assert audit.counts() == {"slo.shed-ratio:firing": 1}

    def test_alert_timestamps_are_injected_time(self):
        registry = MetricsRegistry()
        store = store_with(registry)
        evaluator = SLOEvaluator([SHED])
        store.sample(0.0)
        registry.count("serve.requests", n=10, op="plan")
        registry.count("serve.sheds", n=8, reason="queue_full")
        store.sample(7200.0)
        evaluator.evaluate(store, 7200.0)
        assert [a.t_s for a in evaluator.alerts] == [7200.0]

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError):
            SLOEvaluator([SHED, SHED])

    def test_state_round_trip(self):
        registry = MetricsRegistry()
        store = store_with(registry)
        evaluator = SLOEvaluator([SHED])
        store.sample(0.0)
        registry.count("serve.requests", n=10, op="plan")
        registry.count("serve.sheds", n=8, reason="queue_full")
        store.sample(60.0)
        evaluator.evaluate(store, 60.0)
        assert evaluator.active() == ["shed-ratio"]
        restored = SLOEvaluator.from_state(
            evaluator.to_state(), [SHED]
        )
        assert restored.active() == evaluator.active()
        assert restored.timeline() == evaluator.timeline()
        assert restored.evaluations == evaluator.evaluations


class TestDefaults:
    def test_default_sets_have_unique_names(self):
        slos = default_serve_slos() + default_scenario_slos()
        names = [slo.name for slo in slos]
        assert len(set(names)) == len(names)
        SLOEvaluator(slos)  # and they co-evaluate

    def test_replan_applied_judges_raised_intents(self):
        slo = next(
            s for s in default_scenario_slos()
            if s.name == "scenario-replan-applied"
        )
        # Denominator is the intents *raised*, not every governor
        # epoch: holds dominate healthy fleets, and a floor over all
        # epochs would page forever.
        assert slo.signal.den_label == "event=replan_pending"

    def test_scenario_slos_are_wall_clock_free(self):
        for slo in default_scenario_slos():
            assert slo.signal.family != "serve.latency"
            assert slo.signal.family.startswith(
                SIMULATION_FAMILY_PREFIXES
            )


class TestProjections:
    def snapshot(self):
        registry = MetricsRegistry()
        registry.observe("serve.latency", 0.01, op="plan")
        registry.count("serve.requests", op="plan")
        registry.count("fleet.pricing", event="hit", pool="stacks")
        registry.count("pipeline.cache", cache="cloud", event="hit")
        registry.gauge_set("scenario.governor_drift", 0.1)
        return registry.snapshot()

    def test_deterministic_projection_drops_wall_clock(self):
        projected = deterministic_projection(self.snapshot())
        assert "serve.latency" not in projected["histograms"]
        assert "serve.requests" in projected["counters"]
        assert "fleet.pricing" in projected["counters"]

    def test_simulation_projection_keeps_only_allowlist(self):
        projected = simulation_projection(self.snapshot())
        assert "serve.requests" in projected["counters"]
        assert "scenario.governor_drift" in projected["gauges"]
        # Cache state is process-local, not simulation state: a
        # resume rebuilds it differently, so it must stay out.
        assert "fleet.pricing" not in projected["counters"]
        assert "pipeline.cache" not in projected["counters"]
        assert "serve.latency" not in projected["histograms"]
