"""Analysis helpers: figure stats, microbench, battery, timeline."""

import pytest

from repro import DAEDVFSPipeline
from repro.analysis import (
    Battery,
    DutyCycle,
    estimate_lifetime,
    frequency_histogram,
    granularity_histogram,
    mean_frequency_hz,
    run_addition_loop,
    share_at_frequency,
    share_at_granularity,
    share_at_or_below_frequency,
    timeline_csv,
    timeline_events,
    write_timeline_csv,
)
from repro.clock import lfo_config, max_performance_config
from repro.engine import uniform_plan
from repro.errors import PowerModelError, ShapeError
from repro.nn import build_tiny_test_model
from repro.optimize import MODERATE
from repro.units import MHZ


@pytest.fixture(scope="module")
def deployment():
    pipeline = DAEDVFSPipeline()
    model = build_tiny_test_model()
    result = pipeline.optimize(model, qos_level=MODERATE)
    report = pipeline.deploy(model, result.plan)
    return pipeline, model, result, report


class TestFigureStats:
    def test_histograms_cover_all_layers(self, deployment):
        _, model, result, _ = deployment
        freqs = frequency_histogram(result.plan, model)
        grans = granularity_histogram(result.plan)
        assert sum(freqs.values()) == len(result.plan.layer_plans)
        assert sum(grans.values()) == len(result.plan.layer_plans)

    def test_shares_sum_sensibly(self, deployment):
        _, model, result, _ = deployment
        freqs = frequency_histogram(result.plan, model)
        total = sum(
            share_at_frequency(result.plan, model, mhz * MHZ)
            for mhz in freqs
        )
        assert total == pytest.approx(1.0)

    def test_share_at_or_below_monotone(self, deployment):
        _, model, result, _ = deployment
        low = share_at_or_below_frequency(result.plan, model, 84 * MHZ)
        high = share_at_or_below_frequency(result.plan, model, 216 * MHZ)
        assert low <= high == pytest.approx(1.0)

    def test_granularity_share(self, deployment):
        _, _, result, _ = deployment
        total = sum(
            share_at_granularity(result.plan, g)
            for g in {lp.granularity for lp in result.plan.layer_plans.values()}
        )
        assert total == pytest.approx(1.0)

    def test_mean_frequency_bounds(self, deployment):
        _, _, result, _ = deployment
        mean = mean_frequency_hz(result.plan)
        assert 50 * MHZ <= mean <= 216 * MHZ

    def test_empty_plan_edge_cases(self, deployment):
        from repro.engine import DeploymentPlan

        _, model, _, _ = deployment
        empty = DeploymentPlan(model_name=model.name)
        assert share_at_frequency(empty, model, 216 * MHZ) == 0.0
        assert share_at_granularity(empty, 16) == 0.0
        assert mean_frequency_hz(empty) == 0.0


class TestMicrobench:
    def test_power_matches_model(self, board):
        config = max_performance_config()
        result = run_addition_loop(board, config)
        assert result.power_w == pytest.approx(
            board.power_model.active_power(config)
        )

    def test_latency_scales_with_frequency(self, board):
        fast = run_addition_loop(board, max_performance_config())
        slow = run_addition_loop(board, lfo_config())
        assert slow.latency_s == pytest.approx(
            fast.latency_s * 216 / 50, rel=1e-6
        )

    def test_nonpositive_iterations_rejected(self, board):
        with pytest.raises(ShapeError):
            run_addition_loop(board, lfo_config(), iterations=0)


class TestBattery:
    def test_usable_energy(self):
        battery = Battery(capacity_mah=1000, voltage_v=3.0,
                          usable_fraction=1.0)
        assert battery.usable_energy_j == pytest.approx(1.0 * 3600 * 3.0)

    def test_lifetime_positive_and_sane(self, deployment):
        _, _, _, report = deployment
        life = estimate_lifetime(Battery(), report, DutyCycle())
        assert life.hours > 0
        assert 0 < life.active_share < 1
        assert life.days == pytest.approx(life.hours / 24)

    def test_lower_energy_schedule_lives_longer(self, deployment):
        pipeline, model, result, report = deployment
        te = pipeline._tinyengine.run(model, qos_s=result.qos_s)
        ours = estimate_lifetime(Battery(), report, DutyCycle())
        baseline = estimate_lifetime(Battery(), te, DutyCycle())
        assert ours.hours > baseline.hours

    def test_impossible_duty_cycle_rejected(self, deployment):
        _, _, _, report = deployment
        with pytest.raises(PowerModelError):
            estimate_lifetime(
                Battery(), report, DutyCycle(windows_per_hour=1e9)
            )

    def test_validation(self):
        with pytest.raises(PowerModelError):
            Battery(capacity_mah=0)
        with pytest.raises(PowerModelError):
            Battery(usable_fraction=1.5)
        with pytest.raises(PowerModelError):
            DutyCycle(windows_per_hour=-1)


class TestTimeline:
    def test_events_cover_full_duration(self, deployment):
        _, _, _, report = deployment
        events = timeline_events(report)
        assert events[0].start_s == 0.0
        assert events[-1].end_s == pytest.approx(report.account.total_time_s)
        # Events are contiguous and ordered.
        for a, b in zip(events, events[1:]):
            assert b.start_s == pytest.approx(a.end_s)

    def test_total_energy_preserved(self, deployment):
        _, _, _, report = deployment
        events = timeline_events(report)
        assert sum(e.energy_j for e in events) == pytest.approx(
            report.energy_j
        )

    def test_csv_shape(self, deployment, tmp_path):
        _, _, _, report = deployment
        text = timeline_csv(report)
        lines = text.strip().splitlines()
        assert lines[0].startswith("start_s,")
        assert len(lines) == len(timeline_events(report)) + 1
        path = tmp_path / "timeline.csv"
        write_timeline_csv(report, path)
        assert path.read_text() == text


class TestQoSSweep:
    def test_sweep_rows_and_trends(self, deployment):
        from repro.analysis import qos_energy_sweep, saturation_slack

        pipeline, model, _, _ = deployment
        rows = qos_energy_sweep(pipeline, model, [0.1, 0.3, 0.6])
        assert len(rows) == 3
        # TinyEngine energy grows with the window (hot idle) and our
        # relative savings grow with slack; absolute window energies
        # are not comparable across different window lengths.
        te = [r.tinyengine_energy_j for r in rows]
        assert te == sorted(te)
        savings = [r.savings_vs_tinyengine for r in rows]
        for tighter, looser in zip(savings, savings[1:]):
            assert looser >= tighter - 0.01
        assert all(r.met_qos for r in rows)
        sat = saturation_slack(rows)
        assert sat in [r.slack for r in rows]

    def test_sweep_validation(self, deployment):
        from repro.analysis import qos_energy_sweep
        from repro.errors import SolverError

        pipeline, model, _, _ = deployment
        with pytest.raises(SolverError):
            qos_energy_sweep(pipeline, model, [])
        with pytest.raises(SolverError):
            qos_energy_sweep(pipeline, model, [0.5, 0.1])

    def test_savings_properties(self, deployment):
        from repro.analysis import qos_energy_sweep

        pipeline, model, _, _ = deployment
        (row,) = qos_energy_sweep(pipeline, model, [0.3])
        assert 0 < row.savings_vs_tinyengine < 1
        assert row.savings_vs_clock_gated <= row.savings_vs_tinyengine


class TestGantt:
    def test_render_covers_phases(self, deployment):
        from repro.analysis import render_gantt

        _, _, _, report = deployment
        art = render_gantt(report, width=80, max_rows=16)
        assert "#" in art       # compute phases
        assert "m" in art       # memory phases
        assert "timeline:" in art
        # Row labels name real layers.
        assert any(
            r.layer_name in art for r in report.layer_reports
        )

    def test_width_respected(self, deployment):
        from repro.analysis import render_gantt

        _, _, _, report = deployment
        art = render_gantt(report, width=40, max_rows=30)
        for line in art.splitlines()[1:]:
            strip = line.split(" | ")[0]
            assert len(strip) == 40

    def test_empty_report(self, board):
        from repro.analysis import render_gantt
        from repro.engine import DVFSRuntime
        from repro.engine.schedule import DeploymentPlan
        from repro.nn import Model
        from repro.nn.models import INPUT_PARAMS

        model = Model(name="empty", input_shape=(2, 2, 1),
                      input_params=INPUT_PARAMS)
        report = DVFSRuntime(board).run(
            model, DeploymentPlan(model_name="empty")
        )
        assert render_gantt(report) == "(empty execution)"


class TestFrontsCSV:
    def test_csv_covers_all_points(self, deployment):
        from repro.analysis import fronts_csv

        _, _, result, _ = deployment
        text = fronts_csv(result.pareto_fronts)
        lines = text.strip().splitlines()
        n_points = sum(len(f) for f in result.pareto_fronts.values())
        assert len(lines) == n_points + 1
        assert lines[0].startswith("node_id,")

    def test_file_round_trip(self, deployment, tmp_path):
        from repro.analysis import fronts_csv, write_fronts_csv

        _, _, result, _ = deployment
        path = tmp_path / "fronts.csv"
        write_fronts_csv(result.pareto_fronts, path)
        assert path.read_text() == fronts_csv(result.pareto_fronts)


class TestSweepEdges:
    def test_saturation_slack_empty_rejected(self):
        from repro.analysis import saturation_slack
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            saturation_slack([])
