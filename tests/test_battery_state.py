"""Battery state-of-charge, supply rails, frequency caps."""

import pytest

from repro.analysis import (
    SUPPLY_RAILS,
    Battery,
    BatteryState,
    max_sysclk_for_voltage,
)
from repro.errors import PowerModelError


class TestRails:
    def test_full_voltage_allows_top_rail(self):
        assert max_sysclk_for_voltage(3.3) == pytest.approx(216e6)

    def test_sagging_voltage_steps_down(self):
        caps = [max_sysclk_for_voltage(v) for v in (3.0, 2.8, 2.6, 2.4, 2.0)]
        assert caps == [216e6, 180e6, 150e6, 108e6, 84e6]

    def test_rails_are_sorted_descending(self):
        volts = [v for v, _ in SUPPLY_RAILS]
        assert volts == sorted(volts, reverse=True)

    def test_floor_rail_always_available(self):
        # Even a dead cell maps to the slowest rail, never an empty cap.
        assert max_sysclk_for_voltage(0.0) == pytest.approx(84e6)


class TestBatteryState:
    def test_full_charge_full_voltage(self):
        state = BatteryState(battery=Battery(), load_drop_v=0.0)
        assert state.voltage_v == pytest.approx(Battery().voltage_v)

    def test_voltage_sags_with_charge(self):
        full = BatteryState(battery=Battery(), charge_fraction=1.0)
        low = BatteryState(battery=Battery(), charge_fraction=0.3)
        assert low.voltage_v < full.voltage_v

    def test_sag_caps_sysclk(self):
        low = BatteryState(battery=Battery(), charge_fraction=0.35)
        assert low.max_sysclk_hz() < 216e6

    def test_discharge_reduces_charge(self):
        state = BatteryState(battery=Battery(), charge_fraction=0.5)
        drained = state.discharged(state.remaining_energy_j / 2)
        assert drained.charge_fraction == pytest.approx(0.25)

    def test_discharge_floors_at_empty(self):
        state = BatteryState(battery=Battery(), charge_fraction=0.1)
        drained = state.discharged(state.remaining_energy_j * 10)
        assert drained.charge_fraction == 0.0

    def test_discharge_is_pure(self):
        state = BatteryState(battery=Battery(), charge_fraction=0.8)
        state.discharged(1.0)
        assert state.charge_fraction == 0.8

    def test_remaining_energy_scales_with_charge(self):
        full = BatteryState(battery=Battery(), charge_fraction=1.0)
        half = BatteryState(battery=Battery(), charge_fraction=0.5)
        assert half.remaining_energy_j == pytest.approx(
            full.remaining_energy_j / 2
        )

    def test_invalid_charge_rejected(self):
        with pytest.raises(PowerModelError):
            BatteryState(battery=Battery(), charge_fraction=1.5)
        with pytest.raises(PowerModelError):
            BatteryState(battery=Battery(), charge_fraction=-0.1)

    def test_sag_drift_path_hits_every_rail(self):
        # The governor's battery-sag trajectory: draining a cell walks
        # the cap monotonically down the rail table.
        state = BatteryState(battery=Battery(), charge_fraction=1.0)
        caps = []
        while state.charge_fraction > 0.0:
            caps.append(state.max_sysclk_hz())
            state = state.discharged(state.battery.usable_energy_j * 0.05)
        assert caps == sorted(caps, reverse=True)
        assert caps[0] > caps[-1]
