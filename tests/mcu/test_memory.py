"""Memory regions: timing decomposition and frequency sensitivity."""

import pytest

from repro.errors import ShapeError
from repro.mcu import MemoryRegion, make_flash, make_memory_map, make_sram
from repro.units import MHZ


class TestMemoryRegion:
    def test_transfer_time_decomposition(self):
        region = MemoryRegion(
            name="r", size_bytes=1024, line_bytes=32,
            fixed_latency_s=50e-9, cycles_per_line=4,
        )
        f = 100 * MHZ
        t = region.transfer_time_s(320, f)
        # 10 lines x (4 cycles / 100 MHz + 50 ns)
        assert t == pytest.approx(10 * (4 / f + 50e-9))

    def test_zero_bytes_zero_time(self):
        assert make_flash().transfer_time_s(0, 216 * MHZ) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ShapeError):
            make_flash().transfer_time_s(-1, 216 * MHZ)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ShapeError):
            make_flash().transfer_time_s(32, 0)

    def test_fractional_lines_allowed(self):
        assert make_flash().lines_for(16) == pytest.approx(0.5)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ShapeError):
            MemoryRegion("bad", 0, 32, 0.0, 1.0)
        with pytest.raises(ShapeError):
            MemoryRegion("bad", 32, 32, -1e-9, 1.0)


class TestFrequencyInsensitivity:
    def test_flash_mostly_frequency_insensitive(self):
        # The physical basis of DAE+DVFS: flash wall time barely moves
        # between 216 MHz and 50 MHz because wait states dominate.
        flash = make_flash()
        t_fast = flash.transfer_time_s(4096, 216 * MHZ)
        t_slow = flash.transfer_time_s(4096, 50 * MHZ)
        assert t_slow / t_fast < 2.2

    def test_sram_more_sensitive_than_flash(self):
        flash, sram = make_flash(), make_sram()
        flash_ratio = flash.transfer_time_s(4096, 50 * MHZ) / \
            flash.transfer_time_s(4096, 216 * MHZ)
        sram_ratio = sram.transfer_time_s(4096, 50 * MHZ) / \
            sram.transfer_time_s(4096, 216 * MHZ)
        assert sram_ratio > flash_ratio

    def test_sram_still_far_from_pure_cycle_scaling(self):
        # If SRAM scaled purely with cycles, the 50/216 ratio would be
        # 4.32; the wait-state share keeps it well below.
        sram = make_sram()
        ratio = sram.transfer_time_s(1024, 50 * MHZ) / \
            sram.transfer_time_s(1024, 216 * MHZ)
        assert ratio < 3.0


class TestMemoryMap:
    def test_default_map_has_both_regions(self):
        mm = make_memory_map()
        assert mm.flash.name == "flash"
        assert mm.sram.name == "sram"

    def test_capacities_match_part(self):
        mm = make_memory_map()
        assert mm.flash.size_bytes == 2 * 1024 * 1024
        assert mm.sram.size_bytes == 512 * 1024
