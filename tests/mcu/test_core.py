"""Core timing model: segment pricing and frequency sensitivity."""

import pytest

from repro.errors import ShapeError
from repro.mcu import CoreModel, CoreTimingParams, SegmentWorkload
from repro.units import MHZ


@pytest.fixture
def core():
    return CoreModel()


class TestSegmentTiming:
    def test_pure_compute_scales_inversely_with_frequency(self, core):
        w = SegmentWorkload(cpu_cycles=1e6)
        t216 = core.segment_time_s(w, 216 * MHZ)
        t108 = core.segment_time_s(w, 108 * MHZ)
        assert t108 == pytest.approx(2 * t216)

    def test_compute_time_exact(self, core):
        w = SegmentWorkload(cpu_cycles=216e6)
        assert core.segment_time_s(w, 216 * MHZ) == pytest.approx(1.0)

    def test_time_parts_sum_to_total(self, core):
        w = SegmentWorkload(cpu_cycles=5e4, flash_bytes=2048, sram_bytes=4096)
        compute_t, memory_t = core.segment_time_parts(w, 216 * MHZ)
        assert compute_t + memory_t == pytest.approx(
            core.segment_time_s(w, 216 * MHZ)
        )
        assert compute_t > 0 and memory_t > 0

    def test_workload_merge(self):
        a = SegmentWorkload(cpu_cycles=10, flash_bytes=20, sram_bytes=30)
        b = SegmentWorkload(cpu_cycles=1, flash_bytes=2, sram_bytes=3)
        merged = a.merged(b)
        assert merged.cpu_cycles == 11
        assert merged.flash_bytes == 22
        assert merged.sram_bytes == 33

    def test_negative_workload_rejected(self):
        with pytest.raises(ShapeError):
            SegmentWorkload(cpu_cycles=-1)

    def test_nonpositive_frequency_rejected(self, core):
        with pytest.raises(ShapeError):
            core.segment_time_s(SegmentWorkload(cpu_cycles=1), 0.0)


class TestFrequencySensitivity:
    def test_memory_bound_segment_insensitive(self, core):
        w = SegmentWorkload(cpu_cycles=100, flash_bytes=64 * 1024)
        speedup = core.frequency_sensitivity(w, 50 * MHZ, 216 * MHZ)
        assert speedup < 2.0  # far below the 4.32x frequency ratio

    def test_compute_bound_segment_fully_sensitive(self, core):
        w = SegmentWorkload(cpu_cycles=1e7)
        speedup = core.frequency_sensitivity(w, 50 * MHZ, 216 * MHZ)
        assert speedup == pytest.approx(216 / 50)

    def test_mixed_segment_in_between(self, core):
        w = SegmentWorkload(cpu_cycles=1e5, flash_bytes=16 * 1024)
        speedup = core.frequency_sensitivity(w, 50 * MHZ, 216 * MHZ)
        assert 1.0 < speedup < 216 / 50


class TestTimingParams:
    def test_pointwise_more_efficient_per_mac_than_depthwise(self):
        # Fig. 6 rationale: depthwise kernels achieve fewer MACs/cycle,
        # which is why they tolerate lower frequencies.
        params = CoreTimingParams()
        assert params.cycles_per_mac_pointwise < params.cycles_per_mac_depthwise

    def test_negative_constant_rejected(self):
        with pytest.raises(ShapeError):
            CoreTimingParams(cycles_per_mac_conv=-0.5)
