"""Board composition and override points."""

import pytest

from repro.clock import SwitchCostModel, lfo_config, pll_config
from repro.mcu import CacheModel, CoreTimingParams, make_nucleo_f767zi
from repro.power import PowerModelParams
from repro.units import MHZ, kib


class TestDefaultBoard:
    def test_name(self, board):
        assert board.name == "nucleo-f767zi"

    def test_boots_on_lfo(self, board):
        assert board.rcc.current == lfo_config()

    def test_cache_is_16k(self, board):
        assert board.cache.capacity_bytes == kib(16)

    def test_memory_map_exposed(self, board):
        assert board.memory_map.flash.name == "flash"

    def test_rcc_shares_switch_cost_model(self, board):
        assert board.rcc.cost_model is board.switch_cost_model


class TestOverrides:
    def test_power_params_override(self):
        board = make_nucleo_f767zi(
            power_params=PowerModelParams(p_gated_w=0.001)
        )
        assert board.power_model.params.p_gated_w == pytest.approx(0.001)

    def test_timing_params_override(self):
        board = make_nucleo_f767zi(
            timing_params=CoreTimingParams(cycles_per_mac_conv=9.0)
        )
        assert board.core.params.cycles_per_mac_conv == 9.0

    def test_cache_override(self):
        board = make_nucleo_f767zi(cache=CacheModel(capacity_bytes=kib(32)))
        assert board.cache.capacity_bytes == kib(32)

    def test_switch_model_override(self):
        model = SwitchCostModel(mux_switch_s=5e-6)
        board = make_nucleo_f767zi(switch_cost_model=model)
        assert board.switch_cost_model.mux_switch_s == pytest.approx(5e-6)

    def test_initial_config_override(self):
        hfo = pll_config(50 * MHZ, 25, 216)
        board = make_nucleo_f767zi(initial_config=hfo)
        assert board.rcc.sysclk_hz == pytest.approx(216 * MHZ)


class TestSiblingBoard:
    def test_f746_characteristics(self):
        from repro.mcu import make_nucleo_f746zg

        board = make_nucleo_f746zg()
        assert board.name == "nucleo-f746zg"
        assert board.cache.capacity_bytes == 4 * 1024
        # Same core/clock substrate as the F767.
        assert board.rcc.sysclk_hz == pytest.approx(50e6)

    def test_f746_pipeline_end_to_end(self):
        from repro import DAEDVFSPipeline
        from repro.mcu import make_nucleo_f746zg
        from repro.nn import build_tiny_test_model
        from repro.optimize import MODERATE

        pipeline = DAEDVFSPipeline(board=make_nucleo_f746zg())
        model = build_tiny_test_model()
        row = pipeline.compare(model, MODERATE)
        assert row.ours.met_qos
        assert row.ours.energy_j < row.tinyengine.energy_j
