"""Cache models: LRU simulator correctness and the analytic g-cliff."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.mcu import CacheModel, SetAssociativeCache
from repro.units import kib


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_same_line_hits(self):
        cache = SetAssociativeCache(line_bytes=32)
        cache.access(0)
        assert cache.access(31)
        assert not cache.access(32)

    def test_lru_eviction_within_set(self):
        # Direct-mapped-like tiny cache: 2 ways, 1 set.
        cache = SetAssociativeCache(capacity_bytes=64, line_bytes=32, ways=2)
        cache.access(0)      # line 0
        cache.access(32)     # line 1
        cache.access(64)     # line 2: evicts line 0 (LRU)
        assert not cache.access(0)

    def test_lru_refresh_on_hit(self):
        cache = SetAssociativeCache(capacity_bytes=64, line_bytes=32, ways=2)
        cache.access(0)
        cache.access(32)
        cache.access(0)      # refresh line 0
        cache.access(64)     # evicts line 1 now
        assert cache.access(0)
        assert not cache.access(32)

    def test_working_set_within_capacity_all_hits_second_pass(self):
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        cache.access_range(0, kib(8))
        cache.stats = type(cache.stats)()
        misses = cache.access_range(0, kib(8))
        assert misses == 0

    def test_working_set_beyond_capacity_thrashes(self):
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        cache.access_range(0, kib(64))
        cache.reset()
        cache.access_range(0, kib(64))
        second_pass = cache.access_range(0, kib(64))
        assert second_pass > 0

    def test_resident_bytes_bounded_by_capacity(self):
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        cache.access_range(0, kib(64))
        assert cache.resident_bytes() <= kib(16)

    def test_reset_clears_state(self):
        cache = SetAssociativeCache()
        cache.access_range(0, 1024)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_bytes() == 0

    def test_geometry_validation(self):
        with pytest.raises(ShapeError):
            SetAssociativeCache(capacity_bytes=1000, line_bytes=32, ways=4)
        with pytest.raises(ShapeError):
            SetAssociativeCache(capacity_bytes=0)

    def test_negative_address_rejected(self):
        with pytest.raises(ShapeError):
            SetAssociativeCache().access(-1)

    def test_miss_rate_zero_without_accesses(self):
        assert SetAssociativeCache().stats.miss_rate == 0.0


class TestCacheModel:
    def test_no_refetch_within_usable_capacity(self):
        model = CacheModel()
        assert model.refetch_fraction(model.usable_bytes * 0.9) == 0.0

    def test_refetch_grows_beyond_capacity(self):
        model = CacheModel()
        small = model.refetch_fraction(model.usable_bytes * 1.5)
        large = model.refetch_fraction(model.usable_bytes * 10)
        assert 0.0 < small < large <= 1.0

    def test_refetch_saturates_at_one(self):
        model = CacheModel()
        assert model.refetch_fraction(model.usable_bytes * 1e6) <= 1.0

    def test_negative_working_set_rejected(self):
        with pytest.raises(ShapeError):
            CacheModel().refetch_fraction(-1.0)

    def test_usable_fraction_bounds(self):
        with pytest.raises(ShapeError):
            CacheModel(usable_fraction=0.0)
        with pytest.raises(ShapeError):
            CacheModel(usable_fraction=1.1)

    @given(
        ws=st.lists(
            st.floats(min_value=0, max_value=1e6), min_size=2, max_size=20
        )
    )
    def test_refetch_monotone_nondecreasing(self, ws):
        """Property: a larger working set never refetches less."""
        model = CacheModel()
        ordered = sorted(ws)
        fractions = [model.refetch_fraction(w) for w in ordered]
        for a, b in zip(fractions, fractions[1:]):
            assert b >= a - 1e-12

    def test_simulator_agrees_with_analytic_cliff_location(self):
        """Streaming reuse through the LRU simulator shows the same
        fits/doesn't-fit threshold the analytic model encodes."""
        capacity = kib(16)
        sim = SetAssociativeCache(capacity_bytes=capacity)
        model = CacheModel(capacity_bytes=capacity)

        def second_pass_miss_rate(ws_bytes):
            sim.reset()
            sim.access_range(0, ws_bytes)
            sim.stats = type(sim.stats)()
            sim.access_range(0, ws_bytes)
            return sim.stats.miss_rate

        fits = second_pass_miss_rate(int(model.usable_bytes * 0.8))
        thrashes = second_pass_miss_rate(capacity * 4)
        assert fits == 0.0
        assert thrashes > 0.9
