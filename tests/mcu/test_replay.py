"""Address-trace replay vs. the analytic cache model."""

import pytest

from repro.errors import ShapeError
from repro.mcu import CacheModel, SetAssociativeCache
from repro.mcu.replay import (
    interleaved_refetch_fraction,
    measured_refetch_fraction,
    validate_analytic_model,
)
from repro.units import kib


class TestMeasuredRefetch:
    def test_fitting_buffer_never_refetches(self):
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        assert measured_refetch_fraction(cache, kib(8)) == 0.0

    def test_oversized_buffer_thrashes_completely(self):
        # A sequential walk larger than an LRU cache always misses on
        # the second pass.
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        assert measured_refetch_fraction(cache, kib(64)) == pytest.approx(
            1.0
        )

    def test_validation(self):
        cache = SetAssociativeCache()
        with pytest.raises(ShapeError):
            measured_refetch_fraction(cache, 0)


class TestInterleavedRefetch:
    def test_small_buffer_and_weights_coexist(self):
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        refetch = interleaved_refetch_fraction(cache, kib(2), kib(2))
        assert refetch == 0.0

    def test_large_weights_evict_buffer(self):
        cache = SetAssociativeCache(capacity_bytes=kib(16))
        friendly = interleaved_refetch_fraction(cache, kib(4), kib(1))
        hostile = interleaved_refetch_fraction(cache, kib(4), kib(32))
        assert hostile > friendly

    def test_validation(self):
        cache = SetAssociativeCache()
        with pytest.raises(ShapeError):
            interleaved_refetch_fraction(cache, 0, kib(1))


class TestAnalyticAgreement:
    def test_model_brackets_simulator(self):
        """The analytic refetch fraction must agree with the simulator
        on the three regimes: fits (both 0), far-overflow (both ~1),
        and monotone growth in between."""
        model = CacheModel(capacity_bytes=kib(16))
        working_sets = [
            int(model.usable_bytes * r)
            for r in (0.25, 0.5, 0.9, 1.5, 2.5, 5.0, 20.0)
        ]
        points = validate_analytic_model(model, working_sets)
        for point in points:
            if point.working_set_bytes <= model.usable_bytes:
                assert point.analytic_refetch == 0.0
                assert point.simulated_refetch == 0.0
        far = points[-1]
        assert far.analytic_refetch > 0.8
        assert far.simulated_refetch > 0.95
        analytic = [p.analytic_refetch for p in points]
        simulated = [p.simulated_refetch for p in points]
        assert analytic == sorted(analytic)
        assert simulated == sorted(simulated)

    def test_usable_fraction_is_the_conservative_gap(self):
        """Between usable_bytes and the raw capacity the analytic model
        charges refetching while a sequential LRU walk would still fit;
        that margin stands in for conflict misses and co-resident data,
        so analytic >= 0 == simulated there."""
        model = CacheModel(capacity_bytes=kib(16))
        ws = int((model.usable_bytes + model.capacity_bytes) / 2)
        points = validate_analytic_model(model, [ws])
        (point,) = points
        assert point.simulated_refetch == 0.0
        assert point.analytic_refetch > 0.0
