"""Hardware timer: quantization, wrap handling, misuse errors."""

import pytest

from repro.errors import ProfilingError
from repro.mcu import HardwareTimer, TimerConfig
from repro.units import MHZ


class TestTimerBasics:
    def test_tick_period(self):
        timer = HardwareTimer(216 * MHZ, TimerConfig(prescaler=216))
        assert timer.tick_period_s == pytest.approx(1e-6)

    def test_measure_quantizes_down(self):
        timer = HardwareTimer(1 * MHZ)  # 1 us ticks
        measured = timer.measure(10.4e-6)
        assert measured == pytest.approx(10e-6)

    def test_measure_exact_multiple(self):
        timer = HardwareTimer(1 * MHZ)
        assert timer.measure(25e-6) == pytest.approx(25e-6)

    def test_high_clock_gives_fine_resolution(self):
        timer = HardwareTimer(216 * MHZ)
        duration = 123.456e-6
        measured = timer.measure(duration)
        assert abs(measured - duration) <= timer.tick_period_s

    def test_sequential_measurements(self):
        timer = HardwareTimer(1 * MHZ)
        assert timer.measure(5e-6) == pytest.approx(5e-6)
        assert timer.measure(7e-6) == pytest.approx(7e-6)


class TestTimerWrap:
    def test_16bit_counter_wraps(self):
        timer = HardwareTimer(1 * MHZ, TimerConfig(counter_bits=16))
        # Advance near the wrap point, then measure across it.
        timer.advance(60000e-6)
        measured = timer.measure(10000e-6)  # crosses 65536 ticks
        assert measured == pytest.approx(10000e-6)

    def test_max_ticks(self):
        assert HardwareTimer(1e6, TimerConfig(counter_bits=16)).max_ticks == 65536


class TestTimerErrors:
    def test_stop_before_start(self):
        with pytest.raises(ProfilingError):
            HardwareTimer(1e6).stop()

    def test_negative_advance(self):
        with pytest.raises(ProfilingError):
            HardwareTimer(1e6).advance(-1.0)

    def test_nonpositive_clock(self):
        with pytest.raises(ProfilingError):
            HardwareTimer(0.0)

    def test_bad_prescaler(self):
        with pytest.raises(ProfilingError):
            TimerConfig(prescaler=0)

    def test_bad_counter_bits(self):
        with pytest.raises(ProfilingError):
            TimerConfig(counter_bits=24)

    def test_negative_duration_rejected(self):
        timer = HardwareTimer(1e6)
        with pytest.raises(ProfilingError):
            timer.ticks_for(-1e-6)


class TestBoardIntegration:
    def test_board_makes_timer_at_current_sysclk(self, board):
        timer = board.make_timer()
        assert timer.sysclk_hz == pytest.approx(board.rcc.sysclk_hz)

    def test_board_timer_with_explicit_clock(self, board):
        timer = board.make_timer(sysclk_hz=216e6)
        assert timer.sysclk_hz == pytest.approx(216e6)
