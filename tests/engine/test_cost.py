"""Segment cost model: structure of the traces it builds."""

import pytest

from repro.engine import SegmentKind, TraceBuilder, TraceParams
from repro.engine.cost import PAPER_GRANULARITIES, _group_sizes
from repro.errors import TraceError
from repro.nn import LayerKind, build_tiny_test_model


@pytest.fixture
def tracer(board):
    return TraceBuilder(board)


def node_of_kind(model, kind):
    for node in model.nodes:
        if node.layer.kind is kind:
            return node
    raise AssertionError(f"no {kind} in model")


class TestGroupSizes:
    def test_exact_division(self):
        assert _group_sizes(16, 4) == [4, 4, 4, 4]

    def test_remainder_group(self):
        assert _group_sizes(10, 4) == [4, 4, 2]

    def test_granularity_larger_than_total(self):
        assert _group_sizes(3, 16) == [3]

    def test_zero_granularity_rejected(self):
        with pytest.raises(TraceError):
            _group_sizes(10, 0)


class TestFusedTraces:
    def test_every_layer_gets_one_fused_segment(self, tracer, tiny_model):
        mt = tracer.build_model_trace(tiny_model)
        assert len(mt) == len(tiny_model.nodes)
        for trace in mt:
            assert not trace.is_decoupled
            assert len(trace.segments) == 1
            assert trace.segments[0].kind is SegmentKind.FUSED

    def test_non_dae_layers_ignore_granularity(self, tracer, tiny_model):
        conv = node_of_kind(tiny_model, LayerKind.CONV2D)
        trace = tracer.build(tiny_model, conv, 8)
        assert trace.granularity == 0
        assert not trace.is_decoupled

    def test_negative_granularity_rejected(self, tracer, tiny_model):
        with pytest.raises(TraceError):
            tracer.build(tiny_model, tiny_model.nodes[0], -1)

    def test_fused_macs_reflected_in_cycles(self, tracer, tiny_model):
        conv = node_of_kind(tiny_model, LayerKind.CONV2D)
        trace = tracer.build(tiny_model, conv, 0)
        macs = conv.layer.macs(*tiny_model.input_shapes_of(conv))
        cycles = trace.segments[0].workload.cpu_cycles
        assert cycles >= macs * tracer._timing.cycles_per_mac_conv


class TestDepthwiseDAE:
    def test_iteration_count(self, tracer, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        channels = dw.layer.channels
        trace = tracer.build(tiny_model, dw, 4)
        assert trace.iterations == -(-channels // 4)
        assert len(trace.segments) == 2 * trace.iterations

    def test_alternating_segment_kinds(self, tracer, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        trace = tracer.build(tiny_model, dw, 4)
        for i, segment in enumerate(trace.segments):
            expected = SegmentKind.MEMORY if i % 2 == 0 else SegmentKind.COMPUTE
            assert segment.kind is expected

    def test_memory_segments_carry_no_macs(self, tracer, tiny_model):
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        trace = tracer.build(tiny_model, dw, 4)
        for segment in trace.memory_segments():
            assert segment.workload.cpu_cycles <= tracer._timing.loop_overhead_cycles

    def test_compute_cycles_independent_of_granularity(
        self, tracer, tiny_model
    ):
        # The MACs are the MACs: granularity moves traffic, not math.
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        totals = []
        for g in (2, 4, 8):
            trace = tracer.build(tiny_model, dw, g)
            totals.append(
                sum(s.workload.cpu_cycles for s in trace.compute_segments())
            )
        assert max(totals) - min(totals) < 0.05 * max(totals)

    def test_dae_reduces_sram_traffic_vs_fused(self, tracer, tiny_model):
        # Burst buffering beats scattered sliding-window reloads.
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        fused = tracer.build(tiny_model, dw, 0).total_workload()
        dae = tracer.build(tiny_model, dw, 4).total_workload()
        assert dae.sram_bytes < fused.sram_bytes


class TestPointwiseDAE:
    def test_iteration_count_over_columns(self, tracer, tiny_model):
        pw = node_of_kind(tiny_model, LayerKind.POINTWISE_CONV)
        h, w, _ = tiny_model.input_shapes_of(pw)[0]
        trace = tracer.build(tiny_model, pw, 8)
        assert trace.iterations == -(-(h * w) // 8)

    def test_weight_reuse_improves_with_granularity(self, board, tiny_model):
        """Larger g -> fewer weight passes -> less flash traffic, for a
        matrix too large to cache."""
        from repro.mcu import CacheModel, make_nucleo_f767zi

        small_cache_board = make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=256, usable_fraction=0.5)
        )
        tracer = TraceBuilder(small_cache_board)
        pw = node_of_kind(tiny_model, LayerKind.POINTWISE_CONV)
        flash = {}
        for g in (2, 16):
            trace = tracer.build(tiny_model, pw, g)
            flash[g] = trace.total_workload().flash_bytes
        assert flash[16] < flash[2]

    def test_cached_weights_streamed_once(self, tracer, tiny_model):
        # Tiny model weights fit the default cache: flash traffic is
        # independent of granularity and equals one pass.
        pw = node_of_kind(tiny_model, LayerKind.POINTWISE_CONV)
        weight_bytes = pw.layer.weight_bytes()
        for g in (0, 2, 16):
            trace = tracer.build(tiny_model, pw, g)
            assert trace.total_workload().flash_bytes == pytest.approx(
                weight_bytes
            )


class TestGranularityCliff:
    def test_oversized_buffer_adds_refetch_traffic(self, tiny_model):
        from repro.mcu import CacheModel, make_nucleo_f767zi

        # A 1 KiB cache makes even small channel groups overflow.
        board = make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=1024, usable_fraction=0.5)
        )
        tracer = TraceBuilder(board)
        dw = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        small = tracer.build(tiny_model, dw, 2).total_workload()
        large = tracer.build(tiny_model, dw, 16).total_workload()
        assert large.sram_bytes > small.sram_bytes


class TestTraceParams:
    def test_paper_granularities(self):
        assert PAPER_GRANULARITIES == (0, 2, 4, 8, 12, 16)

    def test_validation(self):
        with pytest.raises(TraceError):
            TraceParams(reuse_dw=0.5)
        with pytest.raises(TraceError):
            TraceParams(burst_factor=0.5)
        with pytest.raises(TraceError):
            TraceParams(elementwise_cycles=-1)

    def test_model_trace_with_mixed_granularities(self, tracer, tiny_model):
        assignment = {n.node_id: 4 for n in tiny_model.dae_nodes()}
        mt = tracer.build_model_trace(tiny_model, assignment)
        decoupled = [t for t in mt if t.is_decoupled]
        assert len(decoupled) == len(tiny_model.dae_nodes())
