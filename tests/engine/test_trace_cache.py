"""TraceBuilder memoization: identity, keying, invalidation."""

import pytest

from repro.engine.cost import TraceBuilder, model_fingerprint
from repro.errors import TraceError
from repro.nn import LayerKind, build_tiny_test_model


def node_of_kind(model, kind):
    for node in model.nodes:
        if node.layer.kind is kind:
            return node
    raise AssertionError


class TestMemoization:
    def test_repeat_build_returns_same_object(self, board, tiny_model):
        tracer = TraceBuilder(board)
        node = tiny_model.conv_nodes()[0]
        first = tracer.build(tiny_model, node, 4)
        second = tracer.build(tiny_model, node, 4)
        assert first is second
        assert tracer.cache_hits == 1
        assert tracer.cache_misses == 1

    def test_distinct_granularities_distinct_entries(self, board, tiny_model):
        tracer = TraceBuilder(board)
        node = node_of_kind(tiny_model, LayerKind.DEPTHWISE_CONV)
        t0 = tracer.build(tiny_model, node, 0)
        t4 = tracer.build(tiny_model, node, 4)
        assert t0 is not t4
        assert tracer.cache_misses == 2
        assert tracer.cache_hits == 0

    def test_non_dae_layer_folds_granularities(self, board, tiny_model):
        """Non-DAE kinds share the fused trace across every g."""
        tracer = TraceBuilder(board)
        node = node_of_kind(tiny_model, LayerKind.CONV2D)
        assert not node.layer.supports_dae
        fused = tracer.build(tiny_model, node, 0)
        again = tracer.build(tiny_model, node, 8)
        assert fused is again
        assert tracer.cache_misses == 1
        assert tracer.cache_hits == 1

    def test_cached_equals_uncached(self, board, tiny_model):
        cached = TraceBuilder(board)
        reference = TraceBuilder(board, cache=False)
        for node in tiny_model.conv_nodes():
            for g in (0, 4):
                if g and not node.layer.supports_dae:
                    continue
                a = cached.build(tiny_model, node, g)
                b = reference.build(tiny_model, node, g)
                assert a.total_workload() == b.total_workload()
                assert len(a.segments) == len(b.segments)

    def test_cache_disabled_builds_fresh(self, board, tiny_model):
        tracer = TraceBuilder(board, cache=False)
        node = tiny_model.conv_nodes()[0]
        first = tracer.build(tiny_model, node, 4)
        second = tracer.build(tiny_model, node, 4)
        assert first is not second
        assert tracer.cache_hits == 0
        assert tracer.cache_misses == 0

    def test_negative_granularity_still_rejected(self, board, tiny_model):
        tracer = TraceBuilder(board)
        with pytest.raises(TraceError):
            tracer.build(tiny_model, tiny_model.conv_nodes()[0], -1)


class TestInvalidation:
    def test_clear_cache_resets(self, board, tiny_model):
        tracer = TraceBuilder(board)
        node = tiny_model.conv_nodes()[0]
        tracer.build(tiny_model, node, 0)
        tracer.clear_cache()
        assert tracer.cache_hits == 0
        assert tracer.cache_misses == 0
        first = tracer.build(tiny_model, node, 0)
        assert tracer.cache_misses == 1
        assert tracer.build(tiny_model, node, 0) is first

    def test_model_rename_changes_fingerprint(self, board, tiny_model):
        other = build_tiny_test_model()
        assert model_fingerprint(other) == model_fingerprint(tiny_model)
        other.name = "renamed"
        assert model_fingerprint(other) != model_fingerprint(tiny_model)

    def test_equal_models_share_entries(self, board, tiny_model):
        """Structurally identical models hit the same cache entry."""
        tracer = TraceBuilder(board)
        twin = build_tiny_test_model()
        node = tiny_model.conv_nodes()[0]
        twin_node = twin.conv_nodes()[0]
        first = tracer.build(tiny_model, node, 0)
        assert tracer.build(twin, twin_node, 0) is first
        assert tracer.cache_hits == 1
