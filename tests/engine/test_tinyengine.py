"""TinyEngine baselines: fixed clock, fused kernels, idle policies."""

import pytest

from repro.engine import TinyEngine, TinyEngineClockGated
from repro.units import MHZ


class TestTinyEngine:
    def test_runs_at_216(self, board, tiny_model):
        engine = TinyEngine(board)
        assert engine.clock.sysclk_hz == pytest.approx(216 * MHZ)
        report = engine.run(tiny_model)
        for layer in report.layer_reports:
            assert layer.hfo_hz == pytest.approx(216 * MHZ)
            assert layer.granularity == 0

    def test_no_clock_switching_during_inference(self, board, tiny_model):
        report = TinyEngine(board).run(tiny_model)
        assert report.relock_count == 0
        assert report.mux_switch_count == 0

    def test_inference_latency_helper(self, board, tiny_model):
        engine = TinyEngine(board)
        assert engine.inference_latency_s(tiny_model) == pytest.approx(
            engine.run(tiny_model).latency_s
        )

    def test_idles_hot_until_qos(self, board, tiny_model):
        engine = TinyEngine(board)
        latency = engine.inference_latency_s(tiny_model)
        report = engine.run(tiny_model, qos_s=2 * latency)
        idle_power = board.power_model.idle_power(engine.clock)
        expected_idle = latency * idle_power
        idle_energy = report.energy_j - report.inference_energy_j
        assert idle_energy == pytest.approx(expected_idle, rel=1e-6)


class TestClockGatedVariant:
    def test_same_inference_energy(self, board, tiny_model):
        te = TinyEngine(board).run(tiny_model)
        cg = TinyEngineClockGated(board).run(tiny_model)
        assert cg.inference_energy_j == pytest.approx(te.inference_energy_j)

    def test_cheaper_idle(self, board, tiny_model):
        latency = TinyEngine(board).inference_latency_s(tiny_model)
        qos = 1.5 * latency
        te = TinyEngine(board).run(tiny_model, qos_s=qos)
        cg = TinyEngineClockGated(board).run(tiny_model, qos_s=qos)
        assert cg.energy_j < te.energy_j

    def test_gap_grows_with_slack(self, board, tiny_model):
        # The more idle time in the window, the more gating saves.
        latency = TinyEngine(board).inference_latency_s(tiny_model)
        gaps = []
        for slack in (1.1, 1.5):
            te = TinyEngine(board).run(tiny_model, qos_s=slack * latency)
            cg = TinyEngineClockGated(board).run(
                tiny_model, qos_s=slack * latency
            )
            gaps.append(te.energy_j - cg.energy_j)
        assert gaps[1] > gaps[0]

    def test_equal_without_qos_window(self, board, tiny_model):
        te = TinyEngine(board).run(tiny_model)
        cg = TinyEngineClockGated(board).run(tiny_model)
        assert te.energy_j == pytest.approx(cg.energy_j)
