"""DVFS runtime: execution accounting, switch behaviour, QoS windows."""

import pytest

from repro.clock import hfo_grid, lfo_config
from repro.engine import DVFSRuntime, uniform_plan
from repro.errors import TraceError
from repro.power import EnergyCategory


@pytest.fixture
def runtime(board):
    return DVFSRuntime(board)


def hfo_at(mhz):
    for cfg in hfo_grid():
        if abs(cfg.sysclk_hz - mhz * 1e6) < 1:
            return cfg
    raise AssertionError(f"no {mhz} MHz config in the grid")


class TestFusedExecution:
    def test_report_totals_consistent(self, runtime, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        report = runtime.run(tiny_model, plan)
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert report.energy_j == pytest.approx(report.account.total_energy_j)
        assert report.latency_s == pytest.approx(report.account.total_time_s)

    def test_per_layer_reports_sum_to_total(self, runtime, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        report = runtime.run(tiny_model, plan)
        assert sum(r.latency_s for r in report.layer_reports) == pytest.approx(
            report.latency_s
        )
        assert sum(r.energy_j for r in report.layer_reports) == pytest.approx(
            report.inference_energy_j
        )

    def test_latency_scales_with_frequency(self, runtime, tiny_model):
        fast = runtime.run(
            tiny_model, uniform_plan(tiny_model, hfo=hfo_at(216))
        )
        slow = runtime.run(
            tiny_model, uniform_plan(tiny_model, hfo=hfo_at(75))
        )
        assert slow.latency_s > 1.5 * fast.latency_s

    def test_one_relock_for_uniform_fused_plan(
        self, runtime, tiny_model, hfo_216
    ):
        # Starting from the LFO, a constant-HFO fused plan needs exactly
        # one PLL programming.
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        report = runtime.run(tiny_model, plan)
        assert report.relock_count == 1

    def test_no_relock_when_started_on_target(
        self, runtime, tiny_model, hfo_216
    ):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        report = runtime.run(tiny_model, plan, initial_config=hfo_216)
        assert report.relock_count == 0


class TestDecoupledExecution:
    def test_mux_switches_counted(self, runtime, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=4)
        report = runtime.run(tiny_model, plan)
        assert report.mux_switch_count > 2 * len(tiny_model.dae_nodes())

    def test_single_background_relock_for_uniform_hfo(
        self, runtime, tiny_model, hfo_216
    ):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=4)
        report = runtime.run(tiny_model, plan)
        assert report.relock_count == 1

    def test_memory_category_present(self, runtime, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=4)
        report = runtime.run(tiny_model, plan)
        breakdown = report.account.energy_by_category()
        assert breakdown.get(EnergyCategory.MEMORY, 0) > 0
        assert breakdown.get(EnergyCategory.SWITCH, 0) > 0

    def test_dae_at_216_saves_energy_vs_fused_216(
        self, runtime, tiny_model, hfo_216
    ):
        # Memory segments at the LFO cost less energy than interleaved
        # stalls at 216 MHz.
        fused = runtime.run(
            tiny_model, uniform_plan(tiny_model, hfo=hfo_216, granularity=0),
            initial_config=hfo_216,
        )
        dae = runtime.run(
            tiny_model, uniform_plan(tiny_model, hfo=hfo_216, granularity=8),
            initial_config=hfo_216,
        )
        assert dae.inference_energy_j < fused.inference_energy_j

    def test_hfo_must_be_pll_sourced(self, runtime, tiny_model):
        plan = uniform_plan(tiny_model, hfo=lfo_config(), granularity=4)
        with pytest.raises(TraceError):
            runtime.run(tiny_model, plan)

    def test_batched_iterations_match_layer_totals(
        self, runtime, tiny_model, hfo_216
    ):
        # The batching optimization must not change per-layer totals:
        # compare against per-layer price from the DSE cost model
        # (identical formulas, unbatched).
        from repro.dse.explorer import LayerCostModel
        from repro.engine.cost import TraceBuilder

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=4)
        report = runtime.run(tiny_model, plan, initial_config=hfo_216)
        pricer = LayerCostModel(runtime.board)
        tracer = TraceBuilder(runtime.board)
        by_node = {r.node_id: r for r in report.layer_reports}
        for node in tiny_model.dae_nodes():
            trace = tracer.build(tiny_model, node, 4)
            latency, energy = pricer.price(
                trace, hfo_216, plan.lfo, assume_relock=False
            )
            measured = by_node[node.node_id]
            assert measured.latency_s == pytest.approx(latency, rel=1e-6)
            assert measured.energy_j == pytest.approx(energy, rel=1e-6)


class TestQoSWindow:
    def test_idle_energy_added_up_to_qos(self, runtime, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        bare = runtime.run(tiny_model, plan)
        qos = bare.latency_s * 2
        windowed = runtime.run(tiny_model, plan, qos_s=qos)
        assert windowed.energy_j > windowed.inference_energy_j
        assert windowed.met_qos

    def test_gated_idle_cheaper_than_hot_idle(
        self, runtime, tiny_model, hfo_216
    ):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        qos = runtime.run(tiny_model, plan).latency_s * 2
        gated = runtime.run(tiny_model, plan, qos_s=qos, idle_gated=True)
        hot = runtime.run(tiny_model, plan, qos_s=qos, idle_gated=False)
        assert gated.energy_j < hot.energy_j
        assert gated.inference_energy_j == pytest.approx(
            hot.inference_energy_j
        )

    def test_missed_qos_flagged(self, runtime, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        latency = runtime.run(tiny_model, plan).latency_s
        report = runtime.run(tiny_model, plan, qos_s=latency / 2)
        assert not report.met_qos

    def test_average_power_between_gated_and_active(
        self, runtime, tiny_model, hfo_216, board
    ):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        report = runtime.run(tiny_model, plan)
        assert (
            board.power_model.gated_power()
            < report.average_power_w
            <= board.power_model.active_power(hfo_216) * 1.01
        )


class TestFaultInjection:
    @staticmethod
    def clock_with(*events):
        from repro.faults import FaultPlan

        return FaultPlan(scheduled=tuple(events)).clock_for(0)

    def test_clean_run_reports_zero_interventions(
        self, runtime, tiny_model, hfo_216
    ):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        report = runtime.run(tiny_model, plan)
        assert report.css_events == 0
        assert report.watchdog_resets == 0
        assert report.pll_retries == 0

    def test_zero_rate_clock_is_transparent(self, runtime, tiny_model, hfo_216):
        from repro.faults import FaultPlan

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        clean = runtime.run(tiny_model, plan)
        hardened = runtime.run(
            tiny_model, plan, fault_clock=FaultPlan().clock_for(0)
        )
        assert hardened.latency_s == clean.latency_s
        assert hardened.energy_j == clean.energy_j

    def test_watchdog_reset_resumes_at_layer(self, runtime, tiny_model, hfo_216):
        from repro.faults import FaultKind

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        clean = runtime.run(tiny_model, plan)
        clock = self.clock_with((FaultKind.WATCHDOG_RESET, 1))
        report = runtime.run(tiny_model, plan, fault_clock=clock)
        assert report.watchdog_resets == 1
        # Every layer still executed exactly once after the replay.
        assert len(report.layer_reports) == len(clean.layer_reports)
        # The reset stall and the post-reboot re-lock cost time/energy.
        assert report.latency_s > clean.latency_s
        assert report.energy_j > clean.energy_j
        assert report.latency_s >= (
            clean.latency_s + clock.plan.watchdog_reset_s
        )

    def test_watchdog_storm_raises_after_budget(
        self, runtime, tiny_model, hfo_216
    ):
        from repro.errors import WatchdogResetError
        from repro.faults import FaultPlan

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        fault_plan = FaultPlan(watchdog_rate=1.0, max_consecutive_resets=2)
        with pytest.raises(WatchdogResetError) as info:
            runtime.run(
                tiny_model, plan, fault_clock=fault_plan.clock_for(0)
            )
        assert info.value.resets == 3  # budget of 2 exceeded

    def test_css_failsafe_completes_inference(
        self, runtime, tiny_model, hfo_216
    ):
        from repro.faults import FaultKind

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        clock = self.clock_with((FaultKind.HSE_DROPOUT, 0))
        report = runtime.run(tiny_model, plan, fault_clock=clock)
        assert report.css_events == 1
        assert len(report.layer_reports) == len(tiny_model.nodes)
        assert report.energy_j > 0

    def test_css_failsafe_in_decoupled_plan(self, runtime, tiny_model, hfo_216):
        from repro.faults import FaultKind

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=2)
        clean = runtime.run(tiny_model, plan)
        clock = self.clock_with((FaultKind.HSE_DROPOUT, 1))
        report = runtime.run(tiny_model, plan, fault_clock=clock)
        assert report.css_events >= 1
        assert len(report.layer_reports) == len(clean.layer_reports)

    def test_pll_retry_surfaces_in_report(self, runtime, tiny_model, hfo_216):
        from repro.faults import FaultKind

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        clean = runtime.run(tiny_model, plan)
        clock = self.clock_with((FaultKind.PLL_LOCK_TIMEOUT, 0))
        report = runtime.run(tiny_model, plan, fault_clock=clock)
        assert report.pll_retries == 1
        assert report.latency_s > clean.latency_s
