"""Three-way bit-exactness: scalar reference == vectorized == DAE."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import run_depthwise_dae, run_pointwise_dae
from repro.engine.kernels import depthwise_conv_scalar, pointwise_conv_scalar
from repro.nn import DepthwiseConv2D, PointwiseConv2D, QuantizedTensor
from repro.nn.quantize import QuantParams

IN_PARAMS = QuantParams(scale=0.04, zero_point=-3)
OUT_PARAMS = QuantParams(scale=0.09, zero_point=5)


def make_dw(channels=4, kernel=3, stride=1, padding="same", seed=0):
    rng = np.random.default_rng(seed)
    return DepthwiseConv2D(
        "dw", rng.normal(0, 0.4, (kernel, kernel, channels)),
        rng.normal(0, 0.1, channels),
        IN_PARAMS, OUT_PARAMS, stride=stride, padding=padding,
        activation="relu6",
    )


def make_pw(c_in=4, c_out=5, seed=0):
    rng = np.random.default_rng(seed)
    return PointwiseConv2D(
        "pw", rng.normal(0, 0.3, (c_in, c_out)),
        rng.normal(0, 0.1, c_out),
        IN_PARAMS, OUT_PARAMS, activation=None,
    )


def make_x(h=5, w=6, c=4, seed=1):
    rng = np.random.default_rng(seed)
    return QuantizedTensor(
        rng.integers(-128, 128, (h, w, c)).astype(np.int8),
        IN_PARAMS.scale, IN_PARAMS.zero_point,
    )


class TestDepthwiseScalar:
    @pytest.mark.parametrize("stride,padding", [
        (1, "same"), (2, "same"), (1, "valid"), (2, "valid"),
    ])
    def test_matches_vectorized(self, stride, padding):
        layer = make_dw(stride=stride, padding=padding)
        x = make_x()
        scalar = depthwise_conv_scalar(layer, x)
        vectorized = layer.forward(x).data
        assert np.array_equal(scalar, vectorized)

    def test_three_way_equality(self):
        layer = make_dw()
        x = make_x()
        scalar = depthwise_conv_scalar(layer, x)
        dae = run_depthwise_dae(layer, x, g=3).data
        assert np.array_equal(scalar, dae)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_property_random_weights_and_inputs(self, seed):
        layer = make_dw(seed=seed)
        x = make_x(seed=seed + 1)
        assert np.array_equal(
            depthwise_conv_scalar(layer, x), layer.forward(x).data
        )


class TestPointwiseScalar:
    def test_matches_vectorized(self):
        layer = make_pw()
        x = make_x()
        assert np.array_equal(
            pointwise_conv_scalar(layer, x), layer.forward(x).data
        )

    def test_three_way_equality(self):
        layer = make_pw()
        x = make_x()
        scalar = pointwise_conv_scalar(layer, x)
        dae = run_pointwise_dae(layer, x, g=7).data
        assert np.array_equal(scalar, dae)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_property_random_weights_and_inputs(self, seed):
        layer = make_pw(seed=seed)
        x = make_x(seed=seed + 1)
        assert np.array_equal(
            pointwise_conv_scalar(layer, x), layer.forward(x).data
        )
