"""Idle policies: HOT vs GATED vs STOP accounting."""

import pytest

from repro.engine import (
    DVFSRuntime,
    IdlePolicy,
    TinyEngine,
    TinyEngineClockGated,
    TinyEngineDeepSleep,
    uniform_plan,
)
from repro.power import EnergyCategory


@pytest.fixture
def runtime(board):
    return DVFSRuntime(board)


def run_with_policy(runtime, model, hfo, qos_s, policy):
    plan = uniform_plan(model, hfo=hfo, granularity=0)
    return runtime.run(
        model, plan, qos_s=qos_s, idle_policy=policy, initial_config=hfo
    )


class TestIdlePolicies:
    def test_policy_ordering(self, runtime, tiny_model, hfo_216):
        latency = run_with_policy(
            runtime, tiny_model, hfo_216, None, None
        ).latency_s
        qos = latency * 3
        hot = run_with_policy(
            runtime, tiny_model, hfo_216, qos, IdlePolicy.HOT
        )
        gated = run_with_policy(
            runtime, tiny_model, hfo_216, qos, IdlePolicy.GATED
        )
        stop = run_with_policy(
            runtime, tiny_model, hfo_216, qos, IdlePolicy.STOP
        )
        assert stop.energy_j < gated.energy_j < hot.energy_j
        # Inference energy identical across policies.
        assert stop.inference_energy_j == pytest.approx(
            hot.inference_energy_j
        )

    def test_stop_charges_wakeup(self, runtime, board, tiny_model, hfo_216):
        latency = run_with_policy(
            runtime, tiny_model, hfo_216, None, None
        ).latency_s
        qos = latency * 3
        stop = run_with_policy(
            runtime, tiny_model, hfo_216, qos, IdlePolicy.STOP
        )
        labels = stop.account.energy_by_label()
        assert "stop-wakeup" in labels
        wake = board.power_model.params.stop_wakeup_s
        switch_time = stop.account.time_by_category()[EnergyCategory.SWITCH]
        assert switch_time >= wake

    def test_stop_degrades_to_gated_for_tiny_windows(
        self, runtime, board, tiny_model, hfo_216
    ):
        latency = run_with_policy(
            runtime, tiny_model, hfo_216, None, None
        ).latency_s
        # Idle window shorter than the wake-up latency.
        qos = latency + board.power_model.params.stop_wakeup_s * 0.5
        stop = run_with_policy(
            runtime, tiny_model, hfo_216, qos, IdlePolicy.STOP
        )
        gated = run_with_policy(
            runtime, tiny_model, hfo_216, qos, IdlePolicy.GATED
        )
        assert stop.energy_j == pytest.approx(gated.energy_j)

    def test_legacy_idle_gated_flag_still_works(
        self, runtime, tiny_model, hfo_216
    ):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=0)
        latency = runtime.run(tiny_model, plan).latency_s
        qos = latency * 2
        legacy = runtime.run(
            tiny_model, plan, qos_s=qos, idle_gated=True,
            initial_config=hfo_216,
        )
        explicit = runtime.run(
            tiny_model, plan, qos_s=qos, idle_policy=IdlePolicy.GATED,
            initial_config=hfo_216,
        )
        assert legacy.energy_j == pytest.approx(explicit.energy_j)


class TestEngineVariants:
    def test_three_engines_ordered(self, board, tiny_model):
        latency = TinyEngine(board).inference_latency_s(tiny_model)
        qos = latency * 2
        hot = TinyEngine(board).run(tiny_model, qos_s=qos)
        gated = TinyEngineClockGated(board).run(tiny_model, qos_s=qos)
        stop = TinyEngineDeepSleep(board).run(tiny_model, qos_s=qos)
        assert stop.energy_j < gated.energy_j < hot.energy_j

    def test_deep_sleep_equals_others_without_window(self, board, tiny_model):
        stop = TinyEngineDeepSleep(board).run(tiny_model)
        hot = TinyEngine(board).run(tiny_model)
        assert stop.energy_j == pytest.approx(hot.energy_j)


class TestStopPowerModel:
    def test_stop_below_gated(self, board):
        pm = board.power_model
        assert pm.stop_power() < pm.gated_power()

    def test_stop_state_via_power(self, board, hfo_216):
        from repro.power import PowerState

        pm = board.power_model
        assert pm.power(hfo_216, PowerState.STOP) == pytest.approx(
            pm.stop_power()
        )
