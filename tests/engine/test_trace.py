"""Trace data structures: invariants and accessors."""

import pytest

from repro.errors import TraceError
from repro.engine import LayerTrace, ModelTrace, Segment, SegmentKind
from repro.mcu import SegmentWorkload
from repro.nn import LayerKind


def seg(kind=SegmentKind.COMPUTE, cycles=100.0, flash=0.0, sram=0.0):
    return Segment(
        kind=kind,
        workload=SegmentWorkload(
            cpu_cycles=cycles, flash_bytes=flash, sram_bytes=sram
        ),
    )


def decoupled_trace(iterations=3):
    segments = []
    for _ in range(iterations):
        segments.append(seg(SegmentKind.MEMORY, cycles=10, sram=64))
        segments.append(seg(SegmentKind.COMPUTE, cycles=1000))
    return LayerTrace(
        node_id=1,
        layer_name="dw",
        layer_kind=LayerKind.DEPTHWISE_CONV,
        granularity=4,
        segments=segments,
        iterations=iterations,
    )


class TestSegment:
    def test_empty_workload_rejected(self):
        with pytest.raises(TraceError):
            Segment(kind=SegmentKind.FUSED, workload=SegmentWorkload())


class TestLayerTrace:
    def test_fused_invariants(self):
        trace = LayerTrace(
            node_id=1, layer_name="conv", layer_kind=LayerKind.CONV2D,
            granularity=0, segments=[seg(SegmentKind.FUSED)],
        )
        assert not trace.is_decoupled
        assert trace.mux_switch_count() == 0

    def test_fused_cannot_have_iterations(self):
        with pytest.raises(TraceError):
            LayerTrace(
                node_id=1, layer_name="c", layer_kind=LayerKind.CONV2D,
                granularity=0, segments=[seg()], iterations=2,
            )

    def test_decoupled_needs_iterations(self):
        with pytest.raises(TraceError):
            LayerTrace(
                node_id=1, layer_name="dw",
                layer_kind=LayerKind.DEPTHWISE_CONV,
                granularity=4, segments=[seg()], iterations=0,
            )

    def test_negative_granularity_rejected(self):
        with pytest.raises(TraceError):
            LayerTrace(
                node_id=1, layer_name="dw",
                layer_kind=LayerKind.DEPTHWISE_CONV,
                granularity=-1, segments=[seg()],
            )

    def test_segment_filters(self):
        trace = decoupled_trace(3)
        assert len(trace.memory_segments()) == 3
        assert len(trace.compute_segments()) == 3

    def test_mux_switch_count_two_per_iteration(self):
        # Listing 1: one switch into the memory segment, one back.
        assert decoupled_trace(5).mux_switch_count() == 10

    def test_total_workload_sums_segments(self):
        trace = decoupled_trace(2)
        total = trace.total_workload()
        assert total.cpu_cycles == pytest.approx(2 * (10 + 1000))
        assert total.sram_bytes == pytest.approx(2 * 64)


class TestModelTrace:
    def test_iteration_and_lookup(self):
        traces = [decoupled_trace(), ]
        mt = ModelTrace(model_name="m", layer_traces=traces)
        assert len(mt) == 1
        assert mt.trace_for(1).layer_name == "dw"
        assert list(mt) == traces

    def test_missing_node_raises(self):
        mt = ModelTrace(model_name="m")
        with pytest.raises(TraceError):
            mt.trace_for(7)
