"""Numeric validation of the segment cost model.

Where ``test_cost.py`` checks structure, these tests recompute the
exact workload formulas by hand for small layers and pin the builder's
output to them.  Any change to the access-pattern model must
consciously update these numbers.
"""

import pytest

from repro.engine import SegmentKind, TraceBuilder, TraceParams
from repro.mcu import CacheModel, CoreTimingParams, make_nucleo_f767zi
from repro.nn import LayerKind
from repro.nn.models import _Builder


@pytest.fixture
def board():
    # A board with a cache big enough that no refetching occurs, so
    # the hand formulas stay clean.
    return make_nucleo_f767zi(cache=CacheModel(capacity_bytes=1 << 20))


@pytest.fixture
def tracer(board):
    return TraceBuilder(board)


def small_model():
    """conv(8x8x3 -> 8x8x4), dw(3x3, stride 1), pw(4 -> 6)."""
    b = _Builder("numeric", (8, 8, 3), seed=0)
    b.conv(4, kernel=3, stride=1)
    b.dw(kernel=3, stride=1)
    b.pw(6)
    return b.model


def node_of(model, kind):
    return next(n for n in model.nodes if n.layer.kind is kind)


class TestDepthwiseFormulas:
    def test_fused_workload(self, tracer):
        model = small_model()
        dw = node_of(model, LayerKind.DEPTHWISE_CONV)
        t = CoreTimingParams()
        p = TraceParams()
        trace = tracer.build(model, dw, 0)
        (segment,) = trace.segments
        c, in_b, out_b = 4, 64, 64  # channels, 8x8 in, 8x8 out ('same')
        macs = out_b * 9 * c
        expected_cpu = (
            macs * t.cycles_per_mac_depthwise
            + c * t.loop_overhead_cycles
            + out_b * c * t.cycles_per_output_byte
        )
        expected_sram = c * (p.reuse_dw * in_b + out_b)
        expected_flash = c * (9 + 4)
        assert segment.workload.cpu_cycles == pytest.approx(expected_cpu)
        assert segment.workload.sram_bytes == pytest.approx(expected_sram)
        assert segment.workload.flash_bytes == pytest.approx(expected_flash)

    def test_dae_workload_per_group(self, tracer):
        model = small_model()
        dw = node_of(model, LayerKind.DEPTHWISE_CONV)
        t = CoreTimingParams()
        p = TraceParams()
        trace = tracer.build(model, dw, 2)  # 4 channels / g=2 -> 2 groups
        assert trace.iterations == 2
        mem = trace.memory_segments()[0].workload
        comp = trace.compute_segments()[0].workload
        in_b, out_b, gi = 64, 64, 2
        assert mem.sram_bytes == pytest.approx(
            2.0 * gi * in_b / p.burst_factor
        )
        assert mem.flash_bytes == pytest.approx(gi * (9 + 4))
        assert mem.cpu_cycles == pytest.approx(t.loop_overhead_cycles)
        expected_comp_cpu = (
            gi * out_b * 9 * t.cycles_per_mac_depthwise
            + gi * out_b * t.cycles_per_output_byte
            + t.loop_overhead_cycles
        )
        assert comp.cpu_cycles == pytest.approx(expected_comp_cpu)
        # No refetching on the huge cache: compute SRAM = outputs only.
        assert comp.sram_bytes == pytest.approx(gi * out_b)
        assert comp.flash_bytes == 0.0

    def test_dae_total_mac_cycles_equal_fused(self, tracer):
        model = small_model()
        dw = node_of(model, LayerKind.DEPTHWISE_CONV)
        t = CoreTimingParams()
        fused_cpu = tracer.build(model, dw, 0).total_workload().cpu_cycles
        dae_cpu = tracer.build(model, dw, 2).total_workload().cpu_cycles
        # Fused has per-channel loop overhead (4x); DAE has per-segment
        # overhead (2 groups x 2 segments = 4x): identical here.
        assert dae_cpu == pytest.approx(fused_cpu)


class TestPointwiseFormulas:
    def test_fused_workload(self, tracer):
        model = small_model()
        pw = node_of(model, LayerKind.POINTWISE_CONV)
        t = CoreTimingParams()
        p = TraceParams()
        trace = tracer.build(model, pw, 0)
        (segment,) = trace.segments
        positions, c_in, c_out = 64, 4, 6
        macs = positions * c_in * c_out
        expected_cpu = (
            macs * t.cycles_per_mac_pointwise
            + positions * p.column_overhead_cycles
            + positions * c_out * t.cycles_per_output_byte
            + t.loop_overhead_cycles
        )
        assert segment.workload.cpu_cycles == pytest.approx(expected_cpu)
        assert segment.workload.sram_bytes == pytest.approx(
            positions * (c_in + c_out)
        )
        # Weights fit the huge cache: streamed exactly once.
        assert segment.workload.flash_bytes == pytest.approx(
            c_in * c_out + 4 * c_out
        )

    def test_dae_column_groups(self, tracer):
        model = small_model()
        pw = node_of(model, LayerKind.POINTWISE_CONV)
        p = TraceParams()
        trace = tracer.build(model, pw, 16)  # 64 positions / 16 -> 4 groups
        assert trace.iterations == 4
        mem = trace.memory_segments()[0].workload
        assert mem.sram_bytes == pytest.approx(2.0 * 16 * 4 / p.burst_factor)
        total_flash = trace.total_workload().flash_bytes
        assert total_flash == pytest.approx(4 * 6 + 4 * 6)  # one pass

    def test_uncached_weights_restream_per_group(self):
        # A 64-byte cache cannot hold the 48-byte weights next to the
        # column buffers: every group pays a refetch share.
        board = make_nucleo_f767zi(
            cache=CacheModel(capacity_bytes=64, usable_fraction=0.5)
        )
        tracer = TraceBuilder(board)
        model = small_model()
        pw = node_of(model, LayerKind.POINTWISE_CONV)
        weight_bytes = 4 * 6 + 4 * 6
        flash_g16 = tracer.build(model, pw, 16).total_workload().flash_bytes
        flash_g2 = tracer.build(model, pw, 2).total_workload().flash_bytes
        assert flash_g16 > weight_bytes
        assert flash_g2 > flash_g16  # more groups -> more re-streaming


class TestElementwiseFormulas:
    def test_gap_workload(self, tracer, tiny_model):
        t = TraceParams()
        gap = next(
            n for n in tiny_model.nodes
            if n.layer.kind is LayerKind.AVG_POOL
        )
        trace = tracer.build(tiny_model, gap, 0)
        (segment,) = trace.segments
        in_shape = tiny_model.input_shapes_of(gap)[0]
        in_bytes = in_shape[0] * in_shape[1] * in_shape[2]
        out_elems = in_shape[2]
        expected_cpu = (
            out_elems * t.elementwise_cycles
            + CoreTimingParams().loop_overhead_cycles
        )
        assert segment.workload.cpu_cycles == pytest.approx(expected_cpu)
        assert segment.workload.sram_bytes == pytest.approx(
            in_bytes + out_elems
        )
