"""DAE execution: whole-model bit-exactness (the no-accuracy-drop claim)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import DAEExecutor, run_depthwise_dae, run_pointwise_dae
from repro.engine.cost import PAPER_GRANULARITIES
from repro.errors import TraceError
from repro.nn import QuantizedTensor, build_tiny_test_model
from repro.nn.layers.depthwise import DepthwiseConv2D
from repro.nn.layers.pointwise import PointwiseConv2D
from repro.nn.models import INPUT_PARAMS
from repro.nn.quantize import QuantParams


def make_input(model, seed=0):
    rng = np.random.default_rng(seed)
    h, w, c = model.input_shape
    return QuantizedTensor(
        rng.integers(-128, 128, size=(h, w, c)).astype(np.int8),
        INPUT_PARAMS.scale,
        INPUT_PARAMS.zero_point,
    )


class TestWholeModelBitExactness:
    @pytest.mark.parametrize("g", [g for g in PAPER_GRANULARITIES if g > 0])
    def test_uniform_granularity_bit_exact(self, tiny_model, tiny_input, g):
        reference = tiny_model.forward(tiny_input)
        executor = DAEExecutor(
            {n.node_id: g for n in tiny_model.dae_nodes()}
        )
        out, stats = executor.run(tiny_model, tiny_input)
        assert np.array_equal(out.data, reference.data)
        assert stats.total_groups > 0

    def test_mixed_granularities_bit_exact(self, tiny_model, tiny_input):
        reference = tiny_model.forward(tiny_input)
        granularities = {}
        for i, node in enumerate(tiny_model.dae_nodes()):
            granularities[node.node_id] = [2, 4, 8, 12, 16][i % 5]
        out, _ = DAEExecutor(granularities).run(tiny_model, tiny_input)
        assert np.array_equal(out.data, reference.data)

    def test_no_granularities_equals_reference_path(
        self, tiny_model, tiny_input
    ):
        out, stats = DAEExecutor().run(tiny_model, tiny_input)
        assert np.array_equal(out.data, tiny_model.forward(tiny_input).data)
        assert stats.total_groups == 0

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        g=st.sampled_from([2, 4, 8, 12, 16]),
    )
    def test_random_inputs_property(self, seed, g):
        """Property: DAE == reference for arbitrary inputs and g."""
        model = build_tiny_test_model()
        x = make_input(model, seed=seed)
        reference = model.forward(x)
        out, _ = DAEExecutor(
            {n.node_id: g for n in model.dae_nodes()}
        ).run(model, x)
        assert np.array_equal(out.data, reference.data)


class TestBufferingStats:
    def test_groups_match_ceil_division(self, tiny_model, tiny_input):
        g = 4
        _, stats = DAEExecutor(
            {n.node_id: g for n in tiny_model.dae_nodes()}
        ).run(tiny_model, tiny_input)
        by_node = {s.node_id: s for s in stats.per_layer}
        for node in tiny_model.dae_nodes():
            record = by_node[node.node_id]
            shape = tiny_model.input_shapes_of(node)[0]
            if node.layer.kind.value == "depthwise":
                units = shape[2]
            else:
                units = shape[0] * shape[1]
            assert record.groups == -(-units // g)

    def test_buffered_bytes_equal_input_bytes(self, tiny_model, tiny_input):
        _, stats = DAEExecutor(
            {n.node_id: 8 for n in tiny_model.dae_nodes()}
        ).run(tiny_model, tiny_input)
        for record in stats.per_layer:
            assert record.buffered_bytes > 0


class TestStandaloneKernels:
    def make_dw(self):
        rng = np.random.default_rng(0)
        return DepthwiseConv2D(
            "dw", rng.normal(0, 0.4, (3, 3, 6)), None,
            QuantParams(0.05, 0), QuantParams(0.1, 0),
        )

    def make_pw(self):
        rng = np.random.default_rng(0)
        return PointwiseConv2D(
            "pw", rng.normal(0, 0.3, (6, 8)), None,
            QuantParams(0.05, 0), QuantParams(0.1, 0),
        )

    def make_x(self):
        rng = np.random.default_rng(1)
        return QuantizedTensor(
            rng.integers(-128, 128, (5, 5, 6)).astype(np.int8), 0.05, 0
        )

    def test_run_depthwise_dae_matches(self):
        layer, x = self.make_dw(), self.make_x()
        for g in (1, 2, 3, 6, 100):
            out = run_depthwise_dae(layer, x, g)
            assert np.array_equal(out.data, layer.forward(x).data)

    def test_run_pointwise_dae_matches(self):
        layer, x = self.make_pw(), self.make_x()
        for g in (1, 2, 7, 25, 100):
            out = run_pointwise_dae(layer, x, g)
            assert np.array_equal(out.data, layer.forward(x).data)

    def test_nonpositive_granularity_rejected(self):
        with pytest.raises(TraceError):
            run_depthwise_dae(self.make_dw(), self.make_x(), 0)
        with pytest.raises(TraceError):
            run_pointwise_dae(self.make_pw(), self.make_x(), -2)


class TestValidatePlanNumerics:
    def test_valid_plan_passes(self, tiny_model):
        from repro.engine import validate_plan_numerics

        granularities = {n.node_id: 8 for n in tiny_model.dae_nodes()}
        assert validate_plan_numerics(tiny_model, granularities)

    def test_empty_plan_passes(self, tiny_model):
        from repro.engine import validate_plan_numerics

        assert validate_plan_numerics(tiny_model, {})

    def test_optimized_plan_passes(self, tiny_model):
        from repro import DAEDVFSPipeline
        from repro.engine import validate_plan_numerics
        from repro.optimize import MODERATE

        pipeline = DAEDVFSPipeline()
        plan = pipeline.optimize(tiny_model, qos_level=MODERATE).plan
        assert validate_plan_numerics(
            tiny_model, plan.granularities(), n_inputs=2
        )
