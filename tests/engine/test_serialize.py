"""Plan serialization: round trips and corrupt-file handling."""

import json

import pytest

from repro.engine import (
    DeploymentPlan,
    LayerPlan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
    uniform_plan,
)
from repro.engine.serialize import (
    clock_config_from_dict,
    clock_config_to_dict,
)
from repro.clock import lfo_config, pll_config
from repro.errors import ClockConfigError, GraphError
from repro.units import MHZ


class TestClockConfigRoundTrip:
    def test_pll_config(self):
        config = pll_config(50 * MHZ, 25, 216)
        assert clock_config_from_dict(clock_config_to_dict(config)) == config

    def test_hse_config(self):
        config = lfo_config()
        assert clock_config_from_dict(clock_config_to_dict(config)) == config

    def test_unknown_source_rejected(self):
        with pytest.raises(GraphError):
            clock_config_from_dict({"source": "rc-network", "hse_hz": 1e6})

    def test_illegal_pll_values_rejected(self):
        data = clock_config_to_dict(pll_config(50 * MHZ, 25, 216))
        data["pll"]["plln"] = 9999
        with pytest.raises(ClockConfigError):
            clock_config_from_dict(data)

    def test_missing_fields_rejected(self):
        with pytest.raises(GraphError):
            clock_config_from_dict({"source": "pll"})


class TestPlanRoundTrip:
    def test_dict_round_trip(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=8)
        plan.qos_s = 0.005
        plan.predicted_latency_s = 0.004
        plan.predicted_energy_j = 0.001
        restored = plan_from_dict(plan_to_dict(plan))
        assert restored.model_name == plan.model_name
        assert restored.lfo == plan.lfo
        assert restored.qos_s == pytest.approx(plan.qos_s)
        assert set(restored.layer_plans) == set(plan.layer_plans)
        for node_id, lp in plan.layer_plans.items():
            other = restored.layer_plans[node_id]
            assert other.granularity == lp.granularity
            assert other.hfo == lp.hfo

    def test_file_round_trip(self, tiny_model, hfo_216, tmp_path):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=4)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.granularities() == plan.granularities()

    def test_restored_plan_executes_identically(
        self, board, tiny_model, hfo_216, tmp_path
    ):
        from repro.engine import DVFSRuntime

        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=8)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        runtime = DVFSRuntime(board)
        a = runtime.run(tiny_model, plan, initial_config=hfo_216)
        b = runtime.run(tiny_model, restored, initial_config=hfo_216)
        assert a.latency_s == pytest.approx(b.latency_s)
        assert a.energy_j == pytest.approx(b.energy_j)


class TestCorruptFiles:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(GraphError):
            load_plan(path)

    def test_wrong_version(self, tiny_model, hfo_216):
        data = plan_to_dict(uniform_plan(tiny_model, hfo=hfo_216))
        data["format_version"] = 99
        with pytest.raises(GraphError):
            plan_from_dict(data)

    def test_duplicate_node_ids(self, tiny_model, hfo_216):
        data = plan_to_dict(uniform_plan(tiny_model, hfo=hfo_216))
        data["layers"].append(dict(data["layers"][0]))
        with pytest.raises(GraphError):
            plan_from_dict(data)

    def test_missing_layers_key(self, tiny_model, hfo_216):
        data = plan_to_dict(uniform_plan(tiny_model, hfo=hfo_216))
        del data["layers"]
        with pytest.raises(GraphError):
            plan_from_dict(data)

    def test_json_is_stable(self, tiny_model, hfo_216, tmp_path):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=2)
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        parsed = json.loads(path.read_text())
        assert parsed["format_version"] == 1
        assert parsed["model_name"] == tiny_model.name


class TestPropertyRoundTrip:
    """Hypothesis: arbitrary legal plans survive serialization."""

    def test_random_plans_round_trip(self, tiny_model):
        import random

        from repro.clock import hfo_grid

        grid = hfo_grid()
        rng = random.Random(7)
        for _ in range(25):
            plan = DeploymentPlan(model_name=tiny_model.name)
            for node in tiny_model.conv_nodes():
                g = rng.choice([0, 2, 4, 8, 12, 16])
                if not node.layer.supports_dae:
                    g = 0
                plan.layer_plans[node.node_id] = LayerPlan(
                    node_id=node.node_id,
                    granularity=g,
                    hfo=rng.choice(grid),
                    predicted_latency_s=rng.random() * 1e-3,
                    predicted_energy_j=rng.random() * 1e-4,
                )
            plan.qos_s = rng.random() * 0.1
            restored = plan_from_dict(plan_to_dict(plan))
            assert restored.granularities() == plan.granularities()
            for node_id, lp in plan.layer_plans.items():
                other = restored.layer_plans[node_id]
                assert other.hfo == lp.hfo
                assert other.predicted_latency_s == pytest.approx(
                    lp.predicted_latency_s
                )
