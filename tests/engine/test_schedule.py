"""Deployment plans: structure, validation, uniform plans."""

import pytest

from repro.clock import lfo_config, max_performance_config
from repro.engine import DeploymentPlan, LayerPlan, uniform_plan
from repro.errors import GraphError


class TestUniformPlan:
    def test_covers_all_conv_nodes(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=8)
        conv_ids = {n.node_id for n in tiny_model.conv_nodes()}
        assert set(plan.layer_plans) == conv_ids

    def test_granularity_only_on_dae_layers(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=8)
        dae_ids = {n.node_id for n in tiny_model.dae_nodes()}
        for node_id, lp in plan.layer_plans.items():
            expected = 8 if node_id in dae_ids else 0
            assert lp.granularity == expected

    def test_default_lfo(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216)
        assert plan.lfo == lfo_config()


class TestValidation:
    def test_wrong_model_name_rejected(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216)
        plan.model_name = "different"
        with pytest.raises(GraphError):
            plan.validate_against(tiny_model)

    def test_unknown_node_rejected(self, tiny_model, hfo_216):
        plan = DeploymentPlan(model_name=tiny_model.name)
        plan.layer_plans[999] = LayerPlan(
            node_id=999, granularity=0, hfo=hfo_216
        )
        with pytest.raises(GraphError):
            plan.validate_against(tiny_model)

    def test_valid_plan_passes(self, tiny_model, hfo_216):
        uniform_plan(tiny_model, hfo=hfo_216).validate_against(tiny_model)


class TestAccessors:
    def test_plan_for_missing_node_is_none(self, tiny_model, hfo_216):
        plan = DeploymentPlan(model_name=tiny_model.name)
        assert plan.plan_for(1) is None

    def test_granularities_mapping(self, tiny_model, hfo_216):
        plan = uniform_plan(tiny_model, hfo=hfo_216, granularity=4)
        mapping = plan.granularities()
        for node in tiny_model.dae_nodes():
            assert mapping[node.node_id] == 4
