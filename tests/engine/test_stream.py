"""Streaming execution: periodic windows and carried clock state."""

import pytest

from repro import DAEDVFSPipeline
from repro.engine import DVFSRuntime, IdlePolicy, run_stream, uniform_plan
from repro.errors import SolverError
from repro.optimize import MODERATE


@pytest.fixture(scope="module")
def planned():
    pipeline = DAEDVFSPipeline()
    from repro.nn import build_tiny_test_model

    model = build_tiny_test_model()
    result = pipeline.optimize(model, qos_level=MODERATE)
    return pipeline, model, result


class TestStream:
    def test_total_energy_composition(self, planned):
        pipeline, model, result = planned
        report = run_stream(
            pipeline.runtime, model, result.plan,
            period_s=result.qos_s, windows=10,
        )
        assert report.total_energy_j == pytest.approx(
            report.first.energy_j + 9 * report.steady.energy_j
        )
        assert report.deadline_misses == 0
        assert report.total_time_s == pytest.approx(10 * result.qos_s)

    def test_power_trace_covers_stream(self, planned):
        pipeline, model, result = planned
        report = run_stream(
            pipeline.runtime, model, result.plan,
            period_s=result.qos_s, windows=5,
        )
        trace = report.power_trace()
        total = sum(i.duration_s for i in trace)
        assert total == pytest.approx(report.total_time_s, rel=1e-6)
        energy = sum(i.energy_j for i in trace)
        assert energy == pytest.approx(report.total_energy_j, rel=1e-9)

    def test_steady_state_not_worse_than_first(self, planned):
        # The steady window inherits a running clock; it can only save
        # the boot transitions, never add cost.
        pipeline, model, result = planned
        report = run_stream(
            pipeline.runtime, model, result.plan,
            period_s=result.qos_s, windows=3,
        )
        assert report.steady.energy_j <= report.first.energy_j * 1.001

    def test_deep_sleep_stream_cheaper_than_gated(self, planned):
        pipeline, model, result = planned
        period = result.qos_s * 4  # generous idle between frames
        gated = run_stream(
            pipeline.runtime, model, result.plan, period_s=period,
            windows=5, idle_policy=IdlePolicy.GATED,
        )
        stop = run_stream(
            pipeline.runtime, model, result.plan, period_s=period,
            windows=5, idle_policy=IdlePolicy.STOP,
        )
        assert stop.total_energy_j < gated.total_energy_j

    def test_too_short_period_flags_misses(self, planned, board):
        pipeline, model, result = planned
        inference = pipeline.runtime.run(model, result.plan).latency_s
        report = run_stream(
            pipeline.runtime, model, result.plan,
            period_s=inference / 2, windows=4,
        )
        assert report.deadline_misses == 4

    def test_validation(self, planned):
        pipeline, model, result = planned
        with pytest.raises(SolverError):
            run_stream(pipeline.runtime, model, result.plan,
                       period_s=0.0, windows=3)
        with pytest.raises(SolverError):
            run_stream(pipeline.runtime, model, result.plan,
                       period_s=0.01, windows=0)

    def test_average_power_bounds(self, planned, board):
        pipeline, model, result = planned
        report = run_stream(
            pipeline.runtime, model, result.plan,
            period_s=result.qos_s * 2, windows=3,
        )
        assert (
            board.power_model.gated_power() * 0.9
            < report.average_power_w
            < 1.0
        )

    def test_single_window_stream(self, planned):
        pipeline, model, result = planned
        report = run_stream(
            pipeline.runtime, model, result.plan,
            period_s=result.qos_s, windows=1,
        )
        assert report.total_energy_j == pytest.approx(report.first.energy_j)
        trace = report.power_trace()
        assert sum(i.duration_s for i in trace) == pytest.approx(
            result.qos_s, rel=1e-6
        )
