"""Cross-cutting edge cases the per-module suites do not reach."""

import numpy as np
import pytest

from repro.clock import hfo_grid, iso_frequency_groups, pll_config
from repro.engine import DVFSRuntime, TinyEngine, uniform_plan
from repro.engine.schedule import DeploymentPlan
from repro.mcu import CacheModel
from repro.nn import (
    Flatten,
    GlobalAveragePool,
    Model,
    PointwiseConv2D,
    QuantizedTensor,
)
from repro.nn.models import INPUT_PARAMS
from repro.nn.quantize import QuantParams
from repro.power import PowerModelParams
from repro.units import MHZ


class TestRemainderGroups:
    def test_runtime_matches_pricer_with_short_last_group(
        self, board, tiny_model
    ):
        """g=12 on 16 channels leaves a 4-channel remainder group; the
        batched runtime must still agree with the aggregate pricer."""
        from repro.clock import max_performance_config
        from repro.dse.explorer import LayerCostModel
        from repro.engine.cost import TraceBuilder

        hfo = max_performance_config()
        runtime = DVFSRuntime(board)
        plan = uniform_plan(tiny_model, hfo=hfo, granularity=12)
        report = runtime.run(tiny_model, plan, initial_config=hfo)
        pricer = LayerCostModel(board)
        tracer = TraceBuilder(board)
        by_node = {r.node_id: r for r in report.layer_reports}
        for node in tiny_model.dae_nodes():
            trace = tracer.build(tiny_model, node, 12)
            latency, energy = pricer.price(
                trace, hfo, plan.lfo, assume_relock=False
            )
            assert by_node[node.node_id].latency_s == pytest.approx(latency)
            assert by_node[node.node_id].energy_j == pytest.approx(energy)

    def test_granularity_exceeding_units_is_single_group(
        self, board, tiny_model
    ):
        from repro.engine.cost import TraceBuilder

        tracer = TraceBuilder(board)
        dw = tiny_model.dae_nodes()[0]
        channels = tiny_model.input_shapes_of(dw)[0][2]
        trace = tracer.build(tiny_model, dw, channels * 10)
        assert trace.iterations == 1


class TestDegenerateModels:
    def make_convless_model(self):
        model = Model(
            name="convless", input_shape=(4, 4, 2), input_params=INPUT_PARAMS
        )
        model.add(GlobalAveragePool("gap"))
        model.add(Flatten("flat"))
        return model

    def test_runtime_executes_empty_plan(self, board):
        model = self.make_convless_model()
        runtime = DVFSRuntime(board)
        plan = DeploymentPlan(model_name="convless")
        report = runtime.run(model, plan)
        assert report.latency_s > 0
        assert report.relock_count == 0

    def test_tinyengine_on_convless_model(self, board):
        model = self.make_convless_model()
        report = TinyEngine(board).run(model)
        assert report.latency_s > 0

    def test_forward_on_convless_model(self):
        model = self.make_convless_model()
        rng = np.random.default_rng(0)
        x = QuantizedTensor(
            rng.integers(-128, 128, (4, 4, 2)).astype(np.int8),
            INPUT_PARAMS.scale,
            INPUT_PARAMS.zero_point,
        )
        assert model.forward(x).shape == (2,)


class TestMultiConsumerGraph:
    def test_two_layers_consume_same_tensor(self):
        rng = np.random.default_rng(0)
        act = QuantParams(scale=0.05, zero_point=0)
        model = Model(
            name="fanout", input_shape=(4, 4, 4), input_params=INPUT_PARAMS
        )
        a = model.add(
            PointwiseConv2D(
                "branch_a", rng.normal(0, 0.3, (4, 6)), None,
                INPUT_PARAMS, act,
            ),
            inputs=(0,),
        )
        b = model.add(
            PointwiseConv2D(
                "branch_b", rng.normal(0, 0.3, (4, 6)), None,
                INPUT_PARAMS, act,
            ),
            inputs=(0,),
        )
        x = QuantizedTensor(
            rng.integers(-128, 128, (4, 4, 4)).astype(np.int8),
            INPUT_PARAMS.scale,
            INPUT_PARAMS.zero_point,
        )
        activations = model.forward_with_activations(x)
        assert activations[a].shape == (4, 4, 6)
        assert activations[b].shape == (4, 4, 6)
        assert not np.array_equal(activations[a].data, activations[b].data)


class TestClockEdges:
    def test_iso_grouping_respects_tolerance(self):
        a = pll_config(50 * MHZ, 25, 100)
        groups = iso_frequency_groups([a], tolerance_hz=1.0)
        assert len(groups) == 1

    def test_custom_engine_clock(self, board, tiny_model):
        clock_168 = next(
            c for c in hfo_grid() if abs(c.sysclk_hz - 168 * MHZ) < 1
        )
        engine = TinyEngine(board, clock=clock_168)
        report = engine.run(tiny_model)
        for layer in report.layer_reports:
            assert layer.hfo_hz == pytest.approx(168 * MHZ)


class TestVOSBoundaries:
    @pytest.mark.parametrize(
        "freq_mhz,expected_v",
        [(96, 1.08), (96.000001, 1.20), (144, 1.20), (168, 1.23),
         (180, 1.26), (216, 1.32)],
    )
    def test_step_edges(self, freq_mhz, expected_v):
        params = PowerModelParams()
        assert params.core_voltage(freq_mhz * 1e6) == pytest.approx(
            expected_v
        )


class TestCacheSharpness:
    def test_sharper_cliff_refetches_more_just_past_capacity(self):
        gentle = CacheModel(overflow_sharpness=1.0)
        steep = CacheModel(overflow_sharpness=3.0)
        ws = gentle.usable_bytes * 1.2
        assert steep.refetch_fraction(ws) > gentle.refetch_fraction(ws)
