"""Board-aware serve caching: no cross-board key collisions.

The satellite guarantee: the same (model, QoS) planned for two boards
must never share an LRU entry, a shared-tier entry, or a shard -- and
default-board keys must stay byte-identical to the pre-registry wire
format.
"""

import json

import pytest

from repro.errors import ReproError
from repro.nn import build_tiny_test_model
from repro.serve.router import shard_key
from repro.serve.service import PlanService, board_from_params
from repro.serve.shared_cache import LocalSharedCache, request_key

QK = ("percent", 30.0)


@pytest.fixture(scope="module")
def tiny():
    return build_tiny_test_model()


class TestKeySeparation:
    def test_cache_keys_differ_per_board(self, tiny):
        service = PlanService()
        default = service.cache_key(tiny, QK)
        n6 = service.cache_key(tiny, QK, board_name="nucleo-n657x0")
        mcx = service.cache_key(tiny, QK, board_name="frdm-mcxn947")
        assert len({default, n6, mcx}) == 3

    def test_default_cache_key_unchanged_by_none(self, tiny):
        service = PlanService()
        assert service.cache_key(tiny, QK) == service.cache_key(
            tiny, QK, board_name=None
        )

    def test_request_keys_differ_per_board(self):
        default = request_key("tiny", QK)
        n6 = request_key("tiny", QK, board="nucleo-n657x0")
        mcx = request_key("tiny", QK, board="frdm-mcxn947")
        assert len({default, n6, mcx}) == 3

    def test_default_request_key_keeps_wire_format(self):
        """No board element -> pre-registry two-part JSON identity."""
        assert request_key("tiny", QK) == json.dumps(
            ["tiny", ["percent", "30.0"]], separators=(",", ":")
        )

    def test_shard_keys_differ_per_board(self):
        base = {"model": "tiny", "qos_percent": 30.0}
        default = shard_key(base)
        n6 = shard_key({**base, "board": "nucleo-n657x0"})
        mcx = shard_key({**base, "board": "frdm-mcxn947"})
        assert len({default, n6, mcx}) == 3

    def test_default_shard_key_keeps_wire_format(self):
        assert shard_key(
            {"model": "tiny", "qos_percent": 30.0}
        ) == json.dumps(
            ["tiny", ["qos_percent", "30.0"]], separators=(",", ":")
        )


class TestBoardParam:
    def test_absent_and_none_are_default(self):
        assert board_from_params({}) is None
        assert board_from_params({"board": None}) is None

    def test_valid_name_passes_through(self):
        assert board_from_params({"board": "nucleo-n657x0"}) == (
            "nucleo-n657x0"
        )

    def test_malformed_board_rejected(self):
        with pytest.raises(ReproError):
            board_from_params({"board": 7})
        with pytest.raises(ReproError):
            board_from_params({"board": ""})


class TestLruIsolation:
    def test_boards_never_share_lru_entries(self, tiny):
        service = PlanService()
        default = service.plan("tiny", QK)
        n6 = service.plan("tiny", QK, board_name="nucleo-n657x0")
        # Neither call may have served the other's entry.
        assert not default.get("cached")
        assert not n6.get("cached")
        assert default["digest"] != n6["digest"]
        # But each board's own repeat is a hit on its own entry.
        assert service.plan("tiny", QK)["digest"] == default["digest"]
        again = service.plan("tiny", QK, board_name="nucleo-n657x0")
        assert again.get("cached")
        assert again["digest"] == n6["digest"]

    def test_board_rides_on_payload_only_when_selected(self, tiny):
        service = PlanService()
        assert "board" not in service.plan("tiny", QK)
        n6 = service.plan("tiny", QK, board_name="nucleo-n657x0")
        assert n6["board"] == "nucleo-n657x0"


class TestSharedTierIsolation:
    def test_boards_never_share_shared_tier_entries(self, tiny):
        tier = LocalSharedCache(capacity=16)
        service = PlanService(shared_cache=tier)
        default = service.plan("tiny", QK)
        n6 = service.plan("tiny", QK, board_name="nucleo-n657x0")
        stats = tier.stats()
        assert stats["size"] == 2  # two distinct index entries
        assert stats["payloads"] == 2  # two distinct digests
        # A fresh worker on the same tier resolves each board to its
        # own payload.
        other = PlanService(shared_cache=tier)
        assert other.plan("tiny", QK)["digest"] == default["digest"]
        assert (
            other.plan("tiny", QK, board_name="nucleo-n657x0")["digest"]
            == n6["digest"]
        )

    def test_degraded_request_index_split_by_board(self, tiny):
        tier = LocalSharedCache(capacity=16)
        service = PlanService(shared_cache=tier)
        default = service.plan("tiny", QK)
        n6 = service.plan("tiny", QK, board_name="nucleo-n657x0")
        hit_default = tier.lookup_request(request_key("tiny", QK))
        hit_n6 = tier.lookup_request(
            request_key("tiny", QK, board="nucleo-n657x0")
        )
        assert hit_default["digest"] == default["digest"]
        assert hit_n6["digest"] == n6["digest"]
        assert hit_default["digest"] != hit_n6["digest"]
