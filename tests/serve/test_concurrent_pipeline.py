"""Concurrency: one pipeline hammered from asyncio and threads.

The serve layer's core claim is that one warm
:class:`~repro.pipeline.DAEDVFSPipeline` can be driven concurrently --
from the batcher's thread pool under an asyncio event loop, or from a
plain ThreadPoolExecutor -- and produce plans bit-identical to serial
execution.  These tests are the regression net for that claim.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

from repro.nn import build_tiny_test_model
from repro.optimize import QoSLevel
from repro.pipeline import DAEDVFSPipeline
from repro.serve.batcher import PlanBatcher


def plan_signature(result):
    """Hashable bit-exact identity of an optimization result."""
    plan = result.plan
    return (
        tuple(
            (
                node_id,
                lp.granularity,
                lp.hfo.sysclk_hz,
                lp.hfo.describe(),
            )
            for node_id, lp in sorted(plan.layer_plans.items())
        ),
        result.qos_s,
        result.baseline_latency_s,
    )


LEVELS = [
    QoSLevel(name="10%", slack=0.10),
    QoSLevel(name="30%", slack=0.30),
    QoSLevel(name="50%", slack=0.50),
]


class TestConcurrentPipelineAccess:
    def test_threadpool_matches_serial(self):
        model = build_tiny_test_model()
        serial_pipeline = DAEDVFSPipeline()
        serial = {
            level.name: plan_signature(
                serial_pipeline.optimize(model, qos_level=level)
            )
            for level in LEVELS
        }

        shared_pipeline = DAEDVFSPipeline()
        jobs = [LEVELS[i % len(LEVELS)] for i in range(12)]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(
                    lambda level: (
                        level.name,
                        plan_signature(
                            shared_pipeline.optimize(
                                model, qos_level=level
                            )
                        ),
                    ),
                    jobs,
                )
            )
        for name, signature in results:
            assert signature == serial[name]

    def test_asyncio_batcher_matches_serial(self):
        model = build_tiny_test_model()
        serial_pipeline = DAEDVFSPipeline()
        serial = {
            level.name: plan_signature(
                serial_pipeline.optimize(model, qos_level=level)
            )
            for level in LEVELS
        }

        shared_pipeline = DAEDVFSPipeline()

        async def main():
            batcher = PlanBatcher(window_s=0.002, max_workers=4)
            jobs = [LEVELS[i % len(LEVELS)] for i in range(12)]
            results = await asyncio.gather(
                *(
                    batcher.submit(
                        ("plan", level.name),
                        lambda level=level: (
                            level.name,
                            plan_signature(
                                shared_pipeline.optimize(
                                    model, qos_level=level
                                )
                            ),
                        ),
                    )
                    for level in jobs
                )
            )
            batcher.shutdown()
            return results

        for name, signature in asyncio.run(main()):
            assert signature == serial[name]

    def test_shared_caches_identical_after_hammering(self):
        """Cache warm-up must not change answers: recompute and compare."""
        model = build_tiny_test_model()
        pipeline = DAEDVFSPipeline()
        level = QoSLevel(name="30%", slack=0.30)
        with ThreadPoolExecutor(max_workers=4) as pool:
            warm = list(
                pool.map(
                    lambda _: plan_signature(
                        pipeline.optimize(model, qos_level=level)
                    ),
                    range(8),
                )
            )
        after = plan_signature(pipeline.optimize(model, qos_level=level))
        assert all(signature == after for signature in warm)
