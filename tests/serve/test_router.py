"""Shard router: ring stability, routing, churn, cross-process digests.

The end-to-end classes spawn real worker processes; they reuse one
router per class scope to keep the spawn count (and wall time) down.
"""

import asyncio

import pytest

from repro.errors import OverloadedError, ReproError
from repro.faults import FaultKind, FaultPlan
from repro.serve import LoadGenConfig, run_loadgen
from repro.serve.client import InProcessClient
from repro.serve.router import (
    HashRing,
    RouterConfig,
    ShardRouter,
    shard_key,
)
from repro.serve.server import PlanServer, ServeConfig


def run(coro):
    return asyncio.run(coro)


def keys(n: int = 200):
    return [f"key-{i}" for i in range(n)]


class TestHashRing:
    def test_route_is_deterministic(self):
        ring_a, ring_b = HashRing(), HashRing()
        for node in (0, 1, 2):
            ring_a.add(node)
            ring_b.add(node)
        assert [ring_a.route(k) for k in keys()] == [
            ring_b.route(k) for k in keys()
        ]

    def test_every_node_owns_keys(self):
        ring = HashRing()
        for node in (0, 1, 2, 3):
            ring.add(node)
        owners = {ring.route(k) for k in keys(500)}
        assert owners == {0, 1, 2, 3}

    def test_remove_only_remaps_removed_nodes_keys(self):
        """The churn property: survivors keep their keys exactly."""
        ring = HashRing()
        for node in (0, 1, 2):
            ring.add(node)
        before = {k: ring.route(k) for k in keys(500)}
        ring.remove(1)
        for key, owner in before.items():
            if owner != 1:
                assert ring.route(key) == owner
            else:
                assert ring.route(key) in (0, 2)

    def test_readding_restores_ownership(self):
        ring = HashRing()
        for node in (0, 1, 2):
            ring.add(node)
        before = {k: ring.route(k) for k in keys(500)}
        ring.remove(1)
        ring.add(1)
        assert {k: ring.route(k) for k in keys(500)} == before

    def test_add_is_idempotent(self):
        ring = HashRing()
        ring.add(0)
        points = list(ring._points)
        ring.add(0)
        assert ring._points == points

    def test_empty_ring_raises(self):
        with pytest.raises(ReproError):
            HashRing().route("anything")

    def test_validation(self):
        with pytest.raises(ReproError):
            HashRing(replicas=0)


class TestShardKey:
    def test_same_identity_same_key(self):
        assert shard_key(
            {"model": "tiny", "qos_percent": 30.0}
        ) == shard_key({"model": "tiny", "qos_percent": 30.0})

    def test_qos_separates(self):
        assert shard_key(
            {"model": "tiny", "qos_percent": 30.0}
        ) != shard_key({"model": "tiny", "qos_percent": 50.0})

    def test_model_separates(self):
        assert shard_key(
            {"model": "tiny", "qos_percent": 30.0}
        ) != shard_key({"model": "mbv2", "qos_percent": 30.0})

    def test_drift_params_do_not_separate(self):
        """Reprice co-locates with the plan that warmed its fronts."""
        assert shard_key(
            {"model": "tiny", "qos_percent": 30.0}
        ) == shard_key(
            {
                "model": "tiny",
                "qos_percent": 30.0,
                "extra_power_w": 0.01,
                "max_hfo_mhz": 100.0,
            }
        )


class TestRouterConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            RouterConfig(shards=0)


def make_router(**overrides) -> ShardRouter:
    overrides.setdefault("shards", 2)
    overrides.setdefault(
        "serve", ServeConfig(batch_window_s=0.001)
    )
    return ShardRouter(RouterConfig(**overrides))


MIXED = [
    ("tiny", 30.0),
    ("tiny", 50.0),
    ("tiny", 30.0),
    ("tiny", 10.0),
    ("tiny", 50.0),
]


class TestRouterEndToEnd:
    def test_mixed_burst_digests_match_single_process(self):
        async def scenario():
            router = make_router()
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                routed = await asyncio.gather(
                    *(
                        client.request(
                            "plan", model=model, qos_percent=qos
                        )
                        for model, qos in MIXED
                    )
                )
                # Same burst against one single-process server.
                server = PlanServer(ServeConfig(batch_window_s=0.001))
                local_client = InProcessClient(server, client_id="l")
                local = await asyncio.gather(
                    *(
                        local_client.request(
                            "plan", model=model, qos_percent=qos
                        )
                        for model, qos in MIXED
                    )
                )
                await server.stop()

                stats = await router.stats()
                health = await client.request("health")
                return routed, local, stats, health
            finally:
                await router.stop()

        routed, local, stats, health = run(scenario())
        assert [r["digest"] for r in routed] == [
            l["digest"] for l in local
        ]
        # Both shards took traffic (the mixed keys spread).
        assert stats["router"]["live_workers"] == 2
        assert sum(stats["router"]["routed"].values()) >= len(MIXED)
        # Merged metrics equal the sum of the per-worker views.
        per_worker = sum(
            w["metrics"]["requests_total"]
            for w in stats["workers"].values()
        )
        assert stats["metrics"]["requests_total"] == per_worker
        assert health["ok"] is True
        assert set(health["workers"]) == {"0", "1"}

    def test_same_key_same_shard_and_shared_cache_publishes(self):
        async def scenario():
            router = make_router()
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                first = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                second = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                stats = await router.stats()
                return first, second, stats
            finally:
                await router.stop()

        first, second, stats = run(scenario())
        assert second["cached"] is True
        assert second["digest"] == first["digest"]
        shared = stats["router"]["shared_cache"]
        assert shared["publishes"] >= 1
        # Same key twice: exactly one shard saw both requests.
        assert sorted(stats["router"]["routed"].values()) in (
            [2],
            [0, 2],
        )


class TestRouterChurn:
    def test_killed_worker_is_respawned_with_same_ownership(self):
        async def scenario():
            router = make_router(max_respawns=2, health_timeout_s=30.0)
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                before = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                owner = max(
                    router.routed, key=lambda w: router.routed[w]
                )
                router._workers[owner].process.kill()
                verdicts = await router.check_workers()
                after = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                stats = await router.stats()
                return before, owner, verdicts, after, stats
            finally:
                await router.stop()

        before, owner, verdicts, after, stats = run(scenario())
        assert verdicts == {0: True, 1: True}  # respawned, healthy
        assert after["digest"] == before["digest"]
        assert stats["router"]["respawns"] == {str(owner): 1}
        assert stats["router"]["live_workers"] == 2

    def test_exhausted_budget_evicts_and_ring_redistributes(self):
        async def scenario():
            router = make_router(max_respawns=0, health_timeout_s=30.0)
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                victim = max(
                    router.routed, key=lambda w: router.routed[w]
                )
                router._workers[victim].process.kill()
                verdicts = await router.check_workers()
                # The victim's keys remap to the survivor.
                rerouted = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                health = await client.request("health")
                stats = await router.stats()
                return victim, verdicts, rerouted, health, stats
            finally:
                await router.stop()

        victim, verdicts, rerouted, health, stats = run(scenario())
        survivor = 1 - victim
        assert verdicts[victim] is False
        assert verdicts[survivor] is True
        assert rerouted["digest"]  # still answered
        assert health["ok"] is False  # fleet degraded
        assert stats["router"]["evicted_workers"] == [victim]
        assert stats["router"]["live_workers"] == 1


class TestRouterStop:
    def test_stop_reaps_every_worker_process(self):
        """No zombie children after stop: every spawned process is
        joined and the bookkeeping slot cleared."""

        async def scenario():
            router = make_router()
            await router.start()
            procs = [w.process for w in router._workers.values()]
            assert all(p.is_alive() for p in procs)
            await router.stop()
            return procs, [w.process for w in router._workers.values()]

        procs, after = run(scenario())
        assert len(procs) == 2
        for process in procs:
            assert not process.is_alive()
            assert process.exitcode is not None  # joined, not zombied
        assert after == [None, None]

    def test_stop_reaps_a_worker_that_died_mid_flight(self):
        """A worker SIGKILLed before stop cannot drain; stop must
        still join it rather than hang or leak."""

        async def scenario():
            router = make_router()
            await router.start()
            procs = [w.process for w in router._workers.values()]
            procs[0].kill()
            await router.stop()
            return procs

        for process in run(scenario()):
            assert not process.is_alive()
            assert process.exitcode is not None


class TestRouterFailover:
    def test_dead_shard_fails_over_on_the_request_path(self):
        """No manual ``check_workers()``: the request that hits the
        dead shard runs the health pass and retry itself."""

        async def scenario():
            router = make_router(max_respawns=2, health_timeout_s=30.0)
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                before = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                owner = max(
                    router.routed, key=lambda w: router.routed[w]
                )
                process = router._workers[owner].process
                process.kill()
                process.join(5)
                after = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                stats = await router.stats()
                return owner, before, after, stats
            finally:
                await router.stop()

        owner, before, after, stats = run(scenario())
        assert after["digest"] == before["digest"]
        failovers = stats["router"]["failovers"]
        assert failovers["triggered"] >= 1
        assert failovers["retried_ok"] >= 1
        assert stats["router"]["respawns"] == {str(owner): 1}
        assert stats["router"]["live_workers"] == 2

    def test_degraded_ladder_shared_cache_then_uniform_fallback(self):
        """Every worker gone: a known request identity serves the
        digest-verified shared-cache hit; an unknown one gets the
        explicit uniform-fallback payload, never an error."""

        async def scenario():
            router = make_router(
                shards=1, max_respawns=0, health_timeout_s=30.0
            )
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                warm = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                process = router._workers[0].process
                process.kill()
                process.join(5)
                degraded = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                fallback = await client.request(
                    "plan", model="tiny", qos_percent=50.0
                )
                stats = await router.stats()
                return warm, degraded, fallback, stats
            finally:
                await router.stop()

        warm, degraded, fallback, stats = run(scenario())
        assert degraded["degraded"] == "shared-cache"
        assert degraded["cached"] is True
        assert degraded["digest"] == warm["digest"]
        assert fallback["degraded"] == "uniform-fallback"
        assert fallback["policy"] == "hold-uniform-baseline"
        assert fallback["model"] == "tiny"
        failovers = stats["router"]["failovers"]
        assert failovers["degraded_shared_cache"] >= 1
        assert failovers["degraded_uniform_fallback"] >= 1
        assert stats["router"]["evicted_workers"] == [0]

    def test_non_plan_ops_do_not_degrade_silently(self):
        """The degraded ladder is for plan/reprice only: telemetry
        against a dead fleet surfaces a typed error."""

        async def scenario():
            router = make_router(
                shards=1, max_respawns=0, health_timeout_s=30.0
            )
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                process = router._workers[0].process
                process.kill()
                process.join(5)
                with pytest.raises((ReproError, OverloadedError)):
                    await client.request(
                        "telemetry", model="tiny", qos_percent=30.0
                    )
            finally:
                await router.stop()

        run(scenario())

    def test_scheduled_worker_kill_is_transparent_to_the_client(self):
        """The chaos hook: a pinned WORKER_KILL SIGKILLs the owner on
        the first plan opportunity; the failover ladder still answers
        with the canonical digest."""

        async def scenario():
            router = make_router(
                max_respawns=2,
                health_timeout_s=30.0,
                fault_plan=FaultPlan(
                    seed=11,
                    scheduled=((FaultKind.WORKER_KILL, 0),),
                ),
            )
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                killed = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                clean = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                stats = await router.stats()
                return killed, clean, stats
            finally:
                await router.stop()

        killed, clean, stats = run(scenario())
        assert killed["digest"] == clean["digest"]
        failovers = stats["router"]["failovers"]
        assert failovers["chaos_kills"] == 1
        assert failovers["triggered"] >= 1


class TestRouterJournal:
    def test_journal_replays_into_a_restarted_router(self, tmp_path):
        """Crash-restart warmth: a second router over the same journal
        rebuilds the shared tier and serves the first router's plan
        bytes without a cold solve."""

        path = str(tmp_path / "serve.journal")

        async def first():
            router = make_router(journal_path=path)
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                return await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
            finally:
                await router.stop()

        async def second():
            router = make_router(journal_path=path)
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                result = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                stats = await router.stats()
                return result, stats
            finally:
                await router.stop()

        cold = run(first())
        assert cold.get("cached") is False
        warm, stats = run(second())
        assert warm["cached"] is True
        assert warm["digest"] == cold["digest"]
        journal = stats["router"]["journal"]
        assert journal["path"] == path
        assert journal["replay"]["replayed"] >= 1
        assert journal["replay"]["requests"] >= 1
        # The warm hit came from the rebuilt tier, not a re-solve.
        assert stats["router"]["shared_cache"]["replayed"] >= 1
        assert stats["router"]["shared_cache"]["misses"] == 0


class TestShardedLoadgen:
    def test_per_shard_sheds_reproduce_and_digests_match(self):
        """The sharded acceptance gates, driven end to end."""

        def one_run():
            summary = run_loadgen(
                LoadGenConfig(
                    requests=12,
                    qos_percents=(10.0, 30.0, 50.0),
                    burst=True,
                    seed=3,
                    serve=ServeConfig(
                        batch_window_s=0.001,
                        max_queue_depth=2,
                        rate_per_s=2.0,
                        burst=1.0,
                        admission_tick_s=0.05,
                    ),
                    shards=2,
                )
            )
            per_shard = {
                wid: (
                    worker["metrics"]["sheds_by_reason"],
                    worker["metrics"]["requests_total"],
                )
                for wid, worker in summary["server"]["workers"].items()
            }
            return summary, per_shard

        first, first_shards = one_run()
        second, second_shards = one_run()
        assert first["shards"] == 2
        assert first["ok"] + first["sheds"] == 12
        assert first["sheds"] > 0
        # Per-shard shed counts are a pure function of the seed.
        assert first_shards == second_shards
        assert first["sheds"] == second["sheds"]
        # Every served plan digested identically to a cold solve.
        assert first["digest_checks"] > 0
        assert first["cache_consistent"]
