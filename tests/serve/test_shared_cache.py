"""Cross-worker shared plan-cache tier: digest addressing, integrity."""

import json
import multiprocessing

import pytest

from repro.errors import ReproError
from repro.obs.registry import get_registry
from repro.serve.protocol import plan_digest
from repro.serve.service import PlanService
from repro.serve.shared_cache import (
    LocalSharedCache,
    ManagedSharedCache,
    managed_shared_cache,
    request_key,
    wire_key,
)


def make_payload(value: float = 1.0) -> dict:
    core = {"model": "tiny", "qos": {"percent": value}, "plan": [value]}
    core["digest"] = plan_digest(core)
    return core


KEY = (("model", "fp"), ("board", "fp"), ("space", "fp"), ("percent", 30.0))
OTHER = (("model", "fp"), ("board", "fp"), ("space", "fp"), ("percent", 50.0))


class TestWireKey:
    def test_deterministic(self):
        assert wire_key(KEY) == wire_key(KEY)

    def test_distinguishes_keys(self):
        assert wire_key(KEY) != wire_key(OTHER)

    def test_canonical_json(self):
        # The wire form must parse back to the nested-list shape.
        assert json.loads(wire_key(KEY))[3] == ["percent", 30.0]


class TestLocalSharedCache:
    def test_miss_then_publish_then_hit(self):
        tier = LocalSharedCache()
        assert tier.lookup(KEY) is None
        payload = make_payload()
        digest = tier.publish(KEY, payload)
        assert digest == payload["digest"]
        hit = tier.lookup(KEY)
        assert hit == payload
        assert hit is not payload  # fresh copy, safe to annotate

    def test_round_trip_is_byte_identical(self):
        """The exchanged bytes digest to the same address."""
        tier = LocalSharedCache()
        payload = make_payload()
        digest = tier.publish(KEY, payload)
        served = tier.lookup(KEY)
        assert (
            plan_digest({k: v for k, v in served.items() if k != "digest"})
            == digest
        )

    def test_first_publisher_wins(self):
        tier = LocalSharedCache()
        first = make_payload(1.0)
        tier.publish(KEY, first)
        tier.publish(KEY, make_payload(2.0))
        assert tier.lookup(KEY) == first

    def test_publish_rejects_mismatched_digest(self):
        tier = LocalSharedCache()
        payload = make_payload()
        payload["digest"] = "0" * 64
        with pytest.raises(ReproError):
            tier.publish(KEY, payload)

    def test_corrupt_payload_is_a_miss(self):
        tier = LocalSharedCache()
        payload = make_payload()
        digest = tier.publish(KEY, payload)
        # Tear the stored bytes behind the tier's back.
        tier._payloads[digest] = json.dumps(
            {**payload, "plan": [999.0]}, sort_keys=True
        )
        assert tier.lookup(KEY) is None
        stats = tier.stats()
        assert stats["corrupt"] == 1
        assert wire_key(KEY) not in tier._index  # entry dropped

    def test_capacity_rejects_not_evicts(self):
        tier = LocalSharedCache(capacity=1)
        tier.publish(KEY, make_payload(1.0))
        tier.publish(OTHER, make_payload(2.0))
        assert tier.lookup(KEY) is not None  # survivor
        assert tier.lookup(OTHER) is None
        assert tier.stats()["rejected"] == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            LocalSharedCache(capacity=0)

    def test_stats_counters(self):
        tier = LocalSharedCache()
        tier.lookup(KEY)
        tier.publish(KEY, make_payload())
        tier.lookup(KEY)
        stats = tier.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["publishes"] == 1
        assert stats["size"] == 1
        assert stats["payloads"] == 1


class TestRequestIndex:
    """The fingerprint-free degraded-serving index."""

    def test_request_key_collapses_qos_spellings(self):
        assert request_key("tiny", ("percent", 30)) == request_key(
            "tiny", ("percent", 30.0)
        )
        assert request_key("tiny", ("percent", 30.0)) != request_key(
            "tiny", ("percent", 50.0)
        )
        assert request_key("tiny", ("percent", 30.0)) != request_key(
            "mbv2", ("percent", 30.0)
        )

    def test_register_then_lookup_serves_the_payload(self):
        tier = LocalSharedCache()
        payload = make_payload()
        digest = tier.publish(KEY, payload)
        rk = request_key("tiny", ("percent", 30.0))
        assert tier.lookup_request(rk) is None  # miss before register
        tier.register_request(rk, digest)
        assert tier.lookup_request(rk) == payload
        stats = tier.stats()
        assert stats["requests"] == 1
        assert stats["request_hits"] == 1
        assert stats["request_misses"] == 1

    def test_first_registration_wins(self):
        tier = LocalSharedCache()
        first = make_payload(1.0)
        tier.publish(KEY, first)
        other = make_payload(2.0)
        tier.publish(OTHER, other)
        rk = request_key("tiny", ("percent", 30.0))
        tier.register_request(rk, first["digest"])
        tier.register_request(rk, other["digest"])  # ignored
        assert tier.lookup_request(rk) == first

    def test_corrupt_registered_payload_is_a_miss(self):
        """The degraded path never serves bytes that fail digest
        verification, even via the request index."""
        tier = LocalSharedCache()
        payload = make_payload()
        digest = tier.publish(KEY, payload)
        rk = request_key("tiny", ("percent", 30.0))
        tier.register_request(rk, digest)
        tier._payloads[digest] = json.dumps(
            {**payload, "plan": [999.0]}, sort_keys=True
        )
        assert tier.lookup_request(rk) is None
        assert rk not in tier._requests  # entry dropped


class TestCorruptionMetrics:
    """Torn shared-cache bytes must be *observable*, not just a miss."""

    def test_corrupt_drop_increments_the_obs_counter(self):
        registry = get_registry()
        before = registry.counter_value(
            "serve.shared_cache", event="corrupt"
        )
        tier = LocalSharedCache()
        payload = make_payload()
        digest = tier.publish(KEY, payload)
        # Flip one byte of the stored canonical JSON.
        raw = tier._payloads[digest]
        flip = raw.index('"plan"')
        tier._payloads[digest] = (
            raw[:flip] + '"plAn"' + raw[flip + len('"plan"'):]
        )
        assert tier.lookup(KEY) is None
        after = registry.counter_value(
            "serve.shared_cache", event="corrupt"
        )
        assert after == before + 1

    def test_capacity_rejection_increments_the_obs_counter(self):
        registry = get_registry()
        before = registry.counter_value(
            "serve.shared_cache", event="rejected"
        )
        tier = LocalSharedCache(capacity=1)
        tier.publish(KEY, make_payload(1.0))
        tier.publish(OTHER, make_payload(2.0))
        after = registry.counter_value(
            "serve.shared_cache", event="rejected"
        )
        assert after == before + 1


class TestManagedSharedCache:
    def test_managed_tier_behaves_like_local(self):
        with multiprocessing.get_context("spawn").Manager() as manager:
            tier = managed_shared_cache(manager, capacity=8)
            assert isinstance(tier, ManagedSharedCache)
            assert tier.lookup(KEY) is None
            payload = make_payload()
            digest = tier.publish(KEY, payload)
            assert tier.lookup(KEY) == payload
            stats = tier.stats()
            assert stats["hits"] == 1
            assert stats["misses"] == 1
            assert digest == payload["digest"]


class TestServiceIntegration:
    def test_two_services_exchange_plans_byte_identically(self):
        """Worker B's first request serves worker A's published bytes."""
        tier = LocalSharedCache()
        service_a = PlanService(shared_cache=tier)
        service_b = PlanService(shared_cache=tier)
        qos = ("percent", 30.0)
        fresh = service_a.plan("tiny", qos)
        assert fresh["cached"] is False
        assert tier.stats()["publishes"] == 1

        shared = service_b.plan("tiny", qos)
        assert shared["cached"] is True
        assert shared["digest"] == fresh["digest"]
        assert tier.stats()["hits"] == 1
        # And B promoted it into its local LRU: no second tier hit.
        again = service_b.plan("tiny", qos)
        assert again["digest"] == fresh["digest"]
        assert tier.stats()["hits"] == 1

    def test_shared_hit_digest_matches_cold_solve(self):
        tier = LocalSharedCache()
        service_a = PlanService(shared_cache=tier)
        service_b = PlanService(shared_cache=tier)
        qos = ("percent", 50.0)
        service_a.plan("tiny", qos)
        shared = service_b.plan("tiny", qos)
        cold = service_b.plan_cold("tiny", qos)
        assert shared["digest"] == cold["digest"]
