"""Admission control: bounded queue, token bucket, determinism."""

import pytest

from repro.errors import OverloadedError, ReproError
from repro.serve.admission import (
    AdmissionController,
    ArrivalClock,
    TokenBucket,
)


class TestArrivalClock:
    def test_fixed_tick(self):
        clock = ArrivalClock(tick_s=0.5)
        assert clock() == pytest.approx(0.5)
        assert clock() == pytest.approx(1.0)

    def test_negative_tick_rejected(self):
        with pytest.raises(ReproError):
            ArrivalClock(tick_s=-1.0)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = ArrivalClock(tick_s=0.0)
        bucket = TokenBucket(rate_per_s=1.0, burst=2, time_fn=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.tick_s = 1.0  # one token accrues per check now
        assert bucket.try_acquire()

    def test_retry_hint(self):
        bucket = TokenBucket(
            rate_per_s=4.0, burst=1, time_fn=ArrivalClock(tick_s=0.0)
        )
        # A full bucket needs no waiting; a drained one needs a whole
        # token's worth.
        assert bucket.retry_after_s == pytest.approx(0.0)
        assert bucket.try_acquire()
        assert bucket.retry_after_s == pytest.approx(0.25)

    def test_retry_hint_credits_fractional_tokens(self):
        # Regression: retry_after_s once quoted a flat 1/rate even when
        # most of the next token had already accrued.
        clock = ArrivalClock(tick_s=0.25)
        bucket = TokenBucket(rate_per_s=1.0, burst=1, time_fn=clock)
        assert bucket.try_acquire()  # drains the initial token
        assert not bucket.try_acquire()  # 0.25 tokens accrued: shed
        assert bucket.retry_after_s == pytest.approx(0.75)

    def test_construction_consumes_no_clock_tick(self):
        # Regression: __init__ used to read time_fn() once, so the n-th
        # admission check saw the (n+1)-th clock reading and every shed
        # decision shifted by one tick.
        clock = ArrivalClock(tick_s=0.5)
        bucket = TokenBucket(rate_per_s=1.0, burst=1, time_fn=clock)
        assert bucket.try_acquire()
        # The bucket's first check consumed exactly one reading: the
        # clock's next value is 2 ticks, not 3.
        assert clock() == pytest.approx(1.0)

    def test_first_check_anchors_clock_without_refill(self):
        # The first reading anchors elapsed time; it must not be
        # interpreted as elapsed seconds of token accrual.
        clock = ArrivalClock(tick_s=100.0)  # huge first reading
        bucket = TokenBucket(rate_per_s=1.0, burst=1, time_fn=clock)
        assert bucket.try_acquire()  # drains the only token
        # Had the first reading counted as elapsed accrual the bucket
        # would be full again; no time has passed since the anchor.
        clock.tick_s = 0.0
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ReproError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestAdmissionController:
    def test_queue_full_sheds(self):
        admission = AdmissionController(max_queue_depth=2)
        admission.admit()
        admission.admit()
        with pytest.raises(OverloadedError) as info:
            admission.admit()
        assert info.value.reason == "queue_full"
        assert admission.sheds["queue_full"] == 1

    def test_release_reopens(self):
        admission = AdmissionController(max_queue_depth=1)
        admission.admit()
        admission.release()
        assert admission.admit() == 1

    def test_unmatched_release_raises(self):
        with pytest.raises(ReproError):
            AdmissionController().release()

    def test_rate_limited_with_retry_hint(self):
        bucket = TokenBucket(
            rate_per_s=2.0, burst=1, time_fn=ArrivalClock(tick_s=0.0)
        )
        admission = AdmissionController(max_queue_depth=8, bucket=bucket)
        admission.admit()
        with pytest.raises(OverloadedError) as info:
            admission.admit()
        assert info.value.reason == "rate_limited"
        assert info.value.retry_after_s == pytest.approx(0.5)

    def test_shed_sequence_is_deterministic(self):
        """Same arrival sequence, same sheds -- the loadgen gate."""

        def run():
            bucket = TokenBucket(
                rate_per_s=2.0,
                burst=2,
                time_fn=ArrivalClock(tick_s=0.1),
            )
            admission = AdmissionController(
                max_queue_depth=3, bucket=bucket
            )
            outcomes = []
            for _ in range(10):
                try:
                    admission.admit()
                    outcomes.append("ok")
                except OverloadedError as err:
                    outcomes.append(err.reason)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert "rate_limited" in first or "queue_full" in first
