"""Admission control: bounded queue, token bucket, determinism."""

import pytest

from repro.errors import OverloadedError, ReproError
from repro.serve.admission import (
    AdmissionController,
    ArrivalClock,
    TokenBucket,
)


class TestArrivalClock:
    def test_fixed_tick(self):
        clock = ArrivalClock(tick_s=0.5)
        assert clock() == pytest.approx(0.5)
        assert clock() == pytest.approx(1.0)

    def test_negative_tick_rejected(self):
        with pytest.raises(ReproError):
            ArrivalClock(tick_s=-1.0)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = ArrivalClock(tick_s=0.0)
        bucket = TokenBucket(rate_per_s=1.0, burst=2, time_fn=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.tick_s = 1.0  # one token accrues per check now
        assert bucket.try_acquire()

    def test_retry_hint(self):
        bucket = TokenBucket(rate_per_s=4.0, burst=1)
        assert bucket.retry_after_s == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(rate_per_s=0.0, burst=1)
        with pytest.raises(ReproError):
            TokenBucket(rate_per_s=1.0, burst=0)


class TestAdmissionController:
    def test_queue_full_sheds(self):
        admission = AdmissionController(max_queue_depth=2)
        admission.admit()
        admission.admit()
        with pytest.raises(OverloadedError) as info:
            admission.admit()
        assert info.value.reason == "queue_full"
        assert admission.sheds["queue_full"] == 1

    def test_release_reopens(self):
        admission = AdmissionController(max_queue_depth=1)
        admission.admit()
        admission.release()
        assert admission.admit() == 1

    def test_unmatched_release_raises(self):
        with pytest.raises(ReproError):
            AdmissionController().release()

    def test_rate_limited_with_retry_hint(self):
        bucket = TokenBucket(
            rate_per_s=2.0, burst=1, time_fn=ArrivalClock(tick_s=0.0)
        )
        admission = AdmissionController(max_queue_depth=8, bucket=bucket)
        admission.admit()
        with pytest.raises(OverloadedError) as info:
            admission.admit()
        assert info.value.reason == "rate_limited"
        assert info.value.retry_after_s == pytest.approx(0.5)

    def test_shed_sequence_is_deterministic(self):
        """Same arrival sequence, same sheds -- the loadgen gate."""

        def run():
            bucket = TokenBucket(
                rate_per_s=2.0,
                burst=2,
                time_fn=ArrivalClock(tick_s=0.1),
            )
            admission = AdmissionController(
                max_queue_depth=3, bucket=bucket
            )
            outcomes = []
            for _ in range(10):
                try:
                    admission.admit()
                    outcomes.append("ok")
                except OverloadedError as err:
                    outcomes.append(err.reason)
            return outcomes

        first, second = run(), run()
        assert first == second
        assert "rate_limited" in first or "queue_full" in first
