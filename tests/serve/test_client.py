"""TCP client retry budget: bounded backoff, typed exhaustion."""

import asyncio
import socket

import pytest

from repro.errors import OverloadedError, ServeUnavailableError
from repro.serve.client import ServeClient
from repro.serve.server import PlanServer, ServeConfig


def run(coro):
    return asyncio.run(coro)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def make_server(**overrides) -> PlanServer:
    overrides.setdefault("batch_window_s", 0.001)
    return PlanServer(ServeConfig(**overrides))


class TestRetryBudget:
    def test_default_is_fail_fast(self):
        """retries=0 (the router's forwarding mode): one attempt, a
        typed unavailable error, no sleeping."""

        async def main():
            client = ServeClient("127.0.0.1", free_port())
            with pytest.raises(ServeUnavailableError) as info:
                await client.request("plan", model="tiny")
            await client.close()
            return info.value

        err = run(main())
        assert err.attempts == 1
        assert err.last_error

    def test_budget_exhaustion_counts_attempts(self):
        """retries=N makes N+1 attempts before the typed error."""

        async def main():
            client = ServeClient(
                "127.0.0.1", free_port(), retries=2, backoff_s=0.01
            )
            with pytest.raises(ServeUnavailableError) as info:
                await client.request("plan", model="tiny")
            await client.close()
            return info.value

        err = run(main())
        assert err.attempts == 3
        assert "refused" in err.last_error.lower() or err.last_error

    def test_retry_survives_a_server_restart(self):
        """A connection lost mid-session reconnects and re-sends; the
        answer from the replacement server is byte-identical."""

        async def main():
            port = free_port()
            server = make_server(port=port)
            await server.start()
            client = await ServeClient(
                "127.0.0.1", port, retries=3, backoff_s=0.01
            ).connect()
            first = await client.request(
                "plan", model="tiny", qos_percent=30.0
            )
            await server.stop()
            replacement = make_server(port=port)
            await replacement.start()
            try:
                second = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
            finally:
                await client.close()
                await replacement.stop()
            return first, second

        first, second = run(main())
        assert second["digest"] == first["digest"]

    def test_overload_shed_is_retried_after_the_hint(self):
        """A queue_full shed backs off by the server's retry_after_s
        hint and succeeds once the slot frees."""

        async def main():
            server = make_server(max_queue_depth=1)
            await server.start()
            server.admission.admit()  # fill the only slot
            client = await ServeClient(
                "127.0.0.1", server.port, retries=5, backoff_s=0.02
            ).connect()

            async def release():
                await asyncio.sleep(0.1)
                server.admission.release()

            releaser = asyncio.ensure_future(release())
            try:
                result = await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
            finally:
                await releaser
                await client.close()
                await server.stop()
            return result

        assert run(main())["digest"]

    def test_overload_without_budget_stays_typed(self):
        """retries=0 surfaces the shed itself -- callers doing their
        own failover need the reason and the hint, not a wrapper."""

        async def main():
            server = make_server(max_queue_depth=1)
            await server.start()
            server.admission.admit()
            client = await ServeClient(
                "127.0.0.1", server.port
            ).connect()
            with pytest.raises(OverloadedError) as info:
                await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
            server.admission.release()
            await client.close()
            await server.stop()
            return info.value

        err = run(main())
        assert err.reason == "queue_full"
        assert err.retry_after_s >= 0.0
