"""Plan cache: LRU behavior, counters, and key completeness."""

import pytest

from repro.errors import ReproError
from repro.mcu import make_nucleo_f767zi
from repro.serve.cache import PlanCache, plan_cache_key


def key(n, qos=30.0):
    return plan_cache_key(("m", n), ("b",), ("s",), ("percent", qos))


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(capacity=4)
        assert cache.get(key(1)) is None
        cache.put(key(1), {"plan": 1})
        assert cache.get(key(1)) == {"plan": 1}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(key(1), {"plan": 1})
        cache.put(key(2), {"plan": 2})
        cache.get(key(1))  # refresh 1 -> 2 is now LRU
        cache.put(key(3), {"plan": 3})
        assert cache.get(key(2)) is None
        assert cache.get(key(1)) is not None
        assert cache.evictions == 1

    def test_first_publish_wins(self):
        cache = PlanCache()
        first = cache.put(key(1), {"plan": "first"})
        second = cache.put(key(1), {"plan": "second"})
        assert first is second
        assert cache.get(key(1)) == {"plan": "first"}

    def test_capacity_validated(self):
        with pytest.raises(ReproError):
            PlanCache(capacity=0)

    def test_clear_keeps_counters(self):
        cache = PlanCache()
        cache.put(key(1), {})
        cache.get(key(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats(self):
        cache = PlanCache(capacity=8)
        cache.get(key(1))
        cache.put(key(1), {})
        cache.get(key(1))
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)


class TestKeyCompleteness:
    def test_board_fingerprint_distinguishes_power_params(self):
        """A power-model tweak must miss: plans are board-specific."""
        board_a = make_nucleo_f767zi()
        board_b = make_nucleo_f767zi(
            power_params=board_a.power_model.params.scaled(
                p_mcu_leakage_w=0.011
            )
        )
        cache = PlanCache()
        key_a = plan_cache_key(
            ("m",), board_a.fingerprint(), ("s",), ("percent", 30.0)
        )
        key_b = plan_cache_key(
            ("m",), board_b.fingerprint(), ("s",), ("percent", 30.0)
        )
        assert key_a != key_b
        cache.put(key_a, {"plan": "a"})
        assert cache.get(key_b) is None

    def test_qos_distinguishes(self):
        cache = PlanCache()
        cache.put(key(1, qos=30.0), {"plan": "a"})
        assert cache.get(key(1, qos=50.0)) is None
