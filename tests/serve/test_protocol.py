"""Wire protocol: framing, validation, typed errors, digests."""

import json

import pytest

from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    QoSInfeasibleError,
    ReproError,
    SolverError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorPayload,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_from_exception,
    exception_from_error,
    plan_digest,
)


class TestRequestRoundTrip:
    def test_round_trip(self):
        request = Request(
            op="plan",
            id="c1-7",
            params={"model": "tiny", "qos_percent": 30},
            deadline_s=0.5,
        )
        decoded = decode_request(encode_request(request))
        assert decoded == request

    def test_one_line(self):
        line = encode_request(
            Request(op="plan", id="x", params={"note": "a\nb"})
        )
        assert "\n" not in line

    def test_deadline_omitted(self):
        decoded = decode_request(
            encode_request(Request(op="stats", id="s-1"))
        )
        assert decoded.deadline_s is None


class TestRequestValidation:
    def test_unparseable_json(self):
        with pytest.raises(ProtocolError, match="unparseable"):
            decode_request("{nope")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_request("[1,2]")

    def test_wrong_version(self):
        line = json.dumps({"v": 999, "id": "a", "op": "plan"})
        with pytest.raises(ProtocolError, match="version"):
            decode_request(line)

    def test_unknown_op(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION, "id": "a", "op": "transmogrify"}
        )
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(line)

    def test_empty_id(self):
        line = json.dumps({"v": PROTOCOL_VERSION, "id": "", "op": "plan"})
        with pytest.raises(ProtocolError, match="id"):
            decode_request(line)

    def test_non_dict_params(self):
        line = json.dumps(
            {"v": PROTOCOL_VERSION, "id": "a", "op": "plan", "params": 3}
        )
        with pytest.raises(ProtocolError, match="params"):
            decode_request(line)

    def test_negative_deadline(self):
        line = json.dumps(
            {
                "v": PROTOCOL_VERSION,
                "id": "a",
                "op": "plan",
                "deadline_s": -1,
            }
        )
        with pytest.raises(ProtocolError, match="positive"):
            decode_request(line)


class TestResponseRoundTrip:
    def test_success(self):
        response = Response.success("r-1", {"digest": "abc"})
        decoded = decode_response(encode_response(response))
        assert decoded.ok
        assert decoded.result == {"digest": "abc"}

    def test_failure(self):
        response = Response.failure(
            "r-2", QoSInfeasibleError(qos_s=0.001, min_latency_s=0.002)
        )
        decoded = decode_response(encode_response(response))
        assert not decoded.ok
        assert decoded.error.kind == "qos_infeasible"
        assert decoded.error.detail["qos_s"] == pytest.approx(0.001)


class TestErrorMapping:
    def test_typed_kinds(self):
        cases = [
            (QoSInfeasibleError(qos_s=1.0, min_latency_s=2.0), "qos_infeasible"),
            (OverloadedError(reason="queue_full"), "overloaded"),
            (DeadlineExceededError(deadline_s=0.1), "deadline_exceeded"),
            (ProtocolError("bad"), "bad_request"),
            (SolverError("no"), "solver"),
            (ReproError("plain"), "repro_error"),
            (ValueError("python"), "internal"),
        ]
        for exc, kind in cases:
            assert error_from_exception(exc).kind == kind

    def test_overloaded_rehydrates(self):
        payload = error_from_exception(
            OverloadedError(reason="rate_limited", retry_after_s=0.25)
        )
        exc = exception_from_error(payload)
        assert isinstance(exc, OverloadedError)
        assert exc.reason == "rate_limited"
        assert exc.retry_after_s == pytest.approx(0.25)

    def test_qos_infeasible_rehydrates(self):
        payload = error_from_exception(
            QoSInfeasibleError(qos_s=0.5, min_latency_s=0.9)
        )
        exc = exception_from_error(payload)
        assert isinstance(exc, QoSInfeasibleError)
        assert exc.min_latency_s == pytest.approx(0.9)

    def test_unknown_kind_degrades(self):
        exc = exception_from_error(
            ErrorPayload(kind="martian", message="boom")
        )
        assert type(exc) is ReproError
        assert "martian" in str(exc)


class TestPlanDigest:
    def test_key_order_invariant(self):
        a = {"b": 1, "a": {"y": 2, "x": 3}}
        b = {"a": {"x": 3, "y": 2}, "b": 1}
        assert plan_digest(a) == plan_digest(b)

    def test_value_sensitivity(self):
        assert plan_digest({"a": 1}) != plan_digest({"a": 2})
