"""Reprice front-store keys must cover the board identity.

Regression for the stale-reprice bug: ``PlanService._store_fronts``
once keyed the front store by (model fingerprint, QoS) only, so a
server reconfigured onto a different board would ``reprice`` from
Pareto fronts priced against the *old* hardware -- silently wrong
plans.  The store is now keyed by the full plan-cache key (model +
board + space + QoS), mirroring :mod:`tests.pipeline.test_cache_keys`.
"""

import pytest

from repro.mcu.board import make_nucleo_f746zg, make_nucleo_f767zi
from repro.power.model import PowerModelParams
from repro.serve.service import PlanService

QOS = ("percent", 30.0)


def make_service(board_factory=make_nucleo_f767zi) -> PlanService:
    return PlanService(board_factory=board_factory, cache_enabled=False)


def hotter_board():
    return make_nucleo_f767zi(
        power_params=PowerModelParams().scaled(p_board_static_w=0.2)
    )


class TestFrontStoreKeyCoversBoard:
    def test_differing_boards_differing_front_keys(self):
        """The stored front key must change when only the board does."""
        service_a = make_service()
        service_b = make_service(hotter_board)
        service_a.plan("tiny", QOS)
        service_b.plan("tiny", QOS)
        (key_a,) = service_a._front_store.keys()
        (key_b,) = service_b._front_store.keys()
        assert key_a != key_b

    def test_sibling_board_differing_front_keys(self):
        service_a = make_service()
        service_b = make_service(make_nucleo_f746zg)
        service_a.plan("tiny", QOS)
        service_b.plan("tiny", QOS)
        (key_a,) = service_a._front_store.keys()
        (key_b,) = service_b._front_store.keys()
        assert key_a != key_b

    def test_identical_boards_share_front_key(self):
        service_a = make_service()
        service_b = make_service()
        service_a.plan("tiny", QOS)
        service_b.plan("tiny", QOS)
        assert list(service_a._front_store) == list(
            service_b._front_store
        )

    def test_plan_warms_fronts_for_reprice(self):
        """Same service, same board: reprice reuses the stored fronts."""
        service = make_service()
        service.plan("tiny", QOS)
        stored = dict(service._front_store)
        service.reprice("tiny", QOS, extra_power_w=0.01)
        # Repricing from warm fronts must not have recomputed them.
        assert dict(service._front_store) == stored


class TestRepriceAfterReconfigure:
    def test_reconfigured_service_never_reprices_stale_fronts(self):
        """The behavioral half of the regression.

        Plan on board A, reconfigure to board B, reprice: the answer
        must digest-match a reprice computed by a service that only
        ever saw board B -- not reuse fronts priced on A.
        """
        service = make_service()
        service.plan("tiny", QOS)
        service.reconfigure(hotter_board)
        repriced = service.reprice("tiny", QOS, extra_power_w=0.005)

        oracle = make_service(hotter_board)
        oracle.plan("tiny", QOS)
        expected = oracle.reprice("tiny", QOS, extra_power_w=0.005)
        assert repriced["digest"] == expected["digest"]

    def test_reconfigure_back_restores_old_fronts(self):
        """Keys cover the board, so old fronts survive a round trip."""
        service = make_service()
        service.plan("tiny", QOS)
        baseline = service.reprice("tiny", QOS, extra_power_w=0.005)
        (key_before,) = service._front_store.keys()

        service.reconfigure(hotter_board)
        service.plan("tiny", QOS)
        assert len(service._front_store) == 2  # old entry not clobbered

        service.reconfigure(make_nucleo_f767zi)
        assert key_before in service._front_store
        again = service.reprice("tiny", QOS, extra_power_w=0.005)
        assert again["digest"] == baseline["digest"]


class TestQoSStillSeparated:
    def test_differing_qos_differing_front_keys(self):
        service = make_service()
        service.plan("tiny", ("percent", 30.0))
        service.plan("tiny", ("percent", 50.0))
        assert len(service._front_store) == 2
