"""PlanServer endpoints, overload behavior, TCP transport, drain."""

import asyncio

import pytest

from repro.errors import OverloadedError, QoSInfeasibleError
from repro.serve import (
    InProcessClient,
    PlanServer,
    ServeClient,
    ServeConfig,
)

def run(coro):
    return asyncio.run(coro)


def make_server(**overrides):
    defaults = dict(workers=2, batch_window_s=0.001)
    defaults.update(overrides)
    return PlanServer(ServeConfig(**defaults))


class TestPlanEndpoint:
    def test_plan_and_cache_hit_share_digest(self):
        async def main():
            server = make_server()
            client = InProcessClient(server)
            first = await client.request(
                "plan", model="tiny", qos_percent=30
            )
            second = await client.request(
                "plan", model="tiny", qos_percent=30
            )
            stats = await client.request("stats")
            await server.stop()
            return first, second, stats

        first, second, stats = run(main())
        assert not first["cached"]
        assert second["cached"]
        assert first["digest"] == second["digest"]
        assert first["plan"]["layers"]
        assert stats["cache"]["hits"] == 1

    def test_no_cache_param_recomputes(self):
        async def main():
            server = make_server()
            client = InProcessClient(server)
            first = await client.request(
                "plan", model="tiny", qos_percent=30
            )
            fresh = await client.request(
                "plan", model="tiny", qos_percent=30, no_cache=True
            )
            await server.stop()
            return first, fresh

        first, fresh = run(main())
        assert not fresh["cached"]
        assert fresh["digest"] == first["digest"]

    def test_concurrent_same_key_coalesce(self):
        async def main():
            server = make_server(batch_window_s=0.02)
            client = InProcessClient(server)
            results = await asyncio.gather(
                *(
                    client.request("plan", model="tiny", qos_percent=40)
                    for _ in range(8)
                )
            )
            stats = await client.request("stats")
            await server.stop()
            return results, stats

        results, stats = run(main())
        assert len({r["digest"] for r in results}) == 1
        metrics = stats["metrics"]
        assert metrics["batches"] >= 1
        assert metrics["coalesce_ratio"] > 1.0

    def test_stateless_digest_matches_warm(self):
        async def main():
            warm = make_server()
            cold = make_server(stateless=True)
            warm_result = await InProcessClient(warm).request(
                "plan", model="tiny", qos_percent=30
            )
            cold_result = await InProcessClient(cold).request(
                "plan", model="tiny", qos_percent=30
            )
            await warm.stop()
            await cold.stop()
            return warm_result, cold_result

        warm_result, cold_result = run(main())
        assert warm_result["digest"] == cold_result["digest"]


class TestErrorsAndValidation:
    def test_unknown_model_is_bad_request(self):
        async def main():
            server = make_server()
            response = await server.handle_request_dict(
                {
                    "v": 1,
                    "id": "r1",
                    "op": "plan",
                    "params": {"model": "resnet152", "qos_percent": 30},
                }
            )
            await server.stop()
            return response

        response = run(main())
        assert not response["ok"]
        assert response["error"]["kind"] == "bad_request"

    def test_infeasible_qos_is_typed(self):
        async def main():
            server = make_server()
            client = InProcessClient(server)
            try:
                with pytest.raises(QoSInfeasibleError) as info:
                    await client.request(
                        "plan", model="tiny", qos_ms=0.001
                    )
                return info.value
            finally:
                await server.stop()

        exc = run(main())
        assert exc.min_latency_s > exc.qos_s

    def test_malformed_line_answers_bad_request(self):
        async def main():
            server = make_server()
            line = await server.handle_line("{not json")
            await server.stop()
            return line

        assert '"bad_request"' in run(main())

    def test_both_qos_forms_rejected(self):
        async def main():
            server = make_server()
            response = await server.handle_request_dict(
                {
                    "v": 1,
                    "id": "r1",
                    "op": "plan",
                    "params": {
                        "model": "tiny",
                        "qos_percent": 30,
                        "qos_ms": 5,
                    },
                }
            )
            await server.stop()
            return response

        assert run(main())["error"]["kind"] == "bad_request"


class TestOtherEndpoints:
    def test_reprice_telemetry_health(self):
        async def main():
            server = make_server()
            client = InProcessClient(server)
            await client.request("plan", model="tiny", qos_percent=30)
            repriced = await client.request(
                "reprice",
                model="tiny",
                qos_percent=30,
                extra_power_w=0.01,
            )
            telemetry = await client.request(
                "telemetry",
                model="tiny",
                predicted_energy_j=1.0,
                measured_energy_j=1.05,
            )
            health = await client.request("health")
            await server.stop()
            return repriced, telemetry, health

        repriced, telemetry, health = run(main())
        assert repriced["drift"]["extra_power_w"] == pytest.approx(0.01)
        assert telemetry["samples"] == 1
        assert health["ok"]
        assert len(health["checks"]) == 3  # the quick selftest subset


class TestOverload:
    def test_burst_sheds_deterministically(self):
        async def burst():
            server = make_server(max_queue_depth=2)
            client = InProcessClient(server)
            results = await asyncio.gather(
                *(
                    client.request("plan", model="tiny", qos_percent=30)
                    for _ in range(8)
                ),
                return_exceptions=True,
            )
            stats = await client.request("stats")
            await server.stop()
            sheds = sum(
                1 for r in results if isinstance(r, OverloadedError)
            )
            return sheds, stats["metrics"]["sheds_by_reason"]

        sheds_a, reasons_a = run(burst())
        sheds_b, reasons_b = run(burst())
        assert sheds_a == sheds_b == 6
        assert reasons_a == reasons_b == {"queue_full": 6}

    def test_draining_server_sheds(self):
        async def main():
            server = make_server()
            server._draining = True
            response = await server.handle_request_dict(
                {
                    "v": 1,
                    "id": "r1",
                    "op": "plan",
                    "params": {"model": "tiny", "qos_percent": 30},
                }
            )
            server._draining = False
            await server.stop()
            return response

        response = run(main())
        assert not response["ok"]
        assert response["error"]["kind"] == "overloaded"
        assert response["error"]["detail"]["reason"] == "draining"

    def test_stats_bypasses_admission(self):
        async def main():
            server = make_server(max_queue_depth=1)
            server.admission.admit()  # fill the only slot
            client = InProcessClient(server)
            stats = await client.request("stats")
            server.admission.release()
            await server.stop()
            return stats

        assert run(main())["admission"]["depth"] == 1


class TestTCP:
    def test_tcp_round_trip_and_drain(self):
        async def main():
            server = make_server()
            await server.start()
            client = await ServeClient("127.0.0.1", server.port).connect()
            result = await client.request(
                "plan", model="tiny", qos_percent=30
            )
            health = await client.request("health")
            await client.close()
            await server.stop()
            return result, health

        result, health = run(main())
        assert result["digest"]
        assert health["ok"]

    def test_tcp_concurrent_clients(self):
        async def main():
            server = make_server(batch_window_s=0.02)
            await server.start()
            clients = [
                await ServeClient(
                    "127.0.0.1", server.port, client_id=f"c{i}"
                ).connect()
                for i in range(3)
            ]
            results = await asyncio.gather(
                *(
                    c.request("plan", model="tiny", qos_percent=50)
                    for c in clients
                )
            )
            for c in clients:
                await c.close()
            await server.stop()
            return results

        results = run(main())
        assert len({r["digest"] for r in results}) == 1

    def test_stop_without_start_is_clean(self):
        async def main():
            server = make_server()
            await server.stop()

        run(main())
