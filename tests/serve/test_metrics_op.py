"""The ``metrics`` protocol op: per-worker registries and the merged
fleet view.

The class spawning real worker processes uses a single router scenario
to keep spawn cost down; the acceptance pin lives in
``test_merged_registry_is_the_exact_sum_of_worker_registries``.
"""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.obs.prom import lint_exposition
from repro.obs.registry import snapshot_digest
from repro.serve.client import InProcessClient
from repro.serve.router import RouterConfig, ShardRouter
from repro.serve.server import PlanServer, ServeConfig

MIXED = [
    ("tiny", 30.0),
    ("tiny", 50.0),
    ("tiny", 30.0),
    ("tiny", 10.0),
    ("tiny", 50.0),
]


def run(coro):
    return asyncio.run(coro)


def counter_cells(snapshot):
    """Flatten a snapshot's counters to {(family, label): value}."""
    return {
        (family, label): value
        for family, cells in snapshot.get("counters", {}).items()
        for label, value in cells.items()
    }


def bucket_cells(snapshot):
    """Flatten histogram buckets to {(family, label, le): count}."""
    return {
        (family, label, bucket["le"]): bucket["count"]
        for family, cells in snapshot.get("histograms", {}).items()
        for label, summary in cells.items()
        for bucket in summary["buckets"]
    }


class TestServerMetricsOp:
    @pytest.fixture(autouse=True)
    def fresh_registry(self):
        """The in-process server publishes into the process-wide
        registry; isolate it from residue left by earlier tests."""
        from repro.obs.registry import MetricsRegistry, set_registry

        original = set_registry(MetricsRegistry())
        yield
        set_registry(original)

    def test_payload_has_registry_and_matching_digest(self):
        async def scenario():
            server = PlanServer(
                ServeConfig(batch_window_s=0.001, worker_id=7)
            )
            client = InProcessClient(server, client_id="m")
            try:
                await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                return await client.request("metrics")
            finally:
                await server.stop()

        payload = run(scenario())
        assert payload["worker_id"] == 7
        registry = payload["registry"]
        assert registry["counters"]["serve.requests"]["op=plan"] == 1
        assert payload["digest"] == snapshot_digest(registry)
        assert "exposition" not in payload  # json is the default

    def test_prom_format_adds_lint_clean_exposition(self):
        async def scenario():
            server = PlanServer(ServeConfig(batch_window_s=0.001))
            client = InProcessClient(server, client_id="m")
            try:
                await client.request(
                    "plan", model="tiny", qos_percent=30.0
                )
                return await client.request(
                    "metrics", format="prom"
                )
            finally:
                await server.stop()

        payload = run(scenario())
        assert payload["exposition"].startswith("# HELP ")
        assert lint_exposition(payload["exposition"]) == []

    def test_bad_format_raises_protocol_error(self):
        async def scenario():
            server = PlanServer(ServeConfig(batch_window_s=0.001))
            client = InProcessClient(server, client_id="m")
            try:
                await client.request("metrics", format="xml")
            finally:
                await server.stop()

        with pytest.raises(ProtocolError):
            run(scenario())


class TestRouterMetricsOp:
    """One spawned 2-worker router exercises the whole fleet view."""

    def test_merged_registry_is_the_exact_sum_of_worker_registries(
        self,
    ):
        async def scenario():
            router = ShardRouter(
                RouterConfig(
                    shards=2,
                    serve=ServeConfig(batch_window_s=0.001),
                )
            )
            await router.start()
            try:
                client = InProcessClient(router, client_id="t")
                await asyncio.gather(
                    *(
                        client.request(
                            "plan", model=model, qos_percent=qos
                        )
                        for model, qos in MIXED
                    )
                )
                metrics = await client.request("metrics")
                prom = await client.request(
                    "metrics", format="prom"
                )
                stats = await router.stats()
                return metrics, prom, stats
            finally:
                await router.stop()

        metrics, prom, stats = run(scenario())

        # The fleet payload: merged view, no single worker identity,
        # per-worker digests for auditability.
        assert metrics["worker_id"] is None
        assert set(metrics["workers"]) == {"0", "1"}
        assert metrics["digest"] == snapshot_digest(
            metrics["registry"]
        )
        assert (
            metrics["registry"]["counters"]["serve.requests"][
                "op=plan"
            ]
            >= len(MIXED)
        )

        # THE ACCEPTANCE PIN: every merged counter cell and every
        # histogram bucket equals the exact sum over the per-worker
        # registries returned in the same stats response -- nothing
        # lost, nothing invented, no float drift.
        worker_snaps = [
            w["registry"] for w in stats["workers"].values()
        ]
        assert len(worker_snaps) == 2
        merged_counters = counter_cells(stats["registry"])
        assert merged_counters  # the burst produced traffic
        summed: dict = {}
        for snap in worker_snaps:
            for cell, value in counter_cells(snap).items():
                summed[cell] = summed.get(cell, 0.0) + value
        assert merged_counters == summed

        merged_buckets = bucket_cells(stats["registry"])
        expected_buckets: dict = {}
        for snap in worker_snaps:
            for cell, count in bucket_cells(snap).items():
                expected_buckets[cell] = (
                    expected_buckets.get(cell, 0) + count
                )
        assert merged_buckets == expected_buckets

        # Histogram totals stay exact too, not just the buckets.
        for family, cells in stats["registry"][
            "histograms"
        ].items():
            for label, summary in cells.items():
                per_worker = [
                    snap["histograms"].get(family, {}).get(label)
                    for snap in worker_snaps
                ]
                per_worker = [s for s in per_worker if s]
                assert summary["count"] == sum(
                    s["count"] for s in per_worker
                )
                assert summary["sum_s"] == sum(
                    s["sum_s"] for s in per_worker
                )

        # Legacy totals are derived from the same merged registry.
        assert stats["metrics"]["requests_total"] == sum(
            cells.get("op=plan", 0)
            + cells.get("op=stats", 0)
            + cells.get("op=metrics", 0)
            + cells.get("op=health", 0)
            + cells.get("op=reprice", 0)
            + cells.get("op=telemetry", 0)
            for cells in [
                stats["registry"]["counters"]["serve.requests"]
            ]
        )

        # And the fleet exposition is valid Prometheus text.
        assert lint_exposition(prom["exposition"]) == []
