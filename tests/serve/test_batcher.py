"""Micro-batcher: coalescing, deadlines, error fan-out."""

import asyncio
import threading

import pytest

from repro.errors import DeadlineExceededError, ReproError, SolverError
from repro.serve.batcher import PlanBatcher
from repro.serve.metrics import ServeMetrics


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_same_key_runs_once(self):
        calls = []
        lock = threading.Lock()

        def work():
            with lock:
                calls.append(1)
            return "plan"

        async def main():
            metrics = ServeMetrics()
            batcher = PlanBatcher(metrics=metrics, window_s=0.01)
            results = await asyncio.gather(
                *(batcher.submit(("k",), work) for _ in range(8))
            )
            batcher.shutdown()
            return results, metrics

        results, metrics = run(main())
        assert results == ["plan"] * 8
        assert len(calls) == 1
        assert metrics.batches == 1
        assert metrics.batched_requests == 8

    def test_distinct_keys_run_separately(self):
        seen = []
        lock = threading.Lock()

        def work(tag):
            with lock:
                seen.append(tag)
            return tag

        async def main():
            batcher = PlanBatcher(window_s=0.005)
            results = await asyncio.gather(
                batcher.submit(("a",), lambda: work("a")),
                batcher.submit(("b",), lambda: work("b")),
            )
            batcher.shutdown()
            return results

        assert sorted(run(main())) == ["a", "b"]
        assert sorted(seen) == ["a", "b"]

    def test_max_batch_dispatches_early(self):
        async def main():
            batcher = PlanBatcher(window_s=10.0, max_batch=2)
            results = await asyncio.gather(
                batcher.submit(("k",), lambda: 42),
                batcher.submit(("k",), lambda: 42),
            )
            batcher.shutdown()
            return results

        # A 10 s window would time the test out; max_batch must cut it.
        assert asyncio.run(asyncio.wait_for(main(), timeout=5.0)) == [42, 42]

    def test_sequential_requests_get_fresh_batches(self):
        calls = []

        async def main():
            batcher = PlanBatcher(window_s=0.0)
            first = await batcher.submit(("k",), lambda: calls.append(1))
            second = await batcher.submit(("k",), lambda: calls.append(1))
            batcher.shutdown()
            return first, second

        run(main())
        assert len(calls) == 2


class TestCloseAtDispatch:
    def test_late_arrival_cannot_join_dispatched_batch(self):
        """Regression: a batch closes the moment it dispatches.

        A request arriving while a ``max_batch``-bounded batch is
        already running used to join it silently -- growing a
        "bounded" batch past its bound after its size had been read
        into the metrics.  It must open a fresh batch instead.
        """
        release = threading.Event()
        calls = []
        lock = threading.Lock()

        def work():
            with lock:
                calls.append(1)
                execution = len(calls)
            release.wait(timeout=5.0)
            return execution

        async def main():
            metrics = ServeMetrics()
            batcher = PlanBatcher(
                metrics=metrics, window_s=0.005, max_batch=2
            )
            first = asyncio.ensure_future(batcher.submit(("k",), work))
            second = asyncio.ensure_future(batcher.submit(("k",), work))
            # Wait until the pair has dispatched and is running.
            while not calls:
                await asyncio.sleep(0.001)
            third = asyncio.ensure_future(batcher.submit(("k",), work))
            await asyncio.sleep(0.02)
            release.set()
            results = await asyncio.gather(first, second, third)
            batcher.shutdown()
            return results, metrics

        results, metrics = run(main())
        # The pair shared execution #1; the late arrival got its own.
        assert results[0] == results[1] == 1
        assert results[2] == 2
        assert len(calls) == 2
        # Accounting is exact: two batches, every waiter counted.
        assert metrics.batches == 2
        assert metrics.batched_requests == 3

    def test_max_batch_size_is_recorded_exactly(self):
        async def main():
            metrics = ServeMetrics()
            batcher = PlanBatcher(
                metrics=metrics, window_s=10.0, max_batch=3
            )
            results = await asyncio.gather(
                *(batcher.submit(("k",), lambda: "p") for _ in range(3))
            )
            batcher.shutdown()
            return results, metrics

        results, metrics = run(main())
        assert results == ["p"] * 3
        assert metrics.batches == 1
        assert metrics.batched_requests == 3


class TestDeadlines:
    def test_deadline_exceeded_is_typed(self):
        release = threading.Event()

        def slow():
            release.wait(timeout=5.0)
            return "late"

        async def main():
            batcher = PlanBatcher(window_s=0.0)
            try:
                with pytest.raises(DeadlineExceededError):
                    await batcher.submit(("k",), slow, deadline_s=0.05)
            finally:
                release.set()
            batcher.shutdown()

        run(main())

    def test_one_timeout_does_not_cancel_other_waiters(self):
        release = threading.Event()

        def slow():
            release.wait(timeout=5.0)
            return "answer"

        async def main():
            batcher = PlanBatcher(window_s=0.0)
            patient = asyncio.ensure_future(
                batcher.submit(("k",), slow)
            )
            with pytest.raises(DeadlineExceededError):
                await batcher.submit(("k",), slow, deadline_s=0.05)
            release.set()
            result = await patient
            batcher.shutdown()
            return result

        assert run(main()) == "answer"


class TestErrors:
    def test_error_fans_out_to_every_waiter(self):
        def boom():
            raise SolverError("no solution")

        async def main():
            batcher = PlanBatcher(window_s=0.01)
            results = await asyncio.gather(
                *(batcher.submit(("k",), boom) for _ in range(4)),
                return_exceptions=True,
            )
            batcher.shutdown()
            return results

        results = run(main())
        assert len(results) == 4
        assert all(isinstance(r, SolverError) for r in results)

    def test_disabled_mode_still_works(self):
        calls = []
        lock = threading.Lock()

        def work():
            with lock:
                calls.append(1)
            return "x"

        async def main():
            batcher = PlanBatcher(enabled=False)
            results = await asyncio.gather(
                *(batcher.submit(("k",), work) for _ in range(4))
            )
            batcher.shutdown()
            return results

        assert run(main()) == ["x"] * 4
        assert len(calls) == 4  # no coalescing when disabled

    def test_config_validation(self):
        with pytest.raises(ReproError):
            PlanBatcher(window_s=-1.0)
        with pytest.raises(ReproError):
            PlanBatcher(max_batch=0)
        with pytest.raises(ReproError):
            PlanBatcher(max_workers=0)
