"""Serve metrics: histograms, counters, telemetry aggregation."""

import pytest

from repro.serve.metrics import LatencyHistogram, ServeMetrics


class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.percentile_s(50) == 0.0
        assert histogram.to_dict()["count"] == 0

    def test_percentiles_bracket_observations(self):
        histogram = LatencyHistogram()
        for _ in range(90):
            histogram.record(0.001)
        for _ in range(10):
            histogram.record(0.1)
        p50 = histogram.percentile_s(50)
        p99 = histogram.percentile_s(99)
        # Bucket upper bounds: within one bucket ratio of the truth.
        assert 0.001 <= p50 <= 0.00134
        assert 0.1 <= p99 <= 0.134
        assert p50 < p99

    def test_summary_stats(self):
        histogram = LatencyHistogram()
        histogram.record(0.002)
        histogram.record(0.004)
        data = histogram.to_dict()
        assert data["count"] == 2
        assert data["mean_s"] == pytest.approx(0.003)
        assert data["min_s"] == pytest.approx(0.002)
        assert data["max_s"] == pytest.approx(0.004)

    def test_out_of_range_observation(self):
        histogram = LatencyHistogram()
        histogram.record(1e9)  # beyond the last bound
        assert histogram.percentile_s(99) == pytest.approx(1e9)


class TestServeMetrics:
    def test_request_and_error_counters(self):
        metrics = ServeMetrics()
        metrics.record_request("plan", 0.01)
        metrics.record_request("plan", 0.02)
        metrics.record_request("stats", 0.001)
        metrics.record_error("qos_infeasible")
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 3
        assert snapshot["requests_by_op"]["plan"] == 2
        assert snapshot["errors_by_kind"]["qos_infeasible"] == 1
        assert snapshot["latency_by_op"]["plan"]["count"] == 2

    def test_shed_counters(self):
        metrics = ServeMetrics()
        metrics.record_shed("queue_full")
        metrics.record_shed("queue_full")
        metrics.record_shed("rate_limited")
        assert metrics.shed_count == 3
        assert metrics.snapshot()["sheds_by_reason"]["queue_full"] == 2

    def test_queue_depth_peak(self):
        metrics = ServeMetrics()
        metrics.record_queue_depth(3)
        metrics.record_queue_depth(1)
        snapshot = metrics.snapshot()
        assert snapshot["queue_depth"] == 1
        assert snapshot["queue_depth_peak"] == 3

    def test_coalesce_ratio(self):
        metrics = ServeMetrics()
        metrics.record_batch(8)
        metrics.record_batch(2)
        assert metrics.snapshot()["coalesce_ratio"] == pytest.approx(5.0)

    def test_telemetry_drift(self):
        metrics = ServeMetrics()
        metrics.record_telemetry("tiny", predicted_j=1.0, measured_j=1.1)
        aggregate = metrics.record_telemetry(
            "tiny", predicted_j=1.0, measured_j=0.9
        )
        assert aggregate["samples"] == 2
        assert aggregate["mean_drift"] == pytest.approx(0.0, abs=1e-12)
        assert aggregate["max_abs_drift"] == pytest.approx(0.1)
