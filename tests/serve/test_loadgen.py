"""Load generator: seeded schedules, deterministic overload, digests."""

import pytest

from repro.errors import ReproError
from repro.serve import LoadGenConfig, run_loadgen
from repro.serve.loadgen import request_schedule
from repro.serve.server import ServeConfig


class TestSchedule:
    def test_same_seed_same_schedule(self):
        config = LoadGenConfig(requests=32, seed=7)
        assert request_schedule(config) == request_schedule(config)

    def test_different_seed_different_schedule(self):
        a = request_schedule(LoadGenConfig(requests=32, seed=0))
        b = request_schedule(LoadGenConfig(requests=32, seed=1))
        assert a != b

    def test_draws_only_configured_qos(self):
        config = LoadGenConfig(requests=64, qos_percents=(20.0, 40.0))
        assert {qos for _, qos in request_schedule(config)} <= {20.0, 40.0}

    def test_single_model_traffic_uses_model(self):
        config = LoadGenConfig(requests=16, model="mbv2")
        assert {model for model, _ in request_schedule(config)} == {"mbv2"}

    def test_mixed_traffic_draws_from_pool(self):
        config = LoadGenConfig(requests=64, models=("tiny", "mbv2"))
        assert {model for model, _ in request_schedule(config)} == {
            "tiny",
            "mbv2",
        }

    def test_validation(self):
        with pytest.raises(ReproError):
            LoadGenConfig(requests=0)
        with pytest.raises(ReproError):
            LoadGenConfig(concurrency=0)
        with pytest.raises(ReproError):
            LoadGenConfig(qos_percents=())
        with pytest.raises(ReproError):
            LoadGenConfig(clients=0)
        with pytest.raises(ReproError):
            LoadGenConfig(open_loop=True, arrival_rate_rps=0.0)
        with pytest.raises(ReproError):
            LoadGenConfig(burst=True, open_loop=True)


class TestClosedLoop:
    def test_no_sheds_and_consistent_digests(self):
        summary = run_loadgen(
            LoadGenConfig(
                requests=12,
                concurrency=4,
                qos_percents=(30.0, 50.0),
                serve=ServeConfig(workers=2, batch_window_s=0.001),
            )
        )
        assert summary["ok"] == 12
        assert summary["sheds"] == 0
        assert summary["errors_by_kind"] == {}
        assert summary["cache_consistent"]
        assert summary["digest_checks"] == 2
        assert summary["cached_responses"] > 0
        assert summary["latency"]["count"] == 12

    def test_server_stats_in_summary(self):
        summary = run_loadgen(
            LoadGenConfig(
                requests=4,
                concurrency=2,
                qos_percents=(30.0,),
                verify_digests=False,
                serve=ServeConfig(workers=2, batch_window_s=0.001),
            )
        )
        assert summary["digest_checks"] == 0
        assert summary["server"]["metrics"]["requests_by_op"]["plan"] == 4


class TestBurstOverload:
    def test_shed_counts_reproduce(self):
        def one_run():
            summary = run_loadgen(
                LoadGenConfig(
                    requests=16,
                    qos_percents=(30.0,),
                    burst=True,
                    seed=3,
                    verify_digests=False,
                    serve=ServeConfig(
                        workers=2,
                        batch_window_s=0.001,
                        max_queue_depth=2,
                        rate_per_s=2.0,
                        burst=1.0,
                        admission_tick_s=0.05,
                    ),
                )
            )
            return (
                summary["ok"],
                summary["sheds"],
                summary["server"]["metrics"]["sheds_by_reason"],
            )

        first, second = one_run(), one_run()
        assert first == second
        ok, sheds, _reasons = first
        assert sheds > 0
        assert ok + sheds == 16  # every request accounted for


class TestOpenLoop:
    def test_open_loop_multi_client_with_slo_gate(self):
        summary = run_loadgen(
            LoadGenConfig(
                requests=8,
                clients=2,
                open_loop=True,
                arrival_rate_rps=500.0,
                qos_percents=(30.0,),
                slo_p95_ms=60_000.0,  # generous: gate plumbing, not speed
                verify_digests=False,
                serve=ServeConfig(workers=2, batch_window_s=0.001),
            )
        )
        assert summary["ok"] == 8
        assert summary["open_loop"] is True
        assert summary["clients"] == 2
        assert summary["slo"]["p95"]["met"] is True
        assert summary["slo_met"] is True

    def test_unattainable_slo_fails_gate(self):
        summary = run_loadgen(
            LoadGenConfig(
                requests=4,
                open_loop=True,
                arrival_rate_rps=500.0,
                qos_percents=(30.0,),
                slo_p99_ms=0.0,  # nothing completes in zero time
                verify_digests=False,
                serve=ServeConfig(workers=2, batch_window_s=0.001),
            )
        )
        assert summary["ok"] == 4
        assert summary["slo"]["p99"]["met"] is False
        assert summary["slo_met"] is False
