"""Switch-cost model: the cheap-mux / expensive-relock asymmetry."""

import pytest

from repro.clock import SwitchCostModel, lfo_config, pll_config
from repro.clock.pll import PLL_LOCK_TIME_S
from repro.units import MHZ, us


@pytest.fixture
def model():
    return SwitchCostModel()


@pytest.fixture
def hfo():
    return pll_config(50 * MHZ, 25, 216)


@pytest.fixture
def hfo_other():
    return pll_config(50 * MHZ, 25, 150)


class TestSwitchCosts:
    def test_noop_switch_is_free(self, model, hfo):
        cost = model.cost(hfo, hfo)
        assert cost.latency_s == 0.0
        assert not cost.reprogrammed_pll

    def test_pll_to_hse_is_mux_only(self, model, hfo):
        # Sec. II-A: switching from PLL to HSE is almost instant.
        cost = model.cost(hfo, lfo_config())
        assert cost.latency_s == pytest.approx(model.mux_switch_s)
        assert not cost.reprogrammed_pll

    def test_hse_to_unprepared_pll_pays_relock(self, model, hfo):
        cost = model.cost(lfo_config(), hfo, retained_pll=None)
        assert cost.reprogrammed_pll
        assert cost.latency_s == pytest.approx(
            model.pll_relock_s + model.mux_switch_s
        )

    def test_hse_to_prepared_pll_is_mux_only(self, model, hfo):
        # The LFO/HFO bounce of Sec. III-B: the PLL stayed programmed.
        retained = (hfo.pll, hfo.hse_hz)
        cost = model.cost(lfo_config(), hfo, retained_pll=retained)
        assert not cost.reprogrammed_pll
        assert cost.latency_s == pytest.approx(model.mux_switch_s)

    def test_pll_frequency_change_pays_relock(self, model, hfo, hfo_other):
        cost = model.cost(hfo, hfo_other)
        assert cost.reprogrammed_pll
        assert cost.latency_s >= model.pll_relock_s

    def test_relock_matches_paper_200us(self, model):
        # Sec. II-A measures roughly 200 us per PLL reconfiguration.
        assert model.pll_relock_s == pytest.approx(us(200))
        assert PLL_LOCK_TIME_S == pytest.approx(us(200))

    def test_relock_dwarfs_mux(self, model):
        assert model.pll_relock_s > 50 * model.mux_switch_s

    def test_negative_latency_rejected(self):
        from repro.clock.switching import SwitchCost
        from repro.errors import ClockSwitchError

        with pytest.raises(ClockSwitchError):
            SwitchCost(latency_s=-1e-6, reprogrammed_pll=False)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        from repro.clock import RetryPolicy

        policy = RetryPolicy(backoff_base_s=us(50), backoff_factor=2.0)
        assert policy.backoff_s(0) == pytest.approx(us(50))
        assert policy.backoff_s(1) == pytest.approx(us(100))
        assert policy.backoff_s(3) == pytest.approx(us(400))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base_s": -1e-6},
            {"backoff_factor": 0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        from repro.clock import RetryPolicy
        from repro.errors import ClockSwitchError

        with pytest.raises(ClockSwitchError):
            RetryPolicy(**kwargs)


class TestSwitchCostProperties:
    def test_relock_only_when_target_pll_differs(self, model, hfo, hfo_other):
        # Every transition NOT landing on a differently-programmed PLL
        # must be a cheap mux move.
        retained = (hfo.pll, hfo.hse_hz)
        for current, target in [
            (hfo, lfo_config()),
            (lfo_config(), lfo_config(25 * MHZ)),
            (hfo_other, lfo_config()),
        ]:
            cost = model.cost(current, target, retained_pll=retained)
            assert not cost.reprogrammed_pll
            assert cost.latency_s <= model.mux_switch_s

    def test_cost_latency_nonnegative_for_grid(self, model):
        from repro.clock import hfo_grid

        grid = hfo_grid()
        for current in grid[:4]:
            for target in grid[:4]:
                cost = model.cost(current, target)
                assert cost.latency_s >= 0.0
