"""Oscillator models: ranges, construction, characteristics."""

import pytest

from repro.clock.sources import (
    HSE_MAX_HZ,
    HSE_MIN_HZ,
    HSI_FREQUENCY_HZ,
    OscillatorKind,
    make_hse,
    make_hsi,
)
from repro.errors import ClockConfigError
from repro.units import MHZ


class TestHSI:
    def test_fixed_sixteen_megahertz(self):
        assert make_hsi().frequency_hz == pytest.approx(16 * MHZ)
        assert HSI_FREQUENCY_HZ == 16 * MHZ

    def test_kind(self):
        assert make_hsi().kind is OscillatorKind.HSI

    def test_hsi_jitter_exceeds_hse_jitter(self):
        # Sec. II-A: the HSI is excluded partly for drift/jitter.
        assert make_hsi().jitter_ppm > make_hse(50 * MHZ).jitter_ppm


class TestHSE:
    @pytest.mark.parametrize("mhz_value", [1, 8, 25, 50])
    def test_legal_range_accepted(self, mhz_value):
        osc = make_hse(mhz_value * MHZ)
        assert osc.frequency_hz == pytest.approx(mhz_value * MHZ)
        assert osc.kind is OscillatorKind.HSE

    @pytest.mark.parametrize("mhz_value", [0.5, 51, 100, 0, -8])
    def test_out_of_range_rejected(self, mhz_value):
        with pytest.raises(ClockConfigError):
            make_hse(mhz_value * MHZ)

    def test_board_range_matches_paper(self):
        # Sec. IV: the board supports an HSE from 1 to 50 MHz.
        assert HSE_MIN_HZ == 1 * MHZ
        assert HSE_MAX_HZ == 50 * MHZ

    def test_startup_time_nonnegative(self):
        assert make_hse(25 * MHZ).startup_time_s >= 0
