"""RCC state machine: transitions, history, background PLL prep."""

import pytest

from repro.clock import RCC, lfo_config, pll_config
from repro.errors import ClockSwitchError
from repro.units import MHZ


@pytest.fixture
def rcc():
    return RCC()


@pytest.fixture
def hfo():
    return pll_config(50 * MHZ, 25, 216)


@pytest.fixture
def hfo_other():
    return pll_config(50 * MHZ, 25, 150)


class TestRCCTransitions:
    def test_boots_on_lfo_without_history(self, rcc):
        assert rcc.current == lfo_config()
        assert rcc.history == []

    def test_first_pll_switch_pays_relock(self, rcc, hfo):
        cost = rcc.apply(hfo)
        assert cost.reprogrammed_pll
        assert rcc.current == hfo
        assert rcc.sysclk_hz == pytest.approx(216 * MHZ)

    def test_bounce_back_to_hse_keeps_pll_programmed(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        assert rcc.retained_pll == (hfo.pll, hfo.hse_hz)
        # Returning to the same PLL config is now a cheap mux move.
        cost = rcc.switch_to_pll(hfo)
        assert not cost.reprogrammed_pll

    def test_changing_pll_settings_relocks(self, rcc, hfo, hfo_other):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        cost = rcc.switch_to_pll(hfo_other)
        assert cost.reprogrammed_pll

    def test_noop_apply_records_nothing(self, rcc):
        rcc.apply(lfo_config())
        assert rcc.history == []

    def test_history_records_each_transition(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        rcc.switch_to_pll(hfo)
        assert len(rcc.history) == 3
        assert rcc.relock_count() == 1

    def test_total_switch_latency_accumulates(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        total = rcc.total_switch_latency_s()
        assert total == pytest.approx(
            sum(event.cost.latency_s for event in rcc.history)
        )
        assert total > 0

    def test_reset_history(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.reset_history()
        assert rcc.history == []
        assert rcc.current == hfo  # state untouched

    def test_switch_to_pll_rejects_non_pll_config(self, rcc):
        with pytest.raises(ClockSwitchError):
            rcc.switch_to_pll(lfo_config())

    def test_switch_to_hse_with_explicit_frequency(self, rcc):
        rcc.switch_to_hse(25 * MHZ)
        assert rcc.sysclk_hz == pytest.approx(25 * MHZ)


class TestBackgroundPLLPreparation:
    def test_prepare_while_on_hse(self, rcc, hfo):
        lock = rcc.prepare_pll(hfo)
        assert lock > 0
        assert rcc.current == lfo_config()  # SYSCLK unchanged
        assert rcc.pll_locked
        # The subsequent mux move is cheap and not a reprogram.
        cost = rcc.switch_to_pll(hfo)
        assert not cost.reprogrammed_pll

    def test_prepare_already_prepared_is_free(self, rcc, hfo):
        rcc.prepare_pll(hfo)
        assert rcc.prepare_pll(hfo) == 0.0

    def test_prepare_rejected_while_running_from_pll(self, rcc, hfo, hfo_other):
        rcc.apply(hfo)
        with pytest.raises(ClockSwitchError, match="switch to the HSE"):
            rcc.prepare_pll(hfo_other)

    def test_prepare_rejects_non_pll_target(self, rcc):
        with pytest.raises(ClockSwitchError):
            rcc.prepare_pll(lfo_config())

    def test_reprepare_with_new_settings(self, rcc, hfo, hfo_other):
        rcc.prepare_pll(hfo)
        lock = rcc.prepare_pll(hfo_other)
        assert lock > 0
        assert rcc.retained_pll == (hfo_other.pll, hfo_other.hse_hz)
