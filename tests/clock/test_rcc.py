"""RCC state machine: transitions, history, background PLL prep."""

import pytest

from repro.clock import RCC, lfo_config, pll_config
from repro.errors import ClockSwitchError
from repro.units import MHZ


@pytest.fixture
def rcc():
    return RCC()


@pytest.fixture
def hfo():
    return pll_config(50 * MHZ, 25, 216)


@pytest.fixture
def hfo_other():
    return pll_config(50 * MHZ, 25, 150)


class TestRCCTransitions:
    def test_boots_on_lfo_without_history(self, rcc):
        assert rcc.current == lfo_config()
        assert rcc.history == []

    def test_first_pll_switch_pays_relock(self, rcc, hfo):
        cost = rcc.apply(hfo)
        assert cost.reprogrammed_pll
        assert rcc.current == hfo
        assert rcc.sysclk_hz == pytest.approx(216 * MHZ)

    def test_bounce_back_to_hse_keeps_pll_programmed(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        assert rcc.retained_pll == (hfo.pll, hfo.hse_hz)
        # Returning to the same PLL config is now a cheap mux move.
        cost = rcc.switch_to_pll(hfo)
        assert not cost.reprogrammed_pll

    def test_changing_pll_settings_relocks(self, rcc, hfo, hfo_other):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        cost = rcc.switch_to_pll(hfo_other)
        assert cost.reprogrammed_pll

    def test_noop_apply_records_nothing(self, rcc):
        rcc.apply(lfo_config())
        assert rcc.history == []

    def test_history_records_each_transition(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        rcc.switch_to_pll(hfo)
        assert len(rcc.history) == 3
        assert rcc.relock_count() == 1

    def test_total_switch_latency_accumulates(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.switch_to_hse()
        total = rcc.total_switch_latency_s()
        assert total == pytest.approx(
            sum(event.cost.latency_s for event in rcc.history)
        )
        assert total > 0

    def test_reset_history(self, rcc, hfo):
        rcc.apply(hfo)
        rcc.reset_history()
        assert rcc.history == []
        assert rcc.current == hfo  # state untouched

    def test_switch_to_pll_rejects_non_pll_config(self, rcc):
        with pytest.raises(ClockSwitchError):
            rcc.switch_to_pll(lfo_config())

    def test_switch_to_hse_with_explicit_frequency(self, rcc):
        rcc.switch_to_hse(25 * MHZ)
        assert rcc.sysclk_hz == pytest.approx(25 * MHZ)


class TestBackgroundPLLPreparation:
    def test_prepare_while_on_hse(self, rcc, hfo):
        lock = rcc.prepare_pll(hfo)
        assert lock > 0
        assert rcc.current == lfo_config()  # SYSCLK unchanged
        assert rcc.pll_locked
        # The subsequent mux move is cheap and not a reprogram.
        cost = rcc.switch_to_pll(hfo)
        assert not cost.reprogrammed_pll

    def test_prepare_already_prepared_is_free(self, rcc, hfo):
        rcc.prepare_pll(hfo)
        assert rcc.prepare_pll(hfo) == 0.0

    def test_prepare_rejected_while_running_from_pll(self, rcc, hfo, hfo_other):
        rcc.apply(hfo)
        with pytest.raises(ClockSwitchError, match="switch to the HSE"):
            rcc.prepare_pll(hfo_other)

    def test_prepare_rejects_non_pll_target(self, rcc):
        with pytest.raises(ClockSwitchError):
            rcc.prepare_pll(lfo_config())

    def test_reprepare_with_new_settings(self, rcc, hfo, hfo_other):
        rcc.prepare_pll(hfo)
        lock = rcc.prepare_pll(hfo_other)
        assert lock > 0
        assert rcc.retained_pll == (hfo_other.pll, hfo_other.hse_hz)


def clock_with(*events):
    """A fault clock firing exactly at the scheduled opportunities."""
    from repro.faults import FaultPlan

    return FaultPlan(scheduled=tuple(events)).clock_for(0)


class TestCSSFailsafe:
    def test_hse_dropout_parks_on_hsi(self, hfo):
        from repro.clock import hsi_config
        from repro.faults import FaultKind

        clock = clock_with((FaultKind.HSE_DROPOUT, 0))
        nmi = []
        rcc = RCC(fault_clock=clock, css_callback=nmi.append)
        cost = rcc.apply(hfo)
        assert rcc.current == hsi_config()
        assert rcc.css_count == 1
        assert nmi[0].requested == hfo
        assert nmi[0].failsafe == hsi_config()
        # History records where the switch landed, not the request.
        assert rcc.history[-1].target == hsi_config()
        assert cost.latency_s > 0.0

    def test_next_switch_recovers_the_hse(self, hfo):
        from repro.faults import FaultKind

        clock = clock_with((FaultKind.HSE_DROPOUT, 0))
        rcc = RCC(fault_clock=clock)
        rcc.apply(hfo)  # CSS fires
        cost = rcc.apply(hfo)  # oscillator restarts cleanly
        assert rcc.current == hfo
        assert cost.reprogrammed_pll  # the failsafe dropped the PLL
        assert rcc.css_count == 1

    def test_boot_consumes_no_fault_opportunity(self):
        from repro.faults import FaultKind

        clock = clock_with((FaultKind.HSE_DROPOUT, 0))
        rcc = RCC(fault_clock=clock)  # boots on the HSE-sourced LFO
        assert rcc.current == lfo_config()
        assert clock.opportunities[FaultKind.HSE_DROPOUT] == 0

    def test_background_prepare_survives_dropout(self, hfo):
        from repro.faults import FaultKind

        clock = clock_with((FaultKind.HSE_DROPOUT, 0))
        rcc = RCC(fault_clock=clock)
        assert rcc.prepare_pll(hfo) == 0.0
        assert rcc.css_count == 1
        assert not rcc.pll_locked
        assert rcc.current.sysclk_hz == pytest.approx(16e6)


class TestPLLLockRetry:
    def test_single_timeout_costs_backoff_plus_relock(self, hfo):
        from repro.clock.pll import PLL_LOCK_TIME_S
        from repro.faults import FaultKind

        clock = clock_with((FaultKind.PLL_LOCK_TIMEOUT, 0))
        rcc = RCC(fault_clock=clock)
        cost = rcc.apply(hfo)
        assert rcc.current == hfo
        assert rcc.pll_retries == 1
        # Cumulative accounting: nominal relock+mux, plus the retry's
        # backoff and its full second lock window.
        expected = (
            rcc.cost_model.pll_relock_s
            + rcc.cost_model.mux_switch_s
            + rcc.retry.backoff_s(0)
            + PLL_LOCK_TIME_S
        )
        assert cost.latency_s == pytest.approx(expected)
        assert cost.reprogrammed_pll
        assert rcc.total_switch_latency_s() == pytest.approx(expected)

    def test_consecutive_timeouts_accumulate_backoffs(self, hfo):
        from repro.clock.pll import PLL_LOCK_TIME_S
        from repro.faults import FaultKind

        clock = clock_with(
            (FaultKind.PLL_LOCK_TIMEOUT, 0), (FaultKind.PLL_LOCK_TIMEOUT, 1)
        )
        rcc = RCC(fault_clock=clock)
        cost = rcc.apply(hfo)
        expected = (
            rcc.cost_model.pll_relock_s
            + rcc.cost_model.mux_switch_s
            + rcc.retry.backoff_s(0)
            + rcc.retry.backoff_s(1)
            + 2 * PLL_LOCK_TIME_S
        )
        assert cost.latency_s == pytest.approx(expected)
        assert rcc.pll_retries == 2

    def test_exhausted_budget_raises(self, hfo):
        from repro.clock import RetryPolicy
        from repro.faults import FaultPlan

        clock = FaultPlan(pll_lock_timeout_rate=1.0).clock_for(0)
        rcc = RCC(retry=RetryPolicy(max_retries=2), fault_clock=clock)
        with pytest.raises(ClockSwitchError, match="retry budget"):
            rcc.apply(hfo)
        assert not rcc.pll_locked
        assert rcc.current == lfo_config()  # the switch never landed

    def test_zero_rate_clock_is_transparent(self, hfo):
        from repro.faults import FaultPlan

        clean = RCC()
        hardened = RCC(fault_clock=FaultPlan().clock_for(0))
        assert hardened.apply(hfo).latency_s == pytest.approx(
            clean.apply(hfo).latency_s
        )
        assert hardened.pll_retries == 0
        assert hardened.css_count == 0
