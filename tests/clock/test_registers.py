"""RCC register encoding: bit fields, round trips, hostile values."""

import pytest
from hypothesis import given, strategies as st

from repro.clock import (
    RCCRegisters,
    decode_registers,
    encode_registers,
    hfo_grid,
    lfo_config,
    pll_config,
)
from repro.clock.registers import SW_HSE, SW_HSI, SW_PLL, PLLSRC_HSE_BIT
from repro.clock.configs import ClockConfig, SysclkSource
from repro.errors import ClockConfigError
from repro.units import MHZ


class TestEncoding:
    def test_bit_fields(self):
        config = pll_config(50 * MHZ, pllm=25, plln=216, pllp=2)
        registers = encode_registers(config)
        word = registers.pllcfgr
        assert word & 0x3F == 25
        assert (word >> 6) & 0x1FF == 216
        assert (word >> 16) & 0b11 == 0b00  # PLLP=2
        assert word & PLLSRC_HSE_BIT
        assert registers.cfgr_sw == SW_PLL

    def test_pllp_encoding(self):
        config = pll_config(50 * MHZ, pllm=25, plln=200, pllp=4)
        word = encode_registers(config).pllcfgr
        assert (word >> 16) & 0b11 == 0b01

    def test_hse_direct(self):
        registers = encode_registers(lfo_config())
        assert registers.cfgr_sw == SW_HSE
        assert registers.pllcfgr == 0

    def test_hsi(self):
        config = ClockConfig(source=SysclkSource.HSI)
        assert encode_registers(config).cfgr_sw == SW_HSI


class TestRoundTrip:
    def test_whole_paper_grid(self):
        for config in hfo_grid():
            assert decode_registers(encode_registers(config)) == config

    def test_lfo(self):
        assert decode_registers(encode_registers(lfo_config())) == lfo_config()

    @given(
        pllm=st.sampled_from([8, 16, 25, 50]),
        plln=st.sampled_from([75, 100, 150, 216]),
        pllp=st.sampled_from([2, 4]),
    )
    def test_property_round_trip_when_legal(self, pllm, plln, pllp):
        try:
            config = pll_config(50 * MHZ, pllm, plln, pllp)
        except ClockConfigError:
            return
        assert decode_registers(encode_registers(config)) == config


class TestHostileValues:
    def test_bad_sw_field(self):
        with pytest.raises(ClockConfigError):
            decode_registers(
                RCCRegisters(pllcfgr=0, cfgr_sw=0b11, hse_hz=50 * MHZ)
            )

    def test_hsi_pll_source_rejected(self):
        # PLLSRC bit cleared: HSI-sourced PLL, outside this model.
        word = 25 | (216 << 6)
        with pytest.raises(ClockConfigError):
            decode_registers(
                RCCRegisters(pllcfgr=word, cfgr_sw=SW_PLL, hse_hz=50 * MHZ)
            )

    def test_corrupt_dividers_rejected(self):
        # PLLN = 0 is outside the legal 50..432 range.
        word = 25 | (0 << 6) | PLLSRC_HSE_BIT
        with pytest.raises(ClockConfigError):
            decode_registers(
                RCCRegisters(pllcfgr=word, cfgr_sw=SW_PLL, hse_hz=50 * MHZ)
            )


class TestCodegenIntegration:
    def test_header_contains_register_word(self, tiny_model, hfo_216):
        from repro.codegen import generate_clock_header
        from repro.engine import uniform_plan

        header = generate_clock_header(
            uniform_plan(tiny_model, hfo=hfo_216)
        )
        expected = encode_registers(hfo_216).pllcfgr
        assert f"0x{expected:08X}UL" in header
