"""PLL model: Eq. 1, legality constraints, lock sequencing."""

import pytest

from repro.clock.pll import (
    PLL,
    PLLSettings,
    PLL_LOCK_TIME_S,
    SYSCLK_MAX_HZ,
    VCO_INPUT_MAX_HZ,
    VCO_INPUT_MIN_HZ,
    VCO_OUTPUT_MAX_HZ,
    VCO_OUTPUT_MIN_HZ,
)
from repro.errors import ClockConfigError
from repro.units import MHZ


class TestPLLSettings:
    def test_equation_one(self):
        # Paper Eq. 1: F_SYSCLK = F_in * PLLN / (PLLM * PLLP).
        s = PLLSettings(pllm=25, plln=216, pllp=2)
        assert s.sysclk_hz(50 * MHZ) == pytest.approx(216 * MHZ)

    def test_vco_frequencies(self):
        s = PLLSettings(pllm=25, plln=216, pllp=2)
        assert s.vco_input_hz(50 * MHZ) == pytest.approx(2 * MHZ)
        assert s.vco_output_hz(50 * MHZ) == pytest.approx(432 * MHZ)

    def test_sysclk_scales_inversely_with_pllp(self):
        lo = PLLSettings(pllm=25, plln=216, pllp=2)
        hi = PLLSettings(pllm=25, plln=216, pllp=4)
        assert lo.sysclk_hz(50 * MHZ) == pytest.approx(
            2 * hi.sysclk_hz(50 * MHZ)
        )

    @pytest.mark.parametrize("pllm", [1, 0, 64, -3])
    def test_pllm_range_enforced(self, pllm):
        with pytest.raises(ClockConfigError):
            PLLSettings(pllm=pllm, plln=216, pllp=2)

    @pytest.mark.parametrize("plln", [49, 433, 0])
    def test_plln_range_enforced(self, plln):
        with pytest.raises(ClockConfigError):
            PLLSettings(pllm=25, plln=plln, pllp=2)

    @pytest.mark.parametrize("pllp", [1, 3, 5, 7, 9])
    def test_pllp_must_be_even_divider(self, pllp):
        with pytest.raises(ClockConfigError):
            PLLSettings(pllm=25, plln=216, pllp=pllp)

    def test_vco_input_window_enforced(self):
        # 50 MHz / 10 = 5 MHz, above the 2 MHz phase-comparator max.
        s = PLLSettings(pllm=10, plln=100, pllp=2)
        with pytest.raises(ClockConfigError, match="VCO input"):
            s.validate_for_input(50 * MHZ)

    def test_vco_output_window_enforced(self):
        # 50/25 * 432 = 864 MHz VCO, above the 432 MHz max.
        s = PLLSettings(pllm=25, plln=432, pllp=2)
        with pytest.raises(ClockConfigError, match="VCO output"):
            s.validate_for_input(50 * MHZ)

    def test_vco_output_minimum_enforced(self):
        # 50/50 * 75 = 75 MHz VCO, below the 100 MHz min.
        s = PLLSettings(pllm=50, plln=75, pllp=2)
        with pytest.raises(ClockConfigError, match="VCO output"):
            s.validate_for_input(50 * MHZ)

    def test_sysclk_cap_enforced(self):
        # 2 MHz * 216 / ... wait: 16/8 = 2, *250 = 500 VCO, /2 = 250 MHz.
        s = PLLSettings(pllm=8, plln=250, pllp=2)
        with pytest.raises(ClockConfigError):
            s.validate_for_input(16 * MHZ)

    def test_is_valid_for_input_mirrors_validate(self):
        good = PLLSettings(pllm=25, plln=216, pllp=2)
        bad = PLLSettings(pllm=25, plln=432, pllp=2)
        assert good.is_valid_for_input(50 * MHZ)
        assert not bad.is_valid_for_input(50 * MHZ)

    def test_constants_are_consistent(self):
        assert VCO_INPUT_MIN_HZ < VCO_INPUT_MAX_HZ
        assert VCO_OUTPUT_MIN_HZ < VCO_OUTPUT_MAX_HZ
        assert SYSCLK_MAX_HZ == 216 * MHZ


class TestPLLStateMachine:
    def make_locked(self):
        pll = PLL()
        pll.configure(PLLSettings(pllm=25, plln=216, pllp=2), 50 * MHZ)
        pll.enable()
        return pll

    def test_enable_requires_configuration(self):
        with pytest.raises(ClockConfigError, match="unconfigured"):
            PLL().enable()

    def test_enable_returns_lock_time(self):
        pll = PLL()
        pll.configure(PLLSettings(pllm=25, plln=216, pllp=2), 50 * MHZ)
        assert pll.enable() == pytest.approx(PLL_LOCK_TIME_S)

    def test_double_enable_is_free(self):
        pll = self.make_locked()
        assert pll.enable() == 0.0

    def test_cannot_reprogram_while_enabled(self):
        pll = self.make_locked()
        with pytest.raises(ClockConfigError, match="disable"):
            pll.configure(PLLSettings(pllm=50, plln=432, pllp=2), 50 * MHZ)

    def test_reprogram_after_disable(self):
        pll = self.make_locked()
        pll.disable()
        pll.configure(PLLSettings(pllm=50, plln=432, pllp=2), 50 * MHZ)
        pll.enable()
        assert pll.output_hz() == pytest.approx(216 * MHZ)

    def test_output_requires_lock(self):
        pll = PLL()
        pll.configure(PLLSettings(pllm=25, plln=216, pllp=2), 50 * MHZ)
        with pytest.raises(ClockConfigError, match="locked"):
            pll.output_hz()

    def test_vco_hz_reports_vco_not_sysclk(self):
        pll = self.make_locked()
        assert pll.vco_hz() == pytest.approx(432 * MHZ)
        assert pll.output_hz() == pytest.approx(216 * MHZ)

    def test_disable_drops_lock(self):
        pll = self.make_locked()
        pll.disable()
        assert not pll.locked
        with pytest.raises(ClockConfigError):
            pll.output_hz()

    def test_illegal_settings_rejected_at_configure(self):
        pll = PLL()
        with pytest.raises(ClockConfigError):
            pll.configure(PLLSettings(pllm=25, plln=432, pllp=2), 50 * MHZ)
