"""Installation self-test.

``repro-dvfs selftest`` (or :func:`run_selftest`) executes a fast
end-to-end sanity sweep -- the invariants a correct installation must
satisfy -- without needing the full pytest suite.  Useful after
installing into a fresh environment or porting to a new Python/numpy
combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class SelfTestResult:
    """Outcome of the self-test sweep."""

    checks: List[Tuple[str, bool, str]] = field(default_factory=list)
    quick: bool = False

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return all(passed for _, passed, _ in self.checks)

    def summary(self) -> str:
        """One line per check."""
        lines = []
        for name, passed, detail in self.checks:
            status = "ok " if passed else "FAIL"
            lines.append(f"[{status}] {name}{': ' + detail if detail else ''}")
        lines.append(
            ("quick " if self.quick else "")
            + ("self-test PASSED" if self.ok else "self-test FAILED")
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe encoding (the CLI's ``--json`` payload)."""
        return {
            "ok": self.ok,
            "quick": self.quick,
            "checks": [
                {"name": name, "ok": passed, "detail": detail}
                for name, passed, detail in self.checks
            ],
        }


def run_selftest(quick: bool = False) -> SelfTestResult:
    """Run the sanity sweep; never raises, failures land in the result.

    Args:
        quick: run only the cheap structural checks (clock tree, plan
            round trip, MCKP exactness), skipping the end-to-end
            pipeline and bit-exactness sweeps.  This is the subset the
            serve layer's ``health`` endpoint executes, so health
            probes answer in milliseconds instead of seconds.
    """
    result = SelfTestResult(quick=quick)

    def check(name: str, fn: Callable[[], str]) -> None:
        try:
            detail = fn() or ""
            result.checks.append((name, True, detail))
        except Exception as err:  # noqa: BLE001 - report, don't crash
            result.checks.append((name, False, f"{type(err).__name__}: {err}"))

    def clock_tree() -> str:
        from .clock import hfo_grid, max_performance_config

        grid = hfo_grid()
        assert len(grid) == 11
        assert abs(max_performance_config().sysclk_hz - 216e6) < 1
        return f"{len(grid)} legal HFO configs"

    def dae_bit_exact() -> str:
        from .engine import validate_plan_numerics
        from .nn import build_tiny_test_model

        model = build_tiny_test_model()
        granularities = {n.node_id: 8 for n in model.dae_nodes()}
        assert validate_plan_numerics(model, granularities, n_inputs=2)
        return f"{len(granularities)} layers, g=8"

    def pipeline_beats_baselines() -> str:
        from . import DAEDVFSPipeline
        from .nn import build_tiny_test_model
        from .optimize import MODERATE

        pipeline = DAEDVFSPipeline()
        row = pipeline.compare(build_tiny_test_model(), MODERATE)
        assert row.ours.met_qos
        assert row.ours.energy_j < row.clock_gated.energy_j
        assert row.clock_gated.energy_j < row.tinyengine.energy_j
        return f"-{row.savings_vs_tinyengine:.1%} vs TinyEngine"

    def plan_round_trip() -> str:
        import tempfile

        from .engine import load_plan, save_plan, uniform_plan
        from .clock import max_performance_config
        from .nn import build_tiny_test_model

        model = build_tiny_test_model()
        plan = uniform_plan(
            model, hfo=max_performance_config(), granularity=8
        )
        with tempfile.NamedTemporaryFile(suffix=".json") as handle:
            save_plan(plan, handle.name)
            restored = load_plan(handle.name)
        assert restored.granularities() == plan.granularities()
        return "plan JSON"

    def solver_exactness() -> str:
        from .optimize import (
            MCKPItem,
            solve_mckp_bruteforce,
            solve_mckp_dp,
        )

        classes = [
            [MCKPItem(1.0, 10.0), MCKPItem(2.0, 4.0), MCKPItem(3.0, 1.0)],
            [MCKPItem(1.0, 8.0), MCKPItem(2.0, 6.0), MCKPItem(4.0, 2.0)],
        ]
        dp = solve_mckp_dp(classes, budget=4.0)
        brute = solve_mckp_bruteforce(classes, budget=4.0)
        assert abs(dp.total_value - brute.total_value) < 1e-9
        return "DP == exhaustive"

    check("clock tree (Eq. 1, legality, 216 MHz)", clock_tree)
    check("plan serialization round trip", plan_round_trip)
    check("MCKP DP exactness", solver_exactness)
    if not quick:
        check("DAE bit-exactness", dae_bit_exact)
        check("pipeline beats both baselines", pipeline_beats_baselines)
    return result
