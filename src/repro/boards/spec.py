"""Board descriptors: one declarative spec per supported target.

A :class:`BoardSpec` is the registry's unit of truth: everything that
distinguishes one MCU target from another -- clock-tree constraints,
voltage/frequency operating points, calibrated power constants, the
core timing model, the memory/cache geometry and (optionally) an NPU
offload map -- collected in one frozen dataclass, plus the grid
parameters from which the board's native :class:`~repro.dse.space.DesignSpace`
is derived.

``BoardSpec.build()`` materialises a fresh stateful
:class:`~repro.mcu.board.Board` from the descriptor.  Specs are
immutable and shared; boards are mutable (the RCC carries clock state)
and per-caller.

The default STM32F767ZI target bypasses the generic builder entirely
and delegates to :func:`~repro.mcu.board.make_nucleo_f767zi`, so its
boards -- and every plan, fleet report and scenario digest derived
from them -- stay bit-identical to the pre-registry library.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..clock.configs import (
    ClockConfig,
    PAPER_LFO_HZ,
    PAPER_PLLM_VALUES,
    PAPER_PLLN_VALUES,
    hfo_grid,
    lfo_config,
)
from ..clock.limits import ClockTreeLimits, resolve_limits
from ..clock.rcc import RCC
from ..clock.switching import SwitchCostModel
from ..errors import BoardError
from ..mcu.board import Board
from ..mcu.cache import CacheModel
from ..mcu.core import CoreModel, CoreTimingParams
from ..mcu.memory import MemoryMap
from ..mcu.npu import NPUModel
from ..power.model import BoardPowerModel, PowerModelParams

@dataclass(frozen=True)
class BoardSpec:
    """Declarative description of one MCU target.

    Attributes:
        name: registry key and ``Board.name``.
        title: human-readable board title (dev-kit name).
        core: CPU core, e.g. ``"cortex-m7"``.
        family: vendor family, e.g. ``"stm32f7"``.
        description: one-paragraph summary for ``boards --list``.
        calibration: provenance of the timing/power constants.
        limits: clock-tree constraint bundle; ``None`` means the
            default STM32F7 tree (and keeps F7 configs digest-stable).
        lfo_hz: HSE-direct LFO frequency for memory-bound segments.
        hse_hz: crystal feeding the PLL grid.
        plln_values / pllm_values / pllp: the board's HFO ladder.
        power_params: calibrated power model constants (``None`` =
            F767 defaults).
        timing_params: calibrated core timing constants (``None`` =
            F767 defaults).
        cache: L1/system cache model (``None`` = F767 16 KB).
        memory_map: flash/SRAM geometry (``None`` = F767 map).
        switch_cost_model: clock-transition pricing; ``None`` derives
            ``pll_relock_s`` from ``limits.pll_lock_time_s`` so the
            DSE's switch budget always agrees with the RCC's actual
            re-lock stall.
        npu: optional NPU offload descriptor.
        builder: full override -- ``(spec, power_params) -> Board`` --
            used by the F767/F746 entries to delegate to the legacy
            factories.
    """

    name: str
    title: str
    core: str
    family: str
    description: str
    calibration: str = ""
    limits: Optional[ClockTreeLimits] = None
    lfo_hz: float = PAPER_LFO_HZ
    hse_hz: float = PAPER_LFO_HZ
    plln_values: Tuple[int, ...] = PAPER_PLLN_VALUES
    pllm_values: Tuple[int, ...] = PAPER_PLLM_VALUES
    pllp: int = 2
    power_params: Optional[PowerModelParams] = None
    timing_params: Optional[CoreTimingParams] = None
    cache: Optional[CacheModel] = None
    memory_map: Optional[MemoryMap] = None
    switch_cost_model: Optional[SwitchCostModel] = None
    npu: Optional[NPUModel] = None
    builder: Optional[
        Callable[["BoardSpec", Optional[PowerModelParams]], Board]
    ] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise BoardError("board spec needs a non-empty name")
        lim = resolve_limits(self.limits)
        if self.lfo_hz <= 0 or self.hse_hz <= 0:
            raise BoardError(f"{self.name}: lfo_hz and hse_hz must be positive")
        if not (lim.hse_min_hz <= self.hse_hz <= lim.hse_max_hz):
            raise BoardError(
                f"{self.name}: hse_hz {self.hse_hz:.0f} outside the clock "
                f"tree's HSE window [{lim.hse_min_hz:.0f}, {lim.hse_max_hz:.0f}]"
            )
        if not self.plln_values or not self.pllm_values:
            raise BoardError(f"{self.name}: empty PLL ladder")

    # -- materialisation -------------------------------------------------

    def build(
        self, power_params: Optional[PowerModelParams] = None
    ) -> Board:
        """Build a fresh :class:`Board` from this descriptor.

        Args:
            power_params: override the spec's calibrated power
                constants -- the fleet's device-variation hook, which
                perturbs each unit's power model while keeping the
                timing side nominal.
        """
        if self.builder is not None:
            return self.builder(self, power_params)
        limits = self.limits
        switch = self.switch_cost_model or SwitchCostModel(
            pll_relock_s=resolve_limits(limits).pll_lock_time_s
        )
        rcc = RCC(
            cost_model=switch,
            initial=lfo_config(self.lfo_hz, limits=limits),
            limits=limits,
        )
        return Board(
            name=self.name,
            rcc=rcc,
            power_model=BoardPowerModel(
                power_params if power_params is not None else self.power_params
            ),
            core=CoreModel(params=self.timing_params, memory_map=self.memory_map),
            cache=self.cache or CacheModel(),
            switch_cost_model=switch,
            npu=self.npu,
            space_factory=self.design_space,
        )

    def base_power_params(self) -> PowerModelParams:
        """The nominal power constants device variation spreads around."""
        return self.power_params or PowerModelParams()

    def design_space(self, board: Board):
        """The board's native exploration grid (``Board.space_factory``).

        Mirrors :func:`~repro.dse.space.paper_design_space`: the full
        PLL grid on this spec's HSE, iso-frequency-pruned against the
        board's power model, over the paper's granularity ladder.
        """
        from ..dse.space import DesignSpace, prune_iso_frequency
        from ..engine.cost import PAPER_GRANULARITIES

        configs = prune_iso_frequency(
            self.grid_configs(), board.power_model
        )
        return DesignSpace(
            granularities=PAPER_GRANULARITIES,
            hfo_configs=tuple(configs),
            lfo=lfo_config(self.lfo_hz, limits=self.limits),
        )

    def grid_configs(self) -> Tuple[ClockConfig, ...]:
        """The unpruned HFO candidate grid of this spec."""
        return tuple(
            hfo_grid(
                hse_hz=self.hse_hz,
                plln_values=self.plln_values,
                pllm_values=self.pllm_values,
                pllp=self.pllp,
                limits=self.limits,
            )
        )

    # -- introspection ---------------------------------------------------

    def sysclk_ladder_hz(self) -> Tuple[float, ...]:
        """Distinct achievable SYSCLK frequencies, ascending."""
        return tuple(sorted({c.sysclk_hz for c in self.grid_configs()}))

    def to_dict(self) -> dict:
        """JSON-friendly descriptor summary (``boards --show``)."""
        lim = resolve_limits(self.limits)
        power = self.power_params or PowerModelParams()
        timing = self.timing_params or CoreTimingParams()
        data = {
            "name": self.name,
            "title": self.title,
            "core": self.core,
            "family": self.family,
            "description": self.description,
            "calibration": self.calibration,
            "clock": {
                "tree": lim.to_dict(),
                "hse_hz": self.hse_hz,
                "lfo_hz": self.lfo_hz,
                "plln_values": list(self.plln_values),
                "pllm_values": list(self.pllm_values),
                "pllp": self.pllp,
                "sysclk_ladder_hz": list(self.sysclk_ladder_hz()),
            },
            "power": {
                "p_board_static_w": power.p_board_static_w,
                "p_mcu_leakage_w": power.p_mcu_leakage_w,
                "k_core_w_per_hz": power.k_core_w_per_hz,
                "vos_steps": [list(step) for step in power.vos_steps],
            },
            "timing": {
                "cycles_per_mac_conv": timing.cycles_per_mac_conv,
                "cycles_per_mac_pointwise": timing.cycles_per_mac_pointwise,
                "cycles_per_mac_depthwise": timing.cycles_per_mac_depthwise,
            },
            "cache_bytes": (self.cache or CacheModel()).capacity_bytes,
            "npu": None,
        }
        if self.npu is not None:
            data["npu"] = {
                "name": self.npu.name,
                "macs_per_cycle": self.npu.macs_per_cycle,
                "clock_hz": self.npu.clock_hz,
                "active_power_w": self.npu.active_power_w,
                "dispatch_overhead_s": self.npu.dispatch_overhead_s,
                "throughput_gops": self.npu.throughput_gops(),
                "supported_kinds": list(self.npu.supported_kinds),
            }
        return data

    def digest(self) -> str:
        """Deterministic content hash of the descriptor summary."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
