"""repro.boards: the multi-board backend registry.

The library historically modelled exactly one target, the paper's
STM32F767ZI Nucleo.  This package generalises the hardware description
behind a registry of :class:`BoardSpec` descriptors -- clock tree and
PLL constraints, voltage/frequency operating points, power-model
coefficients, core timing, memory/cache geometry and an optional NPU
offload map -- so pipelines, fleets, scenarios and the serve tier can
plan for heterogeneous targets.

Entry points::

    from repro.boards import build_board, board_names, get_spec

    board = build_board("nucleo-n657x0")   # fresh stateful Board
    spec = get_spec("frdm-mcxn947")        # immutable descriptor

The default (``DEFAULT_BOARD``) stays the F767; building it delegates
to the legacy factory so existing plans remain digest-identical.
"""

from .registry import (
    DEFAULT_BOARD,
    board_names,
    build_board,
    get_spec,
    iter_specs,
    register,
)
from .spec import BoardSpec

# Importing targets populates the registry with the built-in boards.
from . import targets as _targets  # noqa: F401
from .crossboard import cross_board_report

__all__ = [
    "BoardSpec",
    "DEFAULT_BOARD",
    "board_names",
    "build_board",
    "cross_board_report",
    "get_spec",
    "iter_specs",
    "register",
]
