"""Built-in board targets.

Four registered targets span three core generations:

* ``nucleo-f767zi`` -- the paper's Cortex-M7 STM32F767ZI Nucleo.  The
  default: its spec delegates to
  :func:`~repro.mcu.board.make_nucleo_f767zi` and carries no
  :class:`~repro.clock.limits.ClockTreeLimits` override, so every
  plan, fleet report and scenario digest stays byte-identical to the
  pre-registry library (pinned by ``tests/boards/test_golden.py``).
* ``nucleo-f746zg`` -- the F7 sibling with a 4 KB L1 data cache and a
  leakier corner (portability study E17).
* ``frdm-mcxn947`` -- a Cortex-M33-class NXP MCXN947 at 150 MHz: a
  slower single-issue core, a smaller cache, its own PLL tree and VOS
  ladder.  Timing anchored to MLPerf Tiny-style measurements (~3.5
  cycles/int8-MAC end to end on person-detection workloads).
* ``nucleo-n657x0`` -- a Cortex-M55 STM32N6 at up to 800 MHz with a
  Neural-ART NPU.  The M55's MVE dual-beat MACs price well under one
  cycle/MAC; flash-less, so the CPU path streams weights from external
  serial memory (the large ``fixed_latency_s``), which is exactly why
  the NPU offload map matters.  NPU-mapped layers price as
  frequency-insensitive fixed-latency segments
  (:class:`~repro.mcu.npu.NPUModel`).

Constants for the two new targets are calibrated to public datasheet /
benchmark orders of magnitude, not bench measurements; they are
deliberately easy to override via :func:`~repro.boards.registry.register`
with ``replace=True``.
"""

from __future__ import annotations

from ..clock.limits import ClockTreeLimits
from ..mcu.board import Board, make_nucleo_f746zg, make_nucleo_f767zi
from ..mcu.cache import CacheModel
from ..mcu.core import CoreTimingParams
from ..mcu.memory import MemoryMap, MemoryRegion
from ..mcu.npu import NPUModel
from ..power.model import PowerModelParams
from ..units import GHZ, MHZ, kib, ns, us
from .registry import register
from .spec import BoardSpec


def _build_f767zi(spec: BoardSpec, power_params=None) -> Board:
    # The legacy factory, untouched: limits=None, space_factory=None,
    # so the default board keeps its pre-registry digests bit-for-bit.
    return make_nucleo_f767zi(power_params=power_params)


def _build_f746zg(spec: BoardSpec, power_params=None) -> Board:
    return make_nucleo_f746zg(power_params=power_params)


NUCLEO_F767ZI = register(
    BoardSpec(
        name="nucleo-f767zi",
        title="ST Nucleo-F767ZI (STM32F767ZI)",
        core="cortex-m7",
        family="stm32f7",
        description=(
            "The paper's target: Cortex-M7 at up to 216 MHz, 16 KB L1 "
            "data cache, 2 MiB flash + 512 KiB SRAM, 50 MHz HSE feeding "
            "the Sec. III-B PLL grid."
        ),
        calibration=(
            "Power and timing constants calibrated against the paper's "
            "reported ratios (tests/test_calibration.py)."
        ),
        builder=_build_f767zi,
    )
)

NUCLEO_F746ZG = register(
    BoardSpec(
        name="nucleo-f746zg",
        title="ST Nucleo-F746ZG (STM32F746ZG)",
        core="cortex-m7",
        family="stm32f7",
        description=(
            "F7 sibling for the portability study: same 216 MHz ceiling, "
            "4 KB L1 data cache and a slightly leakier process corner."
        ),
        calibration="F767 constants with leakage raised to 9 mW; 4 KB cache.",
        power_params=PowerModelParams().scaled(p_mcu_leakage_w=0.009),
        cache=CacheModel(capacity_bytes=4 * 1024),
        builder=_build_f746zg,
    )
)


# --- NXP FRDM-MCXN947 (Cortex-M33 class) -------------------------------

MCXN947_LIMITS = ClockTreeLimits(
    name="mcxn947",
    hse_min_hz=1 * MHZ,
    hse_max_hz=32 * MHZ,
    hsi_hz=12 * MHZ,  # FRO-12M internal failsafe oscillator
    pllm_min=1,
    pllm_max=32,
    plln_min=4,
    plln_max=300,
    pllp_values=(1, 2, 4, 8),
    vco_input_min_hz=1 * MHZ,
    vco_input_max_hz=3 * MHZ,
    vco_output_min_hz=60 * MHZ,
    vco_output_max_hz=300 * MHZ,
    sysclk_max_hz=150 * MHZ,
    pll_lock_time_s=us(100),
)

FRDM_MCXN947 = register(
    BoardSpec(
        name="frdm-mcxn947",
        title="NXP FRDM-MCXN947 (MCX N947)",
        core="cortex-m33",
        family="mcxn9",
        description=(
            "Cortex-M33 class target at up to 150 MHz: single-issue "
            "integer MACs, 8 KB code/data cache, 2 MiB flash + 512 KiB "
            "SRAM, 24 MHz crystal.  A slower, lower-power point that "
            "stresses the QoS-feasibility side of cross-board DSE."
        ),
        calibration=(
            "~3.5 cycles/int8-MAC end to end (MLPerf Tiny person-detect "
            "class measurements on MCUXpresso kernels); VOS ladder and "
            "power split scaled from datasheet run-mode currents."
        ),
        limits=MCXN947_LIMITS,
        lfo_hz=24 * MHZ,
        hse_hz=24 * MHZ,
        # PLLM 12 -> 2 MHz comparator, PLLM 24 -> 1 MHz: iso-frequency
        # pairs with different VCO speeds, the Fig. 2 structure.
        plln_values=(50, 60, 75, 100, 125, 150, 200, 250, 300),
        pllm_values=(12, 24),
        pllp=2,
        power_params=PowerModelParams(
            p_board_static_w=0.015,
            p_mcu_leakage_w=0.004,
            k_core_w_per_hz=0.55e-9,
            p_pll_base_w=0.006,
            k_vco_w_per_hz=2.0e-10,
            k_hse_w_per_hz=1.0e-10,
            p_hsi_w=0.010,
            p_gated_w=0.008,
            p_stop_w=0.0008,
            stop_wakeup_s=90e-6,
            vos_steps=((50 * MHZ, 1.00), (100 * MHZ, 1.10), (150 * MHZ, 1.20)),
            v_ref=1.20,
        ),
        timing_params=CoreTimingParams(
            cycles_per_mac_depthwise=4.1,
            cycles_per_mac_pointwise=2.6,
            cycles_per_mac_conv=3.2,
            cycles_per_buffer_byte=1.1,
            cycles_per_output_byte=0.9,
            loop_overhead_cycles=18.0,
        ),
        cache=CacheModel(capacity_bytes=8 * 1024),
        memory_map=MemoryMap(
            flash=MemoryRegion(
                name="flash",
                size_bytes=2 * kib(1024),
                line_bytes=32,
                fixed_latency_s=ns(60),
                cycles_per_line=1.0,
            ),
            sram=MemoryRegion(
                name="sram",
                size_bytes=kib(512),
                line_bytes=4,
                fixed_latency_s=ns(16),
                cycles_per_line=1.0,
            ),
        ),
    )
)


# --- ST Nucleo-N657X0 (Cortex-M55 + Neural-ART NPU) ---------------------

STM32N6_LIMITS = ClockTreeLimits(
    name="stm32n6",
    hse_min_hz=4 * MHZ,
    hse_max_hz=50 * MHZ,
    hsi_hz=64 * MHZ,  # the N6 HSI runs at 64 MHz
    pllm_min=1,
    pllm_max=63,
    plln_min=10,
    plln_max=800,
    pllp_values=(1, 2, 4),
    vco_input_min_hz=1 * MHZ,
    vco_input_max_hz=2 * MHZ,
    vco_output_min_hz=400 * MHZ,
    vco_output_max_hz=1600 * MHZ,
    sysclk_max_hz=800 * MHZ,
    pll_lock_time_s=us(120),
)

NUCLEO_N657X0 = register(
    BoardSpec(
        name="nucleo-n657x0",
        title="ST Nucleo-N657X0-Q (STM32N657X0)",
        core="cortex-m55",
        family="stm32n6",
        description=(
            "Cortex-M55 at up to 800 MHz with the Neural-ART NPU: "
            "MVE dual-beat MACs on the CPU path, 4.2 MB contiguous "
            "SRAM, no internal flash (weights stream from external "
            "serial memory), 48 MHz crystal.  NPU-mapped layers price "
            "as frequency-insensitive fixed-latency segments."
        ),
        calibration=(
            "NPU: ~600 GOPS (300 MACs/cycle class) at ~3 TOPS/W -> "
            "0.2 W active; CPU-path flash latency models the external "
            "serial-NOR penalty the N6 pays without the NPU."
        ),
        limits=STM32N6_LIMITS,
        lfo_hz=48 * MHZ,
        hse_hz=48 * MHZ,
        # PLLM 24 -> 2 MHz comparator (VCO = 2*PLLN), PLLM 48 -> 1 MHz:
        # again iso-frequency pairs at different VCO speeds.
        plln_values=(200, 240, 300, 400, 480, 600, 800),
        pllm_values=(24, 48),
        pllp=2,
        power_params=PowerModelParams(
            p_board_static_w=0.040,
            p_mcu_leakage_w=0.020,
            k_core_w_per_hz=0.45e-9,
            p_pll_base_w=0.012,
            k_vco_w_per_hz=1.2e-10,
            k_hse_w_per_hz=1.0e-10,
            p_hsi_w=0.022,
            p_gated_w=0.020,
            p_stop_w=0.003,
            stop_wakeup_s=150e-6,
            vos_steps=(
                (200 * MHZ, 0.78),
                (400 * MHZ, 0.82),
                (600 * MHZ, 0.86),
                (800 * MHZ, 0.90),
            ),
            v_ref=0.90,
        ),
        timing_params=CoreTimingParams(
            cycles_per_mac_depthwise=0.9,
            cycles_per_mac_pointwise=0.55,
            cycles_per_mac_conv=0.7,
            cycles_per_buffer_byte=0.45,
            cycles_per_output_byte=0.4,
            loop_overhead_cycles=12.0,
        ),
        cache=CacheModel(capacity_bytes=32 * 1024),
        memory_map=MemoryMap(
            flash=MemoryRegion(
                # No internal flash: this region models the external
                # octo-SPI serial NOR the CPU path streams weights from.
                name="flash",
                size_bytes=8 * kib(1024),
                line_bytes=32,
                fixed_latency_s=ns(120),
                cycles_per_line=2.0,
            ),
            sram=MemoryRegion(
                name="sram",
                size_bytes=kib(4300),  # 4.2 MB contiguous SRAM
                line_bytes=4,
                fixed_latency_s=ns(10),
                cycles_per_line=1.0,
            ),
        ),
        npu=NPUModel(
            name="neural-art",
            macs_per_cycle=300.0,
            clock_hz=1 * GHZ,
            active_power_w=0.2,
            dispatch_overhead_s=us(25),
        ),
    )
)
