"""The board registry: name -> :class:`~repro.boards.spec.BoardSpec`.

A flat, import-time-populated mapping.  :mod:`repro.boards.targets`
registers the built-in targets when the package is imported; tests and
downstream users can :func:`register` additional specs (e.g. device
variants for sensitivity sweeps).

``DEFAULT_BOARD`` is the paper's STM32F767ZI Nucleo: every entry point
that takes an optional board name falls back to it, which keeps the
whole pre-registry CLI surface (and its digests) unchanged.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import BoardError
from ..mcu.board import Board
from .spec import BoardSpec

#: Registry key of the paper's default target.
DEFAULT_BOARD = "nucleo-f767zi"

_REGISTRY: Dict[str, BoardSpec] = {}


def register(spec: BoardSpec, replace: bool = False) -> BoardSpec:
    """Add a spec to the registry.

    Args:
        spec: the descriptor to register under ``spec.name``.
        replace: allow overwriting an existing entry (tests and
            sensitivity sweeps); a silent overwrite is otherwise an
            error because two modules would disagree about a name.
    """
    if spec.name in _REGISTRY and not replace:
        raise BoardError(f"board {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def board_names() -> List[str]:
    """Registered board names, registration order."""
    return list(_REGISTRY)


def iter_specs() -> List[BoardSpec]:
    """Registered specs, registration order."""
    return list(_REGISTRY.values())


def get_spec(name: str) -> BoardSpec:
    """Look up a spec by name.

    Raises:
        BoardError: unknown name; the message lists known boards.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise BoardError(f"unknown board {name!r} (known: {known})") from None


def build_board(name: str = DEFAULT_BOARD) -> Board:
    """Materialise a fresh :class:`Board` for ``name``."""
    return get_spec(name).build()
