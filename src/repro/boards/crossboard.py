"""Cross-board DSE: which board meets a QoS at the least energy?

The registry makes the paper's per-layer DAE x DVFS exploration a
*portable* procedure; this module runs it across every registered
target against one common absolute latency budget and ranks the
feasible boards by deployed energy.

QoS anchoring: callers either supply an absolute ``qos_s`` or a
``qos_percent`` slack, which is resolved against the **reference
board's** TinyEngine baseline (the F767 by default).  Anchoring on one
board keeps the budget identical across candidates -- otherwise every
board would chase a different target and the ranking would be
meaningless.

Per-board results record the HFO frequency histogram of the winning
plan plus the NPU offload count, which is how the report surfaces the
STM32N6 behaviour the issue calls out: NPU-mapped layers price as
fixed-latency segments, so their candidate points are identical across
the whole HFO ladder (frequency-insensitive) and the CPU-side layers
alone spread over the grid.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from ..errors import QoSInfeasibleError
from ..nn.graph import Model
from ..pipeline import DAEDVFSPipeline
from .registry import DEFAULT_BOARD, board_names, get_spec


def _hfo_histogram(plan) -> Dict[str, int]:
    """Plan's HFO frequency histogram, MHz label -> layer count."""
    hist: Dict[str, int] = {}
    for layer_plan in plan.layer_plans.values():
        label = f"{layer_plan.hfo.sysclk_hz / 1e6:g}MHz"
        hist[label] = hist.get(label, 0) + 1
    return dict(sorted(hist.items()))


def _npu_layer_count(board, model: Model) -> int:
    """Number of model layers the board's NPU would absorb."""
    if board.npu is None:
        return 0
    return sum(1 for node in model.nodes if board.npu.supports(node.layer.kind))


def cross_board_report(
    model: Model,
    qos_s: Optional[float] = None,
    qos_percent: Optional[float] = None,
    boards: Optional[Sequence[str]] = None,
    reference: str = DEFAULT_BOARD,
    solver: str = "dp",
) -> dict:
    """Optimize + deploy ``model`` on every candidate board.

    Args:
        model: the network to plan.
        qos_s: absolute latency budget; exactly one of ``qos_s`` /
            ``qos_percent`` must be given.
        qos_percent: slack over the *reference* board's baseline
            latency (30 -> baseline * 1.30).
        boards: candidate board names (default: every registered one).
        reference: board anchoring the relative QoS budget.
        solver: pipeline solver ("dp" or "greedy").

    Returns:
        A JSON-ready report: per-board feasibility, deployed energy /
        latency, plan shape (HFO histogram, relocks, NPU layer count)
        and an energy ranking of the boards that met the budget, plus
        a deterministic content digest.
    """
    if (qos_s is None) == (qos_percent is None):
        raise ValueError("provide exactly one of qos_s or qos_percent")
    names = list(boards) if boards is not None else board_names()

    reference_baseline_s = None
    if qos_s is None:
        ref_board = get_spec(reference).build()
        ref_pipeline = DAEDVFSPipeline(board=ref_board, solver=solver)
        reference_baseline_s = ref_pipeline.baseline_latency_s(model)
        qos_s = reference_baseline_s * (1.0 + qos_percent / 100.0)

    rows: List[dict] = []
    for name in names:
        spec = get_spec(name)
        board = spec.build()
        pipeline = DAEDVFSPipeline(board=board, solver=solver)
        row = {
            "board": name,
            "core": spec.core,
            "npu_layers": _npu_layer_count(board, model),
            "feasible": False,
            "met_qos": False,
            "energy_j": None,
            "latency_s": None,
            "baseline_latency_s": pipeline.baseline_latency_s(model),
            "min_latency_s": None,
            "relock_count": None,
            "hfo_histogram": None,
            "spec_digest": spec.digest(),
        }
        try:
            result = pipeline.optimize(model, qos_s=qos_s)
        except QoSInfeasibleError as exc:
            row["min_latency_s"] = exc.min_latency_s
            rows.append(row)
            continue
        report = pipeline.deploy(model, result.plan)
        row.update(
            feasible=True,
            met_qos=report.met_qos,
            energy_j=report.energy_j,
            latency_s=report.latency_s,
            relock_count=report.relock_count,
            hfo_histogram=_hfo_histogram(result.plan),
        )
        rows.append(row)

    ranking = sorted(
        (r["board"] for r in rows if r["feasible"] and r["met_qos"]),
        key=lambda n: next(r["energy_j"] for r in rows if r["board"] == n),
    )
    payload = {
        "model": model.name,
        "qos_s": qos_s,
        "qos_percent": qos_percent,
        "reference": reference if reference_baseline_s is not None else None,
        "reference_baseline_s": reference_baseline_s,
        "solver": solver,
        "boards": rows,
        "ranking": ranking,
        "winner": ranking[0] if ranking else None,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    payload["digest"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return payload
