"""repro.faults -- seeded fault injection and chaos campaigns.

:mod:`.plan` defines the fault models (:class:`~repro.faults.plan.FaultPlan`)
and the deterministic per-(device, stage) decision streams
(:class:`~repro.faults.plan.FaultClock`); :mod:`.campaign` stages
time-windowed plans for the scenario engine; :mod:`.chaos` runs seeded
campaigns over a fleet and emits digest-pinned survival reports.
"""

from .plan import (
    FaultClock,
    FaultKind,
    FaultPlan,
    GOVERN_STAGE,
    PLAN_STAGE,
    SERVE_STAGE,
)
from .campaign import (
    CampaignClocks,
    FaultCampaign,
    FaultStage,
    SCENARIO_STAGE_BASE,
)
from .chaos import (
    ChaosConfig,
    ChaosReport,
    DeviceSurvival,
    run_campaign,
)

__all__ = [
    "CampaignClocks",
    "ChaosConfig",
    "ChaosReport",
    "DeviceSurvival",
    "FaultCampaign",
    "FaultClock",
    "FaultKind",
    "FaultPlan",
    "FaultStage",
    "GOVERN_STAGE",
    "PLAN_STAGE",
    "SCENARIO_STAGE_BASE",
    "SERVE_STAGE",
    "run_campaign",
]
