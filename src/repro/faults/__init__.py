"""repro.faults -- seeded fault injection and chaos campaigns.

:mod:`.plan` defines the fault models (:class:`~repro.faults.plan.FaultPlan`)
and the deterministic per-(device, stage) decision streams
(:class:`~repro.faults.plan.FaultClock`); :mod:`.chaos` runs seeded
campaigns over a fleet and emits digest-pinned survival reports.
"""

from .plan import (
    FaultClock,
    FaultKind,
    FaultPlan,
    GOVERN_STAGE,
    PLAN_STAGE,
)
from .chaos import (
    ChaosConfig,
    ChaosReport,
    DeviceSurvival,
    run_campaign,
)

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "DeviceSurvival",
    "FaultClock",
    "FaultKind",
    "FaultPlan",
    "GOVERN_STAGE",
    "PLAN_STAGE",
    "run_campaign",
]
