"""Seeded, deterministic fault models for the simulated stack.

Real STM32F7 deployments fail in ways the nominal models never do: the
HSE crystal drops out mid-flight (the part ships a Clock Security
System precisely because this is *expected*), the PLL occasionally
fails to re-lock within its window, the INA219 NACKs or freezes its
power register, the supply browns out under load and the independent
watchdog resets the core mid-inference.  TinyML benchmarking work
(Bartoli et al., arXiv:2505.15622) finds exactly these sensor dropouts
and brownouts dominating field measurement error.

:class:`FaultPlan` describes *which* faults occur and how often;
:class:`FaultClock` turns a plan into deterministic per-site decisions.
Every fault kind owns an independent child stream spawned from the
plan's seed, so the decision sequence of one kind is invariant to how
other kinds interleave with it -- two runs of the same seeded campaign
make bit-identical decisions regardless of thread scheduling, which is
what lets the chaos harness pin survival-report digests.

Injection sites never import this module's consumers: the RCC, the
sensor and the runtime each accept an optional fault clock and call the
kind-named hook (:meth:`FaultClock.hse_dropout`, ...).  A ``None``
clock leaves every hardened code path bit-identical to the pre-fault
behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import FaultInjectionError


class FaultKind(enum.Enum):
    """One injectable failure mode of the simulated board."""

    HSE_DROPOUT = "hse-dropout"
    PLL_LOCK_TIMEOUT = "pll-lock-timeout"
    SENSOR_DROPOUT = "sensor-dropout"
    SENSOR_STUCK = "sensor-stuck"
    SENSOR_NACK = "sensor-nack"
    BROWNOUT_SAG = "brownout-sag"
    WATCHDOG_RESET = "watchdog-reset"
    WORKER_KILL = "worker-kill"


#: Stage spawn keys: one device's planning/deploy draws must not shift
#: its supervision draws (and vice versa), so each stage gets its own
#: child of the device's stream.  ``SeedSequence.spawn`` is
#: prefix-stable, so appending WORKER_KILL as the eighth kind left the
#: first seven streams bit-identical (the zero-rate digest pins hold).
PLAN_STAGE = 0
GOVERN_STAGE = 1
#: The serve tier's fault clock (the shard router SIGKILLing a worker
#: mid-request) -- not a per-device stage.
SERVE_STAGE = 2


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of a fault campaign.

    Rates are per-*opportunity* Bernoulli probabilities; an opportunity
    is one visit to the corresponding injection site (an HSE (re)start,
    a PLL lock wait, one sensor conversion, one ``measure()`` call, one
    telemetry epoch, one layer checkpoint).  ``scheduled`` pins faults
    to exact opportunity indices for surgical tests, independently of
    the rates.

    Attributes:
        seed: root seed; every (device, stage, kind) triple derives an
            independent stream from it.
        hse_dropout_rate: HSE oscillator failure per (re)start.
        pll_lock_timeout_rate: PLL lock failure per lock wait.
        sensor_dropout_rate: lost INA219 conversion per sample.
        sensor_stuck_rate: frozen power register per ``measure()``
            call (every sample of the train repeats the first value).
        sensor_nack_rate: I2C NACK per ``measure()`` call (the whole
            read fails).
        brownout_rate: supply sag per telemetry epoch.
        watchdog_rate: watchdog reset per layer checkpoint.
        worker_kill_rate: shard-worker process crash (SIGKILL) per
            routed planning request -- the serve tier's process-level
            fault, consumed by the router's
            :data:`SERVE_STAGE` clock rather than per-device clocks.
        brownout_derate: fraction of the battery's frequency cap a
            sagging rail still sustains.
        watchdog_reset_s: stall of one watchdog reset + checkpoint
            resume (system restart, clock tree back at boot state).
        max_consecutive_resets: watchdog resets tolerated at one layer
            before :class:`~repro.errors.WatchdogResetError` declares
            the device stuck.
    """

    seed: int = 0
    hse_dropout_rate: float = 0.0
    pll_lock_timeout_rate: float = 0.0
    sensor_dropout_rate: float = 0.0
    sensor_stuck_rate: float = 0.0
    sensor_nack_rate: float = 0.0
    brownout_rate: float = 0.0
    watchdog_rate: float = 0.0
    worker_kill_rate: float = 0.0
    brownout_derate: float = 0.6
    watchdog_reset_s: float = 2e-3
    max_consecutive_resets: int = 3
    scheduled: Tuple[Tuple[FaultKind, int], ...] = ()

    _RATE_FIELDS = {
        FaultKind.HSE_DROPOUT: "hse_dropout_rate",
        FaultKind.PLL_LOCK_TIMEOUT: "pll_lock_timeout_rate",
        FaultKind.SENSOR_DROPOUT: "sensor_dropout_rate",
        FaultKind.SENSOR_STUCK: "sensor_stuck_rate",
        FaultKind.SENSOR_NACK: "sensor_nack_rate",
        FaultKind.BROWNOUT_SAG: "brownout_rate",
        FaultKind.WATCHDOG_RESET: "watchdog_rate",
        FaultKind.WORKER_KILL: "worker_kill_rate",
    }

    def __post_init__(self) -> None:
        for kind, name in self._RATE_FIELDS.items():
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be a probability in [0, 1], got {rate}"
                )
        if not 0.0 < self.brownout_derate <= 1.0:
            raise FaultInjectionError(
                "brownout_derate must be in (0, 1]"
            )
        if self.watchdog_reset_s < 0:
            raise FaultInjectionError("watchdog_reset_s must be >= 0")
        if self.max_consecutive_resets < 1:
            raise FaultInjectionError(
                "max_consecutive_resets must be >= 1"
            )
        for entry in self.scheduled:
            kind, index = entry
            if not isinstance(kind, FaultKind) or index < 0:
                raise FaultInjectionError(
                    f"scheduled events must be (FaultKind, index >= 0) "
                    f"pairs, got {entry!r}"
                )

    def rate(self, kind: FaultKind) -> float:
        """Per-opportunity probability of ``kind``."""
        return getattr(self, self._RATE_FIELDS[kind])

    @property
    def any_faults(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(self.scheduled) or any(
            self.rate(kind) > 0.0 for kind in FaultKind
        )

    def clock_for(self, device_id: int = 0, stage: int = 0) -> "FaultClock":
        """Deterministic per-(device, stage) fault clock.

        The spawn key makes every clock independent of every other, so
        a pooled fleet draws identical faults whatever order its
        workers run in.
        """
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(device_id, stage)
        )
        return FaultClock(self, seq)

    def to_dict(self) -> Dict:
        """JSON-ready description (for campaign reports)."""
        return {
            "seed": self.seed,
            **{
                name: getattr(self, name)
                for name in sorted(self._RATE_FIELDS.values())
            },
            "brownout_derate": self.brownout_derate,
            "watchdog_reset_s": self.watchdog_reset_s,
            "max_consecutive_resets": self.max_consecutive_resets,
            "scheduled": [
                [kind.value, index] for kind, index in self.scheduled
            ],
        }


class FaultClock:
    """Deterministic fault decisions for one (device, stage).

    Each :class:`FaultKind` owns a private child RNG, an opportunity
    counter and an injection counter.  A zero-rate kind with no
    scheduled events never touches its RNG, so an all-zero plan is
    decision-free (and an absent clock is byte-identical to one).

    Args:
        plan: the campaign description (rates, severities, schedule).
        seed_seq: entropy source; ``plan.seed`` when omitted.  Use
            :meth:`FaultPlan.clock_for` for fleet-stable streams.
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed_seq: Optional[np.random.SeedSequence] = None,
    ):
        self.plan = plan
        if seed_seq is None:
            seed_seq = np.random.SeedSequence(entropy=plan.seed)
        kinds = list(FaultKind)
        children = seed_seq.spawn(len(kinds))
        self._rngs = {
            kind: np.random.default_rng(child)
            for kind, child in zip(kinds, children)
        }
        self.opportunities: Dict[FaultKind, int] = {k: 0 for k in kinds}
        self.injected: Dict[FaultKind, int] = {k: 0 for k in kinds}
        self._scheduled: Dict[FaultKind, frozenset] = {}
        for kind, index in plan.scheduled:
            self._scheduled[kind] = self._scheduled.get(
                kind, frozenset()
            ) | {index}

    def trips(self, kind: FaultKind) -> bool:
        """One opportunity for ``kind``; True when the fault fires."""
        index = self.opportunities[kind]
        self.opportunities[kind] = index + 1
        hit = index in self._scheduled.get(kind, ())
        if not hit:
            rate = self.plan.rate(kind)
            if rate > 0.0:
                hit = bool(self._rngs[kind].random() < rate)
        if hit:
            self.injected[kind] += 1
        return hit

    # -- kind-named hooks ---------------------------------------------------
    # The hardened subsystems call these so they never need to import
    # the FaultKind enum (keeps clock/power/engine free of any
    # dependency on this package).

    def hse_dropout(self) -> bool:
        """The HSE fails at an oscillator (re)start."""
        return self.trips(FaultKind.HSE_DROPOUT)

    def pll_lock_timeout(self) -> bool:
        """The PLL misses its lock window after a reprogram."""
        return self.trips(FaultKind.PLL_LOCK_TIMEOUT)

    def sensor_dropout(self) -> bool:
        """One INA219 conversion is lost."""
        return self.trips(FaultKind.SENSOR_DROPOUT)

    def sensor_stuck(self) -> bool:
        """The power register freezes for one measurement train."""
        return self.trips(FaultKind.SENSOR_STUCK)

    def sensor_nack(self) -> bool:
        """The I2C transaction NACKs; the whole read fails."""
        return self.trips(FaultKind.SENSOR_NACK)

    def brownout_sag(self) -> bool:
        """The supply sags below the nominal rail for one epoch."""
        return self.trips(FaultKind.BROWNOUT_SAG)

    def watchdog_reset(self) -> bool:
        """The watchdog fires at a layer checkpoint."""
        return self.trips(FaultKind.WATCHDOG_RESET)

    def worker_kill(self) -> bool:
        """A shard worker is SIGKILLed mid-request (serve tier)."""
        return self.trips(FaultKind.WORKER_KILL)

    # -- reporting ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        """Faults fired so far, all kinds."""
        return sum(self.injected.values())

    def injected_by_kind(self) -> Dict[str, int]:
        """Injection counters keyed by kind value (JSON-ready)."""
        return {
            kind.value: count
            for kind, count in sorted(
                self.injected.items(), key=lambda kv: kv[0].value
            )
            if count > 0
        }
