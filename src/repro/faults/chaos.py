"""Chaos harness: seeded fault campaigns over a simulated fleet.

A campaign plans a heterogeneous fleet under an injected
:class:`~repro.faults.plan.FaultPlan` (the scheduler's retry +
quarantine machinery absorbing the planning-stage faults), then
supervises every surviving device through governor epochs twice --
once under its deterministic per-device fault stream and once
fault-free -- so the report can price the **energy overhead of
failsafe operation** (retry stalls, HSI failsafe windows, watchdog
replays) against the same device's nominal behaviour.

Everything is deterministic: per-device fault streams are spawn-keyed
by (device id, stage) so thread scheduling cannot shift a single
decision, and :meth:`ChaosReport.digest` hashes the full-precision
rows -- two same-seed campaigns must produce byte-identical reports,
which the CI chaos smoke job asserts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import FaultInjectionError
from ..nn.graph import Model
from ..obs.tracing import span
from ..optimize.qos import QoSLevel
from .plan import FaultPlan, GOVERN_STAGE


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos campaign.

    Attributes:
        devices: fleet size.
        seed: fleet-sampling seed (device hardware variation; the
            *fault* seed lives on the :class:`FaultPlan`).
        epochs: governor telemetry epochs per device.
        qos_slack: relative latency slack of the fleet's QoS level.
        max_workers: planning thread-pool width.
        max_plan_attempts: scheduler retry budget per device.
        boards: registry board names to mix the fleet across
            (``None`` keeps the homogeneous default-board fleet and
            its pre-registry report digests).
    """

    devices: int = 64
    seed: int = 0
    epochs: int = 4
    qos_slack: float = 0.30
    max_workers: int = 4
    max_plan_attempts: int = 3
    boards: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise FaultInjectionError("devices must be >= 1")
        if self.epochs < 1:
            raise FaultInjectionError("epochs must be >= 1")
        if self.qos_slack < 0:
            raise FaultInjectionError("qos_slack must be >= 0")
        if self.max_workers < 1:
            raise FaultInjectionError("max_workers must be >= 1")
        if self.max_plan_attempts < 1:
            raise FaultInjectionError("max_plan_attempts must be >= 1")
        if self.boards is not None:
            if not self.boards:
                raise FaultInjectionError(
                    "boards must be None or non-empty"
                )
            object.__setattr__(self, "boards", tuple(self.boards))


@dataclass(frozen=True)
class DeviceSurvival:
    """One device's row of the survival report.

    Attributes:
        device_id: stable fleet index.
        planned: planning + deployment succeeded (possibly after
            retries).
        attempts: planning attempts consumed.
        quarantined: the scheduler pulled the device from the fleet.
        error: the captured failure when not planned.
        epochs: governor epochs run (0 when not planned).
        epochs_met: epochs whose window met the QoS budget.
        invalid_epochs: epochs with unusable telemetry.
        replans: governor re-solves applied.
        css_events / watchdog_resets / pll_retries: hardening
            interventions absorbed during supervision.
        injected: faults injected during supervision, by kind value.
        energy_j: mean per-epoch measured energy under faults (valid
            epochs only).
        baseline_energy_j: same device, same epochs, fault-free.
    """

    device_id: int
    planned: bool
    attempts: int = 1
    quarantined: bool = False
    error: Optional[str] = None
    epochs: int = 0
    epochs_met: int = 0
    invalid_epochs: int = 0
    replans: int = 0
    css_events: int = 0
    watchdog_resets: int = 0
    pll_retries: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    energy_j: float = 0.0
    baseline_energy_j: float = 0.0


@dataclass
class ChaosReport:
    """Survival report of one seeded chaos campaign."""

    model_name: str
    qos_s: float
    fault_plan: Dict
    config: Dict
    rows: List[DeviceSurvival] = field(default_factory=list)

    # -- aggregates --------------------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Fleet size (quarantined devices included)."""
        return len(self.rows)

    @property
    def planned(self) -> List[DeviceSurvival]:
        """Devices that survived planning."""
        return [r for r in self.rows if r.planned]

    @property
    def quarantined_ids(self) -> List[int]:
        """Sorted ids of quarantined devices."""
        return sorted(r.device_id for r in self.rows if r.quarantined)

    @property
    def quarantine_free_fraction(self) -> float:
        """Share of the fleet never quarantined."""
        if not self.rows:
            return 0.0
        return 1.0 - len(self.quarantined_ids) / len(self.rows)

    @property
    def qos_met_fraction(self) -> float:
        """Epoch-weighted QoS survival across planned devices."""
        total = sum(r.epochs for r in self.planned)
        if total == 0:
            return 0.0
        return sum(r.epochs_met for r in self.planned) / total

    @property
    def total_retries(self) -> int:
        """Extra planning attempts spent across the fleet."""
        return sum(r.attempts - 1 for r in self.rows)

    @property
    def total_injected(self) -> Dict[str, int]:
        """Supervision-stage faults injected, summed by kind."""
        totals: Dict[str, int] = {}
        for row in self.rows:
            for kind, count in row.injected.items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    @property
    def energy_overhead(self) -> float:
        """Mean fractional energy overhead of failsafe operation.

        Per device: faulted mean epoch energy over the fault-free
        mean, minus one; averaged over devices with a usable pair of
        measurements.  Positive values price the retries, failsafe
        windows and watchdog replays the campaign forced.
        """
        overheads = [
            r.energy_j / r.baseline_energy_j - 1.0
            for r in self.planned
            if r.baseline_energy_j > 0 and r.energy_j > 0
        ]
        if not overheads:
            return 0.0
        return sum(overheads) / len(overheads)

    # -- serialization -----------------------------------------------------------

    def _canonical_rows(self) -> List[Dict]:
        return [
            {
                "device_id": r.device_id,
                "planned": r.planned,
                "attempts": r.attempts,
                "quarantined": r.quarantined,
                "error": r.error,
                "epochs": r.epochs,
                "epochs_met": r.epochs_met,
                "invalid_epochs": r.invalid_epochs,
                "replans": r.replans,
                "css_events": r.css_events,
                "watchdog_resets": r.watchdog_resets,
                "pll_retries": r.pll_retries,
                "injected": dict(sorted(r.injected.items())),
                "energy_j": r.energy_j,
                "baseline_energy_j": r.baseline_energy_j,
            }
            for r in sorted(self.rows, key=lambda r: r.device_id)
        ]

    def digest(self) -> str:
        """SHA-256 over the canonical rows -- the determinism anchor.

        ``repr`` of a float round-trips the exact binary value, so two
        campaigns agree on the digest iff they agree bit-for-bit.
        """
        payload = json.dumps(
            {
                "model": self.model_name,
                "qos_s": repr(self.qos_s),
                "fault_plan": {
                    k: (repr(v) if isinstance(v, float) else v)
                    for k, v in self.fault_plan.items()
                },
                "rows": [
                    {
                        k: (repr(v) if isinstance(v, float) else v)
                        for k, v in row.items()
                    }
                    for row in self._canonical_rows()
                ],
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def rows_digest(self) -> str:
        """SHA-256 over the survival rows alone (no plan echo).

        The anchor for *transparency* invariants: a fault stream that
        only the serve tier consumes (WORKER_KILL) may change the plan
        echo in :meth:`digest`, but must never move this value.
        """
        payload = json.dumps(
            [
                {
                    k: (repr(v) if isinstance(v, float) else v)
                    for k, v in row.items()
                }
                for row in self._canonical_rows()
            ],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> Dict:
        """JSON-ready representation (aggregates + rows + digest)."""
        return {
            "model": self.model_name,
            "qos_ms": self.qos_s * 1e3,
            "fault_plan": self.fault_plan,
            "config": self.config,
            "n_devices": self.n_devices,
            "planned": len(self.planned),
            "quarantined": self.quarantined_ids,
            "quarantine_free_fraction": self.quarantine_free_fraction,
            "qos_met_fraction": self.qos_met_fraction,
            "energy_overhead": self.energy_overhead,
            "total_retries": self.total_retries,
            "total_injected": self.total_injected,
            "digest": self.digest(),
            "devices": self._canonical_rows(),
        }

    def summary(self) -> str:
        """Multi-line human-readable survival report."""
        injected = self.total_injected
        lines = [
            f"chaos campaign: {self.n_devices} devices, model "
            f"{self.model_name!r}, QoS {self.qos_s * 1e3:.3f} ms",
            f"  survived planning: {len(self.planned)}/{self.n_devices} "
            f"({self.total_retries} retries, "
            f"{len(self.quarantined_ids)} quarantined -> "
            f"{self.quarantine_free_fraction:.1%} quarantine-free)",
            f"  QoS met: {self.qos_met_fraction:.1%} of epochs; "
            f"failsafe energy overhead {self.energy_overhead:+.2%}",
        ]
        if injected:
            parts = ", ".join(f"{k} x{v}" for k, v in injected.items())
            lines.append(f"  injected (supervision): {parts}")
        hardened = (
            sum(r.css_events for r in self.rows),
            sum(r.watchdog_resets for r in self.rows),
            sum(r.pll_retries for r in self.rows),
        )
        lines.append(
            f"  absorbed: {hardened[0]} CSS failsafes, "
            f"{hardened[1]} watchdog resets, {hardened[2]} PLL retries"
        )
        lines.append(f"  digest: {self.digest()}")
        return "\n".join(lines)


def run_campaign(
    model: Model,
    fault_plan: FaultPlan,
    config: Optional[ChaosConfig] = None,
) -> ChaosReport:
    """Run one seeded chaos campaign and build the survival report.

    Plans the fleet under planning-stage fault injection (pooled; the
    scheduler's retry/quarantine machinery handles the casualties),
    then supervises every planned device through governor epochs under
    its supervision-stage fault stream and once more fault-free for
    the energy-overhead baseline.

    No exception escapes a healthy campaign: device failures are
    captured in the rows.  Two calls with identical arguments produce
    byte-identical reports (:meth:`ChaosReport.digest`).
    """
    config = config or ChaosConfig()
    # The span is strictly observational: the report rows (and their
    # byte-identity-gated digest) are computed exactly as before.
    with span(
        "chaos.campaign",
        model=model.name,
        devices=config.devices,
        seed=config.seed,
    ):
        return _run_campaign(model, fault_plan, config)


def _run_campaign(
    model: Model,
    fault_plan: FaultPlan,
    config: ChaosConfig,
) -> ChaosReport:
    # Imported here, not at module level: the scheduler itself imports
    # the fault models, and this module closes that loop.
    from ..fleet.governor import GovernorConfig, supervise_device
    from ..fleet.scheduler import FleetScheduler
    from ..fleet.variation import sample_fleet

    fleet = sample_fleet(
        config.devices, seed=config.seed, boards=config.boards
    )
    level = QoSLevel(name=f"chaos+{config.qos_slack:.0%}", slack=config.qos_slack)
    scheduler = FleetScheduler(
        model,
        qos_level=level,
        max_workers=config.max_workers,
        fault_plan=fault_plan,
        max_plan_attempts=config.max_plan_attempts,
    )
    results = scheduler.run(fleet, pooled=True)
    gov_cfg = GovernorConfig(epochs=config.epochs)
    qos_s = 0.0
    rows: List[DeviceSurvival] = []
    for result in results:
        if result.error is not None or result.optimized is None:
            rows.append(
                DeviceSurvival(
                    device_id=result.device_id,
                    planned=False,
                    attempts=result.attempts,
                    quarantined=result.quarantined,
                    error=result.error,
                )
            )
            continue
        qos_s = result.optimized.qos_s
        pipeline = scheduler.pipeline_for(result.profile)
        clock = None
        if fault_plan.any_faults:
            clock = fault_plan.clock_for(
                result.device_id, stage=GOVERN_STAGE
            )
        governed = supervise_device(
            pipeline, result.profile, model, result.optimized,
            gov_cfg, fault_clock=clock,
        )
        baseline = supervise_device(
            pipeline, result.profile, model, result.optimized, gov_cfg
        )
        valid = [s for s in governed.samples if s.valid]
        energy = (
            sum(s.measured_energy_j for s in valid) / len(valid)
            if valid
            else 0.0
        )
        base_valid = [s for s in baseline.samples if s.valid]
        base_energy = (
            sum(s.measured_energy_j for s in base_valid) / len(base_valid)
            if base_valid
            else 0.0
        )
        rows.append(
            DeviceSurvival(
                device_id=result.device_id,
                planned=True,
                attempts=result.attempts,
                quarantined=result.quarantined,
                epochs=len(governed.samples),
                epochs_met=governed.epochs_met,
                invalid_epochs=governed.invalid_epochs,
                replans=governed.replans,
                css_events=governed.css_events,
                watchdog_resets=governed.watchdog_resets,
                pll_retries=governed.pll_retries,
                injected=(
                    clock.injected_by_kind() if clock is not None else {}
                ),
                energy_j=energy,
                baseline_energy_j=base_energy,
            )
        )
    return ChaosReport(
        model_name=model.name,
        qos_s=qos_s,
        fault_plan=fault_plan.to_dict(),
        config={
            "devices": config.devices,
            "seed": config.seed,
            "epochs": config.epochs,
            "qos_slack": config.qos_slack,
            "max_workers": config.max_workers,
            "max_plan_attempts": config.max_plan_attempts,
        },
        rows=rows,
    )
