"""Staged fault campaigns: time-windowed fault plans for scenarios.

A chaos run (:mod:`repro.faults.chaos`) applies one :class:`FaultPlan`
uniformly over a campaign.  Long-horizon scenarios need *staged*
injection instead: a brownout wave between simulated hours 6 and 9, a
sensor-failure burst overnight, nothing in between.  This module
layers that on the existing fault machinery without touching it:

* :class:`FaultStage` binds one :class:`FaultPlan` to a half-open
  simulated-time window ``[start_s, end_s)``;
* :class:`FaultCampaign` is an ordered, non-overlapping set of stages
  with ``stage_at(t)`` lookup;
* :class:`CampaignClocks` lazily materializes one deterministic
  :class:`~repro.faults.plan.FaultClock` per (device, stage) so the
  decision stream of one stage never shifts another's.  Stage clocks
  spawn at :data:`SCENARIO_STAGE_BASE` + stage index, disjoint from the
  scheduler's ``PLAN_STAGE`` and the governor's ``GOVERN_STAGE`` keys,
  so a scenario that also plans under faults stays order-invariant.

Outside every stage window the clock is ``None`` -- the hardened code
paths then run bit-identical to the fault-free build, which is what
lets the zero-event scenario pin the plain fleet digest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import FaultInjectionError
from .plan import FaultClock, FaultPlan

#: First spawn-key stage index used by campaign clocks; PLAN_STAGE (0)
#: and GOVERN_STAGE (1) stay reserved for the scheduler/governor
#: streams of the same seed.
SCENARIO_STAGE_BASE = 16


@dataclass(frozen=True)
class FaultStage:
    """One fault plan active over a simulated-time window.

    Attributes:
        start_s: window start (inclusive), simulated seconds.
        end_s: window end (exclusive); ``inf`` keeps the stage active
            for the rest of the scenario.
        plan: the fault mix injected while the stage is active.
        label: human-readable tag carried into reports and audits.
    """

    start_s: float
    end_s: float
    plan: FaultPlan
    label: str = ""

    def __post_init__(self) -> None:
        if self.start_s < 0 or math.isnan(self.start_s):
            raise FaultInjectionError("start_s must be >= 0")
        if not self.end_s > self.start_s:
            raise FaultInjectionError("end_s must exceed start_s")

    def active_at(self, t_s: float) -> bool:
        """Whether ``t_s`` falls inside the stage window."""
        return self.start_s <= t_s < self.end_s

    def to_dict(self) -> Dict:
        """JSON-ready description (for scenario reports)."""
        return {
            "start_s": self.start_s,
            "end_s": self.end_s if math.isfinite(self.end_s) else None,
            "label": self.label,
            "plan": self.plan.to_dict(),
        }


@dataclass(frozen=True)
class FaultCampaign:
    """An ordered, non-overlapping sequence of fault stages.

    Stages are sorted by start time at construction; overlapping
    windows are rejected -- a simulated instant must map to at most
    one fault mix, or per-stage decision streams would race.
    """

    stages: Tuple[FaultStage, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.stages, key=lambda s: (s.start_s, s.end_s))
        )
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start_s < earlier.end_s:
                raise FaultInjectionError(
                    f"fault stages overlap: "
                    f"[{earlier.start_s}, {earlier.end_s}) and "
                    f"[{later.start_s}, {later.end_s})"
                )
        object.__setattr__(self, "stages", ordered)

    @property
    def any_faults(self) -> bool:
        """Whether any stage can inject anything at all."""
        return any(stage.plan.any_faults for stage in self.stages)

    def stage_index_at(self, t_s: float) -> Optional[int]:
        """Index of the stage covering ``t_s`` (None outside all)."""
        for index, stage in enumerate(self.stages):
            if stage.active_at(t_s):
                return index
            if t_s < stage.start_s:
                return None
        return None

    def stage_at(self, t_s: float) -> Optional[FaultStage]:
        """The stage covering ``t_s`` (None outside all windows)."""
        index = self.stage_index_at(t_s)
        return None if index is None else self.stages[index]

    def to_dict(self) -> Dict:
        """JSON-ready description (for scenario reports)."""
        return {"stages": [stage.to_dict() for stage in self.stages]}


class CampaignClocks:
    """Deterministic per-(device, stage) clocks for a campaign.

    Clocks are created lazily on first use and cached, so a device
    that re-enters a stage window (the engine queries every tick)
    continues its stream rather than restarting it.

    Args:
        campaign: the staged campaign.
    """

    def __init__(self, campaign: FaultCampaign):
        self.campaign = campaign
        self._clocks: Dict[Tuple[int, int], FaultClock] = {}

    def clock_at(
        self, device_id: int, t_s: float
    ) -> Optional[FaultClock]:
        """The device's fault clock at ``t_s`` (None between stages)."""
        index = self.campaign.stage_index_at(t_s)
        if index is None:
            return None
        key = (device_id, index)
        clock = self._clocks.get(key)
        if clock is None:
            stage = self.campaign.stages[index]
            clock = stage.plan.clock_for(
                device_id, stage=SCENARIO_STAGE_BASE + index
            )
            self._clocks[key] = clock
        return clock

    def injected_by_kind(self) -> Dict[str, int]:
        """Total injections across every device and stage (JSON-ready)."""
        totals: Dict[str, int] = {}
        for clock in self._clocks.values():
            for kind, count in clock.injected_by_kind().items():
                totals[kind] = totals.get(kind, 0) + count
        return dict(sorted(totals.items()))

    @property
    def total_injected(self) -> int:
        """Faults fired so far, all devices, all stages."""
        return sum(
            clock.total_injected for clock in self._clocks.values()
        )
