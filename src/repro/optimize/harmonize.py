"""Schedule harmonization: trading Pareto-point optimality for fewer
PLL re-locks.

The paper's MCKP (Step 3) treats layers independently, but the runtime
pays a ~200 us PLL reprogram whenever *consecutive* layers select
different HFO frequencies. On millisecond-scale models this
sequence-dependent cost can exceed the energy the per-layer optimum
saves. The harmonization pass is a post-optimization local search:
for every layer whose HFO differs from its predecessor's, try adopting
the predecessor's HFO (re-picking the best Pareto point at that
frequency) and keep the move iff the *deployed* window energy
improves while the QoS still holds. It converges because every
accepted move strictly reduces measured energy.

This is an extension beyond the paper (benchmarked as experiment E9);
the main pipeline already bounds re-lock damage with its refinement
loop, so harmonization is opt-in.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..dse.explorer import SolutionPoint
from ..engine.runtime import DVFSRuntime, InferenceReport
from ..engine.schedule import DeploymentPlan, LayerPlan
from ..errors import SolverError
from ..nn.graph import Model


@dataclasses.dataclass
class HarmonizationResult:
    """Outcome of one harmonization pass."""

    plan: DeploymentPlan
    report: InferenceReport
    initial_report: InferenceReport
    moves_applied: int = 0

    @property
    def energy_improvement(self) -> float:
        """Fractional window-energy reduction achieved."""
        if self.initial_report.energy_j == 0:
            return 0.0
        return 1.0 - self.report.energy_j / self.initial_report.energy_j

    @property
    def relocks_removed(self) -> int:
        """PLL re-locks eliminated by the pass."""
        return self.initial_report.relock_count - self.report.relock_count


def _with_point(
    plan: DeploymentPlan, node_id: int, point: SolutionPoint
) -> DeploymentPlan:
    layer_plans = dict(plan.layer_plans)
    layer_plans[node_id] = LayerPlan(
        node_id=node_id,
        granularity=point.granularity,
        hfo=point.hfo,
        predicted_latency_s=point.latency_s,
        predicted_energy_j=point.energy_j,
    )
    return dataclasses.replace(plan, layer_plans=layer_plans)


def harmonize_plan(
    runtime: DVFSRuntime,
    model: Model,
    plan: DeploymentPlan,
    fronts: Dict[int, Sequence[SolutionPoint]],
    qos_s: Optional[float] = None,
    max_passes: int = 3,
) -> HarmonizationResult:
    """Reduce HFO changes in ``plan`` when that saves deployed energy.

    Args:
        runtime: the DVFS runtime used to measure candidate schedules.
        model: the model the plan targets.
        plan: the starting schedule.
        fronts: per-layer Pareto points (from the DSE) to re-pick from.
        qos_s: latency budget candidates must respect (defaults to the
            plan's own budget; None disables the latency check).
        max_passes: sweep limit; each pass walks all layers once.

    Raises:
        SolverError: when a scheduled layer has no Pareto points to
            re-pick from.
    """
    qos = qos_s if qos_s is not None else plan.qos_s

    def measure(candidate: DeploymentPlan) -> InferenceReport:
        return runtime.run(
            model,
            candidate,
            qos_s=qos,
            initial_config=candidate.initial_config(),
        )

    best_plan = plan
    best_report = measure(plan)
    initial_report = best_report
    moves = 0
    node_ids: List[int] = sorted(plan.layer_plans)
    for node_id in node_ids:
        if node_id not in fronts:
            raise SolverError(
                f"no Pareto points supplied for scheduled node {node_id}"
            )
    for _ in range(max_passes):
        improved = False
        for position, node_id in enumerate(node_ids):
            if position == 0:
                continue
            prev_hfo = best_plan.layer_plans[node_ids[position - 1]].hfo
            current = best_plan.layer_plans[node_id]
            if current.hfo == prev_hfo:
                continue
            candidates = [
                p for p in fronts[node_id] if p.hfo == prev_hfo
            ]
            if not candidates:
                continue
            point = min(candidates, key=lambda p: p.energy_j)
            trial_plan = _with_point(best_plan, node_id, point)
            trial_report = measure(trial_plan)
            if qos is not None and trial_report.latency_s > qos:
                continue
            if trial_report.energy_j < best_report.energy_j:
                best_plan = trial_plan
                best_report = trial_report
                improved = True
                moves += 1
        if not improved:
            break
    return HarmonizationResult(
        plan=best_plan,
        report=best_report,
        initial_report=initial_report,
        moves_applied=moves,
    )
