"""QoS-aware energy optimization: MCKP DP solver, greedy baseline, QoS."""

from .greedy import solve_mckp_greedy
from .harmonize import HarmonizationResult, harmonize_plan
from .mckp import (
    MCKPItem,
    MCKPSolution,
    min_total_weight,
    reprice_classes,
    solve_mckp_bruteforce,
    solve_mckp_dp,
    to_maximization,
)
from .qos import MODERATE, PAPER_QOS_LEVELS, RELAXED, TIGHT, QoSLevel

__all__ = [
    "solve_mckp_greedy",
    "HarmonizationResult",
    "harmonize_plan",
    "MCKPItem",
    "MCKPSolution",
    "min_total_weight",
    "reprice_classes",
    "solve_mckp_bruteforce",
    "solve_mckp_dp",
    "to_maximization",
    "MODERATE",
    "PAPER_QOS_LEVELS",
    "RELAXED",
    "TIGHT",
    "QoSLevel",
]
