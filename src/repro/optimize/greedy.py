"""Greedy / incremental-efficiency MCKP baseline solver.

The classical LP-relaxation-inspired greedy for the minimization MCKP:
start from the minimum-energy item of every class (the unconstrained
optimum) and, while the latency budget is violated, repeatedly apply
the single swap with the best *incremental efficiency* -- the least
extra energy per second of latency saved.  This is the standard
approximate companion to the exact DP (Kellerer et al., ch. 11) and is
used here as the ablation baseline quantifying what the paper's exact
pseudo-polynomial solver buys (benchmark E7).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import QoSInfeasibleError, SolverError
from .mckp import MCKPItem, MCKPSolution, min_total_weight


def _efficiency_candidates(
    cls: Sequence[MCKPItem], current: MCKPItem
) -> List[Tuple[float, MCKPItem]]:
    """(efficiency, item) swaps that reduce weight, best first.

    Efficiency is extra value per unit of weight saved; lower is
    better.  Items that save no weight are never useful while the
    budget is violated.
    """
    candidates: List[Tuple[float, MCKPItem]] = []
    for item in cls:
        saved = current.weight - item.weight
        if saved <= 0:
            continue
        extra = item.value - current.value
        candidates.append((extra / saved, item))
    candidates.sort(key=lambda pair: pair[0])
    return candidates


def solve_mckp_greedy(
    classes: Sequence[Sequence[MCKPItem]],
    budget: float,
) -> MCKPSolution:
    """Greedy solver: feasible, near-optimal, no optimality guarantee.

    Raises:
        QoSInfeasibleError: when even the minimum-weight selection
            exceeds the budget.
        SolverError: for malformed instances.
    """
    if not classes:
        raise SolverError("MCKP instance needs at least one class")
    for k, cls in enumerate(classes):
        if not cls:
            raise SolverError(f"MCKP class {k} is empty")
    tightest = min_total_weight(classes)
    if tightest > budget:
        raise QoSInfeasibleError(qos_s=budget, min_latency_s=tightest)

    # Unconstrained optimum: min energy per class (ties -> min weight).
    selection: List[MCKPItem] = [
        min(cls, key=lambda item: (item.value, item.weight)) for cls in classes
    ]
    total_weight = sum(item.weight for item in selection)
    while total_weight > budget:
        best_swap: Optional[Tuple[float, int, MCKPItem]] = None
        for k, cls in enumerate(classes):
            candidates = _efficiency_candidates(cls, selection[k])
            if not candidates:
                continue
            efficiency, item = candidates[0]
            if best_swap is None or efficiency < best_swap[0]:
                best_swap = (efficiency, k, item)
        if best_swap is None:
            # Cannot happen when the tightest selection fits, but guard
            # against pathological floating-point budgets.
            raise QoSInfeasibleError(qos_s=budget, min_latency_s=tightest)
        _, k, item = best_swap
        selection[k] = item
        # Recompute instead of updating incrementally: repeated
        # subtraction accumulates float error and can leave the loop
        # spinning on a phantom few-ulp budget violation.
        total_weight = sum(selected.weight for selected in selection)
    return MCKPSolution(items=selection)
