"""Multiple-Choice Knapsack solver (paper Step 3, Eqs. 2-5).

The QoS-aware energy optimization selects exactly one (granularity,
HFO) Pareto point per layer, minimizing total energy subject to the
latency budget:

    minimize   sum_k sum_j E_j^k x_kj
    subject to sum_k sum_j t_j^k x_kj <= QoS,   sum_j x_kj = 1,
               x_kj in {0, 1}

This is the Multiple-Choice Knapsack Problem.  Following the paper
(and Kellerer/Pferschy/Pisinger, ch. 11), the minimization is convertible
to the classical maximization form by replacing each value with its
per-class complement (:func:`to_maximization`); the solver itself runs
a pseudo-polynomial dynamic program over a discretized time axis.

Discretization note: item latencies are rounded *up* to the time grid,
so a schedule the DP declares feasible is feasible in real time too --
the solver never overshoots the QoS at the cost of (bounded, tested)
suboptimality versus the continuous optimum.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import QoSInfeasibleError, SolverError
from ..obs.tracing import span


@dataclass(frozen=True)
class MCKPItem:
    """One candidate of one class.

    Attributes:
        weight: resource consumption (layer latency in seconds).
        value: objective contribution (layer energy in joules).
        payload: arbitrary caller object (e.g. the SolutionPoint).
    """

    weight: float
    value: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.weight < 0 or self.value < 0:
            raise SolverError("MCKP items need non-negative weight and value")


@dataclass
class MCKPSolution:
    """A complete selection (one item per class)."""

    items: List[MCKPItem] = field(default_factory=list)

    @property
    def total_weight(self) -> float:
        """Sum of selected weights (total latency)."""
        return sum(item.weight for item in self.items)

    @property
    def total_value(self) -> float:
        """Sum of selected values (total energy)."""
        return sum(item.value for item in self.items)


def _validate_classes(classes: Sequence[Sequence[MCKPItem]]) -> None:
    if not classes:
        raise SolverError("MCKP instance needs at least one class")
    for k, cls in enumerate(classes):
        if not cls:
            raise SolverError(f"MCKP class {k} is empty")


def min_total_weight(classes: Sequence[Sequence[MCKPItem]]) -> float:
    """Tightest achievable total weight (min item per class)."""
    return sum(min(item.weight for item in cls) for cls in classes)


def to_maximization(
    classes: Sequence[Sequence[MCKPItem]],
) -> Tuple[List[List[MCKPItem]], float]:
    """Kellerer-style min -> max transformation.

    Each item's value becomes ``U_k - value`` where ``U_k`` is its
    class's maximum value.  Maximizing the transformed instance selects
    exactly the items that minimize the original one, and
    ``sum(U_k) - max_objective == min_objective``.

    Returns:
        (transformed classes, sum of the per-class offsets U_k).
    """
    _validate_classes(classes)
    transformed: List[List[MCKPItem]] = []
    offset = 0.0
    for cls in classes:
        u_k = max(item.value for item in cls)
        offset += u_k
        transformed.append(
            [
                MCKPItem(
                    weight=item.weight,
                    value=u_k - item.value,
                    payload=item.payload,
                )
                for item in cls
            ]
        )
    return transformed, offset


def reprice_classes(
    classes: Sequence[Sequence[MCKPItem]],
    extra_power_w: float = 0.0,
    item_filter=None,
) -> List[List[MCKPItem]]:
    """Rebuild MCKP classes under drifted operating conditions.

    The fleet governor re-solves the knapsack when a device's power
    curves move away from the ones the Pareto fronts were priced at,
    *without* re-running the design-space exploration:

    * ``extra_power_w`` adds a constant power offset to every item --
      ``value' = value + extra_power_w * weight``.  A thermal leakage
      ramp is exactly this shape (leakage is state-independent to
      first order), and it genuinely re-ranks items: slow choices
      absorb more of the extra joules, so a hot device is pushed
      toward faster, shorter schedules.
    * ``item_filter`` drops items that are no longer *feasible*, e.g.
      HFOs whose VOS scale a sagging battery can no longer supply.

    Weights (latencies) are untouched -- drift moves power, not cycle
    counts.

    Raises:
        QoSInfeasibleError: when filtering empties a class (no
            operating point of that layer is feasible any more).
    """
    _validate_classes(classes)
    if extra_power_w < 0:
        raise SolverError("extra_power_w must be >= 0")
    repriced: List[List[MCKPItem]] = []
    for k, cls in enumerate(classes):
        items = [
            MCKPItem(
                weight=item.weight,
                value=item.value + extra_power_w * item.weight,
                payload=item.payload,
            )
            for item in cls
            if item_filter is None or item_filter(item)
        ]
        if not items:
            raise QoSInfeasibleError(
                qos_s=0.0, min_latency_s=min(i.weight for i in cls)
            )
        repriced.append(items)
    return repriced


def solve_mckp_dp(
    classes: Sequence[Sequence[MCKPItem]],
    budget: float,
    resolution: int = 4000,
) -> MCKPSolution:
    """Pseudo-polynomial DP solver for the minimization MCKP.

    Args:
        classes: one item list per layer (Pareto points).
        budget: the QoS latency budget in seconds.
        resolution: number of time-grid steps the budget is split into;
            larger = closer to the continuous optimum, cost grows
            linearly.

    Returns:
        The minimum-energy selection whose (real-valued) total weight
        respects the budget.

    Raises:
        QoSInfeasibleError: when even the per-class minimum weights
            exceed the budget (on the conservative grid).
        SolverError: for malformed instances.
    """
    with span(
        "mckp.solve", classes=len(classes), resolution=resolution
    ):
        return _solve_mckp_dp(classes, budget, resolution)


def _solve_mckp_dp(
    classes: Sequence[Sequence[MCKPItem]],
    budget: float,
    resolution: int,
) -> MCKPSolution:
    _validate_classes(classes)
    if budget < 0:
        raise SolverError(f"budget must be >= 0, got {budget}")
    if resolution < 1:
        raise SolverError("resolution must be >= 1")
    tightest = min_total_weight(classes)
    if tightest > budget:
        raise QoSInfeasibleError(qos_s=budget, min_latency_s=tightest)

    step = budget / resolution if budget > 0 else 1.0
    n_states = resolution + 1

    def discretize(weight: float) -> int:
        return int(math.ceil(weight / step - 1e-12))

    inf = float("inf")
    dp = np.full(n_states, inf)
    dp[0] = 0.0
    choices: List[np.ndarray] = []
    for k, cls in enumerate(classes):
        new_dp = np.full(n_states, inf)
        choice = np.full(n_states, -1, dtype=np.int32)
        for j, item in enumerate(cls):
            w = discretize(item.weight)
            if w >= n_states:
                continue
            if w == 0:
                candidate = dp + item.value
            else:
                candidate = np.full(n_states, inf)
                candidate[w:] = dp[:-w] + item.value
            better = candidate < new_dp
            new_dp = np.where(better, candidate, new_dp)
            choice[better] = j
        if not np.isfinite(new_dp).any():
            # Conservative rounding pushed every candidate past the
            # grid even though the continuous instance looked feasible.
            raise QoSInfeasibleError(qos_s=budget, min_latency_s=tightest)
        dp = new_dp
        choices.append(choice)

    # dp is not necessarily monotone per-state, so take the best state.
    best_t = int(np.argmin(dp))
    best = dp[best_t]
    if not math.isfinite(best):
        raise QoSInfeasibleError(qos_s=budget, min_latency_s=tightest)
    # Reconstruct the selection backwards through the choice tables.
    selected: List[MCKPItem] = []
    t = best_t
    for k in range(len(classes) - 1, -1, -1):
        j = int(choices[k][t])
        if j < 0:
            raise SolverError("DP reconstruction failed (corrupt tables)")
        item = classes[k][j]
        selected.append(item)
        t -= discretize(item.weight)
    selected.reverse()
    return MCKPSolution(items=selected)


def solve_mckp_bruteforce(
    classes: Sequence[Sequence[MCKPItem]],
    budget: float,
) -> MCKPSolution:
    """Exact exhaustive solver (for tests; exponential in class count).

    Raises:
        QoSInfeasibleError: when no selection fits the budget.
    """
    _validate_classes(classes)
    best: Optional[Tuple[float, List[MCKPItem]]] = None
    for combo in itertools.product(*classes):
        weight = sum(item.weight for item in combo)
        if weight > budget:
            continue
        value = sum(item.value for item in combo)
        if best is None or value < best[0]:
            best = (value, list(combo))
    if best is None:
        raise QoSInfeasibleError(
            qos_s=budget, min_latency_s=min_total_weight(classes)
        )
    return MCKPSolution(items=best[1])
