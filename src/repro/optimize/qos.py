"""QoS (latency budget) handling.

The paper's evaluation (Sec. IV) runs an *iso-latency* scenario: the
QoS budget is the baseline TinyEngine inference latency relaxed by a
slack percentage -- 10% (tight), 30% (moderate) or 50% (relaxed) --
and every engine is charged for the energy of the whole window,
idling after it finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import SolverError


@dataclass(frozen=True)
class QoSLevel:
    """One QoS setting of the paper's grid.

    Attributes:
        name: label used in the figures ("tight", ...).
        slack: relative latency slack over the baseline (0.10 = +10%).
    """

    name: str
    slack: float

    def __post_init__(self) -> None:
        if self.slack < 0:
            raise SolverError(f"QoS slack must be >= 0, got {self.slack}")

    def budget_s(self, baseline_latency_s: float) -> float:
        """The absolute latency budget for a given baseline latency."""
        if baseline_latency_s <= 0:
            raise SolverError(
                f"baseline latency must be positive, got {baseline_latency_s}"
            )
        return baseline_latency_s * (1.0 + self.slack)

    @property
    def percent(self) -> int:
        """The slack as an integer percentage (for labels)."""
        return int(round(self.slack * 100))


#: The paper's three QoS constraints (Fig. 5).
TIGHT = QoSLevel(name="tight", slack=0.10)
MODERATE = QoSLevel(name="moderate", slack=0.30)
RELAXED = QoSLevel(name="relaxed", slack=0.50)

PAPER_QOS_LEVELS: Tuple[QoSLevel, ...] = (TIGHT, MODERATE, RELAXED)
