"""End-to-end methodology (paper Fig. 3): DAE -> DSE -> MCKP -> deploy.

:class:`DAEDVFSPipeline` chains the three steps of the paper on a
simulated board:

1. **DAE enablement** -- every depthwise/pointwise layer is traced at
   each candidate granularity (the source restructuring of Sec. III-A
   is captured by the segment cost model; its bit-exactness is
   established separately by :mod:`repro.engine.dae`).
2. **DAE x clocking co-exploration** (Sec. III-B) -- per-layer sweep of
   (g, HFO) candidates, reduced to Pareto fronts.
3. **QoS-aware energy optimization** (Sec. III-C) -- the fronts become
   MCKP classes; the DP (or greedy) solver picks one point per layer
   minimizing energy under the latency budget.

The resulting :class:`~repro.engine.schedule.DeploymentPlan` deploys on
the DVFS runtime, and :meth:`DAEDVFSPipeline.compare` reproduces the
paper's Fig. 5 rows: ours vs. TinyEngine vs. TinyEngine + clock gating
in the iso-latency energy scenario.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from .dse.explorer import DSEExplorer, SolutionPoint
from .dse.pareto import pareto_front
from .dse.space import DesignSpace, paper_design_space
from .engine.cost import TraceParams, model_fingerprint
from .engine.runtime import DVFSRuntime, InferenceReport
from .engine.schedule import DeploymentPlan, LayerPlan
from .engine.tinyengine import TinyEngine, TinyEngineClockGated
from .errors import QoSInfeasibleError, SolverError
from .mcu.board import Board, make_nucleo_f767zi
from .nn.graph import Model
from .obs.registry import get_registry
from .obs.tracing import span
from .optimize.greedy import solve_mckp_greedy
from .optimize.mckp import MCKPItem, solve_mckp_dp
from .optimize.qos import QoSLevel

if TYPE_CHECKING:  # pragma: no cover - typing-only, avoids cycles
    from .optimize.harmonize import HarmonizationResult
    from .profiling.profiler import LayerProfiler


def _cache_event(cache: str, event: str) -> None:
    """Count one Step-2 memo-cache hit/miss in the metrics registry."""
    get_registry().count("pipeline.cache", cache=cache, event=event)


@dataclass
class OptimizationResult:
    """Output of the optimization pipeline for one (model, QoS)."""

    plan: DeploymentPlan
    pareto_fronts: Dict[int, List[SolutionPoint]] = field(default_factory=dict)
    baseline_latency_s: float = 0.0
    qos_s: float = 0.0
    fixed_overhead_s: float = 0.0


@dataclass
class ComparisonResult:
    """One Fig. 5 data point: the three engines at one QoS setting."""

    model_name: str
    qos_name: str
    qos_s: float
    ours: InferenceReport
    tinyengine: InferenceReport
    clock_gated: InferenceReport

    @property
    def savings_vs_tinyengine(self) -> float:
        """Fractional energy reduction vs. plain TinyEngine."""
        return 1.0 - self.ours.energy_j / self.tinyengine.energy_j

    @property
    def savings_vs_clock_gated(self) -> float:
        """Fractional energy reduction vs. TinyEngine + clock gating."""
        return 1.0 - self.ours.energy_j / self.clock_gated.energy_j


class DAEDVFSPipeline:
    """The paper's methodology, end to end, on one board description.

    Args:
        board: simulated board (a default Nucleo-F767ZI if omitted).
        space: design space (the paper's grid if omitted).
        trace_params: access-pattern constants shared by all engines.
        solver: "dp" (the paper's pseudo-polynomial exact solver) or
            "greedy" (the ablation baseline).
        dp_resolution: time-grid steps of the DP solver.
        max_refinements: extra solve rounds allowed for the
            switching-overhead refinement loop.
        profiler: when given, Step 2 consumes *measured* per-layer
            records (through the simulated timer + INA219 chain, as
            the paper's hardware campaign does) instead of analytic
            prices.
        granularity_fn: optional per-layer granularity policy, e.g.
            ``functools.partial(adaptive_granularities, board)``.
        tracer: an existing :class:`~repro.engine.cost.TraceBuilder`
            to share.  Traces depend only on the *timing* side of the
            board, so pipelines for boards that differ only in their
            power model (the fleet's device-variation case) can share
            one builder and each (model, node, g) trace is built once
            for the whole fleet.
        explorer: an existing :class:`DSEExplorer` (or subclass) to
            use for Step 2 instead of constructing one -- the fleet
            hands every device an explorer backed by shared timing
            decompositions.  Its board/space must match this
            pipeline's.
        runtime: an existing :class:`DVFSRuntime` (or subclass, e.g.
            the fleet's replaying runtime) to execute plans on.
    """

    def __init__(
        self,
        board: Optional[Board] = None,
        space: Optional[DesignSpace] = None,
        trace_params: Optional[TraceParams] = None,
        solver: str = "dp",
        dp_resolution: int = 4000,
        max_refinements: int = 3,
        profiler: Optional["LayerProfiler"] = None,
        granularity_fn=None,
        tracer=None,
        explorer: Optional[DSEExplorer] = None,
        runtime: Optional[DVFSRuntime] = None,
    ):
        if solver not in ("dp", "greedy"):
            raise SolverError(f"unknown solver {solver!r}")
        if max_refinements < 0:
            raise SolverError("max_refinements must be >= 0")
        self.board = board or make_nucleo_f767zi()
        if space is None:
            # Boards carrying their own design space (non-F7 clock
            # trees) plan over it; everything else uses the paper grid.
            if self.board.space_factory is not None:
                space = self.board.space_factory(self.board)
            else:
                space = paper_design_space(self.board.power_model)
        self.space = space
        self.trace_params = trace_params
        self.solver = solver
        self.dp_resolution = dp_resolution
        self.max_refinements = max_refinements
        self.profiler = profiler
        self.explorer = explorer or DSEExplorer(
            self.board, self.space, trace_params,
            granularity_fn=granularity_fn,
            tracer=tracer,
        )
        # One memoized TraceBuilder feeds the explorer, the runtime,
        # the fixed-overhead accounting and both baseline engines, so
        # every (model, node, g) trace is built exactly once.
        self.tracer = self.explorer.tracer
        self.runtime = runtime or DVFSRuntime(
            self.board, trace_params, tracer=self.tracer
        )
        self._tinyengine = TinyEngine(
            self.board, trace_params=trace_params, tracer=self.tracer
        )
        self._clock_gated = TinyEngineClockGated(
            self.board, trace_params=trace_params, tracer=self.tracer
        )
        # Step-2 result caches, keyed by (model fingerprint, space
        # fingerprint): exploration clouds, their Pareto fronts, the
        # per-(model, HFO) uniform-sweep fronts, the fixed
        # (non-schedulable) overhead and the baseline latency.
        # `compare()` across QoS levels and the uniform-HFO fallback
        # sweep reuse Step 2 instead of re-running it.  Reads/writes go
        # through ``_cache_lock`` (values are computed outside the lock
        # and published with ``setdefault``, so concurrent misses cost
        # a duplicate computation but always observe one canonical
        # value) -- the fleet worker pool shares pipelines across
        # threads; see :meth:`clear_caches`.
        self._cache_lock = threading.RLock()
        self._cloud_cache: Dict[Tuple, Dict[int, List[SolutionPoint]]] = {}
        self._front_cache: Dict[Tuple, Dict[int, List[SolutionPoint]]] = {}
        self._uniform_front_cache: Dict[Tuple, Dict] = {}
        self._fixed_overhead_cache: Dict[Tuple, float] = {}
        self._baseline_cache: Dict[Tuple, float] = {}

    def _model_key(self, model: Model) -> Tuple:
        """Cache key: model + board + design-space identity.

        The board fingerprint covers the power-model *and* timing
        parameters, so a pipeline whose board is swapped out (the
        serve layer's reconfiguration case) misses every memoized
        Step-2 result instead of serving prices computed against the
        old hardware description.  In-place mutation of a component's
        internals still needs :meth:`clear_caches`; replacing the
        component (``pipeline.board.power_model = ...``) changes the
        fingerprint and invalidates implicitly.
        """
        return (
            model_fingerprint(model),
            self.board.fingerprint(),
            self.space.fingerprint(),
        )

    def clear_caches(self) -> None:
        """Invalidate every memoized Step-2 result and layer trace.

        Call after mutating the board, the design space, the trace
        params or the profiler in place (replacing the pipeline is the
        recommended alternative).  Model mutations need no manual
        invalidation: the fingerprint changes with the graph.
        """
        with self._cache_lock:
            self._cloud_cache.clear()
            self._front_cache.clear()
            self._uniform_front_cache.clear()
            self._fixed_overhead_cache.clear()
            self._baseline_cache.clear()
        self.tracer.clear_cache()

    def warm_start_from(
        self, donor: "DAEDVFSPipeline", model: Model
    ) -> None:
        """Inherit the donor's timing-only results for ``model``.

        The baseline latency and the fixed (non-schedulable) overhead
        depend only on the timing side of the board, so pipelines for
        power-varied boards of one fleet can copy them from a nominal
        donor instead of recomputing per device.  The donor computes
        them on first use; requires matching design spaces (the cache
        key embeds the space fingerprint, so a mismatch is inert
        rather than wrong).
        """
        baseline = donor.baseline_latency_s(model)
        fixed = donor.fixed_overhead_s(model)
        key = self._model_key(model)
        with self._cache_lock:
            self._baseline_cache.setdefault(key, baseline)
            self._fixed_overhead_cache.setdefault(key, fixed)

    def replan(
        self,
        model: Model,
        classes,
        budget: float,
        fixed_overhead_s: float,
    ) -> Optional[DeploymentPlan]:
        """Re-solve the MCKP over pre-priced classes -- no exploration.

        The fleet governor's drift response: when a device's operating
        conditions move (thermal leakage ramp, battery-sag frequency
        caps), it re-prices the *cached* Pareto-front items (see
        :func:`repro.optimize.mckp.reprice_classes`) and calls this to
        get a fresh plan.  Runs the same solve/measure/tighten
        refinement as :meth:`optimize` but skips Step 2 entirely.

        Returns:
            The refined plan, or ``None`` when no schedule over the
            given classes can converge under the budget.

        Raises:
            QoSInfeasibleError: when the budget cannot even cover the
                fixed overhead.
        """
        conv_budget = budget - fixed_overhead_s
        if conv_budget <= 0:
            min_conv = sum(
                min(item.weight for item in cls) for cls in classes
            )
            raise QoSInfeasibleError(
                qos_s=budget, min_latency_s=min_conv + fixed_overhead_s
            )
        return self._refine_free_plan(
            model, classes, conv_budget, budget, fixed_overhead_s
        )

    def uniform_plan_from_classes(
        self,
        model: Model,
        classes,
        budget: float,
        fixed_overhead_s: float,
        max_hfo_hz: float = float("inf"),
    ) -> Optional[DeploymentPlan]:
        """Best single-HFO schedule over pre-priced classes, if any.

        The fallback when :meth:`replan`'s free re-solve cannot
        converge a mixed-frequency schedule under the budget: a
        uniform schedule pays at most one PLL lock, so its per-layer
        prices hold without refinement.  Candidates are ranked by the
        (possibly drift-repriced) item values, so the winner is
        optimal for the *current* operating point among uniform
        schedules.  Used by the fleet governor's drift response and
        the serve layer's ``reprice`` endpoint.

        Returns:
            The cheapest uniform schedule meeting the budget at an
            HFO at or under ``max_hfo_hz``, or ``None`` when no
            frequency qualifies.
        """
        best_energy = None
        best_plan = None
        for hfo in self.space.hfo_configs:
            if hfo.sysclk_hz > max_hfo_hz:
                continue
            picks = []
            for cls in classes:
                matches = [
                    item for item in cls if item.payload.hfo == hfo
                ]
                if not matches:
                    picks = None
                    break
                picks.append(min(matches, key=lambda item: item.value))
            if picks is None:
                continue
            layer_plans = {
                item.payload.node_id: LayerPlan(
                    node_id=item.payload.node_id,
                    granularity=item.payload.granularity,
                    hfo=item.payload.hfo,
                    predicted_latency_s=item.payload.latency_s,
                    predicted_energy_j=item.payload.energy_j,
                )
                for item in picks
            }
            plan = DeploymentPlan(
                model_name=model.name,
                lfo=self.space.lfo,
                layer_plans=layer_plans,
                qos_s=budget,
                predicted_latency_s=(
                    sum(i.weight for i in picks) + fixed_overhead_s
                ),
                predicted_energy_j=sum(i.value for i in picks),
            )
            actual = self.runtime.measure_latency_s(
                model, plan, initial_config=plan.initial_config()
            )
            if actual > budget:
                continue
            energy = sum(item.value for item in picks)
            if best_energy is None or energy < best_energy:
                best_energy = energy
                best_plan = plan
        return best_plan

    # -- building blocks -------------------------------------------------------

    def baseline_latency_s(self, model: Model) -> float:
        """TinyEngine inference latency (the QoS anchor).

        Memoized per (model, space): latency depends only on the
        timing model, so every QoS level -- and, fleet-wide, every
        device sharing this pipeline -- anchors to the same number.
        """
        key = self._model_key(model)
        with self._cache_lock:
            cached = self._baseline_cache.get(key)
        if cached is not None:
            _cache_event("baseline", "hit")
            return cached
        _cache_event("baseline", "miss")
        baseline = self._tinyengine.inference_latency_s(model)
        with self._cache_lock:
            return self._baseline_cache.setdefault(key, baseline)

    def fixed_overhead_s(self, model: Model) -> float:
        """Latency of the non-schedulable layers (pool/add/flatten).

        These run at whatever clock the neighbouring conv layers leave
        behind.  They are budgeted at the fastest HFO; if the deployed
        schedule leaves them on a slower clock, the runtime-in-the-loop
        refinement of :meth:`optimize` absorbs the difference.

        The result is memoized per (model, space): the traces come out
        of the shared :attr:`tracer` cache and the sum is reused by
        every refinement round and QoS level.
        """
        key = self._model_key(model)
        with self._cache_lock:
            cached = self._fixed_overhead_cache.get(key)
        if cached is not None:
            _cache_event("fixed", "hit")
            return cached
        _cache_event("fixed", "miss")
        fastest = max(self.space.hfo_configs, key=lambda c: c.sysclk_hz)
        conv_ids = {node.node_id for node in model.conv_nodes()}
        overhead = 0.0
        for node in model.nodes:
            if node.node_id in conv_ids:
                continue
            trace = self.tracer.build(model, node, 0)
            latency, _ = self.explorer.pricer.price(
                trace, fastest, self.space.lfo, assume_relock=False
            )
            overhead += latency
        with self._cache_lock:
            return self._fixed_overhead_cache.setdefault(key, overhead)

    def optimize(
        self,
        model: Model,
        qos_level: Optional[QoSLevel] = None,
        qos_s: Optional[float] = None,
    ) -> OptimizationResult:
        """Run Steps 2-3 and produce a deployment plan.

        Exactly one of ``qos_level`` (relative to the TinyEngine
        baseline latency) or ``qos_s`` (absolute seconds) must be
        given.

        Raises:
            SolverError: when neither/both QoS forms are supplied.
            QoSInfeasibleError: when no schedule can meet the budget.
        """
        if (qos_level is None) == (qos_s is None):
            raise SolverError("provide exactly one of qos_level or qos_s")
        with span(
            "pipeline.optimize", model=model.name, solver=self.solver
        ) as sp:
            result = self._optimize(model, qos_level, qos_s)
            sp.set(
                qos_s=result.qos_s,
                predicted_energy_j=result.plan.predicted_energy_j,
            )
            return result

    def _optimize(
        self,
        model: Model,
        qos_level: Optional[QoSLevel],
        qos_s: Optional[float],
    ) -> OptimizationResult:
        baseline = self.baseline_latency_s(model)
        budget = qos_s if qos_s is not None else qos_level.budget_s(baseline)

        clouds = self._explore_clouds(model)
        fronts = self._pareto_fronts(model, clouds)
        fixed = self.fixed_overhead_s(model)
        conv_budget = budget - fixed
        if conv_budget <= 0:
            min_conv = sum(
                min(p.latency_s for p in front) for front in fronts.values()
            )
            raise QoSInfeasibleError(qos_s=budget, min_latency_s=min_conv + fixed)

        node_ids = sorted(fronts)
        classes = [
            [
                MCKPItem(
                    weight=p.latency_s, value=p.energy_j, payload=p
                )
                for p in fronts[node_id]
            ]
            for node_id in node_ids
        ]

        # The per-layer prices exclude inter-layer PLL re-locks (those
        # depend on the *sequence* of choices, which MCKP cannot see).
        # Solve, measure the real schedule on the runtime, and if the
        # accumulated switching overhead overshoots the budget, tighten
        # the knapsack and re-solve -- a couple of iterations converge.
        # If the free schedule cannot converge (sub-millisecond models
        # where 200 us re-locks dominate every layer), fall back to
        # harmonized single-HFO schedules, which never re-lock inside
        # the inference window.
        plan = self._refine_free_plan(
            model, classes, conv_budget, budget, fixed
        )
        # Always also solve the best single-HFO schedule: it pays no
        # re-locks at all, so on switch-dominated (small/fast) models
        # it can beat the "free" per-layer optimum whose knapsack
        # could not see the sequence costs.  Keep whichever deploys
        # cheaper over the window.
        try:
            uniform = self._best_uniform_hfo_plan(
                model, clouds, conv_budget, budget, fixed
            )
        except QoSInfeasibleError:
            uniform = None
            if plan is None:
                raise
        if plan is None:
            assert uniform is not None
            plan = uniform
        elif uniform is not None:
            e_free = self.runtime.run(
                model, plan, qos_s=budget,
                initial_config=plan.initial_config(),
            ).energy_j
            e_uniform = self.runtime.run(
                model, uniform, qos_s=budget,
                initial_config=uniform.initial_config(),
            ).energy_j
            if e_uniform < e_free:
                plan = uniform
        return OptimizationResult(
            plan=plan,
            pareto_fronts=fronts,
            baseline_latency_s=baseline,
            qos_s=budget,
            fixed_overhead_s=fixed,
        )

    def _explore_clouds(
        self, model: Model
    ) -> Dict[int, List[SolutionPoint]]:
        """Per-layer candidate clouds: analytic or sensor-measured.

        Memoized per (model, space): re-optimizing the same model at a
        different QoS level reuses the Step-2 sweep (and, in profiled
        mode, the already-collected measurement campaign) instead of
        exploring again.
        """
        key = self._model_key(model)
        with self._cache_lock:
            cached = self._cloud_cache.get(key)
        if cached is not None:
            _cache_event("cloud", "hit")
            return cached
        _cache_event("cloud", "miss")
        with span(
            "pipeline.explore",
            model=model.name,
            profiled=self.profiler is not None,
        ):
            if self.profiler is None:
                clouds = self.explorer.explore_model(model)
            else:
                clouds = {}
                for node in model.conv_nodes():
                    records = self.profiler.profile_layer(
                        model, node, assume_relock=False
                    )
                    clouds[node.node_id] = [
                        SolutionPoint(
                            node_id=node.node_id,
                            layer_name=node.layer.name,
                            layer_kind=node.layer.kind,
                            granularity=record.granularity,
                            hfo=record.hfo,
                            latency_s=record.latency_s,
                            energy_j=record.energy_j,
                        )
                        for record in records
                    ]
        with self._cache_lock:
            return self._cloud_cache.setdefault(key, clouds)

    def _pareto_fronts(
        self, model: Model, clouds: Dict[int, List[SolutionPoint]]
    ) -> Dict[int, List[SolutionPoint]]:
        """Per-layer Pareto fronts of the clouds (memoized per model)."""
        key = self._model_key(model)
        with self._cache_lock:
            cached = self._front_cache.get(key)
        if cached is not None:
            _cache_event("front", "hit")
            return cached
        _cache_event("front", "miss")
        fronts = {
            node_id: pareto_front(
                points, key=lambda p: (p.latency_s, p.energy_j)
            )
            for node_id, points in clouds.items()
        }
        with self._cache_lock:
            return self._front_cache.setdefault(key, fronts)

    def harmonize(
        self, model: Model, result: OptimizationResult
    ) -> "HarmonizationResult":
        """Post-optimize local search reducing PLL re-locks.

        See :mod:`repro.optimize.harmonize`; keeps the result's QoS.
        """
        from .optimize.harmonize import harmonize_plan

        return harmonize_plan(
            self.runtime,
            model,
            result.plan,
            result.pareto_fronts,
            qos_s=result.qos_s,
        )

    def _solve_classes(self, classes, budget: float):
        if self.solver == "dp":
            return solve_mckp_dp(
                classes, budget, resolution=self.dp_resolution
            )
        return solve_mckp_greedy(classes, budget)

    def _refine_free_plan(
        self,
        model: Model,
        classes,
        conv_budget: float,
        budget: float,
        fixed: float,
    ) -> Optional[DeploymentPlan]:
        """Solve + runtime-measure + tighten; None if it cannot converge.

        Starts a hair under the true budget so grid rounding and the
        final mux handshakes cannot push the schedule over by floats.

        Every refinement round tightens the *previous* effective
        budget (not a recomputation from ``conv_budget``), so the
        knapsack budget is strictly monotonically decreasing across
        rounds: two rounds observing similar unpriced overhead still
        make at least two grid steps of progress each instead of
        re-solving a near-identical instance until ``max_refinements``
        is burned.
        """
        effective_budget = conv_budget * 0.999
        for round_index in range(self.max_refinements + 1):
            with span("pipeline.solve", round=round_index) as sp:
                try:
                    solution = self._solve_classes(
                        classes, effective_budget
                    )
                except QoSInfeasibleError:
                    sp.set(outcome="infeasible")
                    return None
                plan = self._plan_from_solution(
                    model, solution, budget, fixed
                )
                actual = self.runtime.measure_latency_s(
                    model, plan, initial_config=plan.initial_config()
                )
                sp.set(
                    outcome="converged" if actual <= budget else "tighten"
                )
            if actual <= budget:
                return plan
            # The gap between the runtime and the per-layer predictions
            # is exactly the sequence-dependent switching overhead the
            # MCKP cannot see.  Re-solve with that overhead (plus a
            # grid quantum of margin) carved out of the remaining
            # budget.
            unpriced = max(0.0, actual - plan.predicted_latency_s)
            grid_step = effective_budget / self.dp_resolution
            effective_budget -= unpriced * 1.05 + 2.0 * grid_step
            if effective_budget <= 0:
                return None
        return None

    def _uniform_classes(
        self, model: Model, clouds: Dict[int, List[SolutionPoint]]
    ) -> Dict:
        """Per-HFO MCKP classes for the uniform sweep (memoized).

        Maps each HFO to the per-layer Pareto fronts of its slice of
        the clouds (as MCKP classes), or ``None`` when some layer has
        no candidate at that HFO.  Budget-independent, so the sweep
        across QoS levels reuses one filtering + front pass per model.
        """
        key = self._model_key(model)
        with self._cache_lock:
            cached = self._uniform_front_cache.get(key)
        if cached is not None:
            _cache_event("uniform", "hit")
            return cached
        _cache_event("uniform", "miss")
        node_ids = sorted(clouds)
        # One pass per node groups its cloud by HFO (stable order), so
        # the per-HFO loop below indexes instead of rescanning the
        # whole cloud once per frequency.
        sliced = []
        for node_id in node_ids:
            by_hfo: Dict = {}
            for p in clouds[node_id]:
                by_hfo.setdefault(p.hfo, []).append(p)
            sliced.append(by_hfo)
        per_hfo: Dict = {}
        for hfo in self.space.hfo_configs:
            classes = []
            for by_hfo in sliced:
                points = by_hfo.get(hfo)
                if not points:
                    classes = None
                    break
                front = pareto_front(
                    points, key=lambda p: (p.latency_s, p.energy_j)
                )
                classes.append(
                    [
                        MCKPItem(
                            weight=p.latency_s, value=p.energy_j, payload=p
                        )
                        for p in front
                    ]
                )
            per_hfo[hfo] = classes
        with self._cache_lock:
            return self._uniform_front_cache.setdefault(key, per_hfo)

    def _best_uniform_hfo_plan(
        self,
        model: Model,
        clouds: Dict[int, List[SolutionPoint]],
        conv_budget: float,
        budget: float,
        fixed: float,
    ) -> DeploymentPlan:
        """Minimum-energy schedule with one shared HFO for all layers.

        A single HFO means the PLL is programmed once (before the
        window opens) and only the cheap LFO/HFO mux bounces remain,
        so the per-layer prices are accurate without refinement.

        Raises:
            QoSInfeasibleError: when no single-HFO schedule fits either.
        """
        best: Optional[DeploymentPlan] = None
        tightest = float("inf")
        per_hfo = self._uniform_classes(model, clouds)
        for hfo in self.space.hfo_configs:
            classes = per_hfo.get(hfo)
            if classes is None:
                continue
            try:
                solution = self._solve_classes(classes, conv_budget * 0.999)
            except QoSInfeasibleError as err:
                tightest = min(tightest, err.min_latency_s + fixed)
                continue
            plan = self._plan_from_solution(model, solution, budget, fixed)
            actual = self.runtime.measure_latency_s(
                model, plan, initial_config=plan.initial_config()
            )
            if actual > budget:
                tightest = min(tightest, actual)
                continue
            if (
                best is None
                or plan.predicted_energy_j < best.predicted_energy_j
            ):
                best = plan
        if best is None:
            raise QoSInfeasibleError(
                qos_s=budget,
                min_latency_s=(
                    tightest if tightest != float("inf") else budget
                ),
            )
        return best

    def _plan_from_solution(
        self,
        model: Model,
        solution,
        budget: float,
        fixed: float,
    ) -> DeploymentPlan:
        layer_plans: Dict[int, LayerPlan] = {}
        for item in solution.items:
            point: SolutionPoint = item.payload
            layer_plans[point.node_id] = LayerPlan(
                node_id=point.node_id,
                granularity=point.granularity,
                hfo=point.hfo,
                predicted_latency_s=point.latency_s,
                predicted_energy_j=point.energy_j,
            )
        return DeploymentPlan(
            model_name=model.name,
            lfo=self.space.lfo,
            layer_plans=layer_plans,
            qos_s=budget,
            predicted_latency_s=solution.total_weight + fixed,
            predicted_energy_j=solution.total_value,
        )

    def deploy(
        self,
        model: Model,
        plan: DeploymentPlan,
        qos_s: Optional[float] = None,
        fault_clock=None,
    ) -> InferenceReport:
        """Execute a plan on the DVFS runtime (gated post-QoS idle).

        The board enters the window pre-locked on the first layer's
        HFO, mirroring the baselines' pre-locked 216 MHz start.

        Args:
            model: model to execute.
            plan: the deployment plan.
            qos_s: accounting window override (``plan.qos_s`` default).
            fault_clock: optional
                :class:`repro.faults.plan.FaultClock`; routes the run
                through the hardened (CSS / watchdog / retry) engine
                paths.  ``None`` is bit-identical to the nominal run.
        """
        with span("pipeline.deploy", model=model.name):
            return self.runtime.run(
                model,
                plan,
                qos_s=qos_s if qos_s is not None else plan.qos_s,
                initial_config=plan.initial_config(),
                fault_clock=fault_clock,
            )

    # -- the Fig. 5 comparison ---------------------------------------------------

    def compare(
        self, model: Model, qos_level: QoSLevel
    ) -> ComparisonResult:
        """Ours vs. TinyEngine vs. TinyEngine+gating at one QoS level."""
        result = self.optimize(model, qos_level=qos_level)
        ours = self.deploy(model, result.plan)
        te = self._tinyengine.run(model, qos_s=result.qos_s)
        cg = self._clock_gated.run(model, qos_s=result.qos_s)
        return ComparisonResult(
            model_name=model.name,
            qos_name=qos_level.name,
            qos_s=result.qos_s,
            ours=ours,
            tinyengine=te,
            clock_gated=cg,
        )
