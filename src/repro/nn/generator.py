"""Random CNN workload generator.

Stress-testing surface for the whole stack: generates random but
*valid* MCU-scale CNNs in the depthwise-separable / inverted-residual
family the paper targets.  Property-based tests drive the full
pipeline — DAE bit-exactness, trace building, DSE, MCKP, deployment —
over these architectures to establish that nothing in the toolchain
depends on the three hand-built evaluation models.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .graph import Model
from .models import _Builder, scale_channels


def random_separable_cnn(
    seed: int,
    num_blocks: int = 4,
    input_hw: int = 24,
    num_classes: int = 4,
    max_channels: int = 64,
) -> Model:
    """Generate a random depthwise-separable CNN.

    Architecture template: conv stem, then ``num_blocks`` blocks each
    randomly chosen as a MobileNet-V1 separable pair or a
    MobileNet-V2 inverted residual (random expansion, stride and output
    width), then GAP -> dense classifier.  All derived dimensions are
    kept legal (strides only while the spatial size allows it).

    Args:
        seed: RNG seed; equal seeds produce identical models.
        num_blocks: number of separable / inverted-residual blocks.
        input_hw: input spatial resolution.
        num_classes: classifier width.
        max_channels: upper bound on any layer's channel count.

    Raises:
        ShapeError: for non-positive sizes.
    """
    if num_blocks < 1 or input_hw < 8 or num_classes < 1:
        raise ShapeError("generator sizes must be positive (input_hw >= 8)")
    rng = np.random.default_rng(seed)
    b = _Builder(f"rand{seed}", (input_hw, input_hw, 3), seed)
    stem = scale_channels(
        int(rng.integers(8, 33)), 1.0
    )
    b.conv(min(stem, max_channels), kernel=3, stride=2)
    hw = -(-input_hw // 2)
    for _ in range(num_blocks):
        out_ch = min(
            max_channels, scale_channels(int(rng.integers(8, 97)), 1.0)
        )
        stride = int(rng.choice([1, 2])) if hw >= 8 else 1
        if rng.random() < 0.5:
            b.separable(out_ch, stride=stride)
        else:
            expansion = int(rng.choice([1, 2, 4]))
            b.inverted_residual(out_ch, expansion=expansion, stride=stride)
        hw = -(-hw // stride)
    b.global_pool()
    b.flatten()
    b.dense(num_classes)
    return b.model
