"""Model graph: ordered operator nodes with explicit data dependencies.

MCU inference engines execute a statically scheduled, topologically
ordered list of operators; we mirror that with a :class:`Model` holding
:class:`Node` entries in execution order.  Most models are chains, but
MobileNet-V2-style inverted residual blocks need a second input for
the skip-add, so every node names its input node ids explicitly.

Shapes are inferred and validated at construction time -- a malformed
graph fails at :meth:`Model.add`, not at inference time -- and the
per-node shapes drive the analytic cost model without running any
numerics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import GraphError
from .layers.base import Layer, LayerKind, Shape
from .quantize import QuantParams
from .tensor import QuantizedTensor

#: Node id of the model input placeholder.
INPUT_ID = 0


@dataclass(frozen=True)
class Node:
    """One scheduled operator.

    Attributes:
        node_id: position in execution order (input placeholder is 0).
        layer: the operator.
        inputs: ids of the nodes whose outputs feed this one.
        output_shape: inferred output shape.
    """

    node_id: int
    layer: Layer
    inputs: Tuple[int, ...]
    output_shape: Shape


@dataclass
class Model:
    """An ordered, shape-checked operator graph.

    Attributes:
        name: model identifier (e.g. "mbv2").
        input_shape: (H, W, C) of the input feature map.
        input_params: quantization of the input tensor.
    """

    name: str
    input_shape: Shape
    input_params: QuantParams
    nodes: List[Node] = field(default_factory=list)

    def __post_init__(self) -> None:
        if any(dim <= 0 for dim in self.input_shape):
            raise GraphError(
                f"model input shape must be positive, got {self.input_shape}"
            )

    # -- construction --------------------------------------------------------

    def add(self, layer: Layer, inputs: Optional[Sequence[int]] = None) -> int:
        """Append ``layer``, feeding from ``inputs`` (default: previous).

        Returns:
            The new node's id.

        Raises:
            GraphError: on dangling input references or duplicate layer
                names; shape mismatches surface as ``ShapeError`` from
                the layer itself.
        """
        next_id = len(self.nodes) + 1
        if inputs is None:
            inputs = (next_id - 1,)
        input_ids = tuple(int(i) for i in inputs)
        for input_id in input_ids:
            if not 0 <= input_id < next_id:
                raise GraphError(
                    f"layer {layer.name!r} references node {input_id}, but "
                    f"only nodes 0..{next_id - 1} exist"
                )
        if any(node.layer.name == layer.name for node in self.nodes):
            raise GraphError(f"duplicate layer name {layer.name!r}")
        input_shapes = tuple(self.shape_of(i) for i in input_ids)
        output_shape = layer.output_shape(*input_shapes)
        self.nodes.append(
            Node(
                node_id=next_id,
                layer=layer,
                inputs=input_ids,
                output_shape=output_shape,
            )
        )
        return next_id

    # -- introspection -------------------------------------------------------

    def shape_of(self, node_id: int) -> Shape:
        """Output shape of a node (node 0 is the model input)."""
        if node_id == INPUT_ID:
            return self.input_shape
        if not 1 <= node_id <= len(self.nodes):
            raise GraphError(f"no node {node_id} in model {self.name!r}")
        return self.nodes[node_id - 1].output_shape

    def input_shapes_of(self, node: Node) -> Tuple[Shape, ...]:
        """Shapes feeding one node."""
        return tuple(self.shape_of(i) for i in node.inputs)

    @property
    def output_shape(self) -> Shape:
        """Shape of the final node's output."""
        if not self.nodes:
            return self.input_shape
        return self.nodes[-1].output_shape

    def layers(self) -> List[Layer]:
        """All layers in execution order."""
        return [node.layer for node in self.nodes]

    def conv_nodes(self) -> List[Node]:
        """Nodes carrying convolution-family layers (the schedulable
        units of the paper's per-layer DVFS)."""
        conv_kinds = {
            LayerKind.CONV2D,
            LayerKind.DEPTHWISE_CONV,
            LayerKind.POINTWISE_CONV,
            LayerKind.DENSE,
        }
        return [node for node in self.nodes if node.layer.kind in conv_kinds]

    def dae_nodes(self) -> List[Node]:
        """Nodes eligible for the DAE transformation (DW + PW convs)."""
        return [node for node in self.nodes if node.layer.supports_dae]

    def total_macs(self) -> int:
        """Total multiply-accumulates of one inference."""
        return sum(
            node.layer.macs(*self.input_shapes_of(node)) for node in self.nodes
        )

    def total_weight_bytes(self) -> int:
        """Total parameter footprint in bytes."""
        return sum(node.layer.weight_bytes() for node in self.nodes)

    def dae_layer_fraction(self) -> float:
        """Share of conv-family layers that are DW/PW (paper: >80%)."""
        convs = self.conv_nodes()
        if not convs:
            return 0.0
        dae = sum(1 for node in convs if node.layer.supports_dae)
        return dae / len(convs)

    def summary(self) -> str:
        """Multi-line human-readable model table."""
        lines = [
            f"Model {self.name!r}: input {self.input_shape}, "
            f"{len(self.nodes)} layers, {self.total_macs() / 1e6:.2f} MMACs, "
            f"{self.total_weight_bytes() / 1024:.1f} KiB weights",
        ]
        for node in self.nodes:
            layer = node.layer
            macs = layer.macs(*self.input_shapes_of(node))
            lines.append(
                f"  [{node.node_id:3d}] {layer.name:28s} "
                f"{layer.kind.value:10s} out={str(node.output_shape):16s} "
                f"macs={macs:>10d}"
            )
        return "\n".join(lines)

    # -- execution -------------------------------------------------------------

    def forward(self, x: QuantizedTensor) -> QuantizedTensor:
        """Run the whole model, returning the final output tensor."""
        return self.forward_with_activations(x)[len(self.nodes)]

    def forward_with_activations(
        self, x: QuantizedTensor
    ) -> Dict[int, QuantizedTensor]:
        """Run the model, returning every node's output (keyed by id).

        Raises:
            GraphError: if the input tensor does not match the model's
                declared input shape or quantization.
        """
        if tuple(x.shape) != tuple(self.input_shape):
            raise GraphError(
                f"input shape {x.shape} != model input {self.input_shape}"
            )
        if (
            abs(x.scale - self.input_params.scale) > 1e-12
            or x.zero_point != self.input_params.zero_point
        ):
            raise GraphError(
                "input tensor quantization does not match the model's "
                "declared input parameters"
            )
        activations: Dict[int, QuantizedTensor] = {INPUT_ID: x}
        for node in self.nodes:
            inputs = tuple(activations[i] for i in node.inputs)
            activations[node.node_id] = node.layer.forward(*inputs)
        return activations
