"""Model persistence (.npz bundle).

Ships the *exact* quantized model next to its deployment plan: layer
topology and parameters as a JSON manifest, weights as arrays, all in
one ``numpy`` ``.npz`` file.  Round-tripping is bit-exact: the saved
quantized weights are rehydrated through the normal layer
constructors (dequantize -> requantize reproduces the identical int8
values because the per-tensor scale is recovered exactly), so a loaded
model produces byte-identical inference outputs -- the property the
test suite pins.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Union

import numpy as np

from ..errors import GraphError
from .graph import Model
from .layers.activation import ReLU
from .layers.base import Layer
from .layers.conv2d import Conv2D
from .layers.dense import Dense
from .layers.depthwise import DepthwiseConv2D
from .layers.pointwise import PointwiseConv2D
from .layers.pooling import GlobalAveragePool, MaxPool2D
from .layers.reshape import Flatten
from .layers.residual import ResidualAdd
from .quantize import QuantParams

#: Bundle format version.
FORMAT_VERSION = 1


def _qparams_to_dict(params: QuantParams) -> Dict:
    return {"scale": params.scale, "zero_point": params.zero_point}


def _qparams_from_dict(data: Dict) -> QuantParams:
    return QuantParams(
        scale=float(data["scale"]), zero_point=int(data["zero_point"])
    )


def _weights_key(index: int, what: str) -> str:
    return f"layer{index}_{what}"


def _layer_record(layer: Layer, index: int, arrays: Dict) -> Dict:
    """Manifest entry + array stash for one layer."""
    record: Dict = {"type": type(layer).__name__, "name": layer.name}
    if isinstance(layer, (Conv2D, DepthwiseConv2D, PointwiseConv2D, Dense)):
        # Rehydratable floats: w_q * scale and bias_q * (s_in * s_w)
        # re-quantize to the identical integers.
        arrays[_weights_key(index, "weights")] = (
            layer.weights_q.astype(np.float64)
            * np.asarray(layer.weight_scale)
        ).astype(np.float32)
        arrays[_weights_key(index, "bias")] = (
            layer.bias_q.astype(np.float64)
            * layer.input_params.scale
            * np.asarray(layer.weight_scale)
        )
        record["input_params"] = _qparams_to_dict(layer.input_params)
        record["output_params"] = _qparams_to_dict(layer.output_params)
        record["activation"] = layer.activation
        record["per_channel"] = bool(layer.per_channel)
        if isinstance(layer, (Conv2D, DepthwiseConv2D)):
            record["stride"] = layer.stride
            record["padding"] = layer.padding
    elif isinstance(layer, ResidualAdd):
        record["a_params"] = _qparams_to_dict(layer.a_params)
        record["b_params"] = _qparams_to_dict(layer.b_params)
        record["output_params"] = _qparams_to_dict(layer.output_params)
    elif isinstance(layer, MaxPool2D):
        record["pool"] = layer.pool
    elif isinstance(layer, ReLU):
        record["max_value"] = layer.max_value
    elif isinstance(layer, (GlobalAveragePool, Flatten)):
        pass
    else:
        raise GraphError(
            f"layer {layer.name!r} of type {type(layer).__name__} is not "
            "serializable"
        )
    return record


def _rebuild_layer(record: Dict, index: int, bundle) -> Layer:
    layer_type = record["type"]
    name = record["name"]
    if layer_type in ("Conv2D", "DepthwiseConv2D", "PointwiseConv2D", "Dense"):
        weights = bundle[_weights_key(index, "weights")].astype(np.float64)
        bias = bundle[_weights_key(index, "bias")]
        kwargs = dict(
            name=name,
            weights=weights,
            bias=bias,
            input_params=_qparams_from_dict(record["input_params"]),
            output_params=_qparams_from_dict(record["output_params"]),
            activation=record["activation"],
            per_channel=bool(record.get("per_channel", False)),
        )
        if layer_type == "Conv2D":
            return Conv2D(
                stride=int(record["stride"]), padding=record["padding"],
                **kwargs,
            )
        if layer_type == "DepthwiseConv2D":
            return DepthwiseConv2D(
                stride=int(record["stride"]), padding=record["padding"],
                **kwargs,
            )
        if layer_type == "PointwiseConv2D":
            return PointwiseConv2D(**kwargs)
        return Dense(**kwargs)
    if layer_type == "ResidualAdd":
        return ResidualAdd(
            name=name,
            a_params=_qparams_from_dict(record["a_params"]),
            b_params=_qparams_from_dict(record["b_params"]),
            output_params=_qparams_from_dict(record["output_params"]),
        )
    if layer_type == "MaxPool2D":
        return MaxPool2D(name, pool=int(record["pool"]))
    if layer_type == "ReLU":
        max_value = record["max_value"]
        return ReLU(name, max_value=max_value)
    if layer_type == "GlobalAveragePool":
        return GlobalAveragePool(name)
    if layer_type == "Flatten":
        return Flatten(name)
    raise GraphError(f"unknown layer type {layer_type!r} in model bundle")


def save_model(model: Model, path: Union[str, pathlib.Path]) -> None:
    """Write a model bundle to ``path`` (.npz).

    Raises:
        GraphError: if the model contains a non-serializable layer.
    """
    arrays: Dict[str, np.ndarray] = {}
    records: List[Dict] = []
    for index, node in enumerate(model.nodes):
        record = _layer_record(node.layer, index, arrays)
        record["inputs"] = list(node.inputs)
        records.append(record)
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": model.name,
        "input_shape": list(model.input_shape),
        "input_params": _qparams_to_dict(model.input_params),
        "layers": records,
    }
    arrays["manifest"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(str(path), **arrays)


def load_model(path: Union[str, pathlib.Path]) -> Model:
    """Read a model bundle; the result infers bit-identically.

    Raises:
        GraphError: for missing manifests, unknown versions or layer
            types.
    """
    with np.load(str(path)) as bundle:
        if "manifest" not in bundle:
            raise GraphError(f"{path}: not a model bundle (no manifest)")
        manifest = json.loads(bytes(bundle["manifest"]).decode("utf-8"))
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise GraphError(
                f"unsupported model bundle version {version!r}"
            )
        model = Model(
            name=manifest["name"],
            input_shape=tuple(manifest["input_shape"]),
            input_params=_qparams_from_dict(manifest["input_params"]),
        )
        for index, record in enumerate(manifest["layers"]):
            layer = _rebuild_layer(record, index, bundle)
            model.add(layer, inputs=tuple(record["inputs"]))
    return model
