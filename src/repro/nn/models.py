"""The paper's three evaluation CNNs (MCUNet-style, int8).

The paper evaluates on three pre-trained models exported from the
MCUNet/TinyEngine flow: **Visual Wake Words (VWW)**, **Person
Detection (PD)** and **MobileNet-V2 (MBV2)** (Sec. IV).  The trained
parameters are not publicly redistributable, and accuracy plays no
role in the paper's claims (DAE is bit-exact; DVFS does not touch
arithmetic), so we rebuild the *architectures* faithfully --
depthwise-separable / inverted-residual structures at MCU-scale widths
and resolutions -- with seeded, fan-in-scaled random weights.  What
matters for the reproduction is preserved exactly: layer types, layer
counts, channel/spatial dimensions, and therefore the MAC and memory
traffic profile every downstream model consumes.

* ``build_mbv2``  -- MobileNet-V2 backbone (inverted residual blocks,
  width 0.35, 96x96 input), the deepest of the three.
* ``build_vww``   -- a narrower MBV2-style backbone at 80x80, binary
  classifier, as in the MCUNet VWW solution.
* ``build_person_detection`` -- a MobileNet-V1-style depthwise
  separable stack at 96x96, binary classifier.

All three satisfy the paper's premise that depthwise + pointwise
convolutions make up over 80% of conv-family layers
(:meth:`repro.nn.graph.Model.dae_layer_fraction`).
"""

from __future__ import annotations

from typing import Dict, Callable, Optional

import numpy as np

from .graph import INPUT_ID, Model
from .layers.base import Shape
from .layers.conv2d import Conv2D
from .layers.dense import Dense
from .layers.depthwise import DepthwiseConv2D
from .layers.pointwise import PointwiseConv2D
from .layers.pooling import GlobalAveragePool
from .layers.reshape import Flatten
from .layers.residual import ResidualAdd
from .quantize import QuantParams

#: Input quantization: symmetric [-1, 1) images.
INPUT_PARAMS = QuantParams(scale=1.0 / 128.0, zero_point=0)
#: Post-ReLU6 feature maps span [0, 6].
RELU6_PARAMS = QuantParams(scale=6.0 / 255.0, zero_point=-128)
#: Linear (projection) feature maps.
LINEAR_PARAMS = QuantParams(scale=0.05, zero_point=0)
#: Classifier logits.
LOGIT_PARAMS = QuantParams(scale=0.1, zero_point=0)


def scale_channels(channels: int, width_mult: float) -> int:
    """MobileNet width-multiplier rounding: multiples of 8, minimum 8."""
    return max(8, int(round(channels * width_mult / 8.0)) * 8)


class _Builder:
    """Incremental model builder tracking quantization per node."""

    def __init__(
        self, name: str, input_shape: Shape, seed: int,
        per_channel: bool = False,
    ):
        self.model = Model(
            name=name, input_shape=input_shape, input_params=INPUT_PARAMS
        )
        self.rng = np.random.default_rng(seed)
        self.per_channel = per_channel
        self.last_id = INPUT_ID
        self._params: Dict[int, QuantParams] = {INPUT_ID: INPUT_PARAMS}
        self._counter = 0

    def params_of(self, node_id: int) -> QuantParams:
        return self._params[node_id]

    def _register(self, node_id: int, params: QuantParams) -> int:
        self._params[node_id] = params
        self.last_id = node_id
        return node_id

    def _next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def _weights(self, *shape: int) -> np.ndarray:
        fan_in = int(np.prod(shape[:-1])) or 1
        return self.rng.normal(0.0, 1.0 / np.sqrt(fan_in), size=shape)

    def channels(self, node_id: Optional[int] = None) -> int:
        node_id = self.last_id if node_id is None else node_id
        return self.model.shape_of(node_id)[-1]

    # -- layer appenders -----------------------------------------------------

    def conv(
        self,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        activation: Optional[str] = "relu6",
    ) -> int:
        in_ch = self.channels()
        out_params = RELU6_PARAMS if activation == "relu6" else LINEAR_PARAMS
        layer = Conv2D(
            name=self._next_name("conv"),
            weights=self._weights(kernel, kernel, in_ch, out_channels),
            bias=self.rng.normal(0.0, 0.05, size=out_channels),
            input_params=self.params_of(self.last_id),
            output_params=out_params,
            stride=stride,
            padding="same",
            activation=activation,
            per_channel=self.per_channel,
        )
        return self._register(self.model.add(layer), out_params)

    def dw(self, kernel: int = 3, stride: int = 1) -> int:
        channels = self.channels()
        layer = DepthwiseConv2D(
            name=self._next_name("dw"),
            weights=self._weights(kernel, kernel, channels),
            bias=self.rng.normal(0.0, 0.05, size=channels),
            input_params=self.params_of(self.last_id),
            output_params=RELU6_PARAMS,
            stride=stride,
            padding="same",
            activation="relu6",
            per_channel=self.per_channel,
        )
        return self._register(self.model.add(layer), RELU6_PARAMS)

    def pw(
        self, out_channels: int, activation: Optional[str] = "relu6"
    ) -> int:
        in_ch = self.channels()
        out_params = RELU6_PARAMS if activation == "relu6" else LINEAR_PARAMS
        layer = PointwiseConv2D(
            name=self._next_name("pw"),
            weights=self._weights(in_ch, out_channels),
            bias=self.rng.normal(0.0, 0.05, size=out_channels),
            input_params=self.params_of(self.last_id),
            output_params=out_params,
            activation=activation,
            per_channel=self.per_channel,
        )
        return self._register(self.model.add(layer), out_params)

    def residual_add(self, a_id: int, b_id: int) -> int:
        layer = ResidualAdd(
            name=self._next_name("add"),
            a_params=self.params_of(a_id),
            b_params=self.params_of(b_id),
            output_params=LINEAR_PARAMS,
        )
        node = self.model.add(layer, inputs=(a_id, b_id))
        return self._register(node, LINEAR_PARAMS)

    def global_pool(self) -> int:
        params = self.params_of(self.last_id)
        node = self.model.add(GlobalAveragePool(self._next_name("gap")))
        return self._register(node, params)

    def flatten(self) -> int:
        params = self.params_of(self.last_id)
        node = self.model.add(Flatten(self._next_name("flatten")))
        return self._register(node, params)

    def dense(self, out_features: int) -> int:
        shape = self.model.shape_of(self.last_id)
        in_features = 1
        for dim in shape:
            in_features *= dim
        layer = Dense(
            name=self._next_name("dense"),
            weights=self._weights(in_features, out_features),
            bias=self.rng.normal(0.0, 0.05, size=out_features),
            input_params=self.params_of(self.last_id),
            output_params=LOGIT_PARAMS,
            activation=None,
            per_channel=self.per_channel,
        )
        return self._register(self.model.add(layer), LOGIT_PARAMS)

    # -- composite blocks --------------------------------------------------

    def inverted_residual(
        self, out_channels: int, expansion: int, stride: int
    ) -> int:
        """One MobileNet-V2 inverted residual block: [pw-expand] -> dw
        -> pw-project (+ skip when shapes allow)."""
        block_input = self.last_id
        in_channels = self.channels()
        hidden = in_channels * expansion
        if expansion != 1:
            self.pw(hidden, activation="relu6")
        self.dw(kernel=3, stride=stride)
        project = self.pw(out_channels, activation=None)
        if stride == 1 and in_channels == out_channels:
            return self.residual_add(block_input, project)
        return project

    def separable(self, out_channels: int, stride: int) -> int:
        """One MobileNet-V1 depthwise separable pair: dw -> pw."""
        self.dw(kernel=3, stride=stride)
        return self.pw(out_channels, activation="relu6")


def build_mbv2(
    input_hw: int = 96,
    width_mult: float = 0.35,
    num_classes: int = 1000,
    seed: int = 20240101,
) -> Model:
    """MobileNet-V2 backbone at MCU scale (the paper's MBV2).

    Standard MBV2 block table scaled by ``width_mult``; 52 conv-family
    layers at the default configuration.
    """
    b = _Builder("mbv2", (input_hw, input_hw, 3), seed)
    b.conv(scale_channels(32, width_mult), kernel=3, stride=2)
    block_table = (
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    )
    for expansion, channels, repeats, first_stride in block_table:
        out_ch = scale_channels(channels, width_mult)
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            b.inverted_residual(out_ch, expansion, stride)
    b.pw(1280 if width_mult > 1.0 else scale_channels(1280, max(width_mult, 0.5)))
    b.global_pool()
    b.flatten()
    b.dense(num_classes)
    return b.model


def build_vww(
    input_hw: int = 80,
    width_mult: float = 0.3,
    num_classes: int = 2,
    seed: int = 20240202,
) -> Model:
    """Visual Wake Words: a narrow MBV2-style binary classifier."""
    b = _Builder("vww", (input_hw, input_hw, 3), seed)
    b.conv(scale_channels(32, width_mult), kernel=3, stride=2)
    block_table = (
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 2, 2),
        (6, 48, 2, 1),
        (6, 64, 2, 2),
        (6, 96, 2, 1),
    )
    for expansion, channels, repeats, first_stride in block_table:
        out_ch = scale_channels(channels, width_mult)
        for i in range(repeats):
            stride = first_stride if i == 0 else 1
            b.inverted_residual(out_ch, expansion, stride)
    b.pw(scale_channels(320, max(width_mult, 0.5)))
    b.global_pool()
    b.flatten()
    b.dense(num_classes)
    return b.model


def build_person_detection(
    input_hw: int = 96,
    width_mult: float = 0.25,
    num_classes: int = 2,
    seed: int = 20240303,
) -> Model:
    """Person Detection: a MobileNet-V1-style separable stack."""
    b = _Builder("pd", (input_hw, input_hw, 3), seed)
    b.conv(scale_channels(32, width_mult), kernel=3, stride=2)
    separable_table = (
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    )
    for channels, stride in separable_table:
        b.separable(scale_channels(channels, width_mult), stride)
    b.global_pool()
    b.flatten()
    b.dense(num_classes)
    return b.model


def build_tiny_test_model(
    input_hw: int = 16, num_classes: int = 4, seed: int = 7
) -> Model:
    """A small, fast model for unit tests and the quickstart example."""
    b = _Builder("tiny", (input_hw, input_hw, 3), seed)
    b.conv(8, kernel=3, stride=2)
    b.separable(16, stride=1)
    b.inverted_residual(16, expansion=2, stride=1)
    b.separable(24, stride=2)
    b.global_pool()
    b.flatten()
    b.dense(num_classes)
    return b.model


#: The paper's evaluation suite, keyed as in Figs. 5 and 6.
PAPER_MODELS: Dict[str, Callable[[], Model]] = {
    "vww": build_vww,
    "pd": build_person_detection,
    "mbv2": build_mbv2,
}
