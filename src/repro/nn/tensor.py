"""Quantized tensors (int8 data + affine quantization parameters).

The paper's models come out of MCUNet/TinyEngine with linear int8
quantization (Sec. IV).  We follow the same, TFLite-style convention:

    real_value = scale * (quantized_value - zero_point)

with int8 storage, per-tensor scale/zero-point for activations and
symmetric (zero_point = 0) per-tensor weights.  Activations use NHWC
layout throughout, matching how CMSIS-NN/TinyEngine lay feature maps
out in MCU SRAM (channel-last makes a "column" -- one pixel across all
channels -- contiguous, which is what the pointwise DAE buffers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import QuantizationError

INT8_MIN = -128
INT8_MAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """An int8 tensor with affine quantization parameters.

    Attributes:
        data: int8 ndarray, NHWC for feature maps.
        scale: positive real scale factor.
        zero_point: integer zero point within int8 range.
    """

    data: np.ndarray
    scale: float
    zero_point: int

    def __post_init__(self) -> None:
        if self.data.dtype != np.int8:
            raise QuantizationError(
                f"quantized tensor data must be int8, got {self.data.dtype}"
            )
        if self.scale <= 0:
            raise QuantizationError(f"scale must be positive, got {self.scale}")
        if not INT8_MIN <= self.zero_point <= INT8_MAX:
            raise QuantizationError(
                f"zero point {self.zero_point} outside int8 range"
            )

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def size_bytes(self) -> int:
        """Storage footprint in bytes (one byte per element)."""
        return int(self.data.size)

    def dequantize(self) -> np.ndarray:
        """Return the float32 real values this tensor represents."""
        return self.scale * (
            self.data.astype(np.float32) - float(self.zero_point)
        )

    def with_data(self, data: np.ndarray) -> "QuantizedTensor":
        """New tensor with the same quantization parameters."""
        return QuantizedTensor(
            data=data, scale=self.scale, zero_point=self.zero_point
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantizedTensor):
            return NotImplemented
        return (
            self.scale == other.scale
            and self.zero_point == other.zero_point
            and self.data.shape == other.data.shape
            and bool(np.array_equal(self.data, other.data))
        )

    def __hash__(self) -> int:  # dataclass(frozen) would try to hash ndarray
        return id(self)
