"""Shape-only layers (flatten)."""

from __future__ import annotations

from .base import Layer, LayerKind, Shape
from ..tensor import QuantizedTensor


class Flatten(Layer):
    """Flatten any tensor into a rank-1 vector (no data movement cost)."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FLATTEN

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        n = 1
        for dim in shape:
            n *= dim
        return (n,)

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        return x.with_data(x.data.reshape(-1))
