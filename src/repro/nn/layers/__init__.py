"""Quantized operator implementations."""

from .activation import ReLU
from .base import DAE_KINDS, Layer, LayerKind, Shape
from .conv2d import Conv2D
from .dense import Dense
from .depthwise import DepthwiseConv2D
from .pointwise import PointwiseConv2D
from .pooling import GlobalAveragePool, MaxPool2D
from .reshape import Flatten
from .residual import ResidualAdd

__all__ = [
    "DAE_KINDS",
    "Layer",
    "LayerKind",
    "Shape",
    "ReLU",
    "Conv2D",
    "Dense",
    "DepthwiseConv2D",
    "PointwiseConv2D",
    "GlobalAveragePool",
    "MaxPool2D",
    "Flatten",
    "ResidualAdd",
]
