"""Quantized pointwise (1x1) convolution.

Pointwise convolution mixes channels at each spatial position; each
output "column" (one pixel across all output channels) depends only on
the corresponding input column.  CMSIS-NN and TinyEngine therefore
compute it column by column; the paper's DAE variant instead buffers
``g`` input columns (memory-bound segment) and then runs the ``g``
matrix-vector products back to back (compute-bound segment).

:meth:`forward_columns` is that per-column-group kernel; the DAE engine
composes it and the tests check bit-exactness against :meth:`forward`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...errors import ShapeError
from ..quantize import QuantParams, requantize
from ..tensor import QuantizedTensor
from .base import Layer, LayerKind, Shape, require_hwc
from .convutils import (
    RequantSpec,
    make_requant_spec,
    quantize_bias,
    quantize_weights,
    weight_scales,
)


class PointwiseConv2D(Layer):
    """int8 1x1 convolution (channel mixing).

    Args:
        name: layer name.
        weights: float weights of shape (c_in, c_out).
        bias: float bias of shape (c_out,), or None.
        input_params: quantization of the incoming feature map.
        output_params: quantization of the produced feature map.
        activation: None, "relu" or "relu6".
        per_channel: quantize weights per output channel (TFLite's
            production scheme) instead of per tensor.
    """

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        input_params: QuantParams,
        output_params: QuantParams,
        activation: Optional[str] = "relu6",
        per_channel: bool = False,
    ):
        super().__init__(name)
        if weights.ndim != 2:
            raise ShapeError(
                f"{name}: pointwise weights must be (c_in, c_out), got "
                f"shape {weights.shape}"
            )
        self.in_channels = int(weights.shape[0])
        self.out_channels = int(weights.shape[1])
        self.input_params = input_params
        self.output_params = output_params

        self.per_channel = per_channel
        self.weight_scale = weight_scales(weights, per_channel)
        self.weights_q = quantize_weights(weights, self.weight_scale)
        bias = bias if bias is not None else np.zeros(self.out_channels)
        if bias.shape != (self.out_channels,):
            raise ShapeError(
                f"{name}: bias shape {bias.shape} != ({self.out_channels},)"
            )
        self.bias_q = quantize_bias(bias, input_params.scale, self.weight_scale)
        self.activation = activation
        self.requant: RequantSpec = make_requant_spec(
            input_params, self.weight_scale, output_params, activation
        )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POINTWISE_CONV

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        h, w, c = require_hwc(shape, self.name)
        if c != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected {self.in_channels} input channels, "
                f"got {c}"
            )
        return (h, w, self.out_channels)

    def macs(self, *input_shapes: Shape) -> int:
        h, w, _ = self.output_shape(*input_shapes)
        return h * w * self.in_channels * self.out_channels

    def weight_bytes(self) -> int:
        return int(self.weights_q.size) + 4 * self.out_channels

    # -- kernels -------------------------------------------------------------

    def _mix_columns(self, columns_i32: np.ndarray) -> np.ndarray:
        """Matrix-multiply zero-point-subtracted columns by the weights.

        Args:
            columns_i32: (n_columns, c_in) int32 array.

        Returns:
            int8 array of shape (n_columns, c_out).
        """
        acc = columns_i32.astype(np.int64) @ self.weights_q.astype(np.int64)
        acc += self.bias_q[np.newaxis, :]
        return requantize(
            acc,
            self.requant.multiplier,
            self.requant.shift,
            self.requant.output_zero_point,
            self.requant.activation_min,
            self.requant.activation_max,
        )

    def forward_columns(
        self, x: QuantizedTensor, columns: Sequence[int]
    ) -> np.ndarray:
        """Compute output columns for a group of flattened positions.

        A "column" is one spatial position of the NHWC feature map --
        ``c_in`` contiguous bytes -- indexed by ``row * W + col``.

        Returns:
            int8 array of shape (len(columns), c_out).
        """
        column_idx = np.asarray(list(columns), dtype=np.intp)
        if column_idx.size == 0:
            raise ShapeError(f"{self.name}: empty column group")
        h, w, c = require_hwc(x.shape, self.name)
        if c != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected {self.in_channels} channels, got {c}"
            )
        if column_idx.min() < 0 or column_idx.max() >= h * w:
            raise ShapeError(
                f"{self.name}: column indices out of range for {h}x{w}"
            )
        flat = x.data.reshape(h * w, c)
        columns_i32 = flat[column_idx].astype(np.int32) - x.zero_point
        return self._mix_columns(columns_i32)

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        h, w, _ = self.output_shape(x.shape)
        flat = x.data.reshape(h * w, self.in_channels)
        out = self._mix_columns(flat.astype(np.int32) - x.zero_point)
        return QuantizedTensor(
            data=out.reshape(h, w, self.out_channels),
            scale=self.output_params.scale,
            zero_point=self.output_params.zero_point,
        )
