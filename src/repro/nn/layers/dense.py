"""Quantized fully-connected (dense) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import ShapeError
from ..quantize import QuantParams, requantize
from ..tensor import QuantizedTensor
from .base import Layer, LayerKind, Shape
from .convutils import (
    RequantSpec,
    make_requant_spec,
    quantize_bias,
    quantize_weights,
    weight_scales,
)


class Dense(Layer):
    """int8 fully-connected layer over a flattened input.

    Args:
        name: layer name.
        weights: float weights of shape (in_features, out_features).
        bias: float bias of shape (out_features,), or None.
        input_params: quantization of the incoming tensor.
        output_params: quantization of the produced tensor.
        activation: None, "relu" or "relu6".
        per_channel: quantize weights per output channel (TFLite's
            production scheme) instead of per tensor.
    """

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        input_params: QuantParams,
        output_params: QuantParams,
        activation: Optional[str] = None,
        per_channel: bool = False,
    ):
        super().__init__(name)
        if weights.ndim != 2:
            raise ShapeError(
                f"{name}: dense weights must be (in, out), got {weights.shape}"
            )
        self.in_features = int(weights.shape[0])
        self.out_features = int(weights.shape[1])
        self.input_params = input_params
        self.output_params = output_params

        self.per_channel = per_channel
        self.weight_scale = weight_scales(weights, per_channel)
        self.weights_q = quantize_weights(weights, self.weight_scale)
        bias = bias if bias is not None else np.zeros(self.out_features)
        if bias.shape != (self.out_features,):
            raise ShapeError(
                f"{name}: bias shape {bias.shape} != ({self.out_features},)"
            )
        self.bias_q = quantize_bias(bias, input_params.scale, self.weight_scale)
        self.activation = activation
        self.requant: RequantSpec = make_requant_spec(
            input_params, self.weight_scale, output_params, activation
        )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.DENSE

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        n = 1
        for dim in shape:
            n *= dim
        if n != self.in_features:
            raise ShapeError(
                f"{self.name}: expected {self.in_features} input features, "
                f"got {n} (shape {shape})"
            )
        return (self.out_features,)

    def macs(self, *input_shapes: Shape) -> int:
        self.output_shape(*input_shapes)
        return self.in_features * self.out_features

    def weight_bytes(self) -> int:
        return int(self.weights_q.size) + 4 * self.out_features

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        self.output_shape(x.shape)
        flat = x.data.reshape(-1).astype(np.int32) - x.zero_point
        acc = flat.astype(np.int64) @ self.weights_q.astype(np.int64)
        acc += self.bias_q
        out = requantize(
            acc,
            self.requant.multiplier,
            self.requant.shift,
            self.requant.output_zero_point,
            self.requant.activation_min,
            self.requant.activation_max,
        )
        return QuantizedTensor(
            data=out,
            scale=self.output_params.scale,
            zero_point=self.output_params.zero_point,
        )
