"""Layer abstraction shared by every operator.

A :class:`Layer` is both an *executable* (``forward`` computes real
int8 numerics) and a *cost descriptor* (shape/MAC/traffic accessors the
engine's segment cost model consumes).  Keeping both faces on one
object guarantees the latency/energy model and the arithmetic always
describe the same operator configuration.

``LayerKind`` matters to the methodology: the DAE transformation is
applied to depthwise and pointwise convolutions only -- the paper notes
these two types make up over 80% of the layers of lightweight CNNs --
while every other layer type is scheduled as a single undecoupled
segment.
"""

from __future__ import annotations

import abc
import enum
from typing import Tuple

from ...errors import ShapeError
from ..tensor import QuantizedTensor

#: Feature-map shape convention: (height, width, channels).
Shape = Tuple[int, ...]


class LayerKind(enum.Enum):
    """Operator taxonomy used by the scheduler and the figures."""

    CONV2D = "conv2d"
    DEPTHWISE_CONV = "depthwise"
    POINTWISE_CONV = "pointwise"
    DENSE = "dense"
    AVG_POOL = "avg_pool"
    MAX_POOL = "max_pool"
    ADD = "add"
    ACTIVATION = "activation"
    FLATTEN = "flatten"


#: Layer kinds eligible for the DAE transformation (paper Sec. III-A).
DAE_KINDS = frozenset({LayerKind.DEPTHWISE_CONV, LayerKind.POINTWISE_CONV})


class Layer(abc.ABC):
    """One operator of a quantized CNN.

    Args:
        name: unique human-readable identifier within a model.
    """

    def __init__(self, name: str):
        if not name:
            raise ShapeError("layer name must be non-empty")
        self.name = name

    # -- identity ----------------------------------------------------------

    @property
    @abc.abstractmethod
    def kind(self) -> LayerKind:
        """The operator taxonomy entry for this layer."""

    @property
    def supports_dae(self) -> bool:
        """Whether the DAE transformation applies to this layer."""
        return self.kind in DAE_KINDS

    # -- execution ---------------------------------------------------------

    @abc.abstractmethod
    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        """Run the operator on int8 inputs, producing an int8 output."""

    # -- shape & cost descriptors -------------------------------------------

    @abc.abstractmethod
    def output_shape(self, *input_shapes: Shape) -> Shape:
        """Output feature-map shape for the given input shapes.

        Raises:
            ShapeError: if the inputs are incompatible with the layer.
        """

    def macs(self, *input_shapes: Shape) -> int:
        """Multiply-accumulate count (0 for non-arithmetic layers)."""
        return 0

    def weight_bytes(self) -> int:
        """Bytes of weights+biases resident in flash (0 if stateless)."""
        return 0

    def input_bytes(self, *input_shapes: Shape) -> int:
        """Total bytes of activation input (one byte per element)."""
        total = 0
        for shape in input_shapes:
            n = 1
            for dim in shape:
                n *= dim
            total += n
        return total

    def output_bytes(self, *input_shapes: Shape) -> int:
        """Bytes of activation output."""
        n = 1
        for dim in self.output_shape(*input_shapes):
            n *= dim
        return n

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} ({self.kind.value})>"


def require_hwc(shape: Shape, who: str) -> Tuple[int, int, int]:
    """Validate and unpack an (H, W, C) feature-map shape.

    Raises:
        ShapeError: if the shape is not rank-3 with positive dims.
    """
    if len(shape) != 3:
        raise ShapeError(f"{who} expects an (H, W, C) input, got shape {shape}")
    h, w, c = shape
    if h <= 0 or w <= 0 or c <= 0:
        raise ShapeError(f"{who} got non-positive dimensions in {shape}")
    return h, w, c


def conv_output_hw(
    h: int, w: int, kernel: int, stride: int, padding: str
) -> Tuple[int, int]:
    """Spatial output dims for a square-kernel convolution.

    Args:
        padding: ``"same"`` (zero-pad to preserve H/W at stride 1) or
            ``"valid"``.

    Raises:
        ShapeError: for unknown padding modes or empty outputs.
    """
    if padding == "same":
        out_h = -(-h // stride)
        out_w = -(-w // stride)
    elif padding == "valid":
        out_h = (h - kernel) // stride + 1
        out_w = (w - kernel) // stride + 1
    else:
        raise ShapeError(f"unknown padding mode {padding!r}")
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution output would be empty: input {h}x{w}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    return out_h, out_w
