"""Quantized pooling layers.

Average and max pooling keep the input quantization parameters
(TFLite convention), so they are pure int8 -> int8 reductions with no
requantization step.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..tensor import INT8_MAX, INT8_MIN, QuantizedTensor
from .base import Layer, LayerKind, Shape, require_hwc


class GlobalAveragePool(Layer):
    """Global spatial average pooling: (H, W, C) -> (1, 1, C).

    Uses round-half-away-from-zero on the integer mean, matching the
    CMSIS-NN implementation.
    """

    @property
    def kind(self) -> LayerKind:
        return LayerKind.AVG_POOL

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        _, _, c = require_hwc(shape, self.name)
        return (1, 1, c)

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        h, w, c = require_hwc(x.shape, self.name)
        total = x.data.astype(np.int32).sum(axis=(0, 1))
        count = h * w
        mean = np.where(
            total >= 0,
            (total + count // 2) // count,
            -((-total + count // 2) // count),
        )
        out = np.clip(mean, INT8_MIN, INT8_MAX).astype(np.int8)
        return x.with_data(out.reshape(1, 1, c))


class MaxPool2D(Layer):
    """Windowed max pooling with stride == window (non-overlapping).

    Args:
        name: layer name.
        pool: window size (and stride).
    """

    def __init__(self, name: str, pool: int = 2):
        super().__init__(name)
        if pool < 1:
            raise ShapeError(f"{name}: pool size must be >= 1, got {pool}")
        self.pool = pool

    @property
    def kind(self) -> LayerKind:
        return LayerKind.MAX_POOL

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        h, w, c = require_hwc(shape, self.name)
        if h % self.pool or w % self.pool:
            raise ShapeError(
                f"{self.name}: input {h}x{w} not divisible by pool "
                f"{self.pool}"
            )
        return (h // self.pool, w // self.pool, c)

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        out_h, out_w, c = self.output_shape(x.shape)
        p = self.pool
        windows = x.data.reshape(out_h, p, out_w, p, c)
        return x.with_data(windows.max(axis=(1, 3)))
