"""Standard quantized 2-D convolution."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import ShapeError
from ..quantize import QuantParams, requantize
from ..tensor import QuantizedTensor
from .base import Layer, LayerKind, Shape, conv_output_hw, require_hwc
from .convutils import (
    RequantSpec,
    im2col,
    make_requant_spec,
    pad_hwc,
    quantize_bias,
    quantize_weights,
    weight_scales,
)


class Conv2D(Layer):
    """int8 2-D convolution with fused bias/activation.

    Weights are quantized symmetrically per-tensor (zero point 0), the
    bias at the accumulator scale, and the output is requantized with
    the TFLite fixed-point scheme -- see :mod:`repro.nn.quantize`.

    Args:
        name: layer name.
        weights: float weights of shape (kh, kw, c_in, c_out) with
            kh == kw (square kernels only, as in the target models).
        bias: float bias of shape (c_out,), or None for zero bias.
        input_params: quantization of the incoming feature map.
        output_params: quantization of the produced feature map.
        stride: spatial stride.
        padding: "same" or "valid".
        activation: None, "relu" or "relu6" (fused clamp).
        per_channel: quantize weights per output channel (TFLite's
            production scheme) instead of per tensor.
    """

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        input_params: QuantParams,
        output_params: QuantParams,
        stride: int = 1,
        padding: str = "same",
        activation: Optional[str] = "relu6",
        per_channel: bool = False,
    ):
        super().__init__(name)
        if weights.ndim != 4:
            raise ShapeError(
                f"{name}: conv weights must be (kh, kw, c_in, c_out), "
                f"got shape {weights.shape}"
            )
        if weights.shape[0] != weights.shape[1]:
            raise ShapeError(f"{name}: only square kernels are supported")
        if stride < 1:
            raise ShapeError(f"{name}: stride must be >= 1, got {stride}")
        self.kernel = int(weights.shape[0])
        self.in_channels = int(weights.shape[2])
        self.out_channels = int(weights.shape[3])
        self.stride = stride
        self.padding = padding
        self.input_params = input_params
        self.output_params = output_params

        self.per_channel = per_channel
        self.weight_scale = weight_scales(weights, per_channel)
        self.weights_q = quantize_weights(weights, self.weight_scale)
        bias = bias if bias is not None else np.zeros(self.out_channels)
        if bias.shape != (self.out_channels,):
            raise ShapeError(
                f"{name}: bias shape {bias.shape} != ({self.out_channels},)"
            )
        self.bias_q = quantize_bias(bias, input_params.scale, self.weight_scale)
        self.activation = activation
        self.requant: RequantSpec = make_requant_spec(
            input_params, self.weight_scale, output_params, activation
        )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV2D

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        h, w, c = require_hwc(shape, self.name)
        if c != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected {self.in_channels} input channels, "
                f"got {c}"
            )
        out_h, out_w = conv_output_hw(
            h, w, self.kernel, self.stride, self.padding
        )
        return (out_h, out_w, self.out_channels)

    def macs(self, *input_shapes: Shape) -> int:
        out_h, out_w, _ = self.output_shape(*input_shapes)
        return (
            out_h * out_w * self.kernel * self.kernel
            * self.in_channels * self.out_channels
        )

    def weight_bytes(self) -> int:
        return int(self.weights_q.size) + 4 * self.out_channels

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        out_h, out_w, _ = self.output_shape(x.shape)
        x_padded = pad_hwc(
            x.data, self.kernel, self.stride, self.padding, x.zero_point
        )
        patches = im2col(
            x_padded.astype(np.int32), self.kernel, self.stride, out_h, out_w
        )
        patches -= x.zero_point
        w_mat = (
            self.weights_q.astype(np.int32)
            .reshape(-1, self.out_channels)
        )
        acc = patches.astype(np.int64) @ w_mat.astype(np.int64)
        acc += self.bias_q[np.newaxis, :]
        out = requantize(
            acc,
            self.requant.multiplier,
            self.requant.shift,
            self.requant.output_zero_point,
            self.requant.activation_min,
            self.requant.activation_max,
        )
        return QuantizedTensor(
            data=out.reshape(out_h, out_w, self.out_channels),
            scale=self.output_params.scale,
            zero_point=self.output_params.zero_point,
        )
