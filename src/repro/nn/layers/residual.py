"""Quantized residual (element-wise) addition.

Implements the TFLite integer add: both inputs are rescaled to a
common intermediate scale with a 20-bit headroom left shift, summed,
and requantized to the output scale -- all in fixed-point arithmetic.
Residual adds appear between inverted-residual blocks in
MobileNet-V2-style models; they are not DAE targets (paper Sec. III-A)
but must execute bit-deterministically so whole-model DAE-vs-reference
comparisons stay exact.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..quantize import QuantParams, quantize_multiplier, rounding_right_shift
from ..tensor import INT8_MAX, INT8_MIN, QuantizedTensor
from .base import Layer, LayerKind, Shape

#: Headroom shift of the TFLite int8 ADD kernel.
LEFT_SHIFT = 20


def _fixed_point_scale(values: np.ndarray, multiplier: int, shift: int) -> np.ndarray:
    """Multiply int64 values by ``multiplier * 2^(-31-shift)`` (rounded)."""
    prod = values.astype(np.int64) * int(multiplier)
    return rounding_right_shift(prod, 31 + shift)


class ResidualAdd(Layer):
    """int8 element-wise addition of two equal-shape feature maps.

    Args:
        name: layer name.
        a_params: quantization of the first input.
        b_params: quantization of the second input.
        output_params: quantization of the sum.
    """

    def __init__(
        self,
        name: str,
        a_params: QuantParams,
        b_params: QuantParams,
        output_params: QuantParams,
    ):
        super().__init__(name)
        self.a_params = a_params
        self.b_params = b_params
        self.output_params = output_params
        twice_max = 2.0 * max(a_params.scale, b_params.scale)
        self._a_mult, self._a_shift = quantize_multiplier(
            a_params.scale / twice_max
        )
        self._b_mult, self._b_shift = quantize_multiplier(
            b_params.scale / twice_max
        )
        self._out_mult, self._out_shift = quantize_multiplier(
            twice_max / ((1 << LEFT_SHIFT) * output_params.scale)
        )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ADD

    def output_shape(self, *input_shapes: Shape) -> Shape:
        a, b = input_shapes
        if a != b:
            raise ShapeError(
                f"{self.name}: residual add inputs differ: {a} vs {b}"
            )
        return a

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        a, b = inputs
        self.output_shape(a.shape, b.shape)
        a_shifted = (a.data.astype(np.int64) - a.zero_point) << LEFT_SHIFT
        b_shifted = (b.data.astype(np.int64) - b.zero_point) << LEFT_SHIFT
        acc = _fixed_point_scale(a_shifted, self._a_mult, self._a_shift)
        acc = acc + _fixed_point_scale(b_shifted, self._b_mult, self._b_shift)
        out = _fixed_point_scale(acc, self._out_mult, self._out_shift)
        out = out + self.output_params.zero_point
        return QuantizedTensor(
            data=np.clip(out, INT8_MIN, INT8_MAX).astype(np.int8),
            scale=self.output_params.scale,
            zero_point=self.output_params.zero_point,
        )
