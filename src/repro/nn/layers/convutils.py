"""Shared helpers for the quantized convolution family."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ...errors import QuantizationError, ShapeError
from ..quantize import QuantParams, quantize_multiplier
from ..tensor import INT8_MAX, INT8_MIN


def same_padding_amounts(
    size: int, kernel: int, stride: int
) -> Tuple[int, int]:
    """TensorFlow-style 'same' padding (before, after) for one axis."""
    out = -(-size // stride)
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    return before, total - before


def pad_hwc(
    x: np.ndarray, kernel: int, stride: int, padding: str, pad_value: int
) -> np.ndarray:
    """Zero-point-pad an (H, W, C) int array for a square convolution.

    Padding uses the input *zero point* so the padded ring represents
    real-value zero, exactly like the MCU kernels.
    """
    if padding == "valid":
        return x
    if padding != "same":
        raise ShapeError(f"unknown padding mode {padding!r}")
    h, w = x.shape[0], x.shape[1]
    top, bottom = same_padding_amounts(h, kernel, stride)
    left, right = same_padding_amounts(w, kernel, stride)
    if top == bottom == left == right == 0:
        return x
    return np.pad(
        x,
        ((top, bottom), (left, right), (0, 0)),
        mode="constant",
        constant_values=pad_value,
    )


def im2col(
    x_padded: np.ndarray, kernel: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """Extract convolution patches from an (H, W, C) array.

    Returns an ``(out_h * out_w, kernel * kernel * C)`` array whose
    rows are flattened receptive fields, matching a weight layout of
    ``(kh, kw, C, ...)`` flattened on its first three axes.
    """
    c = x_padded.shape[2]
    patches = np.empty(
        (out_h, out_w, kernel, kernel, c), dtype=x_padded.dtype
    )
    for kh in range(kernel):
        h_stop = kh + out_h * stride
        for kw in range(kernel):
            w_stop = kw + out_w * stride
            patches[:, :, kh, kw, :] = x_padded[
                kh:h_stop:stride, kw:w_stop:stride, :
            ]
    return patches.reshape(out_h * out_w, kernel * kernel * c)


@dataclass(frozen=True, eq=False)
class RequantSpec:
    """Precomputed requantization constants of one conv/dense layer.

    Attributes:
        multiplier: Q31 mantissa of ``s_in * s_w / s_out`` -- an int
            for per-tensor weight quantization, an int64 array (one
            entry per output channel) for per-channel.
        shift: right-shift exponent companion of ``multiplier`` (int or
            matching array).
        output_zero_point: output tensor zero point.
        activation_min: fused activation lower clamp (quantized).
        activation_max: fused activation upper clamp (quantized).
    """

    multiplier: "int | np.ndarray"
    shift: "int | np.ndarray"
    output_zero_point: int
    activation_min: int
    activation_max: int

    @property
    def is_per_channel(self) -> bool:
        """Whether the multipliers are per output channel."""
        return isinstance(self.multiplier, np.ndarray)

    def sliced(self, channel_idx) -> "RequantSpec":
        """The spec restricted to a subset of output channels.

        A no-op for per-tensor specs; used by the DAE depthwise kernel
        that computes channel groups independently.
        """
        if not self.is_per_channel:
            return self
        return RequantSpec(
            multiplier=self.multiplier[channel_idx],
            shift=self.shift[channel_idx],
            output_zero_point=self.output_zero_point,
            activation_min=self.activation_min,
            activation_max=self.activation_max,
        )


def make_requant_spec(
    input_params: QuantParams,
    weight_scale,
    output_params: QuantParams,
    activation: Optional[str],
) -> RequantSpec:
    """Build the requantization constants for a conv/dense layer.

    Args:
        weight_scale: the per-tensor weight scale (float), or the
            per-output-channel scales (ndarray) for per-channel
            quantization.
        activation: ``None`` (linear), ``"relu"`` or ``"relu6"`` --
            fused into the output clamp exactly like TFLite/CMSIS-NN.

    Raises:
        QuantizationError: for unknown activation names or a requant
            multiplier outside (0, 1).
    """
    if isinstance(weight_scale, np.ndarray):
        pairs = [
            quantize_multiplier(
                input_params.scale * float(scale) / output_params.scale
            )
            for scale in weight_scale
        ]
        multiplier = np.array([m for m, _ in pairs], dtype=np.int64)
        shift = np.array([s for _, s in pairs], dtype=np.int64)
    else:
        real_multiplier = (
            input_params.scale * weight_scale / output_params.scale
        )
        multiplier, shift = quantize_multiplier(real_multiplier)
    zp = output_params.zero_point
    if activation is None:
        act_min, act_max = INT8_MIN, INT8_MAX
    elif activation == "relu":
        act_min, act_max = zp, INT8_MAX
    elif activation == "relu6":
        act_min = zp
        act_max = min(INT8_MAX, zp + int(round(6.0 / output_params.scale)))
    else:
        raise QuantizationError(f"unknown fused activation {activation!r}")
    act_min = max(INT8_MIN, min(act_min, INT8_MAX))
    act_max = max(act_min, min(act_max, INT8_MAX))
    return RequantSpec(
        multiplier=multiplier,
        shift=shift,
        output_zero_point=zp,
        activation_min=act_min,
        activation_max=act_max,
    )


def quantize_bias(
    bias: np.ndarray, input_scale: float, weight_scale
) -> np.ndarray:
    """Quantize a float bias to int32/int64 at the accumulator scale.

    ``weight_scale`` may be per-tensor (float) or per-output-channel
    (ndarray matching the bias length).
    """
    scale = input_scale * np.asarray(weight_scale, dtype=np.float64)
    return np.round(bias / scale).astype(np.int64)


def weight_scales(
    weights: np.ndarray, per_channel: bool
) -> "float | np.ndarray":
    """Symmetric weight scale(s): per-tensor or per-output-channel.

    The output channel is the last axis, matching every conv/dense
    weight layout in this library.
    """
    if not per_channel:
        bound = float(np.max(np.abs(weights))) or 1e-8
        return bound / 127.0
    reduce_axes = tuple(range(weights.ndim - 1))
    bounds = np.abs(weights).max(axis=reduce_axes)
    bounds = np.where(bounds == 0.0, 1e-8, bounds)
    return bounds / 127.0


def quantize_weights(weights: np.ndarray, scales) -> np.ndarray:
    """Quantize weights symmetrically with per-tensor/channel scales."""
    q = np.round(weights / np.asarray(scales, dtype=np.float64))
    return np.clip(q, -128, 127).astype(np.int8)
