"""Standalone quantized activation layers.

Most activations in MCU graphs are fused into the preceding conv's
requantization clamp (see ``convutils.make_requant_spec``); a
standalone layer exists for graphs that keep them separate (e.g.
after a residual add).  Operating directly on the quantized domain,
ReLU is a clamp at the zero point and ReLU6 additionally clamps at the
quantized 6.0.
"""

from __future__ import annotations

import numpy as np

from ...errors import ShapeError
from ..tensor import INT8_MAX, QuantizedTensor
from .base import Layer, LayerKind, Shape


class ReLU(Layer):
    """Quantized ReLU / ReLU6: clamp at the input's zero point.

    Args:
        name: layer name.
        max_value: optional real-valued upper clamp (6.0 for ReLU6);
            None means no upper clamp.
    """

    def __init__(self, name: str, max_value: float | None = None):
        super().__init__(name)
        if max_value is not None and max_value <= 0:
            raise ShapeError(f"{name}: max_value must be positive")
        self.max_value = max_value

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ACTIVATION

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        return shape

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        lower = x.zero_point
        if self.max_value is None:
            upper = INT8_MAX
        else:
            upper = min(
                INT8_MAX,
                x.zero_point + int(round(self.max_value / x.scale)),
            )
        return x.with_data(np.clip(x.data, lower, upper))
