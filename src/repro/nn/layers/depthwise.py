"""Quantized depthwise convolution.

Depthwise convolution convolves *each input channel with its own
filter* (channel multiplier 1), which is what makes it the natural DAE
target: channels are independent, so any ``g`` of them can be buffered
(memory-bound segment) and then convolved back-to-back (compute-bound
segment) without changing a single output bit -- paper Listing 1.

Besides the whole-layer :meth:`forward`, the layer exposes
:meth:`forward_channels`, the per-channel-group kernel the DAE engine
composes.  Both paths share the same integer arithmetic, so
DAE-vs-reference bit-exactness is checked end to end.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...errors import ShapeError
from ..quantize import QuantParams, requantize
from ..tensor import QuantizedTensor
from .base import Layer, LayerKind, Shape, conv_output_hw, require_hwc
from .convutils import (
    RequantSpec,
    make_requant_spec,
    pad_hwc,
    quantize_bias,
    quantize_weights,
    weight_scales,
)


class DepthwiseConv2D(Layer):
    """int8 depthwise convolution (channel multiplier 1).

    Args:
        name: layer name.
        weights: float weights of shape (kh, kw, channels), kh == kw.
        bias: float bias of shape (channels,), or None.
        input_params: quantization of the incoming feature map.
        output_params: quantization of the produced feature map.
        stride: spatial stride.
        padding: "same" or "valid".
        activation: None, "relu" or "relu6".
        per_channel: quantize weights per output channel (TFLite's
            production scheme) instead of per tensor.
    """

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: Optional[np.ndarray],
        input_params: QuantParams,
        output_params: QuantParams,
        stride: int = 1,
        padding: str = "same",
        activation: Optional[str] = "relu6",
        per_channel: bool = False,
    ):
        super().__init__(name)
        if weights.ndim != 3:
            raise ShapeError(
                f"{name}: depthwise weights must be (kh, kw, c), got "
                f"shape {weights.shape}"
            )
        if weights.shape[0] != weights.shape[1]:
            raise ShapeError(f"{name}: only square kernels are supported")
        if stride < 1:
            raise ShapeError(f"{name}: stride must be >= 1, got {stride}")
        self.kernel = int(weights.shape[0])
        self.channels = int(weights.shape[2])
        self.stride = stride
        self.padding = padding
        self.input_params = input_params
        self.output_params = output_params

        self.per_channel = per_channel
        self.weight_scale = weight_scales(weights, per_channel)
        self.weights_q = quantize_weights(weights, self.weight_scale)
        bias = bias if bias is not None else np.zeros(self.channels)
        if bias.shape != (self.channels,):
            raise ShapeError(
                f"{name}: bias shape {bias.shape} != ({self.channels},)"
            )
        self.bias_q = quantize_bias(bias, input_params.scale, self.weight_scale)
        self.activation = activation
        self.requant: RequantSpec = make_requant_spec(
            input_params, self.weight_scale, output_params, activation
        )

    @property
    def kind(self) -> LayerKind:
        return LayerKind.DEPTHWISE_CONV

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        h, w, c = require_hwc(shape, self.name)
        if c != self.channels:
            raise ShapeError(
                f"{self.name}: expected {self.channels} channels, got {c}"
            )
        out_h, out_w = conv_output_hw(
            h, w, self.kernel, self.stride, self.padding
        )
        return (out_h, out_w, self.channels)

    def macs(self, *input_shapes: Shape) -> int:
        out_h, out_w, c = self.output_shape(*input_shapes)
        return out_h * out_w * self.kernel * self.kernel * c

    def weight_bytes(self) -> int:
        return int(self.weights_q.size) + 4 * self.channels

    # -- kernels -------------------------------------------------------------

    def _convolve(
        self, x_padded_i32: np.ndarray, channel_slice: np.ndarray
    ) -> np.ndarray:
        """Accumulate the depthwise conv for a channel subset.

        Args:
            x_padded_i32: zero-point-subtracted, padded input slice of
                shape (Hp, Wp, len(channel_slice)), int32.
            channel_slice: channel indices being computed.

        Returns:
            int8 output of shape (out_h, out_w, len(channel_slice)).
        """
        stride = self.stride
        hp, wp = x_padded_i32.shape[0], x_padded_i32.shape[1]
        out_h = (hp - self.kernel) // stride + 1
        out_w = (wp - self.kernel) // stride + 1
        acc = np.zeros((out_h, out_w, len(channel_slice)), dtype=np.int64)
        w_q = self.weights_q[:, :, channel_slice].astype(np.int64)
        for kh in range(self.kernel):
            h_stop = kh + out_h * stride
            for kw in range(self.kernel):
                w_stop = kw + out_w * stride
                window = x_padded_i32[kh:h_stop:stride, kw:w_stop:stride, :]
                acc += window.astype(np.int64) * w_q[kh, kw, :]
        acc += self.bias_q[channel_slice]
        spec = self.requant.sliced(channel_slice)
        return requantize(
            acc,
            spec.multiplier,
            spec.shift,
            spec.output_zero_point,
            spec.activation_min,
            spec.activation_max,
        )

    def forward_channels(
        self, x: QuantizedTensor, channels: Sequence[int]
    ) -> np.ndarray:
        """Compute the output for a group of channels (the DAE kernel).

        This is the "convolve_depthwise(kernel, buf_i)" of Listing 1:
        the caller has conceptually buffered these channels; we compute
        their outputs independently of all other channels.

        Returns:
            int8 array of shape (out_h, out_w, len(channels)).
        """
        channel_idx = np.asarray(list(channels), dtype=np.intp)
        if channel_idx.size == 0:
            raise ShapeError(f"{self.name}: empty channel group")
        if channel_idx.min() < 0 or channel_idx.max() >= self.channels:
            raise ShapeError(
                f"{self.name}: channel indices {channels} out of range"
            )
        x_padded = pad_hwc(
            x.data[:, :, channel_idx],
            self.kernel,
            self.stride,
            self.padding,
            x.zero_point,
        )
        x_i32 = x_padded.astype(np.int32) - x.zero_point
        return self._convolve(x_i32, channel_idx)

    def forward(self, *inputs: QuantizedTensor) -> QuantizedTensor:
        (x,) = inputs
        out_h, out_w, _ = self.output_shape(x.shape)
        x_padded = pad_hwc(
            x.data, self.kernel, self.stride, self.padding, x.zero_point
        )
        x_i32 = x_padded.astype(np.int32) - x.zero_point
        out = self._convolve(x_i32, np.arange(self.channels, dtype=np.intp))
        return QuantizedTensor(
            data=out.reshape(out_h, out_w, self.channels),
            scale=self.output_params.scale,
            zero_point=self.output_params.zero_point,
        )
