"""int8 CNN library: tensors, quantization, layers, graphs, models."""

from .generator import random_separable_cnn
from .graph import INPUT_ID, Model, Node
from .layers import (
    Conv2D,
    ReLU,
    Dense,
    DepthwiseConv2D,
    Flatten,
    GlobalAveragePool,
    Layer,
    LayerKind,
    MaxPool2D,
    PointwiseConv2D,
    ResidualAdd,
)
from .models import (
    PAPER_MODELS,
    build_mbv2,
    build_person_detection,
    build_tiny_test_model,
    build_vww,
    scale_channels,
)
from .serialize import load_model, save_model
from .quantize import (
    QuantParams,
    choose_qparams,
    quantize_array,
    quantize_multiplier,
    quantize_tensor,
    requantize,
)
from .tensor import INT8_MAX, INT8_MIN, QuantizedTensor

__all__ = [
    "random_separable_cnn",
    "INPUT_ID",
    "Model",
    "Node",
    "Conv2D",
    "ReLU",
    "Dense",
    "DepthwiseConv2D",
    "Flatten",
    "GlobalAveragePool",
    "Layer",
    "LayerKind",
    "MaxPool2D",
    "PointwiseConv2D",
    "ResidualAdd",
    "PAPER_MODELS",
    "build_mbv2",
    "build_person_detection",
    "build_tiny_test_model",
    "build_vww",
    "scale_channels",
    "load_model",
    "save_model",
    "QuantParams",
    "choose_qparams",
    "quantize_array",
    "quantize_multiplier",
    "quantize_tensor",
    "requantize",
    "INT8_MAX",
    "INT8_MIN",
    "QuantizedTensor",
]
