"""Linear int8 quantization math (TFLite/CMSIS-NN compatible).

Implements the three operations every int8 inference engine needs:

* choosing affine quantization parameters from a real value range,
* quantizing float arrays to int8, and
* **requantization**: rescaling an int32 accumulator to the output
  tensor's int8 domain using a fixed-point multiplier
  ``M = m0 * 2^(-shift)`` with ``m0`` a 31-bit normalized mantissa --
  the exact scheme TFLite Micro, CMSIS-NN and TinyEngine use, so the
  arithmetic here is bit-faithful to what runs on the MCU.

Bit-faithfulness matters for the reproduction: the DAE transformation
claims *no accuracy drop* (paper Sec. III-A), which we verify by
checking bit-identical outputs between the per-channel reference
kernels and the DAE-reordered kernels; that check is only meaningful
if the requantization is genuinely integer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import QuantizationError
from .tensor import INT8_MAX, INT8_MIN, QuantizedTensor


@dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters for one tensor."""

    scale: float
    zero_point: int

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise QuantizationError(f"scale must be positive, got {self.scale}")
        if not INT8_MIN <= self.zero_point <= INT8_MAX:
            raise QuantizationError(
                f"zero point {self.zero_point} outside int8 range"
            )


def choose_qparams(
    min_value: float, max_value: float, symmetric: bool = False
) -> QuantParams:
    """Pick (scale, zero_point) covering ``[min_value, max_value]``.

    The range is widened to include 0.0 (TFLite convention) so that
    zero-padding is exactly representable.  ``symmetric=True`` forces
    ``zero_point = 0`` (used for weights).

    Raises:
        QuantizationError: if the range is inverted or not finite.
    """
    if not (math.isfinite(min_value) and math.isfinite(max_value)):
        raise QuantizationError("quantization range must be finite")
    if min_value > max_value:
        raise QuantizationError(
            f"inverted quantization range [{min_value}, {max_value}]"
        )
    min_value = min(0.0, min_value)
    max_value = max(0.0, max_value)
    if symmetric:
        bound = max(abs(min_value), abs(max_value), 1e-8)
        return QuantParams(scale=bound / 127.0, zero_point=0)
    span = max(max_value - min_value, 1e-8)
    scale = span / (INT8_MAX - INT8_MIN)
    zero_point = int(round(INT8_MIN - min_value / scale))
    zero_point = max(INT8_MIN, min(INT8_MAX, zero_point))
    return QuantParams(scale=scale, zero_point=zero_point)


def quantize_array(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize a float array to int8 under ``params``."""
    q = np.round(values / params.scale) + params.zero_point
    return np.clip(q, INT8_MIN, INT8_MAX).astype(np.int8)


def quantize_tensor(
    values: np.ndarray, symmetric: bool = False
) -> QuantizedTensor:
    """Quantize a float array with range-derived parameters."""
    params = choose_qparams(
        float(values.min()) if values.size else 0.0,
        float(values.max()) if values.size else 0.0,
        symmetric=symmetric,
    )
    return QuantizedTensor(
        data=quantize_array(values, params),
        scale=params.scale,
        zero_point=params.zero_point,
    )


def quantize_multiplier(real_multiplier: float) -> Tuple[int, int]:
    """Decompose a positive real multiplier as ``m0 * 2^(-shift)``.

    Returns ``(m0, shift)`` with ``m0`` in ``[2^30, 2^31)`` (a Q31
    mantissa) such that ``m0 * 2^(-31-shift)`` approximates
    ``real_multiplier``, following the TFLite reference implementation.

    Raises:
        QuantizationError: if the multiplier is not in (0, 1) -- int8
            conv output multipliers always are, because the accumulator
            scale exceeds the output scale.
    """
    if not 0.0 < real_multiplier < 1.0:
        raise QuantizationError(
            f"requant multiplier must be in (0, 1), got {real_multiplier}"
        )
    mantissa, exponent = math.frexp(real_multiplier)  # mantissa in [0.5, 1)
    m0 = int(round(mantissa * (1 << 31)))
    if m0 == (1 << 31):  # rounding overflowed the mantissa
        m0 //= 2
        exponent += 1
    shift = -exponent  # real = m0 / 2^31 * 2^exponent
    return m0, shift


def requantize(
    acc: np.ndarray,
    multiplier,
    shift,
    output_zero_point: int,
    activation_min: int = INT8_MIN,
    activation_max: int = INT8_MAX,
) -> np.ndarray:
    """Rescale int32 accumulators to int8 (fixed-point, round-to-nearest).

    Computes ``out = clamp(zp + round(acc * multiplier * 2^(-31-shift)))``
    entirely in integer arithmetic, with round-half-away-from-zero to
    match the saturating-rounding-doubling-high-multiply semantics of
    the ARM kernels.

    Args:
        acc: int32/int64 accumulator array.
        multiplier: Q31 mantissa from :func:`quantize_multiplier`, or a
            per-output-channel int64 array broadcastable against the
            accumulator's last axis (per-channel quantization).
        shift: right-shift exponent companion of ``multiplier`` (int or
            matching array).
        output_zero_point: output tensor zero point.
        activation_min: fused activation lower clamp (e.g. ``zp`` for
            ReLU, int8 min for linear).
        activation_max: fused activation upper clamp.

    Returns:
        int8 array with the same shape as ``acc``.
    """
    if activation_min > activation_max:
        raise QuantizationError("activation_min must be <= activation_max")
    if isinstance(multiplier, np.ndarray):
        multiplier64 = multiplier.astype(np.int64)
        total_shift = 31 + np.asarray(shift, dtype=np.int64)
        if np.any(total_shift < 0):
            raise QuantizationError("negative total shift in per-channel spec")
    else:
        multiplier64 = int(multiplier)
        total_shift = 31 + int(shift)
        if total_shift < 0:
            raise QuantizationError(f"negative total shift {total_shift}")
    prod = acc.astype(np.int64) * multiplier64
    scaled = rounding_right_shift(prod, total_shift)
    out = scaled + output_zero_point
    return np.clip(out, activation_min, activation_max).astype(np.int8)


def rounding_right_shift(values: np.ndarray, shift) -> np.ndarray:
    """Arithmetic right shift with round-half-away-from-zero.

    The TFLite ``RoundingDivideByPOT`` scheme: compute the floor shift,
    then add one when the discarded remainder exceeds half (with the
    half-point threshold biased by one for negative inputs so exact
    halves round away from zero).  ``shift`` may be a scalar or an
    array broadcastable against ``values`` (per-channel shifts).
    """
    if isinstance(shift, np.ndarray):
        if np.any(shift < 0):
            raise QuantizationError("shifts must be >= 0")
        shift64 = shift.astype(np.int64)
        mask = (np.int64(1) << shift64) - 1
        shifted = values >> shift64
        remainder = values & mask
        threshold = (mask >> 1) + (values < 0).astype(np.int64)
        return shifted + (remainder > threshold).astype(np.int64)
    if shift == 0:
        return values.copy()
    if shift < 0:
        raise QuantizationError(f"shift must be >= 0, got {shift}")
    mask = (1 << shift) - 1
    shifted = values >> shift
    remainder = values & mask
    threshold = (mask >> 1) + (values < 0).astype(np.int64)
    return shifted + (remainder > threshold).astype(np.int64)


def dequantize_error(values: np.ndarray, tensor: QuantizedTensor) -> float:
    """Max absolute reconstruction error of ``tensor`` vs ``values``.

    Useful in tests: for in-range inputs the error is bounded by half a
    quantization step.
    """
    return float(np.max(np.abs(tensor.dequantize() - values))) if values.size else 0.0
