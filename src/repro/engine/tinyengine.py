"""TinyEngine-style baselines (paper Sec. IV).

Two baselines frame the evaluation:

* :class:`TinyEngine` -- the state-of-the-art inference engine the
  paper compares against: per-channel depthwise / per-column pointwise
  kernels (fused traces, no DAE), running flat out at the maximum
  216 MHz SYSCLK.  In the iso-latency scenario the board then sits in
  plain WFI idle *at 216 MHz* until the QoS window closes.
* :class:`TinyEngineClockGated` -- the same engine, but post-inference
  idling deactivates unused clocks and the voltage regulator ("clock
  gating"), collapsing the idle power to the gated floor.

Both reuse :class:`~repro.engine.runtime.DVFSRuntime` with a uniform
g=0 / 216 MHz plan, so every modelling assumption is shared with the
proposed approach and the comparison isolates the scheduling policy.
"""

from __future__ import annotations

from typing import Optional

from ..clock.configs import ClockConfig, max_performance_config
from ..mcu.board import Board
from ..nn.graph import Model
from .cost import TraceBuilder, TraceParams
from .runtime import DVFSRuntime, IdlePolicy, InferenceReport
from .schedule import uniform_plan


class TinyEngine:
    """Fixed-clock, fused-kernel baseline engine.

    Args:
        board: the simulated board.
        clock: engine clock; defaults to the minimum-power 216 MHz
            configuration (the paper's baseline setting).
        trace_params: access-pattern constants (shared with the DVFS
            runtime for apples-to-apples comparisons).
        tracer: an existing :class:`TraceBuilder` to share, so the
            baselines reuse the pipeline's memoized g=0 traces.
    """

    #: Post-inference idle policy of this engine variant.
    idle_policy = IdlePolicy.HOT

    def __init__(
        self,
        board: Board,
        clock: Optional[ClockConfig] = None,
        trace_params: Optional[TraceParams] = None,
        tracer: Optional[TraceBuilder] = None,
    ):
        self.board = board
        self.clock = clock or self._default_clock(board)
        self._runtime = DVFSRuntime(board, trace_params, tracer=tracer)

    @staticmethod
    def _default_clock(board: Board) -> ClockConfig:
        """The board's flat-out baseline clock.

        F767-style boards (no native design space) keep the paper's
        minimum-power 216 MHz configuration; boards carrying their own
        space run the baseline at their fastest HFO.
        """
        if board.space_factory is None:
            return max_performance_config()
        space = board.space_factory(board)
        return max(space.hfo_configs, key=lambda c: c.sysclk_hz)

    def run(self, model: Model, qos_s: Optional[float] = None) -> InferenceReport:
        """Run one inference; idle (per the engine's policy) to ``qos_s``."""
        plan = uniform_plan(model, hfo=self.clock, granularity=0)
        return self._runtime.run(
            model,
            plan,
            qos_s=qos_s,
            idle_policy=self.idle_policy,
            initial_config=self.clock,
        )

    def inference_latency_s(self, model: Model) -> float:
        """Latency of one inference (no QoS window)."""
        return self.run(model).latency_s


class TinyEngineClockGated(TinyEngine):
    """TinyEngine with clock-gated post-inference idling."""

    idle_policy = IdlePolicy.GATED


class TinyEngineDeepSleep(TinyEngine):
    """TinyEngine entering STOP-mode deep sleep between inferences.

    A baseline *stronger* than anything the paper evaluates: the idle
    window costs almost nothing, so beating it requires genuinely
    cheaper inference -- exactly what isolates the DAE+DVFS
    contribution from race-to-idle accounting (extension E11).
    """

    idle_policy = IdlePolicy.STOP
