"""Execution-segment traces.

The DAE transformation (paper Sec. III-A, Listing 1) turns a
convolution layer into an alternating sequence of

* **memory-bound segments** -- buffer ``g`` channels (depthwise) or
  ``g`` columns (pointwise) into SRAM, plus stream the needed weights
  from flash -- and
* **compute-bound segments** -- run the ``g`` convolutions
  back-to-back out of the warm buffers.

A :class:`LayerTrace` is that sequence plus bookkeeping; an
un-decoupled layer (``g == 0`` or a non-DAE layer kind) is a single
:attr:`SegmentKind.FUSED` segment.  Traces carry *primitive counts*
(:class:`~repro.mcu.core.SegmentWorkload`), not times: the runtime
prices them at whatever clock each segment ends up running, which is
what lets one trace be evaluated across the whole DVFS design space.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List

from ..errors import TraceError
from ..mcu.core import SegmentWorkload
from ..nn.layers.base import LayerKind


class SegmentKind(enum.Enum):
    """Phase of a DAE-restructured layer."""

    #: Buffering phase: runs at the LFO clock.
    MEMORY = "memory"
    #: Arithmetic phase: runs at the layer's HFO clock.
    COMPUTE = "compute"
    #: Un-decoupled execution: one clock for the whole layer.
    FUSED = "fused"


@dataclass(frozen=True)
class Segment:
    """One homogeneous execution phase."""

    kind: SegmentKind
    workload: SegmentWorkload

    def __post_init__(self) -> None:
        total = (
            self.workload.cpu_cycles
            + self.workload.flash_bytes
            + self.workload.sram_bytes
        )
        if total <= 0:
            raise TraceError("segment must carry a non-empty workload")


@dataclass
class LayerTrace:
    """The segment sequence of one layer at one granularity.

    Attributes:
        node_id: graph node this trace describes.
        layer_name: the layer's name (for reports).
        layer_kind: the layer's kind (drives Fig. 6 statistics).
        granularity: DAE granularity g (0 = no decoupling).
        segments: ordered segment list.  For a decoupled layer this is
            ``iterations`` (memory, compute) pairs; for a fused layer a
            single FUSED segment.
        iterations: number of DAE loop iterations (0 when fused).
    """

    node_id: int
    layer_name: str
    layer_kind: LayerKind
    granularity: int
    segments: List[Segment] = field(default_factory=list)
    iterations: int = 0

    def __post_init__(self) -> None:
        if self.granularity < 0:
            raise TraceError("granularity must be >= 0")
        if self.granularity == 0:
            if self.iterations != 0:
                raise TraceError("fused traces cannot have iterations")
        elif self.iterations <= 0:
            raise TraceError("decoupled traces need >= 1 iteration")

    @property
    def is_decoupled(self) -> bool:
        """Whether this trace alternates memory/compute segments."""
        return self.granularity > 0

    def memory_segments(self) -> List[Segment]:
        """Segments that run at the LFO clock."""
        return [s for s in self.segments if s.kind is SegmentKind.MEMORY]

    def compute_segments(self) -> List[Segment]:
        """Segments that run at the HFO clock."""
        return [s for s in self.segments if s.kind is SegmentKind.COMPUTE]

    def total_workload(self) -> SegmentWorkload:
        """Sum of all segment workloads (granularity-independent MACs
        plus granularity-dependent buffering overheads)."""
        total = SegmentWorkload()
        for segment in self.segments:
            total = total.merged(segment.workload)
        return total

    def mux_switch_count(self) -> int:
        """SYSCLK mux transitions this trace's execution performs.

        Two per iteration: into the memory segment (to HSE) and back
        into the compute segment (to PLL).  Fused traces switch zero
        times within the layer.
        """
        return 2 * self.iterations if self.is_decoupled else 0


@dataclass
class ModelTrace:
    """Per-layer traces for one full model configuration."""

    model_name: str
    layer_traces: List[LayerTrace] = field(default_factory=list)

    def __iter__(self) -> Iterator[LayerTrace]:
        return iter(self.layer_traces)

    def __len__(self) -> int:
        return len(self.layer_traces)

    def trace_for(self, node_id: int) -> LayerTrace:
        """Find the trace of one node.

        Raises:
            TraceError: if the node has no trace.
        """
        for trace in self.layer_traces:
            if trace.node_id == node_id:
                return trace
        raise TraceError(f"no trace for node {node_id}")
