"""Streaming execution: periodic inference windows.

Deployed far-edge nodes run the paper's QoS window *periodically* --
frame in, inference, idle, repeat.  :func:`run_stream` simulates ``n``
consecutive windows, distinguishing the first window (whose clock
state comes from boot) from the steady-state windows (whose clock
state carries over from the previous window), and aggregates energy.
The concatenated power trace feeds directly into
:func:`repro.power.thermal.thermal_replay` and
:func:`repro.analysis.battery.estimate_lifetime` for
sustained-operation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SolverError
from ..nn.graph import Model
from ..power.energy import EnergyInterval
from .runtime import DVFSRuntime, IdlePolicy, InferenceReport
from .schedule import DeploymentPlan


@dataclass
class StreamReport:
    """Aggregate of ``n`` periodic inference windows.

    Attributes:
        windows: number of windows simulated.
        period_s: window period (= each window's QoS budget).
        first: full report of the boot window.
        steady: full report of a steady-state window (clock state
            carried over from the previous window's end).
        total_energy_j: energy across all windows.
        deadline_misses: windows whose inference exceeded the period.
    """

    windows: int
    period_s: float
    first: InferenceReport
    steady: InferenceReport
    total_energy_j: float
    deadline_misses: int

    @property
    def total_time_s(self) -> float:
        """Wall time of the whole stream."""
        return self.windows * self.period_s

    @property
    def average_power_w(self) -> float:
        """Mean power over the stream."""
        if self.total_time_s == 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    def power_trace(self) -> List[EnergyInterval]:
        """The stream's concatenated piecewise-constant power trace.

        Suitable for :func:`repro.power.thermal.thermal_replay`.
        """
        trace = list(self.first.account.intervals)
        steady_intervals = self.steady.account.intervals
        for _ in range(self.windows - 1):
            trace.extend(steady_intervals)
        return trace


def run_stream(
    runtime: DVFSRuntime,
    model: Model,
    plan: DeploymentPlan,
    period_s: float,
    windows: int,
    idle_policy: IdlePolicy = IdlePolicy.GATED,
    initial_config=None,
) -> StreamReport:
    """Simulate ``windows`` periodic inference windows.

    The first window starts from ``initial_config`` (default: the
    plan's pre-locked initial clock); every later window starts from
    the clock the previous window ended on -- the HFO of the last
    scheduled layer -- so cross-window PLL state is accounted.

    Raises:
        SolverError: for a non-positive period or window count.
    """
    if period_s <= 0:
        raise SolverError("period must be positive")
    if windows < 1:
        raise SolverError("need at least one window")
    first = runtime.run(
        model,
        plan,
        qos_s=period_s,
        idle_policy=idle_policy,
        initial_config=(
            initial_config
            if initial_config is not None
            else plan.initial_config()
        ),
    )
    if plan.layer_plans:
        last_node = max(plan.layer_plans)
        carry_over = plan.layer_plans[last_node].hfo
    else:
        carry_over = plan.lfo
    steady = runtime.run(
        model,
        plan,
        qos_s=period_s,
        idle_policy=idle_policy,
        initial_config=carry_over,
    )
    total = first.energy_j + (windows - 1) * steady.energy_j
    misses = (0 if first.met_qos else 1) + (
        0 if steady.met_qos else windows - 1
    )
    return StreamReport(
        windows=windows,
        period_s=period_s,
        first=first,
        steady=steady,
        total_energy_j=total,
        deadline_misses=misses,
    )
