"""Analytic segment cost model: layers -> segment traces.

This module turns a graph node plus a DAE granularity ``g`` into a
:class:`~repro.engine.trace.LayerTrace` whose segments carry primitive
counts (compute cycles, flash bytes, effective SRAM bytes).  It encodes
the access/compute structure of CMSIS-NN/TinyEngine-style int8 kernels
and of their DAE restructurings (paper Sec. III-A):

**Depthwise** (per-channel independence):

* fused (g=0): one segment with all MACs plus *scattered* activation
  traffic -- each input byte is touched ``reuse_dw`` times by the
  sliding window (row buffering keeps it below k*k).
* DAE (g>0): per group of ``g`` channels, a memory segment that
  burst-copies the channel maps into an SRAM buffer (burst transfers
  amortize the per-word stall by ``burst_factor``) and streams the
  group's filter weights from flash, followed by a compute segment
  whose activation loads now hit the warm buffer (their cost is inside
  the cycles-per-MAC figure).  If the group working set overflows the
  usable cache, the overflowing fraction must be re-fetched during
  compute -- the granularity cliff.

**Pointwise** (per-column independence):

* fused (g=0): columns are processed one at a time.  Each column walk
  re-reads the full weight matrix; matrices that fit in the usable
  cache are streamed from flash once, larger ones pay a refetch
  fraction on every subsequent pass.
* DAE (g>0): ``g`` columns are buffered per memory segment, and one
  weight pass now serves ``g`` columns -- DAE improves weight reuse by
  exactly its granularity, which is why large pointwise layers prefer
  large ``g``.

Everything is parameterized by :class:`TraceParams` so the calibration
tests can tune the handful of constants against the paper's reported
ratios.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import TraceError
from ..mcu.board import Board
from ..mcu.cache import CacheModel
from ..mcu.core import CoreTimingParams, SegmentWorkload
from ..nn.graph import Model, Node
from ..nn.layers.base import LayerKind, Shape
from .trace import LayerTrace, ModelTrace, Segment, SegmentKind

#: The paper's explored granularities (Sec. III-B); 0 = no DAE.
PAPER_GRANULARITIES = (0, 2, 4, 8, 12, 16)


#: id(model) -> (weakref, mutation guard, fingerprint).  The guard
#: covers every mutable input of the fingerprint: the node count
#: changes on ``Model.add`` (nodes are frozen, so append is the only
#: graph mutation) and the name/input shape on direct reassignment.
#: The weakref both detects id() reuse and evicts entries when the
#: model is collected.
_FINGERPRINT_MEMO: Dict[int, Tuple] = {}
_FINGERPRINT_LOCK = threading.Lock()


def _fingerprint_guard(model: Model) -> Tuple:
    return (model.name, model.input_shape, len(model.nodes))


def model_fingerprint(model: Model) -> Tuple:
    """Structural identity of a model, suitable as a cache key.

    Two models with the same fingerprint produce byte-identical traces:
    the fingerprint covers the graph topology and every shape the cost
    model reads (weights do not enter the access-pattern model).
    Mutating a model (``Model.add``, renaming) changes its
    fingerprint, so caches keyed on it never serve stale traces.
    """
    key = id(model)
    with _FINGERPRINT_LOCK:
        memo = _FINGERPRINT_MEMO.get(key)
    if memo is not None:
        ref, guard, fingerprint = memo
        if ref() is model and guard == _fingerprint_guard(model):
            return fingerprint
    fingerprint = _compute_fingerprint(model)
    ref = weakref.ref(
        model, lambda _ref, _key=key: _FINGERPRINT_MEMO.pop(_key, None)
    )
    with _FINGERPRINT_LOCK:
        _FINGERPRINT_MEMO[key] = (
            ref, _fingerprint_guard(model), fingerprint,
        )
    return fingerprint


def _compute_fingerprint(model: Model) -> Tuple:
    return (
        model.name,
        model.input_shape,
        tuple(
            (
                node.node_id,
                node.layer.name,
                node.layer.kind.value,
                node.inputs,
                node.output_shape,
            )
            for node in model.nodes
        ),
    )


@dataclass(frozen=True)
class TraceParams:
    """Constants of the access-pattern model.

    Attributes:
        reuse_dw: times each input byte is loaded by a fused depthwise
            sliding window (row buffering keeps this near 3 for 3x3
            kernels instead of 9).
        reuse_conv: the same for generic convolutions (im2col rows).
        burst_factor: stall-amortization of burst copies (memcpy-style
            DAE buffering) relative to scattered word loads.
        column_overhead_cycles: per-column loop overhead of pointwise
            kernels.
        elementwise_cycles: cycles per element of add/pool/activation
            layers.
    """

    reuse_dw: float = 3.0
    reuse_conv: float = 3.0
    burst_factor: float = 3.0
    column_overhead_cycles: float = 6.0
    elementwise_cycles: float = 4.0

    def __post_init__(self) -> None:
        if self.reuse_dw < 1 or self.reuse_conv < 1:
            raise TraceError("reuse factors must be >= 1")
        if self.burst_factor < 1:
            raise TraceError("burst_factor must be >= 1")
        if self.column_overhead_cycles < 0 or self.elementwise_cycles < 0:
            raise TraceError("cycle overheads must be >= 0")


def _group_sizes(total: int, g: int) -> List[int]:
    """Split ``total`` units into groups of ``g`` (last may be short)."""
    if g <= 0:
        raise TraceError("grouping requires g > 0")
    full, rest = divmod(total, g)
    sizes = [g] * full
    if rest:
        sizes.append(rest)
    return sizes


class TraceBuilder:
    """Builds layer/model traces against one board description.

    Traces are pure functions of (board, params, model structure, node,
    granularity), so by default every built trace is memoized and the
    same :class:`~repro.engine.trace.LayerTrace` instance is returned
    on repeat requests -- the DSE sweep, the pipeline's fixed-overhead
    accounting, the refinement loop and the runtime all share one
    build per (model, node, g).  Callers must treat cached traces as
    immutable.  The cache is lock-protected, so one builder can be
    shared across threads (the fleet worker pool does exactly that);
    use :meth:`clear_cache` after mutating ``board`` or ``params`` in
    place, or pass ``cache=False`` for the uncached reference
    behaviour.

    Args:
        board: the simulated board.
        params: access-pattern constants.
        cache: memoize built traces (on by default).
    """

    def __init__(
        self,
        board: Board,
        params: Optional[TraceParams] = None,
        cache: bool = True,
    ):
        self.board = board
        self.params = params or TraceParams()
        self._cache_enabled = cache
        self._trace_cache: Dict[Tuple, LayerTrace] = {}
        self._lock = threading.RLock()
        self.cache_hits = 0
        self.cache_misses = 0

    def clear_cache(self) -> None:
        """Drop every memoized trace (and reset the hit/miss counters)."""
        with self._lock:
            self._trace_cache.clear()
            self.cache_hits = 0
            self.cache_misses = 0

    @property
    def _cache(self) -> CacheModel:
        return self.board.cache

    @property
    def _timing(self) -> CoreTimingParams:
        return self.board.core.params

    # -- public API -----------------------------------------------------------

    def build(self, model: Model, node: Node, granularity: int) -> LayerTrace:
        """Trace one node at one granularity (memoized).

        Non-DAE layer kinds ignore the granularity and always produce a
        fused trace.

        Raises:
            TraceError: on negative granularity.
        """
        if granularity < 0:
            raise TraceError(f"granularity must be >= 0, got {granularity}")
        if not self._cache_enabled:
            return self._build_uncached(model, node, granularity)
        # Non-DAE kinds fold every granularity onto the fused (g=0)
        # trace, so normalize the key and share the entry.
        effective_g = (
            granularity if node.layer.supports_dae else 0
        )
        key = (model_fingerprint(model), node.node_id, effective_g)
        with self._lock:
            cached = self._trace_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
        # Build outside the lock: concurrent misses may duplicate work,
        # but setdefault makes one instance canonical, so every caller
        # still sees a single shared trace per key.
        trace = self._build_uncached(model, node, granularity)
        with self._lock:
            self.cache_misses += 1
            return self._trace_cache.setdefault(key, trace)

    def _build_uncached(
        self, model: Model, node: Node, granularity: int
    ) -> LayerTrace:
        input_shapes = model.input_shapes_of(node)
        kind = node.layer.kind
        if granularity > 0 and node.layer.supports_dae:
            if kind is LayerKind.DEPTHWISE_CONV:
                segments, iterations = self._depthwise_dae(
                    node, input_shapes, granularity
                )
            else:
                segments, iterations = self._pointwise_dae(
                    node, input_shapes, granularity
                )
            return LayerTrace(
                node_id=node.node_id,
                layer_name=node.layer.name,
                layer_kind=kind,
                granularity=granularity,
                segments=segments,
                iterations=iterations,
            )
        return LayerTrace(
            node_id=node.node_id,
            layer_name=node.layer.name,
            layer_kind=kind,
            granularity=0,
            segments=[self._fused_segment(node, input_shapes)],
            iterations=0,
        )

    def build_model_trace(
        self,
        model: Model,
        granularities: Optional[Mapping[int, int]] = None,
    ) -> ModelTrace:
        """Trace every node of a model.

        Args:
            granularities: node-id -> g mapping; missing nodes run
                fused (g = 0).
        """
        granularities = granularities or {}
        traces = [
            self.build(model, node, granularities.get(node.node_id, 0))
            for node in model.nodes
        ]
        return ModelTrace(model_name=model.name, layer_traces=traces)

    # -- fused (undecoupled) costs ---------------------------------------------

    def _fused_segment(
        self, node: Node, input_shapes: Tuple[Shape, ...]
    ) -> Segment:
        kind = node.layer.kind
        if kind is LayerKind.DEPTHWISE_CONV:
            workload = self._depthwise_fused(node, input_shapes)
        elif kind is LayerKind.POINTWISE_CONV:
            workload = self._pointwise_fused(node, input_shapes)
        elif kind is LayerKind.CONV2D:
            workload = self._conv_fused(node, input_shapes)
        elif kind is LayerKind.DENSE:
            workload = self._dense_fused(node, input_shapes)
        else:
            workload = self._elementwise_fused(node, input_shapes)
        return Segment(kind=SegmentKind.FUSED, workload=workload)

    def _depthwise_fused(
        self, node: Node, input_shapes: Tuple[Shape, ...]
    ) -> SegmentWorkload:
        layer = node.layer
        (in_shape,) = input_shapes
        h, w, c = in_shape
        out_h, out_w, _ = node.output_shape
        in_b, out_b = h * w, out_h * out_w
        weight_b = layer.kernel * layer.kernel + 4
        macs = layer.macs(in_shape)
        cpu = (
            macs * self._timing.cycles_per_mac_depthwise
            + c * self._timing.loop_overhead_cycles
            + out_b * c * self._timing.cycles_per_output_byte
        )
        sram = c * (self.params.reuse_dw * in_b + out_b)
        flash = c * weight_b
        return SegmentWorkload(cpu_cycles=cpu, flash_bytes=flash, sram_bytes=sram)

    def _pointwise_fused(
        self, node: Node, input_shapes: Tuple[Shape, ...]
    ) -> SegmentWorkload:
        layer = node.layer
        (in_shape,) = input_shapes
        h, w, c_in = in_shape
        c_out = layer.out_channels
        positions = h * w
        weight_bytes = c_in * c_out + 4 * c_out
        macs = layer.macs(in_shape)
        cpu = (
            macs * self._timing.cycles_per_mac_pointwise
            + positions * self.params.column_overhead_cycles
            + positions * c_out * self._timing.cycles_per_output_byte
            + self._timing.loop_overhead_cycles
        )
        sram = positions * (c_in + c_out)
        flash = self._weight_flash_traffic(
            weight_bytes, passes=positions, extra_ws=c_in + c_out
        )
        return SegmentWorkload(cpu_cycles=cpu, flash_bytes=flash, sram_bytes=sram)

    def _conv_fused(
        self, node: Node, input_shapes: Tuple[Shape, ...]
    ) -> SegmentWorkload:
        layer = node.layer
        (in_shape,) = input_shapes
        h, w, c_in = in_shape
        out_h, out_w, c_out = node.output_shape
        positions = out_h * out_w
        weight_bytes = layer.weight_bytes()
        macs = layer.macs(in_shape)
        cpu = (
            macs * self._timing.cycles_per_mac_conv
            + positions * self.params.column_overhead_cycles
            + positions * c_out * self._timing.cycles_per_output_byte
            + self._timing.loop_overhead_cycles
        )
        sram = self.params.reuse_conv * h * w * c_in + positions * c_out
        flash = self._weight_flash_traffic(
            weight_bytes,
            passes=positions,
            extra_ws=layer.kernel * layer.kernel * c_in + c_out,
        )
        return SegmentWorkload(cpu_cycles=cpu, flash_bytes=flash, sram_bytes=sram)

    def _dense_fused(
        self, node: Node, input_shapes: Tuple[Shape, ...]
    ) -> SegmentWorkload:
        layer = node.layer
        macs = layer.macs(*input_shapes)
        in_features = layer.in_features
        out_features = layer.out_features
        cpu = (
            macs * self._timing.cycles_per_mac_conv
            + out_features * self._timing.cycles_per_output_byte
            + self._timing.loop_overhead_cycles
        )
        flash = self._weight_flash_traffic(
            layer.weight_bytes(), passes=1, extra_ws=in_features + out_features
        )
        return SegmentWorkload(
            cpu_cycles=cpu,
            flash_bytes=flash,
            sram_bytes=in_features + out_features,
        )

    def _elementwise_fused(
        self, node: Node, input_shapes: Tuple[Shape, ...]
    ) -> SegmentWorkload:
        layer = node.layer
        out_elems = 1
        for dim in node.output_shape:
            out_elems *= dim
        in_bytes = layer.input_bytes(*input_shapes)
        cpu = (
            out_elems * self.params.elementwise_cycles
            + self._timing.loop_overhead_cycles
        )
        return SegmentWorkload(
            cpu_cycles=cpu,
            flash_bytes=0.0,
            sram_bytes=in_bytes + out_elems,
        )

    # -- DAE (decoupled) costs ----------------------------------------------------

    def _depthwise_dae(
        self, node: Node, input_shapes: Tuple[Shape, ...], g: int
    ) -> Tuple[List[Segment], int]:
        layer = node.layer
        (in_shape,) = input_shapes
        h, w, c = in_shape
        out_h, out_w, _ = node.output_shape
        in_b, out_b = h * w, out_h * out_w
        weight_b = layer.kernel * layer.kernel + 4
        macs_per_channel = out_b * layer.kernel * layer.kernel
        segments: List[Segment] = []
        sizes = _group_sizes(c, g)
        # All full groups produce identical (immutable) segment pairs;
        # build one pair per distinct group size and share it.
        pair_for_size: Dict[int, Tuple[Segment, Segment]] = {}
        for gi in sizes:
            pair = pair_for_size.get(gi)
            if pair is None:
                # Memory-bound: burst-copy gi channel maps into the
                # buffer and stream the group's filters from flash.
                mem = SegmentWorkload(
                    cpu_cycles=self._timing.loop_overhead_cycles,
                    flash_bytes=gi * weight_b,
                    sram_bytes=2.0 * gi * in_b / self.params.burst_factor,
                )
                # Compute-bound: MACs out of warm buffers.  An
                # overflowing working set evicts buffered channels
                # before use and the scattered re-fetch cost comes back.
                working_set = gi * (in_b + out_b + weight_b)
                refetch = self._cache.refetch_fraction(working_set)
                compute = SegmentWorkload(
                    cpu_cycles=(
                        gi * macs_per_channel
                        * self._timing.cycles_per_mac_depthwise
                        + gi * out_b * self._timing.cycles_per_output_byte
                        + self._timing.loop_overhead_cycles
                    ),
                    flash_bytes=0.0,
                    sram_bytes=gi * out_b
                    + refetch * self.params.reuse_dw * gi * in_b,
                )
                pair = (
                    Segment(kind=SegmentKind.MEMORY, workload=mem),
                    Segment(kind=SegmentKind.COMPUTE, workload=compute),
                )
                pair_for_size[gi] = pair
            segments.extend(pair)
        return segments, len(sizes)

    def _pointwise_dae(
        self, node: Node, input_shapes: Tuple[Shape, ...], g: int
    ) -> Tuple[List[Segment], int]:
        layer = node.layer
        (in_shape,) = input_shapes
        h, w, c_in = in_shape
        c_out = layer.out_channels
        positions = h * w
        weight_bytes = c_in * c_out + 4 * c_out
        sizes = _group_sizes(positions, g)
        n_groups = len(sizes)
        # One weight pass per column group; passes beyond the first only
        # re-stream the fraction of the matrix the cache could not hold.
        buffer_ws = g * (c_in + c_out)
        total_weight_flash = self._weight_flash_traffic(
            weight_bytes, passes=n_groups, extra_ws=buffer_ws
        )
        weight_flash_per_group = total_weight_flash / n_groups
        activation_refetch = self._cache.refetch_fraction(buffer_ws)
        segments: List[Segment] = []
        # Full groups share one immutable segment pair per distinct
        # size (only the last group can differ).
        pair_for_size: Dict[int, Tuple[Segment, Segment]] = {}
        for gi in sizes:
            pair = pair_for_size.get(gi)
            if pair is None:
                mem = SegmentWorkload(
                    cpu_cycles=self._timing.loop_overhead_cycles,
                    flash_bytes=0.0,
                    sram_bytes=2.0 * gi * c_in / self.params.burst_factor,
                )
                compute = SegmentWorkload(
                    cpu_cycles=(
                        gi * c_in * c_out * self._timing.cycles_per_mac_pointwise
                        + gi * self.params.column_overhead_cycles
                        + gi * c_out * self._timing.cycles_per_output_byte
                        + self._timing.loop_overhead_cycles
                    ),
                    flash_bytes=weight_flash_per_group,
                    sram_bytes=gi * c_out + activation_refetch * gi * c_in,
                )
                pair = (
                    Segment(kind=SegmentKind.MEMORY, workload=mem),
                    Segment(kind=SegmentKind.COMPUTE, workload=compute),
                )
                pair_for_size[gi] = pair
            segments.extend(pair)
        return segments, n_groups

    # -- shared helpers -------------------------------------------------------------

    def _weight_flash_traffic(
        self, weight_bytes: float, passes: int, extra_ws: float
    ) -> float:
        """Flash bytes to stream a weight array walked ``passes`` times.

        The first pass always reads the full array; every further pass
        re-reads only the fraction the cache failed to retain, given
        the weights compete with ``extra_ws`` bytes of buffers.
        """
        if passes < 1:
            raise TraceError("weight passes must be >= 1")
        if passes == 1:
            return weight_bytes
        refetch = self._cache.refetch_fraction(weight_bytes + extra_ws)
        return weight_bytes * (1.0 + refetch * (passes - 1))
