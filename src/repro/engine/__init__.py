"""Inference engines: cost model, DAE execution, baselines, DVFS runtime."""

from .cost import PAPER_GRANULARITIES, TraceBuilder, TraceParams
from .dae import (
    DAEExecutionStats,
    DAEExecutor,
    run_depthwise_dae,
    run_pointwise_dae,
    validate_plan_numerics,
)
from .runtime import DVFSRuntime, IdlePolicy, InferenceReport, LayerReport
from .schedule import DeploymentPlan, LayerPlan, uniform_plan
from .stream import StreamReport, run_stream
from .serialize import (
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from .tinyengine import TinyEngine, TinyEngineClockGated, TinyEngineDeepSleep
from .trace import LayerTrace, ModelTrace, Segment, SegmentKind

__all__ = [
    "PAPER_GRANULARITIES",
    "TraceBuilder",
    "TraceParams",
    "DAEExecutionStats",
    "DAEExecutor",
    "run_depthwise_dae",
    "run_pointwise_dae",
    "validate_plan_numerics",
    "DVFSRuntime",
    "IdlePolicy",
    "InferenceReport",
    "LayerReport",
    "DeploymentPlan",
    "LayerPlan",
    "uniform_plan",
    "StreamReport",
    "run_stream",
    "load_plan",
    "plan_from_dict",
    "plan_to_dict",
    "save_plan",
    "TinyEngine",
    "TinyEngineClockGated",
    "TinyEngineDeepSleep",
    "LayerTrace",
    "ModelTrace",
    "Segment",
    "SegmentKind",
]
