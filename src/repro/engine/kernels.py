"""Scalar reference kernels (CMSIS-NN loop order).

The vectorized layer implementations in :mod:`repro.nn.layers` are the
fast path; these scalar kernels mirror, loop for loop, how
CMSIS-NN/TinyEngine actually traverse the data on the MCU -- per
channel for depthwise, per column for pointwise -- using the same
integer requantization.  They exist to anchor the bit-exactness chain:

    scalar reference == vectorized layer == DAE-reordered execution

Tests verify all three agree on every element, which is the strongest
form of the paper's "DAE entails no accuracy drops" claim this
reproduction can make.  (They are O(pixels * kernel * channels) Python
loops: use them on small shapes only.)
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.convutils import same_padding_amounts
from ..nn.layers.depthwise import DepthwiseConv2D
from ..nn.layers.pointwise import PointwiseConv2D
from ..nn.quantize import rounding_right_shift
from ..nn.tensor import QuantizedTensor


def _requantize_scalar(acc: int, layer, channel: int) -> int:
    """Single-value requantization identical to the array kernel."""
    spec = layer.requant
    if spec.is_per_channel:
        multiplier = int(spec.multiplier[channel])
        shift = int(spec.shift[channel])
    else:
        multiplier, shift = spec.multiplier, spec.shift
    prod = np.int64(acc) * np.int64(multiplier)
    scaled = int(
        rounding_right_shift(np.array([prod], dtype=np.int64), 31 + shift)[0]
    )
    out = scaled + spec.output_zero_point
    return max(spec.activation_min, min(spec.activation_max, out))


def depthwise_conv_scalar(
    layer: DepthwiseConv2D, x: QuantizedTensor
) -> np.ndarray:
    """Per-channel scalar depthwise convolution (CMSIS-NN order).

    Outer loop over channels, then output rows/cols, then the kernel
    window -- exactly the traversal the paper's Listing 1 restructures.

    Returns:
        int8 array of shape (out_h, out_w, channels).
    """
    out_h, out_w, channels = layer.output_shape(x.shape)
    h, w = x.shape[0], x.shape[1]
    k, stride = layer.kernel, layer.stride
    if layer.padding == "same":
        pad_top, _ = same_padding_amounts(h, k, stride)
        pad_left, _ = same_padding_amounts(w, k, stride)
    else:
        pad_top = pad_left = 0
    out = np.empty((out_h, out_w, channels), dtype=np.int8)
    data = x.data
    zx = x.zero_point
    weights = layer.weights_q
    for ch in range(channels):
        for oy in range(out_h):
            for ox in range(out_w):
                acc = int(layer.bias_q[ch])
                for ky in range(k):
                    iy = oy * stride + ky - pad_top
                    if iy < 0 or iy >= h:
                        continue  # padded ring contributes zero
                    for kx in range(k):
                        ix = ox * stride + kx - pad_left
                        if ix < 0 or ix >= w:
                            continue
                        acc += (int(data[iy, ix, ch]) - zx) * int(
                            weights[ky, kx, ch]
                        )
                out[oy, ox, ch] = _requantize_scalar(acc, layer, ch)
    return out


def pointwise_conv_scalar(
    layer: PointwiseConv2D, x: QuantizedTensor
) -> np.ndarray:
    """Per-column scalar pointwise convolution (CMSIS-NN order).

    Outer loop over spatial columns, then output channels, then the
    input-channel dot product.

    Returns:
        int8 array of shape (h, w, c_out).
    """
    h, w, c_out = layer.output_shape(x.shape)
    c_in = layer.in_channels
    out = np.empty((h, w, c_out), dtype=np.int8)
    data = x.data
    zx = x.zero_point
    weights = layer.weights_q
    for oy in range(h):
        for ox in range(w):
            for oc in range(c_out):
                acc = int(layer.bias_q[oc])
                for ic in range(c_in):
                    acc += (int(data[oy, ox, ic]) - zx) * int(
                        weights[ic, oc]
                    )
                out[oy, ox, oc] = _requantize_scalar(acc, layer, oc)
    return out
