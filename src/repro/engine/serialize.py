"""Deployment-plan serialization.

A :class:`~repro.engine.schedule.DeploymentPlan` is the artifact the
offline optimization hands to the firmware build: per-layer
granularities plus the exact RCC register values (HSE frequency, PLLM,
PLLN, PLLP) of each layer's HFO clock. This module round-trips plans
through plain JSON so they can be versioned, diffed and shipped.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Union

from ..clock.configs import ClockConfig, SysclkSource
from ..clock.limits import ClockTreeLimits
from ..clock.pll import PLLSettings
from ..errors import GraphError
from .schedule import DeploymentPlan, LayerPlan

#: Schema version written into every file.
FORMAT_VERSION = 1


def clock_config_to_dict(config: ClockConfig) -> Dict[str, Any]:
    """JSON-safe encoding of one clock configuration."""
    data: Dict[str, Any] = {
        "source": config.source.value,
        "hse_hz": config.hse_hz,
    }
    if config.pll is not None:
        data["pll"] = {
            "pllm": config.pll.pllm,
            "plln": config.pll.plln,
            "pllp": config.pll.pllp,
        }
    if config.limits is not None:
        # F767 plans (limits=None) stay byte-identical to the v1 files;
        # other parts record their clock-tree constraints so decoding
        # re-validates against the right hardware window.
        data["limits"] = config.limits.to_dict()
    return data


def clock_config_from_dict(data: Dict[str, Any]) -> ClockConfig:
    """Decode (and re-validate) one clock configuration.

    Raises:
        GraphError: for unknown sources or missing fields; illegal
            divider values surface as ``ClockConfigError`` from the
            constructors, so corrupt files cannot produce invalid
            hardware settings.
    """
    try:
        source = SysclkSource(data["source"])
    except (KeyError, ValueError) as err:
        raise GraphError(f"bad clock source in plan file: {err}") from err
    limits = None
    if "limits" in data:
        try:
            limits = ClockTreeLimits.from_dict(data["limits"])
        except (KeyError, TypeError, ValueError) as err:
            raise GraphError(f"bad clock-tree limits in plan file: {err}") from err
    pll = None
    if "pll" in data:
        pll_data = data["pll"]
        try:
            pll = PLLSettings(
                pllm=int(pll_data["pllm"]),
                plln=int(pll_data["plln"]),
                pllp=int(pll_data["pllp"]),
                limits=limits,
            )
        except KeyError as err:
            raise GraphError(f"incomplete PLL settings: {err}") from err
    try:
        hse_hz = float(data["hse_hz"])
    except (KeyError, TypeError, ValueError) as err:
        raise GraphError(f"bad HSE frequency in plan file: {err}") from err
    return ClockConfig(source=source, hse_hz=hse_hz, pll=pll, limits=limits)


def plan_to_dict(plan: DeploymentPlan) -> Dict[str, Any]:
    """Encode a plan as a JSON-safe dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "model_name": plan.model_name,
        "qos_s": plan.qos_s,
        "predicted_latency_s": plan.predicted_latency_s,
        "predicted_energy_j": plan.predicted_energy_j,
        "lfo": clock_config_to_dict(plan.lfo),
        "layers": [
            {
                "node_id": lp.node_id,
                "granularity": lp.granularity,
                "hfo": clock_config_to_dict(lp.hfo),
                "predicted_latency_s": lp.predicted_latency_s,
                "predicted_energy_j": lp.predicted_energy_j,
            }
            for _, lp in sorted(plan.layer_plans.items())
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> DeploymentPlan:
    """Decode a plan dictionary.

    Raises:
        GraphError: on schema violations (wrong version, missing keys,
            duplicate node ids).
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"unsupported plan format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        layer_entries = data["layers"]
        model_name = data["model_name"]
    except KeyError as err:
        raise GraphError(f"plan file missing key: {err}") from err
    layer_plans: Dict[int, LayerPlan] = {}
    for entry in layer_entries:
        try:
            node_id = int(entry["node_id"])
            layer_plan = LayerPlan(
                node_id=node_id,
                granularity=int(entry["granularity"]),
                hfo=clock_config_from_dict(entry["hfo"]),
                predicted_latency_s=float(
                    entry.get("predicted_latency_s", 0.0)
                ),
                predicted_energy_j=float(
                    entry.get("predicted_energy_j", 0.0)
                ),
            )
        except KeyError as err:
            raise GraphError(f"plan layer entry missing key: {err}") from err
        if node_id in layer_plans:
            raise GraphError(f"duplicate node id {node_id} in plan file")
        layer_plans[node_id] = layer_plan
    return DeploymentPlan(
        model_name=model_name,
        lfo=clock_config_from_dict(data["lfo"]),
        layer_plans=layer_plans,
        qos_s=data.get("qos_s"),
        predicted_latency_s=float(data.get("predicted_latency_s", 0.0)),
        predicted_energy_j=float(data.get("predicted_energy_j", 0.0)),
    )


def save_plan(plan: DeploymentPlan, path: Union[str, pathlib.Path]) -> None:
    """Write a plan to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(plan_to_dict(plan), indent=2) + "\n"
    )


def load_plan(path: Union[str, pathlib.Path]) -> DeploymentPlan:
    """Read a plan from a JSON file.

    Raises:
        GraphError: for malformed files (including invalid JSON).
    """
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as err:
        raise GraphError(f"plan file is not valid JSON: {err}") from err
    return plan_from_dict(data)
