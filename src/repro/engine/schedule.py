"""Deployment plans: the per-layer (granularity, HFO clock) decisions.

A :class:`DeploymentPlan` is the artifact the optimization pipeline
produces and the DVFS runtime consumes: for every schedulable layer,
the DAE granularity ``g`` and the HFO clock configuration its
compute-bound segments run at, plus the shared LFO configuration for
memory-bound segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..clock.configs import ClockConfig, lfo_config
from ..errors import GraphError
from ..nn.graph import Model


@dataclass(frozen=True)
class LayerPlan:
    """Decision for one layer.

    Attributes:
        node_id: graph node this decision applies to.
        granularity: DAE granularity g (0 = run fused).
        hfo: clock for the compute-bound segments (or for the whole
            layer when fused).
        predicted_latency_s: the DSE's latency estimate (informational).
        predicted_energy_j: the DSE's energy estimate (informational).
    """

    node_id: int
    granularity: int
    hfo: ClockConfig
    predicted_latency_s: float = 0.0
    predicted_energy_j: float = 0.0


@dataclass
class DeploymentPlan:
    """Full-model schedule.

    Attributes:
        model_name: model this plan was optimized for.
        lfo: clock for memory-bound segments (paper: HSE at 50 MHz).
        layer_plans: node-id -> :class:`LayerPlan` for every scheduled
            (conv-family) node.  Unscheduled nodes run fused at the
            clock left over from the previous layer.
        qos_s: latency budget this plan was optimized against, if any.
        predicted_latency_s: optimizer's total latency estimate.
        predicted_energy_j: optimizer's total energy estimate.
    """

    model_name: str
    lfo: ClockConfig = field(default_factory=lfo_config)
    layer_plans: Dict[int, LayerPlan] = field(default_factory=dict)
    qos_s: Optional[float] = None
    predicted_latency_s: float = 0.0
    predicted_energy_j: float = 0.0

    def plan_for(self, node_id: int) -> Optional[LayerPlan]:
        """The decision for one node, or None if unscheduled."""
        return self.layer_plans.get(node_id)

    def initial_config(self) -> ClockConfig:
        """Clock the board should enter the QoS window with.

        The first scheduled layer's HFO: firmware pre-locks the PLL
        while idling before the inference trigger, exactly as the
        TinyEngine baseline sits pre-locked at 216 MHz.  Falls back to
        the LFO for empty plans.
        """
        if not self.layer_plans:
            return self.lfo
        first = min(self.layer_plans)
        return self.layer_plans[first].hfo

    def granularities(self) -> Dict[int, int]:
        """node-id -> g mapping (for trace building)."""
        return {
            node_id: plan.granularity
            for node_id, plan in self.layer_plans.items()
        }

    def validate_against(self, model: Model) -> None:
        """Check every planned node exists in ``model``.

        Raises:
            GraphError: for plans referencing unknown nodes or a
                mismatched model name.
        """
        if self.model_name != model.name:
            raise GraphError(
                f"plan for model {self.model_name!r} applied to "
                f"{model.name!r}"
            )
        valid_ids = {node.node_id for node in model.nodes}
        for node_id in self.layer_plans:
            if node_id not in valid_ids:
                raise GraphError(f"plan references unknown node {node_id}")


def uniform_plan(
    model: Model,
    hfo: ClockConfig,
    granularity: int = 0,
    lfo: Optional[ClockConfig] = None,
) -> DeploymentPlan:
    """A plan running every conv-family layer identically.

    Used by the baselines (TinyEngine: g=0 at 216 MHz) and by the DSE
    sweeps (one (g, f) point for a whole model).
    """
    plans = {
        node.node_id: LayerPlan(
            node_id=node.node_id,
            granularity=granularity if node.layer.supports_dae else 0,
            hfo=hfo,
        )
        for node in model.conv_nodes()
    }
    return DeploymentPlan(
        model_name=model.name,
        lfo=lfo or lfo_config(),
        layer_plans=plans,
    )
