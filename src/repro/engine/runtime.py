"""DVFS runtime: executes a deployment plan on the simulated board.

This is the reproduction of the paper's modified inference runtime
(Listing 1): per layer, the SYSCLK mux bounces between the LFO (HSE)
clock for memory-bound segments and the layer's HFO (PLL) clock for
compute-bound segments, the PLL is reprogrammed *in the background*
during the first memory-bound segment whenever consecutive layers
request different HFO frequencies, and every stall -- mux handshakes,
un-hidden re-lock remainders -- is charged at its true power state.

The same engine executes the baselines (single fixed clock, fused
traces), so "ours vs. TinyEngine" comparisons share every modelling
assumption except the scheduling policy itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..clock.configs import ClockConfig, SysclkSource
from ..clock.rcc import RCC
from ..errors import TraceError, WatchdogResetError
from ..mcu.board import Board
from ..nn.graph import Model
from ..nn.layers.base import LayerKind
from ..obs.registry import get_registry
from ..power.energy import EnergyAccount, EnergyCategory
from ..power.model import PowerState
from .cost import TraceBuilder, TraceParams
from .schedule import DeploymentPlan
from .trace import LayerTrace, Segment, SegmentKind


class IdlePolicy(enum.Enum):
    """How the board waits out the rest of the QoS window.

    HOT is the plain TinyEngine behaviour (WFI at the last active
    clock), GATED is the paper's clock-gating baseline, and STOP is
    the strongest realistic policy -- deep sleep with SRAM retention,
    paying a wake-up latency (charged inside the window) before the
    next inference can start.
    """

    HOT = "hot"
    GATED = "gated"
    STOP = "stop"


@dataclass
class LayerReport:
    """Measured execution of one layer."""

    node_id: int
    layer_name: str
    layer_kind: LayerKind
    granularity: int
    hfo_hz: float
    latency_s: float = 0.0
    energy_j: float = 0.0


@dataclass
class InferenceReport:
    """Result of executing one plan on the board.

    Attributes:
        model_name: the executed model.
        plan: the plan that was executed.
        latency_s: inference latency (excluding post-inference idle).
        energy_j: total energy over the accounting window (inference
            plus idle-to-QoS when a QoS window was given).
        inference_energy_j: energy of the inference alone.
        account: the full categorized energy ledger.
        layer_reports: per-layer latency/energy breakdown.
        relock_count: PLL reprogram events (cheap mux moves excluded).
        mux_switch_count: SYSCLK mux transitions.
        qos_s: the accounting window, if any.
        met_qos: whether the inference finished within the window.
        css_events: Clock Security System interventions (HSE loss ->
            HSI failsafe) during this inference.  0 without faults.
        watchdog_resets: watchdog resets survived via checkpoint
            resume.  0 without faults.
        pll_retries: PLL lock-timeout retries absorbed by the retry
            policy.  0 without faults.
    """

    model_name: str
    plan: DeploymentPlan
    latency_s: float
    energy_j: float
    inference_energy_j: float
    account: EnergyAccount
    layer_reports: List[LayerReport] = field(default_factory=list)
    relock_count: int = 0
    mux_switch_count: int = 0
    qos_s: Optional[float] = None
    met_qos: bool = True
    css_events: int = 0
    watchdog_resets: int = 0
    pll_retries: int = 0

    @property
    def average_power_w(self) -> float:
        """Mean power over the accounting window."""
        return self.account.average_power_w

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"model {self.model_name!r}: "
            f"{self.latency_s * 1e3:.3f} ms inference, "
            f"{self.energy_j * 1e3:.4f} mJ"
            + (
                f" over a {self.qos_s * 1e3:.3f} ms window"
                if self.qos_s is not None
                else ""
            ),
            f"  average power {self.average_power_w * 1e3:.1f} mW, "
            f"{self.relock_count} PLL re-locks, "
            f"{self.mux_switch_count} mux switches"
            + ("" if self.met_qos else "  ** QoS MISSED **"),
        ]
        breakdown = self.account.energy_by_category()
        total = self.energy_j or 1.0
        parts = ", ".join(
            f"{category.value} {energy / total:.0%}"
            for category, energy in sorted(
                breakdown.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"  energy: {parts}")
        return "\n".join(lines)


class DVFSRuntime:
    """Executes deployment plans against one board description.

    Args:
        board: the simulated board (clocking, power, timing models).
        trace_params: access-pattern constants for the cost model.
        tracer: an existing (typically memoizing) :class:`TraceBuilder`
            to share; when given, the runtime reuses its trace cache
            instead of rebuilding every layer trace per run.
    """

    def __init__(
        self,
        board: Board,
        trace_params: Optional[TraceParams] = None,
        tracer: Optional[TraceBuilder] = None,
    ):
        self.board = board
        self.tracer = tracer or TraceBuilder(board, trace_params)

    # -- public API -----------------------------------------------------------

    def run(
        self,
        model: Model,
        plan: DeploymentPlan,
        qos_s: Optional[float] = None,
        idle_gated: bool = True,
        initial_config: Optional[ClockConfig] = None,
        idle_policy: Optional[IdlePolicy] = None,
        fault_clock=None,
    ) -> InferenceReport:
        """Execute ``plan`` for ``model``; account energy to ``qos_s``.

        Args:
            model: the model to run.
            plan: per-layer decisions (validated against the model).
            qos_s: iso-latency accounting window; when given, the board
                idles after inference until the window closes and that
                idle energy is charged (the paper's Sec. IV scenario).
            idle_gated: whether post-inference idling uses clock gating
                (our approach and the gated baseline) or plain WFI idle
                at the last active clock (plain TinyEngine).  Ignored
                when ``idle_policy`` is given.
            idle_policy: explicit idle policy (HOT / GATED / STOP);
                STOP additionally charges the deep-sleep wake-up
                latency inside the window.
            initial_config: clock the board starts from; defaults to
                the plan's LFO.
            fault_clock: optional :class:`repro.faults.plan.FaultClock`
                driving HSE dropouts, PLL lock timeouts and watchdog
                resets.  ``None`` (default) keeps the run bit-identical
                to the fault-free engine.  Inference is checkpointed at
                layer granularity: a watchdog reset replays the current
                layer on a freshly booted clock tree (the PLL lock is
                lost, the reset stall is charged), and repeated resets
                at one layer raise
                :class:`~repro.errors.WatchdogResetError`.  An HSE
                dropout lands the layer on the HSI failsafe via the
                CSS; execution continues at the failsafe clock.

        Returns:
            The full :class:`InferenceReport`.

        Raises:
            WatchdogResetError: no forward progress at one layer.
            ClockSwitchError: the PLL exhausted its lock-retry budget.
        """
        plan.validate_against(model)
        boot = initial_config or plan.lfo
        rcc = self._make_rcc(boot, fault_clock)
        npu = self.board.npu
        npu_macs: Dict[int, float] = {}
        if npu is not None:
            npu_macs = {
                node.node_id: node.layer.macs(*model.input_shapes_of(node))
                for node in model.nodes
                if npu.supports(node.layer.kind)
            }
        account = EnergyAccount()
        reports: List[LayerReport] = []
        mux_switches = 0
        # Background re-locks are tallied locally (not on self) so one
        # runtime instance can execute plans from several threads --
        # the fleet worker pool shares pipelines, and with them this
        # runtime, across devices whose boards fingerprint equal.
        background_relocks = 0
        css_events = 0
        pll_retries = 0
        watchdog_resets = 0
        consecutive_resets = 0
        # Materialized so the watchdog checkpoint can replay layer i.
        traces = list(self.tracer.build_model_trace(model, plan.granularities()))
        i = 0
        while i < len(traces):
            trace = traces[i]
            if fault_clock is not None and fault_clock.watchdog_reset():
                # Watchdog fired at this layer checkpoint: the core
                # reboots, the clock tree returns to its boot state
                # (PLL lock lost) and the layer replays from its
                # checkpoint after the reset stall.
                consecutive_resets += 1
                watchdog_resets += 1
                if consecutive_resets > fault_clock.plan.max_consecutive_resets:
                    raise WatchdogResetError(
                        trace.layer_name, consecutive_resets
                    )
                power = self.board.power_model.switching_power(boot)
                account.add(
                    fault_clock.plan.watchdog_reset_s, power,
                    EnergyCategory.SWITCH, "watchdog-reset",
                    config=boot, state=PowerState.SWITCHING,
                )
                css_events += rcc.css_count
                pll_retries += rcc.pll_retries
                background_relocks += rcc.relock_count()
                rcc = self._make_rcc(boot, fault_clock)
                continue
            consecutive_resets = 0
            layer_plan = plan.plan_for(trace.node_id)
            report = LayerReport(
                node_id=trace.node_id,
                layer_name=trace.layer_name,
                layer_kind=trace.layer_kind,
                granularity=trace.granularity,
                hfo_hz=(
                    layer_plan.hfo.sysclk_hz if layer_plan else rcc.sysclk_hz
                ),
            )
            if trace.node_id in npu_macs:
                # NPU-mapped layer: runs on the accelerator's own clock
                # domain -- no SYSCLK transition, no DAE bouncing, and
                # latency/energy independent of the CPU clock tree.
                self._run_npu(trace, npu_macs[trace.node_id], account, report)
            elif trace.is_decoupled:
                assert layer_plan is not None
                mux, relocks = self._run_decoupled(
                    rcc, trace, layer_plan.hfo, plan.lfo, account, report
                )
                mux_switches += mux
                background_relocks += relocks
            else:
                target = layer_plan.hfo if layer_plan else rcc.current
                mux_switches += self._run_fused(
                    rcc, trace, target, account, report
                )
            reports.append(report)
            i += 1
        css_events += rcc.css_count
        pll_retries += rcc.pll_retries

        # Hardening events land in the obs registry only when they
        # happened: the nominal (fault-free) run pays nothing here.
        if css_events or watchdog_resets or pll_retries:
            registry = get_registry()
            if css_events:
                registry.count(
                    "engine.hardening", n=css_events, event="css"
                )
            if watchdog_resets:
                registry.count(
                    "engine.hardening", n=watchdog_resets, event="watchdog"
                )
            if pll_retries:
                registry.count(
                    "engine.hardening", n=pll_retries, event="pll_retry"
                )

        inference_latency = account.total_time_s
        inference_energy = account.total_energy_j
        met_qos = True
        if qos_s is not None:
            met_qos = inference_latency <= qos_s
            idle_time = max(0.0, qos_s - inference_latency)
            if idle_policy is None:
                idle_policy = (
                    IdlePolicy.GATED if idle_gated else IdlePolicy.HOT
                )
            self._charge_idle(account, rcc.current, idle_policy, idle_time)
        return InferenceReport(
            model_name=model.name,
            plan=plan,
            latency_s=inference_latency,
            energy_j=account.total_energy_j,
            inference_energy_j=inference_energy,
            account=account,
            layer_reports=reports,
            relock_count=rcc.relock_count() + background_relocks,
            mux_switch_count=mux_switches,
            qos_s=qos_s,
            met_qos=met_qos,
            css_events=css_events,
            watchdog_resets=watchdog_resets,
            pll_retries=pll_retries,
        )

    def measure_latency_s(
        self,
        model: Model,
        plan: DeploymentPlan,
        initial_config: Optional[ClockConfig] = None,
    ) -> float:
        """Inference-window latency of ``plan`` (no QoS idle charged).

        Exactly ``run(...).latency_s``; a separate entry point so
        runtimes that can answer from a recorded schedule (the fleet's
        :class:`~repro.fleet.pricing.ReplayingRuntime`) skip the
        energy re-pricing when the caller only wants the timing side.
        """
        return self.run(
            model, plan, initial_config=initial_config
        ).latency_s

    def _make_rcc(self, boot: ClockConfig, fault_clock) -> RCC:
        """Fresh clock controller inheriting the board's descriptors.

        The board's RCC carries the part's clock-tree limits, CSS
        failsafe source and retry policy; every runtime-spawned RCC
        must inherit them or a non-F7 board would validate oscillators
        (and park its failsafe) against F767 constants.
        """
        template = self.board.rcc
        return RCC(
            cost_model=self.board.switch_cost_model,
            initial=boot,
            retry=template.retry,
            fault_clock=fault_clock,
            limits=template.limits,
            failsafe=template.failsafe,
        )

    def _run_npu(
        self,
        trace: LayerTrace,
        macs: float,
        account: EnergyAccount,
        report: LayerReport,
    ) -> None:
        """Charge one NPU-offloaded layer at its fixed price."""
        npu = self.board.npu
        assert npu is not None
        latency = npu.layer_latency_s(macs)
        account.add(
            latency, npu.active_power_w, EnergyCategory.COMPUTE,
            report.layer_name, state=PowerState.NPU_ACTIVE,
        )
        report.latency_s += latency
        report.energy_j += latency * npu.active_power_w

    def _charge_idle(
        self,
        account: EnergyAccount,
        current: ClockConfig,
        policy: IdlePolicy,
        idle_time: float,
    ) -> None:
        """Charge the post-inference remainder of the QoS window."""
        power = self.board.power_model
        if policy is IdlePolicy.HOT:
            account.add(
                idle_time, power.idle_power(current),
                EnergyCategory.IDLE, "idle",
                config=current, state=PowerState.IDLE,
            )
            return
        if policy is IdlePolicy.GATED:
            account.add(
                idle_time, power.gated_power(), EnergyCategory.IDLE, "idle",
                config=current, state=PowerState.IDLE_GATED,
            )
            return
        # STOP: worth entering only if the window outlasts the wake-up.
        wake = power.params.stop_wakeup_s
        if idle_time <= wake:
            account.add(
                idle_time, power.gated_power(), EnergyCategory.IDLE, "idle",
                config=current, state=PowerState.IDLE_GATED,
            )
            return
        account.add(
            idle_time - wake, power.stop_power(), EnergyCategory.IDLE, "idle",
            config=current, state=PowerState.STOP,
        )
        # The wake-up path runs regulator/oscillator restart at the
        # low-power boot clock (the board's HSE-direct LFO), not at the
        # hot PLL configuration.
        wake_config = self.board.rcc.initial
        account.add(
            wake, power.switching_power(wake_config),
            EnergyCategory.SWITCH, "stop-wakeup",
            config=wake_config, state=PowerState.SWITCHING,
        )

    # -- execution helpers -------------------------------------------------------

    def _charge_segment(
        self,
        segment: Segment,
        config: ClockConfig,
        account: EnergyAccount,
        report: LayerReport,
    ) -> None:
        """Price one segment at ``config`` and append it to the ledger."""
        compute_t, memory_t = self.board.core.segment_time_parts(
            segment.workload, config.sysclk_hz
        )
        power = self.board.power_model
        if compute_t > 0:
            p = power.power(config, PowerState.ACTIVE_COMPUTE)
            account.add(
                compute_t, p, EnergyCategory.COMPUTE, report.layer_name,
                config=config, state=PowerState.ACTIVE_COMPUTE,
            )
            report.latency_s += compute_t
            report.energy_j += compute_t * p
        if memory_t > 0:
            p = power.power(config, PowerState.ACTIVE_MEMORY)
            account.add(
                memory_t, p, EnergyCategory.MEMORY, report.layer_name,
                config=config, state=PowerState.ACTIVE_MEMORY,
            )
            report.latency_s += memory_t
            report.energy_j += memory_t * p

    def _charge_switch(
        self,
        latency_s: float,
        config: ClockConfig,
        account: EnergyAccount,
        report: LayerReport,
    ) -> None:
        if latency_s <= 0:
            return
        p = self.board.power_model.switching_power(config)
        account.add(
            latency_s, p, EnergyCategory.SWITCH, report.layer_name,
            config=config, state=PowerState.SWITCHING,
        )
        report.latency_s += latency_s
        report.energy_j += latency_s * p

    def _run_fused(
        self,
        rcc: RCC,
        trace: LayerTrace,
        target: ClockConfig,
        account: EnergyAccount,
        report: LayerReport,
    ) -> int:
        """Run an undecoupled layer entirely at ``target``."""
        cost = rcc.apply(target)
        self._charge_switch(cost.latency_s, rcc.current, account, report)
        mux = 1 if cost.latency_s > 0 else 0
        for segment in trace.segments:
            self._charge_segment(segment, rcc.current, account, report)
        return mux

    def _run_decoupled(
        self,
        rcc: RCC,
        trace: LayerTrace,
        hfo: ClockConfig,
        lfo: ClockConfig,
        account: EnergyAccount,
        report: LayerReport,
    ) -> tuple:
        """Run a DAE layer bouncing between LFO and HFO segments.

        Returns ``(mux_switches, background_relocks)``.
        """
        if hfo.source is not SysclkSource.PLL:
            raise TraceError(
                f"layer {trace.layer_name!r}: HFO must be PLL-sourced"
            )
        mux = 0
        background_relocks = 0
        segments = trace.segments
        if len(segments) != 2 * trace.iterations:
            raise TraceError(
                f"layer {trace.layer_name!r}: malformed decoupled trace"
            )
        # --- first iteration: drives the real RCC state machine --------
        # All switch stalls are priced at the LFO switching power: the
        # core is parked on (or transitioning through) the HSE while
        # the mux handshakes and the PLL hunts for lock.
        mem_seg, comp_seg = segments[0], segments[1]
        # ClockSwitchHSE (Listing 1, line 3): park the mux on the HSE.
        # Under an injected HSE dropout the CSS parks it on the HSI
        # failsafe instead, so the landed config (rcc.current) prices
        # the stall and the memory segment, not the requested LFO.
        cost = rcc.apply(lfo)
        park = rcc.current
        self._charge_switch(cost.latency_s, park, account, report)
        if cost.latency_s > 0:
            mux += 1
        # The PLL reprograms in the background during the first buffer
        # copy; any lock time the copy does not cover stalls the core.
        mem_time = self.board.core.segment_time_s(
            mem_seg.workload, park.sysclk_hz
        )
        lock_s = rcc.prepare_pll(hfo)
        if lock_s > 0:
            background_relocks += 1
        self._charge_switch(max(0.0, lock_s - mem_time), park, account, report)
        self._charge_segment(mem_seg, park, account, report)
        # ClockSwitchPLL (Listing 1, line 7): mux onto the locked PLL.
        cost = rcc.apply(hfo)
        self._charge_switch(cost.latency_s, park, account, report)
        if cost.latency_s > 0:
            mux += 1
        if rcc.current != hfo:
            # CSS failsafe: the HSE (hence the PLL) is gone and the
            # core runs from the HSI.  Finish the layer there -- no
            # LFO/HFO bouncing is possible without the HSE -- charging
            # every remaining segment at the failsafe clock.
            for segment in segments[1:]:
                self._charge_segment(segment, rcc.current, account, report)
            return mux, background_relocks
        self._charge_segment(comp_seg, hfo, account, report)
        # --- remaining iterations: identical LFO<->HFO bounces ---------
        # The RCC state no longer changes (the PLL stays programmed),
        # so identical (memory, compute) pairs are charged in batches.
        remaining = trace.iterations - 1
        if remaining > 0:
            pairs: Dict[tuple, int] = {}
            order: List[tuple] = []
            for i in range(1, trace.iterations):
                key = (segments[2 * i].workload, segments[2 * i + 1].workload)
                if key not in pairs:
                    pairs[key] = 0
                    order.append(key)
                pairs[key] += 1
            mux_cost = self.board.switch_cost_model.mux_switch_s
            for key in order:
                count = pairs[key]
                mem_workload, comp_workload = key
                self._charge_switch(
                    2 * count * mux_cost, lfo, account, report
                )
                mux += 2 * count
                self._charge_segment_batch(
                    mem_workload, count, lfo, SegmentKind.MEMORY,
                    account, report,
                )
                self._charge_segment_batch(
                    comp_workload, count, hfo, SegmentKind.COMPUTE,
                    account, report,
                )
        return mux, background_relocks

    def _charge_segment_batch(
        self,
        workload,
        count: int,
        config: ClockConfig,
        kind: SegmentKind,
        account: EnergyAccount,
        report: LayerReport,
    ) -> None:
        """Charge ``count`` identical segments in one ledger entry each."""
        compute_t, memory_t = self.board.core.segment_time_parts(
            workload, config.sysclk_hz
        )
        power = self.board.power_model
        if compute_t > 0:
            p = power.power(config, PowerState.ACTIVE_COMPUTE)
            account.add(
                count * compute_t, p, EnergyCategory.COMPUTE,
                report.layer_name,
                config=config, state=PowerState.ACTIVE_COMPUTE,
            )
            report.latency_s += count * compute_t
            report.energy_j += count * compute_t * p
        if memory_t > 0:
            p = power.power(config, PowerState.ACTIVE_MEMORY)
            account.add(
                count * memory_t, p, EnergyCategory.MEMORY,
                report.layer_name,
                config=config, state=PowerState.ACTIVE_MEMORY,
            )
            report.latency_s += count * memory_t
            report.energy_j += count * memory_t * p
