"""Bit-exact DAE execution (the numerics side of Listing 1).

The timing/energy side of DAE lives in :mod:`repro.engine.cost`; this
module is the *arithmetic* side: it actually executes depthwise and
pointwise layers in the DAE order -- buffer ``g`` channels / columns,
then compute each group -- and reassembles the outputs.  Because every
output element of these layers depends only on its own channel/column,
the restructuring is a pure loop reordering and the result is
bit-identical to the reference execution, which is the paper's
"DAE-enabled CNNs entail no accuracy drops" claim (Sec. III-A);
``tests/engine/test_dae.py`` verifies it exhaustively and
property-based.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..errors import TraceError
from ..nn.graph import INPUT_ID, Model
from ..nn.layers.base import LayerKind
from ..nn.layers.depthwise import DepthwiseConv2D
from ..nn.layers.pointwise import PointwiseConv2D
from ..nn.tensor import QuantizedTensor


@dataclass
class LayerBufferingStats:
    """Buffering behaviour of one DAE-executed layer."""

    node_id: int
    layer_name: str
    granularity: int
    groups: int = 0
    buffered_bytes: int = 0


@dataclass
class DAEExecutionStats:
    """Aggregate buffering statistics of one DAE inference."""

    per_layer: List[LayerBufferingStats] = field(default_factory=list)

    @property
    def total_groups(self) -> int:
        """Total DAE loop iterations across all layers."""
        return sum(s.groups for s in self.per_layer)

    @property
    def total_buffered_bytes(self) -> int:
        """Total bytes staged through DAE buffers."""
        return sum(s.buffered_bytes for s in self.per_layer)


def _groups(total: int, g: int) -> List[np.ndarray]:
    """Index groups of size ``g`` covering ``range(total)`` in order."""
    return [
        np.arange(start, min(start + g, total), dtype=np.intp)
        for start in range(0, total, g)
    ]


def run_depthwise_dae(
    layer: DepthwiseConv2D, x: QuantizedTensor, g: int
) -> QuantizedTensor:
    """Execute a depthwise layer with decoupling granularity ``g``.

    Channels are processed in groups of ``g`` (Listing 1); the output
    is bit-identical to ``layer.forward(x)``.

    Raises:
        TraceError: if ``g`` is not positive.
    """
    if g <= 0:
        raise TraceError(f"DAE execution requires g > 0, got {g}")
    out_h, out_w, c = layer.output_shape(x.shape)
    out = np.empty((out_h, out_w, c), dtype=np.int8)
    for group in _groups(c, g):
        # Memory-bound phase: conceptually buffers these channels; the
        # compute kernel then only touches the buffered slice.
        out[:, :, group] = layer.forward_channels(x, group)
    return QuantizedTensor(
        data=out,
        scale=layer.output_params.scale,
        zero_point=layer.output_params.zero_point,
    )


def run_pointwise_dae(
    layer: PointwiseConv2D, x: QuantizedTensor, g: int
) -> QuantizedTensor:
    """Execute a pointwise layer with decoupling granularity ``g``.

    Columns (spatial positions) are processed in groups of ``g``; the
    output is bit-identical to ``layer.forward(x)``.

    Raises:
        TraceError: if ``g`` is not positive.
    """
    if g <= 0:
        raise TraceError(f"DAE execution requires g > 0, got {g}")
    h, w, c_out = layer.output_shape(x.shape)
    flat_out = np.empty((h * w, c_out), dtype=np.int8)
    for group in _groups(h * w, g):
        flat_out[group] = layer.forward_columns(x, group)
    return QuantizedTensor(
        data=flat_out.reshape(h, w, c_out),
        scale=layer.output_params.scale,
        zero_point=layer.output_params.zero_point,
    )


class DAEExecutor:
    """Whole-model DAE execution with per-layer granularities.

    Args:
        granularities: node-id -> g; nodes missing from the mapping (or
            mapped to 0, or not DAE-eligible) run their reference
            kernels.
    """

    def __init__(self, granularities: Optional[Mapping[int, int]] = None):
        self.granularities = dict(granularities or {})

    def run(
        self, model: Model, x: QuantizedTensor
    ) -> "tuple[QuantizedTensor, DAEExecutionStats]":
        """Run the model, DAE-executing the configured layers.

        Returns:
            (output, buffering statistics).  The output is bit-identical
            to ``model.forward(x)`` for every granularity assignment.
        """
        stats = DAEExecutionStats()
        activations: Dict[int, QuantizedTensor] = {INPUT_ID: x}
        for node in model.nodes:
            inputs = tuple(activations[i] for i in node.inputs)
            g = self.granularities.get(node.node_id, 0)
            layer = node.layer
            if g > 0 and layer.kind is LayerKind.DEPTHWISE_CONV:
                assert isinstance(layer, DepthwiseConv2D)
                (x_in,) = inputs
                result = run_depthwise_dae(layer, x_in, g)
                h, w, c = x_in.shape
                stats.per_layer.append(
                    LayerBufferingStats(
                        node_id=node.node_id,
                        layer_name=layer.name,
                        granularity=g,
                        groups=-(-c // g),
                        buffered_bytes=h * w * c,
                    )
                )
            elif g > 0 and layer.kind is LayerKind.POINTWISE_CONV:
                assert isinstance(layer, PointwiseConv2D)
                (x_in,) = inputs
                result = run_pointwise_dae(layer, x_in, g)
                h, w, c = x_in.shape
                stats.per_layer.append(
                    LayerBufferingStats(
                        node_id=node.node_id,
                        layer_name=layer.name,
                        granularity=g,
                        groups=-(-(h * w) // g),
                        buffered_bytes=h * w * c,
                    )
                )
            else:
                result = layer.forward(*inputs)
            activations[node.node_id] = result
        return activations[len(model.nodes)], stats


def validate_plan_numerics(
    model: Model,
    granularities: Mapping[int, int],
    n_inputs: int = 3,
    seed: int = 0,
) -> bool:
    """Formally check a schedule changes no output bit (paper Sec. III-A).

    Runs ``n_inputs`` random inputs through both the reference model
    and the DAE-reordered execution under ``granularities`` and
    compares outputs bit for bit.  Deployment tooling calls this before
    shipping a plan; it must always return True for any legal
    granularity assignment (the property-based test suite establishes
    the same exhaustively).

    Args:
        model: the model the plan schedules.
        granularities: node-id -> g (e.g. ``plan.granularities()``).
        n_inputs: how many random inputs to check.
        seed: RNG seed for the inputs.

    Returns:
        True iff every output matched exactly.
    """
    rng = np.random.default_rng(seed)
    executor = DAEExecutor(granularities)
    for _ in range(max(1, n_inputs)):
        data = rng.integers(
            -128, 128, size=model.input_shape
        ).astype(np.int8)
        x = QuantizedTensor(
            data=data,
            scale=model.input_params.scale,
            zero_point=model.input_params.zero_point,
        )
        reference = model.forward(x)
        dae_output, _ = executor.run(model, x)
        if not np.array_equal(dae_output.data, reference.data):
            return False
    return True
