"""ASCII Gantt rendering of a DVFS execution.

Turns an :class:`~repro.engine.runtime.InferenceReport` into a text
timeline showing when the core ran at which clock and in which phase
-- the visual intuition behind Listing 1's LFO/HFO alternation,
without needing a plotting stack.  Used by examples and handy when
debugging schedules in a terminal.

Legend: ``#`` compute (HFO), ``m`` memory (LFO), ``s`` switch,
``.`` idle.
"""

from __future__ import annotations

from typing import List

from ..engine.runtime import InferenceReport
from ..power.energy import EnergyCategory
from .timeline import timeline_events

_GLYPHS = {
    EnergyCategory.COMPUTE: "#",
    EnergyCategory.MEMORY: "m",
    EnergyCategory.SWITCH: "s",
    EnergyCategory.IDLE: ".",
    EnergyCategory.OTHER: "?",
}


def render_gantt(
    report: InferenceReport,
    width: int = 100,
    max_rows: int = 24,
) -> str:
    """Render the execution as an ASCII strip chart.

    Each character cell covers ``total_time / width`` seconds and shows
    the phase that dominates it; a right-hand column labels the layer
    active at the row's start.

    Args:
        report: the executed schedule.
        width: characters per row.
        max_rows: cap on emitted rows (long executions are truncated
            with a note).
    """
    events = timeline_events(report)
    if not events:
        return "(empty execution)"
    total = events[-1].end_s
    cell = total / (width * max_rows)
    # Dominant category per cell, by accumulated duration.
    cells: List[str] = []
    event_index = 0
    for i in range(width * max_rows):
        start = i * cell
        end = start + cell
        weights = {}
        while event_index < len(events) and events[event_index].end_s <= start:
            event_index += 1
        j = event_index
        while j < len(events) and events[j].start_s < end:
            overlap = min(end, events[j].end_s) - max(start, events[j].start_s)
            if overlap > 0:
                weights[events[j].category] = (
                    weights.get(events[j].category, 0.0) + overlap
                )
            j += 1
        if not weights:
            cells.append(" ")
        else:
            dominant = max(weights, key=lambda c: weights[c])
            cells.append(_GLYPHS[dominant])
    # Label each row with the layer active at its first instant.
    lines = [
        f"timeline: {total * 1e3:.3f} ms total, "
        f"{cell * width * 1e3:.3f} ms per row "
        "(# compute, m memory, s switch, . idle)"
    ]
    label_at = {}
    for event in events:
        row = int(event.start_s / (cell * width))
        label_at.setdefault(row, event.label)
    for row in range(max_rows):
        strip = "".join(cells[row * width:(row + 1) * width])
        if not strip.strip():
            break
        label = label_at.get(row, "")
        lines.append(f"{strip} | {label}")
    return "\n".join(lines)
