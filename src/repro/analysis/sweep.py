"""QoS-sweep analysis: the model-level energy/latency trade-off curve.

The paper evaluates three discrete QoS points; sweeping the budget
continuously exposes the whole frontier -- where the savings saturate
(the unconstrained energy optimum), where the baselines cross, and how
the mean operating frequency migrates.  Used by the ``qos_sweep``
example and available as a library call for custom studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import SolverError
from ..nn.graph import Model
from ..optimize.qos import QoSLevel
from .figures import mean_frequency_hz


@dataclass(frozen=True)
class QoSSweepRow:
    """One point of the energy-vs-slack frontier."""

    slack: float
    qos_s: float
    ours_energy_j: float
    tinyengine_energy_j: float
    clock_gated_energy_j: float
    ours_latency_s: float
    mean_hfo_hz: float
    met_qos: bool

    @property
    def savings_vs_tinyengine(self) -> float:
        """Fractional energy reduction vs. plain TinyEngine."""
        return 1.0 - self.ours_energy_j / self.tinyengine_energy_j

    @property
    def savings_vs_clock_gated(self) -> float:
        """Fractional energy reduction vs. the gated baseline."""
        return 1.0 - self.ours_energy_j / self.clock_gated_energy_j


def qos_energy_sweep(
    pipeline,
    model: Model,
    slacks: Sequence[float],
) -> List[QoSSweepRow]:
    """Sweep the QoS slack and collect the comparison at each point.

    Args:
        pipeline: a :class:`~repro.pipeline.DAEDVFSPipeline`.
        model: the model under study.
        slacks: relative slack values (0.10 = +10% over baseline).

    Raises:
        SolverError: for an empty or non-ascending slack sequence.
    """
    if not slacks:
        raise SolverError("qos_energy_sweep needs at least one slack value")
    if list(slacks) != sorted(slacks):
        raise SolverError("slack values must be ascending")
    rows: List[QoSSweepRow] = []
    for slack in slacks:
        level = QoSLevel(name=f"{slack:.0%}", slack=slack)
        comparison = pipeline.compare(model, level)
        plan = pipeline.optimize(model, qos_level=level).plan
        rows.append(
            QoSSweepRow(
                slack=slack,
                qos_s=comparison.qos_s,
                ours_energy_j=comparison.ours.energy_j,
                tinyengine_energy_j=comparison.tinyengine.energy_j,
                clock_gated_energy_j=comparison.clock_gated.energy_j,
                ours_latency_s=comparison.ours.latency_s,
                mean_hfo_hz=mean_frequency_hz(plan),
                met_qos=comparison.ours.met_qos,
            )
        )
    return rows


def saturation_slack(rows: Sequence[QoSSweepRow], tolerance: float = 0.01) -> float:
    """The smallest swept slack beyond which our energy stops improving.

    Identifies where the schedule reaches its unconstrained optimum:
    the first row whose energy is within ``tolerance`` of the best
    energy over the whole sweep.

    Raises:
        SolverError: on an empty sweep.
    """
    if not rows:
        raise SolverError("empty sweep")
    best = min(row.ours_energy_j for row in rows)
    for row in rows:
        if row.ours_energy_j <= best * (1.0 + tolerance):
            return row.slack
    return rows[-1].slack
