"""Schedule statistics backing the paper's Fig. 6 analysis.

Fig. 6 reports how the optimizer distributes HFO frequencies and DAE
granularities across a model's layers under different QoS constraints:
the share of pointwise vs. depthwise layers at the maximum 216 MHz,
the share parked at the lowest frequencies, and how tight budgets push
layers towards the maximum while relaxed budgets push granularities
towards 16.  These helpers compute exactly those statistics from a
:class:`~repro.engine.schedule.DeploymentPlan`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional

from ..engine.schedule import DeploymentPlan
from ..nn.graph import Model
from ..nn.layers.base import LayerKind
from ..units import MHZ


def _kind_of(model: Model, node_id: int) -> LayerKind:
    return model.nodes[node_id - 1].layer.kind


def frequency_histogram(
    plan: DeploymentPlan,
    model: Model,
    kinds: Optional[Iterable[LayerKind]] = None,
) -> Dict[float, int]:
    """Layer count per HFO frequency (MHz), optionally kind-filtered."""
    wanted = set(kinds) if kinds is not None else None
    histogram: Counter = Counter()
    for node_id, layer_plan in plan.layer_plans.items():
        if wanted is not None and _kind_of(model, node_id) not in wanted:
            continue
        histogram[round(layer_plan.hfo.sysclk_hz / MHZ, 1)] += 1
    return dict(histogram)


def granularity_histogram(plan: DeploymentPlan) -> Dict[int, int]:
    """Layer count per DAE granularity."""
    histogram: Counter = Counter()
    for layer_plan in plan.layer_plans.values():
        histogram[layer_plan.granularity] += 1
    return dict(histogram)


def share_at_frequency(
    plan: DeploymentPlan,
    model: Model,
    frequency_hz: float,
    kinds: Optional[Iterable[LayerKind]] = None,
    tolerance_hz: float = 1.0,
) -> float:
    """Fraction of (kind-filtered) layers scheduled at one frequency."""
    wanted = set(kinds) if kinds is not None else None
    total = 0
    matching = 0
    for node_id, layer_plan in plan.layer_plans.items():
        if wanted is not None and _kind_of(model, node_id) not in wanted:
            continue
        total += 1
        if abs(layer_plan.hfo.sysclk_hz - frequency_hz) <= tolerance_hz:
            matching += 1
    if total == 0:
        return 0.0
    return matching / total


def share_at_or_below_frequency(
    plan: DeploymentPlan,
    model: Model,
    frequency_hz: float,
    kinds: Optional[Iterable[LayerKind]] = None,
) -> float:
    """Fraction of (kind-filtered) layers at or below a frequency.

    The paper's "lowest operating frequencies" bucket (75/100 MHz in
    its grid) maps to this with ``frequency_hz`` at the bucket's top.
    """
    wanted = set(kinds) if kinds is not None else None
    total = 0
    matching = 0
    for node_id, layer_plan in plan.layer_plans.items():
        if wanted is not None and _kind_of(model, node_id) not in wanted:
            continue
        total += 1
        if layer_plan.hfo.sysclk_hz <= frequency_hz + 1.0:
            matching += 1
    if total == 0:
        return 0.0
    return matching / total


def share_at_granularity(plan: DeploymentPlan, granularity: int) -> float:
    """Fraction of scheduled layers using one granularity."""
    plans = plan.layer_plans
    if not plans:
        return 0.0
    matching = sum(
        1 for lp in plans.values() if lp.granularity == granularity
    )
    return matching / len(plans)


def mean_frequency_hz(plan: DeploymentPlan) -> float:
    """Latency-unweighted mean HFO frequency of the schedule."""
    plans = plan.layer_plans
    if not plans:
        return 0.0
    return sum(lp.hfo.sysclk_hz for lp in plans.values()) / len(plans)
