"""Battery-lifetime estimation for duty-cycled far-edge deployments.

The paper's motivation is battery-operated far-edge MCUs: "preserving
energy resources becomes crucial, since ... computationally hungry
DNNs can rapidly deplete the battery" (Sec. I). This module closes
that loop: given an inference report (energy per QoS window), a duty
cycle (inferences per hour) and a battery, estimate deployment
lifetime — turning the paper's percentage savings into the unit the
deployment engineer actually cares about (extra days in the field).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.runtime import InferenceReport
from ..errors import PowerModelError


@dataclass(frozen=True)
class Battery:
    """An ideal primary cell (no self-discharge, flat voltage).

    Attributes:
        capacity_mah: rated capacity in milliamp-hours.
        voltage_v: nominal cell voltage.
        usable_fraction: fraction of the rated capacity the regulator
            can actually extract before brown-out.
    """

    capacity_mah: float = 1200.0   # a CR123A-class primary cell
    voltage_v: float = 3.0
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise PowerModelError("battery capacity/voltage must be positive")
        if not 0 < self.usable_fraction <= 1:
            raise PowerModelError("usable_fraction must be in (0, 1]")

    @property
    def usable_energy_j(self) -> float:
        """Extractable energy in joules."""
        return (
            self.capacity_mah * 1e-3 * 3600.0
            * self.voltage_v * self.usable_fraction
        )


@dataclass(frozen=True)
class DutyCycle:
    """How often the node wakes up to run an inference window.

    Attributes:
        windows_per_hour: QoS windows executed per hour.
        sleep_power_w: board power between windows (deep sleep / RTC
            standby -- well below even the clock-gated idle).
    """

    windows_per_hour: float = 60.0
    sleep_power_w: float = 0.25e-3

    def __post_init__(self) -> None:
        if self.windows_per_hour < 0:
            raise PowerModelError("windows_per_hour must be >= 0")
        if self.sleep_power_w < 0:
            raise PowerModelError("sleep_power_w must be >= 0")


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected deployment lifetime."""

    hours: float
    energy_per_hour_j: float
    active_share: float

    @property
    def days(self) -> float:
        """Lifetime in days."""
        return self.hours / 24.0


def estimate_lifetime(
    battery: Battery,
    report: InferenceReport,
    duty_cycle: DutyCycle,
) -> LifetimeEstimate:
    """Project battery lifetime for a deployment running ``report``'s
    schedule at the given duty cycle.

    Each hour spends ``windows_per_hour`` QoS windows at the report's
    measured window energy, and the remaining time asleep.

    Raises:
        PowerModelError: if the duty cycle does not fit in an hour
            (windows longer than their period).
    """
    window_s = (
        report.qos_s if report.qos_s is not None else report.latency_s
    )
    active_s = duty_cycle.windows_per_hour * window_s
    if active_s > 3600.0:
        raise PowerModelError(
            f"{duty_cycle.windows_per_hour:.0f} windows of "
            f"{window_s * 1e3:.1f} ms exceed one hour"
        )
    energy_active = duty_cycle.windows_per_hour * report.energy_j
    energy_sleep = (3600.0 - active_s) * duty_cycle.sleep_power_w
    energy_per_hour = energy_active + energy_sleep
    if energy_per_hour == 0.0:
        raise PowerModelError("duty cycle consumes no energy")
    return LifetimeEstimate(
        hours=battery.usable_energy_j / energy_per_hour,
        energy_per_hour_j=energy_per_hour,
        active_share=active_s / 3600.0,
    )
